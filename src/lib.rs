//! # tspu
//!
//! Umbrella crate for the reproduction of *TSPU: Russia's Decentralized
//! Censorship System* (IMC 2022). Re-exports every workspace crate; see
//! the README for the architecture and DESIGN.md for the experiment
//! index.
//!
//! * [`wire`] — wire formats (IPv4/TCP/UDP/ICMP/TLS/QUIC)
//! * [`netsim`] — deterministic discrete-event network simulator
//! * [`core`] — the TSPU device model
//! * [`ispdpi`] — per-ISP DNS blockpage baseline
//! * [`stack`] — endpoint host stacks
//! * [`registry`] — domain universe, blocklists, policy timeline
//! * [`topology`] — vantage lab and country-scale RuNet
//! * [`measure`] — the paper's measurement techniques
//! * [`circumvent`] — §8 circumvention strategies
//!
//! ## Example
//!
//! ```
//! use tspu::registry::Universe;
//! use tspu::stack::{ClientOutcome, ServerApp, TcpClient, TcpClientConfig};
//! use tspu::topology::VantageLab;
//! use tspu::wire::tls::ClientHelloBuilder;
//!
//! // The paper's Fig. 1 setup, generated deterministically.
//! let universe = Universe::generate(2022);
//! let mut lab = VantageLab::builder().universe(&universe).table1().build();
//! lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));
//!
//! // Fetch a blocked domain from the ER-Telecom vantage point.
//! let (host, addr) = {
//!     let v = lab.vantage("ER-Telecom");
//!     (v.host, v.addr)
//! };
//! let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
//!     addr, 40_000, lab.us_main_addr, 443,
//!     ClientHelloBuilder::new("twitter.com").build(),
//! ));
//! lab.net.set_app(host, Box::new(app));
//! lab.net.send_from(host, syn);
//! lab.net.run_until_idle();
//!
//! // The TSPU rewrote the response to RST/ACK (behavior SNI-I).
//! assert_eq!(report.outcome(), ClientOutcome::Reset);
//! ```

pub use tspu_circumvent as circumvent;
pub use tspu_core as core;
pub use tspu_ispdpi as ispdpi;
pub use tspu_measure as measure;
pub use tspu_netsim as netsim;
pub use tspu_registry as registry;
pub use tspu_stack as stack;
pub use tspu_topology as topology;
pub use tspu_wire as wire;
