#!/usr/bin/env bash
# Cross-PR performance trajectory: read every committed BENCH_pr*.json
# (plus any extra summaries passed as arguments, e.g. the current CI
# smoke run), print each bench id's ns_per_iter across PRs with the
# delta between consecutive appearances, and gate the canonical per-hop
# cost: core/device_hop_ns must not regress by more than 10% (or 3 ns
# absolute, whichever is larger — same noise floor rationale as
# bench_smoke.sh) from the best previous PR to the newest record.
#
# Usage:
#   scripts/bench_trend.sh                    # committed trajectory only
#   scripts/bench_trend.sh bench_smoke.json   # append a fresh smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - "$@" <<'EOF'
import glob
import json
import re
import sys

# Committed PR summaries in PR order, then any extra files from argv
# (a CI smoke run appends as the newest point on every trajectory).
def pr_key(path):
    m = re.search(r"BENCH_pr(\d+)\.json$", path)
    return int(m.group(1)) if m else 10**9

import os

paths = sorted(glob.glob("BENCH_pr*.json"), key=pr_key)
# Dedup by realpath: bench_smoke.sh hands us an absolute path that may
# BE one of the committed summaries (the default BENCH_pr9.json out).
seen = {os.path.realpath(p) for p in paths}
paths += [p for p in sys.argv[1:] if os.path.realpath(p) not in seen]
if not paths:
    print("no BENCH_pr*.json files found", file=sys.stderr)
    sys.exit(1)

def label(path):
    m = re.search(r"BENCH_pr(\d+)\.json$", path)
    return f"pr{m.group(1)}" if m else path

# trajectory: id -> [(label, ns_per_iter)]
trajectory = {}
order = []
for path in paths:
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec["id"] not in trajectory:
                order.append(rec["id"])
                trajectory[rec["id"]] = []
            trajectory[rec["id"]].append((label(path), rec["ns_per_iter"]))

print(f"bench trajectory over {len(paths)} summaries: {', '.join(label(p) for p in paths)}")
print()
for rec_id in order:
    points = trajectory[rec_id]
    parts = []
    prev = None
    for tag, ns in points:
        if prev is not None and prev > 0:
            pct = 100.0 * (ns - prev) / prev
            parts.append(f"{tag}={ns:g} ({pct:+.1f}%)")
        else:
            parts.append(f"{tag}={ns:g}")
        prev = ns
    print(f"  {rec_id}: {' -> '.join(parts)}")

# The gate: the newest core/device_hop_ns record vs the best (minimum)
# of all previous PRs. device/conntrack_data_packet is the same loop
# under its pre-PR-8 name, so early PRs still anchor the baseline.
hop_ids = ("core/device_hop_ns", "device/conntrack_data_packet")
hop = []
for rec_id in hop_ids:
    hop.extend(trajectory.get(rec_id, []))
# Re-sort into summary order: points were appended per id, so merge by
# the position of each label in the paths list.
tags = [label(p) for p in paths]
hop.sort(key=lambda point: tags.index(point[0]))
# Collapse same-summary duplicates (a summary carrying both ids) to the
# minimum — they time the identical loop.
by_tag = {}
for tag, ns in hop:
    by_tag[tag] = min(ns, by_tag.get(tag, float("inf")))
hop = [(tag, by_tag[tag]) for tag in tags if tag in by_tag]

print()
if len(hop) < 2:
    print("device hop gate: fewer than two summaries carry the hop record; nothing to compare")
    sys.exit(0)

newest_tag, newest = hop[-1]
baseline_tag, baseline = min(hop[:-1], key=lambda point: point[1])
delta = newest - baseline
pct = 100.0 * delta / baseline if baseline else 0.0
print(
    f"device hop gate: {newest_tag}={newest:.2f} ns vs best prior "
    f"{baseline_tag}={baseline:.2f} ns ({pct:+.2f}%)"
)
if newest > baseline * 1.10 and delta > 3.0:
    print(
        f"FAIL: core/device_hop_ns regressed {pct:+.2f}% "
        f"(over both the 10% and the 3 ns budget)",
        file=sys.stderr,
    )
    sys.exit(1)
print("device hop gate: OK (within 10% / 3 ns of the best prior PR)")
EOF
