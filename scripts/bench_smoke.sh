#!/usr/bin/env bash
# Benchmark smoke run: exercises every perf Criterion group and writes a
# JSON-lines summary — one {"id", "ns_per_iter", "iters"} object per
# bench — for the cross-PR perf trajectory (BENCH_pr1.json et al.).
# PR 2 adds the parallel-sweep ids (sweep/registry_100k_{1,N}thread) and
# netsim/events_per_sec alongside the PR 1 set. PR 4 adds the
# observability pair: the obs_overhead bench runs with default features
# (instrumented) and --no-default-features (no-op) and the derived
# obs/overhead_* records report the enabled-vs-disabled delta in
# ns/packet and percent (budget: <= 5%). PR 5 adds the churn trio
# (churn/delta_apply_ns, churn/policy_recompile_ns,
# churn/convergence_virtual_ms) and derives
# churn/delta_vs_recompile_ratio, asserting the incremental path beats a
# full recompile by >= 50x. PR 6 measures the fork-per-cell sweep
# (sweep/registry_100k_forked_*, sweep/lab_fork_ns,
# sweep/registry_100k_fresh_1thread) and derives
# sweep/forked_vs_fresh_ratio with a floor assertion. PR 7 adds the
# million-flow load engine (load/sustained_pps_1m_flows — value is
# packets/sec, higher is better — load/p{50,99,999}_hop_ns_1m_flows,
# load/bytes_per_flow) plus netsim/wheel_schedule_ns, asserts the pps
# floor, and derives load/p999_vs_p50_ratio with a <= 10x ceiling
# (steady-state tail must stay near the median). PR 8 prices the
# three-country differential campaign per (profile x domain) cell
# (profiles/differential_3country_us_per_cell, plus the _audited_
# variant with capture + per-profile oracle replay on), derives
# core/device_hop_ns as the canonical per-hop cost record, and guards it
# against the PR 7 baseline (BENCH_pr7.json): the profile indirection on
# the packet path must stay within 5% (or 3 ns absolute, whichever is
# larger) of the pre-profile engine. The hop record takes the minimum of
# device/conntrack_data_packet and the three obs/device_hop_enabled
# batches — four process-level runs of the *identical* loop (same
# packet, same device, same instrumented build), so the guard compares
# the least-disturbed measurement rather than whichever single run the
# scheduler happened to preempt. PR 9 keeps the same bench set (the
# time-series/flight-recorder instrumentation must cost nothing the
# obs/overhead_* records can resolve), moves the hop guard to the PR 8
# baseline, and finishes by running scripts/bench_trend.sh so the full
# cross-PR trajectory (with its own 10% hop gate) prints with every run.
# PR 10 adds the generated-topology records: topo/gen_ns_per_as (5000-AS
# graph build amortized per AS), topo/fork_ns_5000as,
# topo/route_flip_ns (interned-arena path flips),
# tomography/us_per_probe (value is wall microseconds per end-to-end
# probe), and the 1k-domain sweep at three graph sizes
# (sweep/registry_1k_{100,1000,5000}as); the hop guard moves to the
# PR 9 baseline.
#
# Noise control: the enabled/disabled obs batches are interleaved
# (A/B/A/B) so a frequency ramp or a neighbor stealing the core hits
# both sides of the comparison, and every bench id keeps the *minimum*
# ns_per_iter across batches — the run least disturbed by the machine.
#
# Usage:
#   scripts/bench_smoke.sh [OUTPUT]      # quick (~20x shorter) run
#   BENCH_FULL=1 scripts/bench_smoke.sh  # full-length measurement
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr10.json}"
# cargo runs bench binaries from the package dir, so anchor relative
# output paths to the workspace root.
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
rm -f "$out"

quick_env=(BENCH_QUICK=1)
if [ "${BENCH_FULL:-0}" = "1" ]; then
  quick_env=()
fi

env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench perf
# Interleaved enabled/disabled batches: A/B/A/B rather than AA/BB, so
# slow drift in machine load cannot masquerade as instrumentation
# overhead (or as a negative overhead).
for _batch in 1 2 3; do
  env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench obs_overhead
  env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench obs_overhead --no-default-features
done

# Dedupe repeated ids (min ns_per_iter wins), derive the cross-record
# metrics, and assert the floors.
python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
records = {}
order = []
with open(path) as fh:
    for line in fh:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        prev = records.get(rec["id"])
        if prev is None:
            order.append(rec["id"])
            records[rec["id"]] = rec
        elif rec["ns_per_iter"] < prev["ns_per_iter"]:
            records[rec["id"]] = rec

derived = []

for metric in ("device_hop", "netsim_event"):
    enabled = records.get(f"obs/{metric}_enabled")
    disabled = records.get(f"obs/{metric}_disabled")
    if not enabled or not disabled:
        continue
    delta = enabled["ns_per_iter"] - disabled["ns_per_iter"]
    rec = {
        "id": f"obs/overhead_{metric}",
        "iters": enabled["iters"],
        "enabled_ns": enabled["ns_per_iter"],
        "disabled_ns": disabled["ns_per_iter"],
    }
    if delta < 0.0:
        # The instrumented build measured *faster* than the no-op build:
        # the true overhead is below what this machine can resolve.
        # Clamp to zero rather than report a negative cost.
        rec["ns_per_iter"] = 0.0
        rec["percent"] = 0.0
        rec["note"] = f"below noise floor (raw delta {delta:+.2f} ns)"
        print(f"obs overhead {metric}: below noise floor (raw {delta:+.2f} ns/iter)")
    else:
        percent = 100.0 * delta / disabled["ns_per_iter"] if disabled["ns_per_iter"] else 0.0
        rec["ns_per_iter"] = round(delta, 3)
        rec["percent"] = round(percent, 2)
        print(f"obs overhead {metric}: {delta:+.2f} ns/iter ({percent:+.2f}%)")
        # Budget: <= 5% of the uninstrumented path, OR <= 3 ns absolute.
        # The absolute floor exists because the base hop cost keeps
        # shrinking: a couple of indexed counter adds are a fixed ns
        # cost, and on a ~50 ns hop that fixed cost can exceed 5% while
        # still being within this machine's run-to-run noise.
        assert percent <= 5.0 or delta <= 3.0, (
            f"obs overhead for {metric} is {delta:.2f} ns ({percent:.2f}%), "
            "over both the 5% and the 3 ns budget"
        )
    derived.append(rec)

# Churn delta-vs-recompile ratio (acceptance: >= 50x).
apply = records.get("churn/delta_apply_ns")
recompile = records.get("churn/policy_recompile_ns")
if apply and recompile:
    ratio = recompile["ns_per_iter"] / apply["ns_per_iter"] if apply["ns_per_iter"] else 0.0
    derived.append({
        "id": "churn/delta_vs_recompile_ratio",
        "ns_per_iter": round(ratio, 1),
        "iters": apply["iters"],
        "delta_apply_ns": apply["ns_per_iter"],
        "policy_recompile_ns": recompile["ns_per_iter"],
    })
    print(f"churn delta vs recompile: {ratio:.1f}x")
    assert ratio >= 50.0, f"incremental delta only {ratio:.1f}x faster than recompile"

# Fork-per-cell vs build-per-scenario (acceptance: >= 2.5x).
# Measured headroom on the reference box is ~3.2x (fork ~1.6 us + run
# vs fresh build ~36 us + run); the floor leaves margin for machine
# noise while still failing if forking ever degenerates into a rebuild.
forked = records.get("sweep/registry_100k_forked_1thread")
fresh = records.get("sweep/registry_100k_fresh_1thread")
if forked and fresh:
    ratio = fresh["ns_per_iter"] / forked["ns_per_iter"] if forked["ns_per_iter"] else 0.0
    rec = {
        "id": "sweep/forked_vs_fresh_ratio",
        "ns_per_iter": round(ratio, 2),
        "iters": forked["iters"],
        "forked_ns": forked["ns_per_iter"],
        "fresh_ns": fresh["ns_per_iter"],
    }
    fork_cost = records.get("sweep/lab_fork_ns")
    if fork_cost:
        rec["lab_fork_ns"] = fork_cost["ns_per_iter"]
    derived.append(rec)
    print(f"sweep forked vs fresh: {ratio:.2f}x")
    assert ratio >= 2.5, f"forked sweep only {ratio:.2f}x faster than build-per-scenario"

# Load engine: sustained throughput floor and tail-latency ceiling.
# The pps record stores packets/sec in ns_per_iter (higher is better);
# the reference box sustains ~110k pps on the full million-flow soak, so
# 20k leaves wide margin for slower CI machines while still failing on
# an algorithmic regression (an O(n) scan anywhere in the packet path
# drops throughput by orders of magnitude, not percents).
pps = records.get("load/sustained_pps_1m_flows")
if pps:
    print(f"load sustained pps: {pps['ns_per_iter']:.0f}")
    assert pps["ns_per_iter"] >= 20_000.0, (
        f"sustained throughput {pps['ns_per_iter']:.0f} pps below the 20k floor"
    )

p50 = records.get("load/p50_hop_ns_1m_flows")
p999 = records.get("load/p999_hop_ns_1m_flows")
if p50 and p999 and p50["ns_per_iter"] > 0:
    ratio = p999["ns_per_iter"] / p50["ns_per_iter"]
    derived.append({
        "id": "load/p999_vs_p50_ratio",
        "ns_per_iter": round(ratio, 2),
        "iters": p50["iters"],
        "p50_ns": p50["ns_per_iter"],
        "p999_ns": p999["ns_per_iter"],
    })
    print(f"load p999 vs p50: {ratio:.2f}x")
    assert ratio <= 10.0, (
        f"steady-state p999 {p999['ns_per_iter']:.0f} ns is {ratio:.1f}x p50 — "
        "tail latency detached from the median"
    )

# Differential campaign: report the per-cell price and the audit overhead.
plain = records.get("profiles/differential_3country_us_per_cell")
audited = records.get("profiles/differential_3country_audited_us_per_cell")
if plain and audited and plain["ns_per_iter"] > 0:
    ratio = audited["ns_per_iter"] / plain["ns_per_iter"]
    print(
        f"profiles differential: {plain['ns_per_iter']:.1f} us/cell "
        f"({audited['ns_per_iter']:.1f} us/cell audited, {ratio:.2f}x)"
    )

# The canonical per-hop cost record, under its own id so the cross-PR
# trajectory reads one stable name; the value is the conntrack data-packet
# path (the hop every non-triggering packet pays). obs/device_hop_enabled
# times the identical loop (same packet, same device, instrumented
# build), so the minimum over both ids is the least-noise estimate of
# the one underlying cost.
hop = records.get("device/conntrack_data_packet")
if hop:
    rec = dict(hop)
    rec["id"] = "core/device_hop_ns"
    rec["source"] = "device/conntrack_data_packet"
    enabled = records.get("obs/device_hop_enabled")
    if enabled and enabled["ns_per_iter"] < rec["ns_per_iter"]:
        rec["ns_per_iter"] = enabled["ns_per_iter"]
        rec["iters"] = enabled["iters"]
        rec["source"] = "obs/device_hop_enabled"
    derived.append(rec)
    # Regression guard vs the PR 9 baseline: the topology generator and
    # churn machinery must be free on the hot path. 5% relative with a
    # 3 ns absolute floor (same rationale as the obs budget: on a ~50 ns
    # hop, scheduler noise alone can exceed 5%).
    import os
    baseline_path = "BENCH_pr9.json"
    if os.path.exists(baseline_path):
        baseline = None
        with open(baseline_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                b = json.loads(line)
                if b["id"] in ("core/device_hop_ns", "device/conntrack_data_packet"):
                    baseline = b["ns_per_iter"]
                    if b["id"] == "core/device_hop_ns":
                        break
        if baseline is not None:
            delta = rec["ns_per_iter"] - baseline
            percent = 100.0 * delta / baseline if baseline else 0.0
            print(f"device hop vs PR 9: {rec['ns_per_iter']:.2f} ns vs {baseline:.2f} ns ({percent:+.2f}%)")
            assert rec["ns_per_iter"] <= baseline * 1.05 or delta <= 3.0, (
                f"device hop regressed to {rec['ns_per_iter']:.2f} ns "
                f"({percent:+.2f}% vs PR 9 baseline {baseline:.2f} ns) — "
                "over both the 5% and the 3 ns budget"
            )

with open(path, "w") as fh:
    for rec_id in order:
        fh.write(json.dumps(records[rec_id]) + "\n")
    for rec in derived:
        fh.write(json.dumps(rec) + "\n")
EOF

echo "wrote $(wc -l <"$out") bench records to $out"

# The cross-PR trajectory: every committed BENCH_pr*.json plus this run,
# with its own gate on core/device_hop_ns drifting upward across PRs.
scripts/bench_trend.sh "$out"
