#!/usr/bin/env bash
# Benchmark smoke run: exercises every perf Criterion group and writes a
# JSON-lines summary — one {"id", "ns_per_iter", "iters"} object per
# bench — for the cross-PR perf trajectory (BENCH_pr1.json et al.).
# PR 2 adds the parallel-sweep ids (sweep/registry_100k_{1,N}thread) and
# netsim/events_per_sec alongside the PR 1 set. PR 4 adds the
# observability pair: the obs_overhead bench runs twice — default
# features (instrumented) and --no-default-features (no-op) — and the
# derived obs/overhead_device_hop record reports the enabled-vs-disabled
# delta in ns/packet and percent (budget: <= 5%). PR 5 adds the churn
# trio (churn/delta_apply_ns, churn/policy_recompile_ns,
# churn/convergence_virtual_ms) and derives
# churn/delta_vs_recompile_ratio, asserting the incremental path beats a
# full recompile by >= 50x.
#
# Usage:
#   scripts/bench_smoke.sh [OUTPUT]      # quick (~20x shorter) run
#   BENCH_FULL=1 scripts/bench_smoke.sh  # full-length measurement
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr5.json}"
# cargo runs bench binaries from the package dir, so anchor relative
# output paths to the workspace root.
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
rm -f "$out"

quick_env=(BENCH_QUICK=1)
if [ "${BENCH_FULL:-0}" = "1" ]; then
  quick_env=()
fi

env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench perf
env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench obs_overhead
env "${quick_env[@]}" BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench obs_overhead --no-default-features

# Derive the obs overhead record from the enabled/disabled pair.
python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
records = {}
with open(path) as fh:
    for line in fh:
        line = line.strip()
        if line:
            rec = json.loads(line)
            records[rec["id"]] = rec

for metric in ("device_hop", "netsim_event"):
    enabled = records.get(f"obs/{metric}_enabled")
    disabled = records.get(f"obs/{metric}_disabled")
    if not enabled or not disabled:
        continue
    delta = enabled["ns_per_iter"] - disabled["ns_per_iter"]
    percent = 100.0 * delta / disabled["ns_per_iter"] if disabled["ns_per_iter"] else 0.0
    rec = {
        "id": f"obs/overhead_{metric}",
        "ns_per_iter": round(delta, 3),
        "iters": enabled["iters"],
        "enabled_ns": enabled["ns_per_iter"],
        "disabled_ns": disabled["ns_per_iter"],
        "percent": round(percent, 2),
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(rec) + "\n")
    print(f"obs overhead {metric}: {delta:+.2f} ns/iter ({percent:+.2f}%)")

# Derive the churn delta-vs-recompile ratio (acceptance: >= 50x).
apply = records.get("churn/delta_apply_ns")
recompile = records.get("churn/policy_recompile_ns")
if apply and recompile:
    ratio = recompile["ns_per_iter"] / apply["ns_per_iter"] if apply["ns_per_iter"] else 0.0
    rec = {
        "id": "churn/delta_vs_recompile_ratio",
        "ns_per_iter": round(ratio, 1),
        "iters": apply["iters"],
        "delta_apply_ns": apply["ns_per_iter"],
        "policy_recompile_ns": recompile["ns_per_iter"],
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(rec) + "\n")
    print(f"churn delta vs recompile: {ratio:.1f}x")
    assert ratio >= 50.0, f"incremental delta only {ratio:.1f}x faster than recompile"
EOF

echo "wrote $(wc -l <"$out") bench records to $out"
