#!/usr/bin/env bash
# Benchmark smoke run: exercises every perf Criterion group and writes a
# JSON-lines summary — one {"id", "ns_per_iter", "iters"} object per
# bench — for the cross-PR perf trajectory (BENCH_pr1.json et al.).
# PR 2 adds the parallel-sweep ids (sweep/registry_100k_{1,N}thread) and
# netsim/events_per_sec alongside the PR 1 set.
#
# Usage:
#   scripts/bench_smoke.sh [OUTPUT]      # quick (~20x shorter) run
#   BENCH_FULL=1 scripts/bench_smoke.sh  # full-length measurement
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr2.json}"
# cargo runs bench binaries from the package dir, so anchor relative
# output paths to the workspace root.
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
rm -f "$out"

if [ "${BENCH_FULL:-0}" = "1" ]; then
  BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench perf
else
  BENCH_QUICK=1 BENCH_JSON="$out" cargo bench -q -p tspu-bench --bench perf
fi

echo "wrote $(wc -l <"$out") bench records to $out"
