//! Evaluates every §8 circumvention strategy against every blocking
//! mechanism, on a symmetric-only path and on a path with an extra
//! upstream-only device.
//!
//! ```sh
//! cargo run --release --example circumvention_lab
//! ```

use tspu_registry::Universe;

fn main() {
    let universe = Universe::generate(2022);
    println!("evaluating {} strategies — this replays full TLS fetches per cell\n", tspu_circumvent::all_strategies().len());
    let rows = tspu_circumvent::evaluate_matrix(&universe);

    println!(
        "{:<38} {:<7} {:<8} {:<10} +upstream-only",
        "strategy", "side", "target", "sym-only"
    );
    println!("{}", "-".repeat(80));
    for row in rows {
        for (label, sym, upstream) in &row.outcomes {
            println!(
                "{:<38} {:<7} {:<8} {:<10} {}",
                row.strategy,
                if row.server_side { "server" } else { "client" },
                label,
                if *sym { "EVADES" } else { "blocked" },
                if *upstream { "EVADES" } else { "blocked" },
            );
        }
    }
    println!("\nreadings (paper §8):");
    println!(" * the split handshake frees SNI-I sites but not SNI-IV's backup filter;");
    println!(" * window/segmentation/fragmentation strategies defeat SNI inspection");
    println!("   everywhere, because the TSPU does not reassemble TCP or IP;");
    println!(" * TTL-limited decoys are mitigated — the inspection window covers");
    println!("   packets later in the session;");
    println!(" * QUIC blocking keys on version 1 only.");
}
