//! Replays the February–March 2022 policy timeline against one flow shape
//! and reports what a Twitter CDN fetch experienced on each date: open,
//! hard-throttled (SNI-III at ~650 B/s), then RST-blocked with the QUIC
//! filter on (the March 4 transition, §5.2).
//!
//! The download is driven as a constant offered load (a TCP sender with
//! retransmission keeps offering data until it is delivered), so the
//! policer's goodput is directly observable.
//!
//! ```sh
//! cargo run --release --example throttling_timeline
//! ```

use std::time::Duration;

use tspu_measure::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use tspu_registry::{PolicyTimeline, Universe};
use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

fn main() {
    let universe = Universe::generate(2022);
    let timeline = PolicyTimeline::new(&universe);

    let dates = [
        (20u32, "2022-01-21 (before the escalation)"),
        (55, "2022-02-25 (war began, blocks expanding)"),
        (58, "2022-02-28 (hard throttling window)"),
        (63, "2022-03-05 (throttling replaced by RST; QUIC filter on)"),
    ];

    for (day_number, label) in dates {
        let epoch = timeline.epoch(day_number);
        let mut lab = VantageLab::builder().universe(&universe).throttle_active(epoch.throttle_active).quic_filter(epoch.quic_filter).table1().build();
        if day_number < tspu_registry::day::MAR_4 {
            // Before Mar 4 the social-media domains were not RST-blocked:
            // before Feb 26 they were simply open; Feb 26 – Mar 4 they
            // were throttle-listed only.
            lab.policy.update(|p| {
                for d in ["twitter.com", "t.co", "twimg.com", "facebook.com", "instagram.com", "fbcdn.net"] {
                    p.sni_rst.remove(d);
                    p.sni_backup.remove(d);
                }
            });
        }

        // Handshake + ClientHello, then a 60 s constant offered load of
        // 1460-byte segments from the CDN side (10 per second).
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 43_210 };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps = handshake_prefix();
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("twimg.com").build()),
        );
        for _ in 0..600 {
            let mut step =
                ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0x7a; 1460]);
            step.wait_before = Duration::from_millis(100);
            steps.push(step);
        }
        let result = run_script(&mut lab.net, local, remote, &steps);

        let got_rst = result.at_local.iter().any(|p| p.is_rst_ack);
        let bytes: usize = result.at_local.iter().map(|p| p.payload_len).sum();
        let offered = 600 * 1460;
        let duration = match (result.at_local.first(), result.at_local.last()) {
            (Some(first), Some(last)) => (last.time - first.time).as_secs_f64().max(1.0),
            _ => 1.0,
        };
        let goodput = bytes as f64 / duration;
        let verdict = if got_rst {
            "RST-blocked (SNI-I) — the download never starts".to_string()
        } else if bytes * 2 < offered {
            format!(
                "THROTTLED: {bytes} of {offered} offered bytes delivered = {goodput:.0} B/s (paper: 600-700 B/s)"
            )
        } else {
            format!("open: all {bytes} bytes delivered")
        };
        println!("{label}\n  twimg.com download: {verdict}");
        println!(
            "  central policy: throttle={} quic_filter={}\n",
            epoch.throttle_active, epoch.quic_filter
        );
    }
    println!("paper (§5.2): the Feb 26 throttle polices flows to ~600-700 B/s; on");
    println!("March 4 the affected domains moved to RST blocking and QUIC died.");
}
