//! Quickstart: build the paper's measurement lab, make two HTTPS requests
//! from a Russian vantage point, and watch the TSPU interfere with one.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tspu_registry::Universe;
use tspu_stack::{ClientOutcome, ServerApp, TcpClient, TcpClientConfig};
use tspu_topology::VantageLab;
use tspu_wire::tls::ClientHelloBuilder;

fn main() {
    // A deterministic domain universe (blocklists, registry, categories)
    // and the Fig. 1 topology: three residential vantage points with TSPU
    // devices on their paths, measurement machines outside Russia.
    let universe = Universe::generate(2022);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();

    // The US measurement machine serves HTTPS for any SNI.
    lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));

    for (domain, port) in [("twitter.com", 40_001u16), ("wikipedia.org", 40_002)] {
        let (host, addr, v_name, v_city) = {
            let vantage = lab.vantage("ER-Telecom");
            (vantage.host, vantage.addr, vantage.name, vantage.city)
        };
        let hello = ClientHelloBuilder::new(domain).build();
        let (app, report, syn) =
            TcpClient::start(TcpClientConfig::new(addr, port, lab.us_main_addr, 443, hello));
        lab.net.set_app(host, Box::new(app));
        lab.net.send_from(host, syn);
        lab.net.run_until_idle();

        let outcome = report.outcome();
        println!(
            "https://{domain}/ from {v_name} ({v_city}): {}",
            match outcome {
                ClientOutcome::GotData => "page loaded".to_string(),
                ClientOutcome::Reset =>
                    "connection RESET — the TSPU rewrote the server's response to RST/ACK (SNI-I)".to_string(),
                ClientOutcome::Silent => "silence — packets are being dropped".to_string(),
                ClientOutcome::NoHandshake => "no handshake".to_string(),
            }
        );
    }

    // Device-side view: the symmetric TSPU on this vantage's path.
    let stats = lab.net.middlebox(lab.vantage("ER-Telecom").sym_device).stats();
    println!(
        "\nTSPU device counters: {} packets seen, {} SNI-I triggers, {} rewritten",
        stats.packets_seen, stats.triggers_sni1, stats.packets_rewritten
    );
}
