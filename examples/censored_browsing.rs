//! What browsing from a Russian residential connection looks like: DNS
//! through the ISP's censoring resolver, HTTPS through the TSPU, and a
//! QUIC attempt — across several sites and all three vantage ISPs.
//!
//! ```sh
//! cargo run --example censored_browsing
//! ```

use tspu_registry::Universe;
use tspu_stack::{
    ClientOutcome, PortBehavior, QuicClient, ServerApp, ServerPort, TcpClient, TcpClientConfig,
};
use tspu_topology::VantageLab;
use tspu_wire::quic::QuicVersion;
use tspu_wire::tls::ClientHelloBuilder;

fn main() {
    let universe = Universe::generate(2022);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();

    // Each ISP runs a blockpage web server; DNS-censored sites land there.
    let mut blockpage_hosts = std::collections::HashMap::new();
    for resolver in &lab.resolvers {
        let addr = resolver.blockpage_addr();
        let page = format!(
            "<html><body><h1>Доступ ограничен</h1>Access restricted per the \
             registry of banned sites ({}).</body></html>",
            resolver.isp()
        );
        let app = ServerApp::new(addr)
            .with_port(ServerPort::new(80, tspu_stack::PortBehavior::Respond(page.into_bytes())));
        let host = lab.net.add_host_with_app(addr, Box::new(app));
        blockpage_hosts.insert(resolver.isp().to_string(), host);
    }
    // Blockpages are reachable from every vantage (inside the ISP).
    for vantage in &lab.vantages {
        for &bp in blockpage_hosts.values() {
            lab.net.set_route_symmetric(vantage.host, bp, tspu_netsim::Route::direct());
        }
    }
    // Sites serve a 20 kB page, so partial transfers (SNI-II's delayed
    // drop) are distinguishable from full loads.
    let page = 20_000usize;
    let site_app = |addr| {
        Box::new(ServerApp::new(addr).with_port(ServerPort::new(443, PortBehavior::TlsServerPage(page))))
    };
    lab.net.set_app(lab.us_main, site_app(lab.us_main_addr));

    let sites = [
        "twitter.com",       // RST-blocked + backup filter
        "meduza.io",         // RST-blocked news
        "play.google.com",   // out-registry delayed drop
        "wikipedia.org",     // untouched
    ];

    let mut port = 41_000u16;
    for vantage_name in ["Rostelecom", "ER-Telecom", "OBIT"] {
        println!("=== browsing from {vantage_name} ===");
        // One site this ISP's resolver blockpages (an old registry entry).
        let dns_blocked: String = {
            let resolver = lab.resolvers.iter().find(|r| r.isp() == vantage_name).unwrap();
            universe
                .registry_sample
                .iter()
                .find(|d| resolver.lists(&d.name))
                .map(|d| d.name.clone())
                .unwrap_or_else(|| "registry-entry.ru".into())
        };
        let mut sites: Vec<&str> = sites.to_vec();
        sites.push(&dns_blocked);
        for site in sites {
            port += 1;
            // Step 1: DNS via the ISP resolver (the decentralized layer).
            let resolver = lab
                .resolvers
                .iter()
                .find(|r| r.isp() == vantage_name)
                .expect("resolver");
            let resolution = resolver.resolve(site, lab.us_main_addr);
            if resolution.is_blocked() {
                // The browser follows the poisoned A record and gets the
                // ISP's blockpage over plain HTTP.
                let bp_host = blockpage_hosts[vantage_name];
                let (v_host, v_addr) = {
                    let v = lab.vantage(vantage_name);
                    (v.host, v.addr)
                };
                let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
                    v_addr,
                    port,
                    resolution.addr(),
                    80,
                    b"GET / HTTP/1.1\r\nHost: site\r\n\r\n".to_vec(),
                ));
                lab.net.set_app(v_host, Box::new(app));
                lab.net.send_from(v_host, syn);
                lab.net.run_until_idle();
                let _ = bp_host;
                let body = String::from_utf8_lossy(&report.read().data).to_string();
                println!(
                    "  {site}: DNS -> {} -> blockpage: {:?}",
                    resolution.addr(),
                    body.chars().take(40).collect::<String>()
                );
                continue;
            }
            // Step 2: HTTPS through the TSPU.
            let vantage = lab.vantage(vantage_name);
            let (host, addr) = (vantage.host, vantage.addr);
            let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
                addr,
                port,
                resolution.addr(),
                443,
                ClientHelloBuilder::new(site).build(),
            ));
            lab.net.set_app(host, Box::new(app));
            lab.net.send_from(host, syn);
            lab.net.run_until_idle();
            let note = match report.outcome() {
                ClientOutcome::GotData if report.read().bytes_received < page => format!(
                    "stalls mid-transfer: {} of {page} bytes, then silence (SNI-II delayed drop)",
                    report.read().bytes_received
                ),
                ClientOutcome::GotData => "OK".to_string(),
                ClientOutcome::Reset => "RST by TSPU (SNI-I)".to_string(),
                ClientOutcome::Silent => {
                    format!("silently dropped after {} packets (SNI-II/IV)", report.read().data_segments)
                }
                ClientOutcome::NoHandshake => "unreachable".to_string(),
            };
            println!("  {site}: DNS ok, TLS -> {note}");
        }

        // Step 3: HTTP/3. The browser falls back to TCP when QUIC dies.
        port += 1;
        let vantage = lab.vantage(vantage_name);
        let (host, addr) = (vantage.host, vantage.addr);
        lab.net.set_app(
            lab.us_main,
            Box::new(ServerApp::new(lab.us_main_addr).with_udp_echo(443)),
        );
        let (app, replies, packets) =
            QuicClient::start(addr, port, lab.us_main_addr, QuicVersion::V1, 2);
        lab.net.set_app(host, Box::new(app));
        for (_, packet) in packets {
            lab.net.send_from(host, packet);
        }
        lab.net.run_until_idle();
        println!(
            "  QUIC v1 to port 443: {} of 3 datagrams answered{}",
            replies.get(),
            if replies.get() == 0 { " — HTTP/3 is blocked (Mar 4, 2022 filter)" } else { "" }
        );
        lab.net.set_app(lab.us_main, site_app(lab.us_main_addr));
        println!();
    }

    println!("note the uniformity: the same sites fail the same way at all three ISPs —");
    println!("that uniformity is how the paper attributes blocking to the TSPU (§5.1).");
}
