//! The whole paper in one run: a miniature version of the full
//! measurement campaign — **how** the TSPU blocks (behaviors, state
//! machine), **what** it blocks (domains), and **where** it sits
//! (localization, country scan) — printed as a narrative.
//!
//! This is the "read the paper in 60 seconds of CPU" example; the
//! `experiments` bench target regenerates each artifact individually and
//! at larger scale.
//!
//! ```sh
//! cargo run --release --example paper_pipeline
//! ```

use tspu_measure::behaviors::{classify_behavior, ObservedBehavior};
use tspu_measure::harness::{handshake_prefix, ProbeSide, ScriptEnd, ScriptStep};
use tspu_measure::sweep::{RunOpts, ScanPool};
use tspu_measure::{domains, echo, fragscan, timeouts, LocalizeSpec};
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, Runet, RunetConfig, VantageLab};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

fn main() {
    println!("════════ reproducing 'TSPU: Russia's Decentralized Censorship System' ════════\n");
    let universe = Universe::generate(2022);

    // ───────────────────────── §5 HOW does the TSPU block? ─────────────────────────
    println!("§5 HOW — probing from the ER-Telecom vantage point:");
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    for (domain, note) in [
        ("meduza.io", "news site"),
        ("play.google.com", "out-registry Google service"),
        ("twitter.com", "social media (backup-filtered)"),
        ("wikipedia.org", "control"),
    ] {
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 20_000 + domain.len() as u16 };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let behavior = classify_behavior(
            &mut lab.net,
            local,
            remote,
            &handshake_prefix(),
            ClientHelloBuilder::new(domain).build(),
        );
        let name = match behavior {
            ObservedBehavior::RstAck => "SNI-I: response rewritten to RST/ACK",
            ObservedBehavior::DelayedDrop(n) => {
                println!("  {domain:<18}({note}): SNI-II: {n} packets pass, then symmetric drops");
                continue;
            }
            ObservedBehavior::FullDrop => "SNI-IV: everything dropped",
            ObservedBehavior::Throttled => "SNI-III: throttled",
            ObservedBehavior::Pass => "no interference",
        };
        println!("  {domain:<18}({note}): {name}");
    }

    // The split handshake flips SNI-I off but arms the backup.
    let vantage = lab.vantage("ER-Telecom");
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 21_000 };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let split = vec![
        ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
        ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
    ];
    let green = classify_behavior(
        &mut lab.net,
        local,
        remote,
        &split,
        ClientHelloBuilder::new("meduza.io").build(),
    );
    println!("  split handshake + meduza.io: {green:?} (a Fig. 4 'green' sequence)");

    // State timeouts, measured black-box.
    println!("\n§5.3 the connection tracker's timeouts (binary-searched, Fig. 5):");
    for (row, label) in timeouts::table2_state_rows().iter().zip(["SYN-SENT", "SYN-RCVD", "ESTABLISHED"]) {
        let measured = timeouts::measure_table2_row(&mut lab, row, 25_000);
        println!("  {label:<12} {:>3?} s (paper: {} s)", measured.unwrap_or(0), row.paper_timeout);
    }

    // ───────────────────────── §6 WHAT does it block? ─────────────────────────
    println!("\n§6 WHAT — testing 400 registry-sample domains + anchors:");
    let names: Vec<&str> = universe
        .registry_sample
        .iter()
        .take(400)
        .map(|d| d.name.as_str())
        .collect();
    let campaign = domains::run_campaign(&mut lab, names);
    let tspu = campaign.tspu_blocked();
    println!("  TSPU blocks {}/400 uniformly; resolver coverage differs per ISP:", tspu.len());
    for (isp, blocked) in &campaign.isp_blocked {
        println!("    {isp:<12} resolver blockpages {:>3} of them", blocked.len());
    }

    // ───────────────────────── §7 WHERE does it block? ─────────────────────────
    println!("\n§7 WHERE — TTL localization from the vantage points:");
    let policy = policy_from_universe(&universe, false, true);
    let pool = ScanPool::from_env();
    for name in ["Rostelecom", "ER-Telecom", "OBIT"] {
        let found = LocalizeSpec::symmetric(policy.clone(), name)
            .port_base(26_000)
            .run(&pool, &RunOpts::quick())
            .first();
        let upstream = LocalizeSpec::upstream(policy.clone(), name)
            .port_base(27_000)
            .run(&pool, &RunOpts::quick())
            .devices;
        println!(
            "  {name:<12} symmetric device after hop {}, {} upstream-only device(s)",
            found.map(|d| d.after_hop).unwrap_or(0),
            upstream.len()
        );
    }

    println!("\n§7.2 remote measurements over a synthetic RuNet:");
    let config = RunetConfig { scale: 0.0015, ..RunetConfig::default() };
    let mut net = Runet::generate(&universe, config);
    println!(
        "  generated {} endpoints in {} ASes ({} TSPU devices deployed)",
        net.endpoints.len(),
        net.ases.len(),
        net.devices.len()
    );
    let (rows, _, ases_positive) = fragscan::run_port_scan(&mut net, 3);
    let (total, positive) = rows.iter().fold((0, 0), |(t, p), r| (t + r.endpoints, p + r.positive));
    println!(
        "  fragmentation fingerprint (45 vs 46): {positive}/{total} sampled endpoints positive ({:.1}%), {ases_positive} ASes",
        100.0 * positive as f64 / total.max(1) as f64
    );
    let target = net
        .echo_servers()
        .find(|e| e.behind_upstream_only && !e.behind_symmetric)
        .map(|e| e.addr);
    if let Some(target) = target {
        let result = echo::echo_measurement(&mut net, target, 443);
        println!(
            "  echo technique on an upstream-only-covered server: control {}/20, trigger {}/20",
            result.control_received, result.trigger_received
        );
    }

    println!("\n(regenerate every table and figure: cargo bench -p tspu-bench --bench experiments)");
}
