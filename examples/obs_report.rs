//! Campaign observability report: run a large registry sweep with the
//! metrics registry and virtual-time tracer on, print the campaign-level
//! report (verdict tally, per-worker pool utilization, top device
//! counters, virtual scenario-latency histogram), and write the sampled
//! span trace as Chrome-trace JSON (loadable in Perfetto or
//! `chrome://tracing`) plus the full metric snapshot as JSON.
//!
//! ```sh
//! cargo run --release --example obs_report                 # 100k domains
//! TSPU_OBS_DOMAINS=5000 cargo run --release --example obs_report
//! TSPU_THREADS=1 cargo run --release --example obs_report  # same snapshot bytes
//! ```
//!
//! The snapshot (and therefore `obs_snapshot.json` / `trace.json`) is
//! byte-identical at every `TSPU_THREADS` setting: spans carry simulated
//! time, scenario indices, and nothing wall-clock. Only the pool report
//! printed to stdout is timing-dependent.

use std::fs::File;
use std::io::BufWriter;

use tspu_measure::domains::DomainVerdict;
use tspu_measure::{RunOpts, ScanPool, SweepSpec};
use tspu_registry::Universe;

/// Trace one scenario in a thousand: a 100k-domain campaign keeps ~100
/// traced scenarios — readable in Perfetto, megabytes not gigabytes.
const TRACE_EVERY: usize = 1000;

fn main() {
    let count: usize = std::env::var("TSPU_OBS_DOMAINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    // The campaign list: the universe's real domains (Tranco anchors,
    // registry sample, blocklists) padded with unlisted filler to the
    // requested size, exactly like a wide §6 scan list.
    let universe = Universe::generate(3);
    let mut domains: Vec<String> =
        universe.all_domains().map(|d| d.name.clone()).take(count).collect();
    for i in domains.len()..count {
        domains.push(format!("filler-{i}.example"));
    }

    let pool = ScanPool::from_env();
    let spec = SweepSpec::from_universe(&universe, domains);
    println!(
        "sweeping {} domains on {} threads (tracing 1/{TRACE_EVERY} scenarios)...",
        spec.len(),
        pool.threads()
    );
    let observed = spec.run(&pool, &RunOpts::sampled(TRACE_EVERY));

    // --- Verdict tally -------------------------------------------------
    let mut tally = [0usize; 5];
    for verdict in &observed.verdicts {
        let slot = match verdict {
            DomainVerdict::Open => 0,
            DomainVerdict::Sni1 => 1,
            DomainVerdict::Sni2 => 2,
            DomainVerdict::Sni4 => 3,
            DomainVerdict::Throttled => 4,
        };
        tally[slot] += 1;
    }
    println!(
        "\nverdicts: {} open, {} SNI-I, {} SNI-II, {} SNI-IV, {} throttled",
        tally[0], tally[1], tally[2], tally[3], tally[4]
    );

    // --- Pool report (wall clock — the nondeterministic half) ----------
    println!("\n{}", observed.report.as_ref().expect("report requested").summary());

    // --- Snapshot highlights (deterministic) ---------------------------
    let snapshot = observed.snapshot.as_ref().expect("observed run");
    println!("snapshot: {} metrics, {} spans", snapshot.metrics().len(), snapshot.spans().len());
    let mut counters = snapshot.moved_counters();
    counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("top counters:");
    for (name, value) in counters.iter().take(12) {
        println!("  {value:>12}  {name}");
    }
    if let Some(hist) = snapshot.histogram("sweep.scenario_us") {
        println!(
            "virtual scenario duration: min {} us, p50 {} us, p99 {} us, max {} us",
            hist.min().unwrap_or(0),
            hist.quantile_lower(0.50),
            hist.quantile_lower(0.99),
            hist.max().unwrap_or(0),
        );
    }

    // --- Artifacts -----------------------------------------------------
    let trace_path = std::env::var("TSPU_TRACE_OUT").unwrap_or_else(|_| "trace.json".into());
    let snap_path =
        std::env::var("TSPU_SNAPSHOT_OUT").unwrap_or_else(|_| "obs_snapshot.json".into());
    let om_path =
        std::env::var("TSPU_OPENMETRICS_OUT").unwrap_or_else(|_| "metrics.om".into());
    let trace = File::create(&trace_path).expect("create trace file");
    snapshot.write_chrome_trace(BufWriter::new(trace)).expect("write chrome trace");
    std::fs::write(&snap_path, snapshot.to_json()).expect("write snapshot json");
    std::fs::write(&om_path, snapshot.to_openmetrics()).expect("write openmetrics");
    println!(
        "\nwrote {trace_path} ({} spans), {snap_path}, and {om_path}",
        snapshot.spans().len()
    );
    println!("snapshot fingerprint: {:016x}", fingerprint(&snapshot.to_json()));
}

/// FNV-1a over the snapshot JSON — a quick way to eyeball byte-identity
/// across `TSPU_THREADS` settings without diffing files.
fn fingerprint(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
