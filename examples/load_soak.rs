//! Million-flow soak: a full ISP subscriber population — Zipf domain
//! popularity over a 100k-domain universe, diurnal arrival curve,
//! open/closed-loop client mix — driven through one TSPU device with a
//! sharded million-entry flow table.
//!
//! Prints the load report and writes `load_report.json` (load counters +
//! per-shard occupancy + the steady-state latency histogram, merged as an
//! obs snapshot).
//!
//! ```sh
//! cargo run --release --example load_soak            # 1M flows
//! TSPU_LOAD_FLOWS=100000 cargo run --release --example load_soak
//! ```

use std::time::Duration;

use tspu_load::gen::LoadProfile;
use tspu_load::soak::{build_lab, SoakConfig};

fn main() {
    let flows: usize = std::env::var("TSPU_LOAD_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);

    let config = SoakConfig {
        profile: LoadProfile {
            flows,
            clients: 64,
            universe_domains: 100_000,
            span: Duration::from_secs(240),
            ..LoadProfile::default()
        },
        flow_capacity: 1_048_576,
        shards: Some(16),
        slice: Duration::from_millis(200),
    };

    println!("building lab: {flows} flows, 64 clients, 100k domains, 16-shard conntrack…");
    let lab = build_lab(config);
    println!(
        "universe blocked fraction: {:.1}% — driving population…",
        lab.blocked_universe_fraction * 100.0
    );
    let report = lab.run();

    let s = &report.stats;
    println!();
    println!("== load soak report ==");
    println!("flows        started {} / completed {}", s.flows_started, s.flows_completed);
    println!(
        "outcomes     {} fetched data, {} reset by TSPU, {} oracle mismatches",
        s.got_data, s.resets, s.oracle_mismatches
    );
    println!("mix          {} open-loop, {} closed-loop", s.open_loop_flows, s.closed_loop_flows);
    println!("events       {} scheduler events, {:.1}s wall", report.events, report.wall_seconds);
    println!("throughput   {:.0} packets/sec sustained", report.sustained_pps);
    println!(
        "latency      p50 {} ns/event, p99 {} ns, p999 {} ns (steady state)",
        report.p50_event_ns, report.p99_event_ns, report.p999_event_ns
    );
    println!(
        "conntrack    peak {} tracked flows, {:.0} bytes/flow, {} gc probes",
        report.peak_tracked_flows, report.bytes_per_flow, report.gc_probes
    );
    print!("shards       occupancy");
    for len in &report.shard_lens {
        print!(" {len}");
    }
    println!();
    println!(
        "gc bound     {} (≤ {} probes per device packet)",
        if report.gc_within_budget() { "OK" } else { "EXCEEDED" },
        tspu_core::conntrack::GC_PROBE_BUDGET
    );

    let json = report.obs_snapshot().to_json();
    std::fs::write("load_report.json", &json).expect("write load_report.json");
    println!("\nwrote load_report.json ({} bytes)", json.len());
}
