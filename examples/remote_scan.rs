//! The remote measurement campaign in miniature: generate a synthetic
//! RuNet, run the fragmentation fingerprint scan from outside the
//! country, localize devices with TTL-limited fragments, and print the
//! per-port and hops-from-destination results (Figs. 9 and 12).
//!
//! ```sh
//! cargo run --release --example remote_scan
//! ```

use std::collections::HashMap;

use tspu_measure::{fragscan, traceroute};
use tspu_registry::Universe;
use tspu_topology::{Runet, RunetConfig};

fn main() {
    let universe = Universe::generate(2022);
    let config = RunetConfig { scale: 0.001, ..RunetConfig::default() };
    let mut net = Runet::generate(&universe, config);
    println!(
        "synthetic RuNet: {} endpoints, {} ASes (scale {} of the paper's 4M)\n",
        net.endpoints.len(),
        net.ases.len(),
        config.scale
    );

    // Fig. 9: fingerprint scan by port.
    let (rows, ases_seen, ases_positive) = fragscan::run_port_scan(&mut net, 1);
    println!("port    endpoints  positive  %");
    let (mut total, mut positive) = (0, 0);
    for row in &rows {
        total += row.endpoints;
        positive += row.positive;
        println!("{:<8}{:<11}{:<10}{:.1}", row.port, row.endpoints, row.positive, row.percent());
    }
    println!(
        "total: {positive}/{total} = {:.1}% endpoints behind a TSPU (paper: 25.31%); {}/{} ASes\n",
        100.0 * positive as f64 / total.max(1) as f64,
        ases_positive,
        ases_seen
    );

    // Fig. 12: localize a sample of positives.
    let sample: Vec<_> = net
        .endpoints
        .iter()
        .filter(|e| e.behind_symmetric)
        .take(150)
        .cloned()
        .collect();
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    let mut links = Vec::new();
    for (i, e) in sample.iter().enumerate() {
        let sport = 52_000u16.wrapping_add(i as u16 * 3);
        let Some(flip) = fragscan::localize_device_ttl(&mut net, e.addr, e.port, sport, 30) else {
            continue;
        };
        let path_len = net.net.route(net.scanner, e.host).unwrap().steps.len();
        *histogram.entry(path_len + 2 - flip as usize).or_default() += 1;
        let trace = traceroute::traceroute(&mut net, e.addr, e.port, sport.wrapping_add(1), 30);
        if let Some(link) = traceroute::identify_link(&trace, flip) {
            links.push(link);
        }
    }
    println!("device distance from destination (hops):");
    let mut keys: Vec<_> = histogram.keys().copied().collect();
    keys.sort();
    let measured: usize = histogram.values().sum();
    for k in keys {
        println!("  {k:>2}: {:<5} {}", histogram[&k], "#".repeat(histogram[&k] * 50 / measured.max(1)));
    }
    let close: usize = histogram.iter().filter(|(k, _)| **k <= 2).map(|(_, v)| v).sum();
    println!(
        "\nwithin two hops of the endpoint: {:.0}% (paper: >69%)",
        100.0 * close as f64 / measured.max(1) as f64
    );
    println!("unique TSPU links in the sample: {}", traceroute::cluster_links(&links));
}
