//! A fast, deterministic, non-cryptographic hasher for the packet path.
//!
//! The standard library's default `HashMap` hasher (SipHash-1-3) is
//! keyed and DoS-resistant — properties a simulator's per-packet flow
//! lookup does not need and pays ~2-3× lookup latency for. This is the
//! word-at-a-time multiply-rotate scheme used by the Rust compiler's own
//! hash tables ("FxHash"), implemented in-repo because the build is
//! offline. Unkeyed and deterministic: the same map contents iterate the
//! same way in every run, which the simulator's reproducibility relies on.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] as drop-in map types, or
//! [`FxBuildHasher`] with `HashMap::with_hasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the compiler's implementation: a 64-bit value with
/// good bit dispersion (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one 64-bit word, folded with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(bytes[..4].try_into().unwrap())));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"twitter.com"), hash_of(b"twitter.com"));
        assert_ne!(hash_of(b"twitter.com"), hash_of(b"twitter.co"));
    }

    #[test]
    fn word_and_byte_paths_disperse() {
        // Adjacent integers must land far apart (the multiply disperses).
        let a = {
            let mut h = FxHasher::default();
            h.write_u64(1);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write_u64(2);
            h.finish()
        };
        assert!(a.abs_diff(b) > 1 << 32);
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(format!("flow-{i}"), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get("flow-457"), Some(&457));
    }

    #[test]
    fn low_collision_rate_over_flow_like_keys() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..64u64 {
            for p in 0..512u64 {
                let mut h = FxHasher::default();
                h.write_u64(a << 32 | p);
                seen.insert(h.finish());
            }
        }
        assert_eq!(seen.len(), 64 * 512, "distinct keys must not collide");
    }
}
