//! Minimal DNS wire format: A-record queries and responses, enough to run
//! the ISPs' blockpage resolvers (§6.2) at packet level.
//!
//! The paper's resolver measurement "select[s] three local resolvers
//! inside the three RU ISPs, and send[s] queries to them once from the RU
//! vantage points and once from US measurement machines" — plain UDP/53
//! A-lookups, which is exactly the subset implemented here (plus NXDOMAIN
//! responses). Name compression is emitted in the standard answer form
//! (a pointer to the question) and followed when parsing.

use std::net::Ipv4Addr;

use crate::{Error, Result};

/// DNS header length.
pub const HEADER_LEN: usize = 12;
/// QTYPE A.
pub const QTYPE_A: u16 = 1;
/// QCLASS IN.
pub const QCLASS_IN: u16 = 1;
/// RCODE for NXDOMAIN.
pub const RCODE_NXDOMAIN: u8 = 3;

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    pub id: u16,
    pub qname: String,
    pub qtype: u16,
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsResponse {
    pub id: u16,
    pub qname: String,
    pub rcode: u8,
    /// A-record answers, in order.
    pub answers: Vec<Ipv4Addr>,
}

fn push_qname(out: &mut Vec<u8>, name: &str) -> Result<()> {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        if label.len() > 63 {
            return Err(Error::Malformed);
        }
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
    Ok(())
}

fn read_qname(data: &[u8], mut pos: usize) -> Result<(String, usize)> {
    let mut labels = Vec::new();
    let mut jumped_end = None;
    let mut hops = 0;
    loop {
        let len = *data.get(pos).ok_or(Error::Truncated)? as usize;
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            let lo = *data.get(pos + 1).ok_or(Error::Truncated)? as usize;
            let target = ((len & 0x3f) << 8) | lo;
            if jumped_end.is_none() {
                jumped_end = Some(pos + 2);
            }
            pos = target;
            hops += 1;
            if hops > 8 {
                return Err(Error::Malformed);
            }
            continue;
        }
        let label = data.get(pos + 1..pos + 1 + len).ok_or(Error::Truncated)?;
        labels.push(String::from_utf8(label.to_vec()).map_err(|_| Error::Malformed)?);
        pos += 1 + len;
    }
    Ok((labels.join("."), jumped_end.unwrap_or(pos)))
}

impl DnsQuery {
    /// Builds the query bytes (one question, RD set).
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.qname.len() + 6);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&0x0100u16.to_be_bytes()); // RD
        out.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        push_qname(&mut out, &self.qname).expect("valid qname");
        out.extend_from_slice(&self.qtype.to_be_bytes());
        out.extend_from_slice(&QCLASS_IN.to_be_bytes());
        out
    }

    /// Parses a query.
    pub fn parse(data: &[u8]) -> Result<DnsQuery> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        if flags & 0x8000 != 0 {
            return Err(Error::WrongProtocol); // a response, not a query
        }
        let qdcount = u16::from_be_bytes([data[4], data[5]]);
        if qdcount != 1 {
            return Err(Error::Malformed);
        }
        let (qname, pos) = read_qname(data, HEADER_LEN)?;
        let qtype = u16::from_be_bytes([
            *data.get(pos).ok_or(Error::Truncated)?,
            *data.get(pos + 1).ok_or(Error::Truncated)?,
        ]);
        Ok(DnsQuery { id, qname: qname.to_ascii_lowercase(), qtype })
    }
}

impl DnsResponse {
    /// Builds a response to `query` answering with `answers` (empty +
    /// `rcode` = NXDOMAIN/SERVFAIL style).
    pub fn answer(query: &DnsQuery, answers: &[Ipv4Addr]) -> DnsResponse {
        DnsResponse {
            id: query.id,
            qname: query.qname.clone(),
            rcode: 0,
            answers: answers.to_vec(),
        }
    }

    /// Builds an NXDOMAIN response to `query`.
    pub fn nxdomain(query: &DnsQuery) -> DnsResponse {
        DnsResponse { id: query.id, qname: query.qname.clone(), rcode: RCODE_NXDOMAIN, answers: Vec::new() }
    }

    /// Serializes the response (question echoed, answers compressed
    /// against it).
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&(0x8180u16 | u16::from(self.rcode)).to_be_bytes()); // QR|RD|RA + rcode
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        push_qname(&mut out, &self.qname).expect("valid qname");
        out.extend_from_slice(&QTYPE_A.to_be_bytes());
        out.extend_from_slice(&QCLASS_IN.to_be_bytes());
        for addr in &self.answers {
            out.extend_from_slice(&0xc00cu16.to_be_bytes()); // pointer to question name
            out.extend_from_slice(&QTYPE_A.to_be_bytes());
            out.extend_from_slice(&QCLASS_IN.to_be_bytes());
            out.extend_from_slice(&300u32.to_be_bytes()); // TTL
            out.extend_from_slice(&4u16.to_be_bytes());
            out.extend_from_slice(&addr.octets());
        }
        out
    }

    /// Parses a response.
    pub fn parse(data: &[u8]) -> Result<DnsResponse> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        if flags & 0x8000 == 0 {
            return Err(Error::WrongProtocol);
        }
        let rcode = (flags & 0x000f) as u8;
        let qdcount = u16::from_be_bytes([data[4], data[5]]);
        let ancount = u16::from_be_bytes([data[6], data[7]]);
        let mut pos = HEADER_LEN;
        let mut qname = String::new();
        for _ in 0..qdcount {
            let (name, next) = read_qname(data, pos)?;
            qname = name;
            pos = next + 4; // qtype + qclass
        }
        let mut answers = Vec::new();
        for _ in 0..ancount {
            let (_, next) = read_qname(data, pos)?;
            pos = next;
            let rtype = u16::from_be_bytes([
                *data.get(pos).ok_or(Error::Truncated)?,
                *data.get(pos + 1).ok_or(Error::Truncated)?,
            ]);
            let rdlen = u16::from_be_bytes([
                *data.get(pos + 8).ok_or(Error::Truncated)?,
                *data.get(pos + 9).ok_or(Error::Truncated)?,
            ]) as usize;
            let rdata = data.get(pos + 10..pos + 10 + rdlen).ok_or(Error::Truncated)?;
            if rtype == QTYPE_A && rdlen == 4 {
                answers.push(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3]));
            }
            pos += 10 + rdlen;
        }
        Ok(DnsResponse { id, qname: qname.to_ascii_lowercase(), rcode, answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let query = DnsQuery { id: 0x1234, qname: "blocked.example.ru".into(), qtype: QTYPE_A };
        let bytes = query.build();
        assert_eq!(DnsQuery::parse(&bytes).unwrap(), query);
    }

    #[test]
    fn response_roundtrip_with_answers() {
        let query = DnsQuery { id: 7, qname: "site.ru".into(), qtype: QTYPE_A };
        let response = DnsResponse::answer(&query, &[Ipv4Addr::new(10, 10, 10, 10), Ipv4Addr::new(10, 10, 10, 11)]);
        let bytes = response.build();
        let parsed = DnsResponse::parse(&bytes).unwrap();
        assert_eq!(parsed.id, 7);
        assert_eq!(parsed.qname, "site.ru");
        assert_eq!(parsed.rcode, 0);
        assert_eq!(parsed.answers.len(), 2);
        assert_eq!(parsed.answers[0], Ipv4Addr::new(10, 10, 10, 10));
    }

    #[test]
    fn nxdomain_roundtrip() {
        let query = DnsQuery { id: 9, qname: "nosuch.ru".into(), qtype: QTYPE_A };
        let bytes = DnsResponse::nxdomain(&query).build();
        let parsed = DnsResponse::parse(&bytes).unwrap();
        assert_eq!(parsed.rcode, RCODE_NXDOMAIN);
        assert!(parsed.answers.is_empty());
    }

    #[test]
    fn query_parse_rejects_response_bit() {
        let query = DnsQuery { id: 1, qname: "a.ru".into(), qtype: QTYPE_A };
        let bytes = DnsResponse::answer(&query, &[]).build();
        assert_eq!(DnsQuery::parse(&bytes).unwrap_err(), Error::WrongProtocol);
    }

    #[test]
    fn qname_case_normalized() {
        let query = DnsQuery { id: 2, qname: "MiXeD.Ru".into(), qtype: QTYPE_A };
        let parsed = DnsQuery::parse(&query.build()).unwrap();
        assert_eq!(parsed.qname, "mixed.ru");
    }

    #[test]
    fn parse_never_panics_on_garbage() {
        for seed in 0u8..=50 {
            let data: Vec<u8> = (0..40).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let _ = DnsQuery::parse(&data);
            let _ = DnsResponse::parse(&data);
        }
    }

    #[test]
    fn compression_pointer_loops_rejected() {
        // A name that points at itself.
        let mut bytes = DnsQuery { id: 3, qname: "x.ru".into(), qtype: QTYPE_A }.build();
        // Replace qname start with a self-pointer.
        bytes[HEADER_LEN] = 0xc0;
        bytes[HEADER_LEN + 1] = HEADER_LEN as u8;
        assert!(DnsQuery::parse(&bytes).is_err());
    }
}
