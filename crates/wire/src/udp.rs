//! UDP datagram view and representation.
//!
//! QUIC rides on UDP; the TSPU's QUIC filter keys on the UDP destination
//! port (443) and the payload length (≥ 1001 bytes) before it even looks at
//! the QUIC header (paper §5.2).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{Error, Result};

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const LENGTH: core::ops::Range<usize> = 4..6;
    pub const CHECKSUM: core::ops::Range<usize> = 6..8;
}

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A read (and optionally write) view over a UDP datagram buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> UdpDatagram<T> {
        UdpDatagram { buffer }
    }

    /// Wraps a buffer, validating the header and length field.
    pub fn new_checked(buffer: T) -> Result<UdpDatagram<T>> {
        let datagram = Self::new_unchecked(buffer);
        datagram.check_len()?;
        Ok(datagram)
    }

    /// Validates the header and the length field against the buffer.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = self.len_field();
        if len < HEADER_LEN || len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::SRC_PORT.start], d[field::SRC_PORT.start + 1]])
    }

    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::DST_PORT.start], d[field::DST_PORT.start + 1]])
    }

    /// The UDP length field (header + payload).
    pub fn len_field(&self) -> usize {
        let d = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([d[field::LENGTH.start], d[field::LENGTH.start + 1]]))
    }

    /// The datagram payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field().min(self.buffer.as_ref().len())]
    }

    /// Verifies the transport checksum (0 means "no checksum" per RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let d = self.buffer.as_ref();
        let stored = u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]]);
        if stored == 0 {
            return true;
        }
        checksum::pseudo_header_verify(src, dst, 17, d)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    pub fn set_src_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_dst_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_len_field(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Recomputes the transport checksum under the IPv4 pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let mut ck = checksum::pseudo_header_checksum(src, dst, 17, self.buffer.as_ref());
        // RFC 768: a computed zero checksum is transmitted as all-ones.
        if ck == 0 {
            ck = 0xffff;
        }
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }
}

/// An owned representation of a UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

impl UdpRepr {
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> UdpRepr {
        UdpRepr { src_port, dst_port, payload }
    }

    /// Parses a representation out of a validated datagram view.
    pub fn parse<T: AsRef<[u8]>>(datagram: &UdpDatagram<T>) -> Result<UdpRepr> {
        datagram.check_len()?;
        Ok(UdpRepr {
            src_port: datagram.src_port(),
            dst_port: datagram.dst_port(),
            payload: datagram.payload().to_vec(),
        })
    }

    /// Emitted datagram length.
    pub fn datagram_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Builds the datagram bytes, computing the checksum for `src`/`dst`.
    pub fn build(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buffer = vec![0u8; self.datagram_len()];
        buffer[HEADER_LEN..].copy_from_slice(&self.payload);
        let mut datagram = UdpDatagram::new_unchecked(&mut buffer[..]);
        datagram.set_src_port(self.src_port);
        datagram.set_dst_port(self.dst_port);
        datagram.set_len_field(self.datagram_len() as u16);
        datagram.fill_checksum(src, dst);
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);

    #[test]
    fn build_parse_roundtrip() {
        let repr = UdpRepr::new(5353, 443, vec![0xab; 32]);
        let bytes = repr.build(SRC, DST);
        let datagram = UdpDatagram::new_checked(&bytes[..]).unwrap();
        assert!(datagram.verify_checksum(SRC, DST));
        assert_eq!(UdpRepr::parse(&datagram).unwrap(), repr);
    }

    #[test]
    fn zero_checksum_accepted() {
        let repr = UdpRepr::new(1, 2, vec![1, 2, 3]);
        let mut bytes = repr.build(SRC, DST);
        bytes[6] = 0;
        bytes[7] = 0;
        let datagram = UdpDatagram::new_checked(&bytes[..]).unwrap();
        assert!(datagram.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_length_field_past_buffer() {
        let repr = UdpRepr::new(1, 2, vec![0; 4]);
        let mut bytes = repr.build(SRC, DST);
        bytes[4..6].copy_from_slice(&200u16.to_be_bytes());
        assert_eq!(UdpDatagram::new_checked(&bytes[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(UdpDatagram::new_checked(&[0u8; 4][..]).unwrap_err(), Error::Truncated);
    }
}
