//! QUIC long-header prefix, as far as the TSPU inspects it.
//!
//! The paper (§5.2, Fig. 14) shows that the TSPU detects QUIC with a
//! minimal fingerprint: a UDP packet to port 443 with ≥ 1001 bytes of
//! payload whose bytes 1–4 equal the QUIC version-1 value `0x00000001`.
//! Nothing else in the packet matters — not even the long-header bit.
//! Other version values (draft-29 `0xff00001d`, quicping `0xbabababa`)
//! escape the filter.

use crate::{Error, Result};

/// QUIC versions relevant to the paper's evasion discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuicVersion {
    /// RFC 9000 version 1: `0x00000001`. The only version the TSPU blocks.
    V1,
    /// draft-29: `0xff00001d`. Evades the filter (paper §5.2).
    Draft29,
    /// quicping probes: `0xbabababa`. Evades the filter (paper §5.2).
    QuicPing,
    /// Any other 32-bit version value.
    Other(u32),
}

impl QuicVersion {
    /// The wire value of this version.
    pub fn to_u32(self) -> u32 {
        match self {
            QuicVersion::V1 => 0x0000_0001,
            QuicVersion::Draft29 => 0xff00_001d,
            QuicVersion::QuicPing => 0xbaba_baba,
            QuicVersion::Other(v) => v,
        }
    }

    /// Classifies a wire value.
    pub fn from_u32(value: u32) -> QuicVersion {
        match value {
            0x0000_0001 => QuicVersion::V1,
            0xff00_001d => QuicVersion::Draft29,
            0xbaba_baba => QuicVersion::QuicPing,
            other => QuicVersion::Other(other),
        }
    }
}

/// Minimum bytes needed to read the version field (flags byte + version).
pub const MIN_HEADER_LEN: usize = 5;

/// A parsed long-header prefix: just the pieces a censor can see in
/// plaintext before decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuicHeader {
    /// The first byte (header form / fixed bit / packet type).
    pub first_byte: u8,
    /// The 32-bit version field at offset 1.
    pub version: QuicVersion,
}

impl QuicHeader {
    /// Parses the prefix from a UDP payload.
    pub fn parse(payload: &[u8]) -> Result<QuicHeader> {
        if payload.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(QuicHeader {
            first_byte: payload[0],
            version: QuicVersion::from_u32(u32::from_be_bytes([
                payload[1], payload[2], payload[3], payload[4],
            ])),
        })
    }

    /// True when the long-header bit is set (bit 7 of the first byte).
    pub fn is_long_header(&self) -> bool {
        self.first_byte & 0x80 != 0
    }
}

/// Builds a QUIC-Initial-shaped UDP payload of `total_len` bytes carrying
/// `version`. The body past the version field is filler — by the paper's
/// findings the TSPU never looks at it.
pub fn initial_payload(version: QuicVersion, total_len: usize) -> Vec<u8> {
    let mut payload = vec![0xffu8; total_len.max(MIN_HEADER_LEN)];
    payload[0] = 0xc0; // long header, fixed bit, Initial type
    payload[1..5].copy_from_slice(&version.to_u32().to_be_bytes());
    payload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_conversions() {
        for v in [QuicVersion::V1, QuicVersion::Draft29, QuicVersion::QuicPing, QuicVersion::Other(7)] {
            assert_eq!(QuicVersion::from_u32(v.to_u32()), v);
        }
    }

    #[test]
    fn parse_initial() {
        let payload = initial_payload(QuicVersion::V1, 1200);
        let header = QuicHeader::parse(&payload).unwrap();
        assert!(header.is_long_header());
        assert_eq!(header.version, QuicVersion::V1);
    }

    #[test]
    fn parse_rejects_tiny_payload() {
        assert_eq!(QuicHeader::parse(&[0xc0, 0, 0]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn fig14_fingerprint_needs_only_version_bytes() {
        // The paper's minimal fingerprint packet is 0xff filler with the
        // version at offset 1 — even without the long-header bit.
        let mut payload = vec![0xffu8; 1001];
        payload[1..5].copy_from_slice(&1u32.to_be_bytes());
        let header = QuicHeader::parse(&payload).unwrap();
        assert_eq!(header.version, QuicVersion::V1);
    }
}
