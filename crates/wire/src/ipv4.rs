//! IPv4 packet view and representation.
//!
//! The fragmentation fields (identification, DF/MF flags, fragment offset)
//! are first-class here because the TSPU's fragment cache keys on the
//! `(src, dst, ident)` tuple and rewrites the TTL of forwarded fragments
//! (paper §5.3.1, Fig. 3).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{Error, Result};

/// IP protocol numbers used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Icmp,
    Tcp,
    Udp,
    /// Any protocol number we do not model further.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Self {
        match value {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(value: Protocol) -> Self {
        match value {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(other) => other,
        }
    }
}

mod field {
    pub const VER_IHL: usize = 0;
    pub const TOS: usize = 1;
    pub const LENGTH: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const FLG_OFF: core::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: core::ops::Range<usize> = 10..12;
    pub const SRC_ADDR: core::ops::Range<usize> = 12..16;
    pub const DST_ADDR: core::ops::Range<usize> = 16..20;
}

/// Minimum (and, absent options, only) IPv4 header length in bytes.
pub const HEADER_LEN: usize = 20;

/// The "more fragments" flag bit within the flags/offset word.
const FLAG_MF: u16 = 0x2000;
/// The "don't fragment" flag bit within the flags/offset word.
const FLAG_DF: u16 = 0x4000;
/// Mask of the 13-bit fragment offset (in 8-byte units).
const OFFSET_MASK: u16 = 0x1fff;

/// A read (and optionally write) view over an IPv4 packet buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating that the header and total length fit.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validates header length, version, and the total-length field against
    /// the buffer size.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(Error::Malformed);
        }
        let header_len = self.header_len();
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(Error::Malformed);
        }
        let total_len = self.total_len();
        if total_len < header_len || total_len > data.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// Total datagram length in bytes, from the length field.
    pub fn total_len(&self) -> usize {
        let data = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([data[field::LENGTH][0], data[field::LENGTH.start + 1]]))
    }

    /// The identification field shared by all fragments of a datagram.
    pub fn ident(&self) -> u16 {
        let data = self.buffer.as_ref();
        u16::from_be_bytes([data[field::IDENT.start], data[field::IDENT.start + 1]])
    }

    fn flg_off(&self) -> u16 {
        let data = self.buffer.as_ref();
        u16::from_be_bytes([data[field::FLG_OFF.start], data[field::FLG_OFF.start + 1]])
    }

    /// True when the "more fragments" flag is set.
    pub fn more_fragments(&self) -> bool {
        self.flg_off() & FLAG_MF != 0
    }

    /// True when the "don't fragment" flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.flg_off() & FLAG_DF != 0
    }

    /// Fragment offset in bytes (the field stores 8-byte units).
    pub fn frag_offset(&self) -> usize {
        usize::from(self.flg_off() & OFFSET_MASK) * 8
    }

    /// True when this packet is a fragment of a larger datagram, i.e. it has
    /// a non-zero offset or more fragments follow.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() != 0
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        let data = self.buffer.as_ref();
        u16::from_be_bytes([data[field::CHECKSUM.start], data[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let data = self.buffer.as_ref();
        Ipv4Addr::new(
            data[field::SRC_ADDR.start],
            data[field::SRC_ADDR.start + 1],
            data[field::SRC_ADDR.start + 2],
            data[field::SRC_ADDR.start + 3],
        )
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let data = self.buffer.as_ref();
        Ipv4Addr::new(
            data[field::DST_ADDR.start],
            data[field::DST_ADDR.start + 1],
            data[field::DST_ADDR.start + 2],
            data[field::DST_ADDR.start + 3],
        )
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header_len = self.header_len();
        checksum::verify(&self.buffer.as_ref()[..header_len])
    }

    /// The transport payload following the header, bounded by `total_len`.
    pub fn payload(&self) -> &[u8] {
        let header_len = self.header_len();
        let total_len = self.total_len().min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[header_len..total_len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets version 4 and a header length of `HEADER_LEN` (no options).
    pub fn set_default_header(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
        self.buffer.as_mut()[field::TOS] = 0;
    }

    /// Sets the total-length field.
    pub fn set_total_len(&mut self, value: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, value: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    fn set_flg_off(&mut self, value: u16) {
        self.buffer.as_mut()[field::FLG_OFF].copy_from_slice(&value.to_be_bytes());
    }

    /// Sets the "more fragments" flag.
    pub fn set_more_fragments(&mut self, value: bool) {
        let old = u16::from_be_bytes([
            self.buffer.as_ref()[field::FLG_OFF.start],
            self.buffer.as_ref()[field::FLG_OFF.start + 1],
        ]);
        self.set_flg_off(if value { old | FLAG_MF } else { old & !FLAG_MF });
    }

    /// Sets the "don't fragment" flag.
    pub fn set_dont_fragment(&mut self, value: bool) {
        let old = u16::from_be_bytes([
            self.buffer.as_ref()[field::FLG_OFF.start],
            self.buffer.as_ref()[field::FLG_OFF.start + 1],
        ]);
        self.set_flg_off(if value { old | FLAG_DF } else { old & !FLAG_DF });
    }

    /// Sets the fragment offset in bytes; must be a multiple of 8.
    pub fn set_frag_offset(&mut self, bytes: usize) {
        debug_assert_eq!(bytes % 8, 0, "fragment offset must be 8-byte aligned");
        let old = u16::from_be_bytes([
            self.buffer.as_ref()[field::FLG_OFF.start],
            self.buffer.as_ref()[field::FLG_OFF.start + 1],
        ]);
        let units = (bytes / 8) as u16 & OFFSET_MASK;
        self.set_flg_off((old & !OFFSET_MASK) | units);
    }

    /// Sets the TTL. The TSPU rewrites this on buffered fragments.
    pub fn set_ttl(&mut self, value: u8) {
        self.buffer.as_mut()[field::TTL] = value;
    }

    /// Sets the transport protocol.
    pub fn set_protocol(&mut self, value: Protocol) {
        self.buffer.as_mut()[field::PROTOCOL] = value.into();
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(&value.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, value: Ipv4Addr) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(&value.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let header_len = self.header_len();
        let ck = checksum::checksum(&self.buffer.as_ref()[..header_len]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable access to the transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len();
        let total_len = self.total_len().min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[header_len..total_len]
    }
}

/// An owned, high-level representation of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    pub src_addr: Ipv4Addr,
    pub dst_addr: Ipv4Addr,
    pub protocol: Protocol,
    pub ttl: u8,
    pub ident: u16,
    pub dont_fragment: bool,
    pub more_fragments: bool,
    /// Fragment offset in bytes.
    pub frag_offset: usize,
    /// Transport payload length in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// A non-fragmented header template with TTL 64.
    pub fn new(src_addr: Ipv4Addr, dst_addr: Ipv4Addr, protocol: Protocol, payload_len: usize) -> Self {
        Ipv4Repr {
            src_addr,
            dst_addr,
            protocol,
            ttl: 64,
            ident: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            payload_len,
        }
    }

    /// Parses the representation out of a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Result<Ipv4Repr> {
        packet.check_len()?;
        Ok(Ipv4Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            ttl: packet.ttl(),
            ident: packet.ident(),
            dont_fragment: packet.dont_fragment(),
            more_fragments: packet.more_fragments(),
            frag_offset: packet.frag_offset(),
            payload_len: packet.total_len() - packet.header_len(),
        })
    }

    /// Total emitted datagram length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into `packet` and recomputes the checksum. The
    /// caller fills the payload separately (before or after; the header
    /// checksum does not cover it).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        packet.set_default_header();
        packet.set_total_len(self.total_len() as u16);
        packet.set_ident(self.ident);
        // Clear the flags/offset word, then apply.
        packet.set_flg_off(0);
        packet.set_dont_fragment(self.dont_fragment);
        packet.set_more_fragments(self.more_fragments);
        packet.set_frag_offset(self.frag_offset);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }

    /// Builds a full datagram (header + `payload`) as an owned buffer.
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len(), self.payload_len);
        let mut buffer = vec![0u8; self.total_len()];
        buffer[HEADER_LEN..].copy_from_slice(payload);
        let mut packet = Ipv4Packet::new_unchecked(&mut buffer[..]);
        self.emit(&mut packet);
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(10, 1, 2, 3),
            dst_addr: Ipv4Addr::new(203, 0, 113, 9),
            protocol: Protocol::Tcp,
            ttl: 61,
            ident: 0xbeef,
            dont_fragment: true,
            more_fragments: false,
            frag_offset: 0,
            payload_len: 4,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let bytes = repr().build(&[1, 2, 3, 4]);
        let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr());
        assert_eq!(packet.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut r = repr();
        r.dont_fragment = false;
        r.more_fragments = true;
        r.frag_offset = 1480;
        let bytes = r.build(&[9, 9, 9, 9]);
        let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert!(packet.is_fragment());
        assert!(packet.more_fragments());
        assert_eq!(packet.frag_offset(), 1480);
    }

    #[test]
    fn non_fragment_is_not_fragment() {
        let bytes = repr().build(&[0; 4]);
        assert!(!Ipv4Packet::new_checked(&bytes[..]).unwrap().is_fragment());
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = repr().build(&[0; 4]);
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::new_checked(&bytes[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_total_len_past_buffer() {
        let mut bytes = repr().build(&[0; 4]);
        bytes[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Ipv4Packet::new_checked(&bytes[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn ttl_rewrite_preserves_rest() {
        let bytes = repr().build(&[7; 4]);
        let mut copy = bytes.clone();
        let mut packet = Ipv4Packet::new_unchecked(&mut copy[..]);
        packet.set_ttl(3);
        packet.fill_checksum();
        let reparsed = Ipv4Packet::new_checked(&copy[..]).unwrap();
        assert!(reparsed.verify_checksum());
        assert_eq!(reparsed.ttl(), 3);
        assert_eq!(reparsed.src_addr(), Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(reparsed.payload(), &[7; 4]);
    }

    #[test]
    fn protocol_conversions() {
        for (num, proto) in [(1u8, Protocol::Icmp), (6, Protocol::Tcp), (17, Protocol::Udp), (89, Protocol::Other(89))] {
            assert_eq!(Protocol::from(num), proto);
            assert_eq!(u8::from(proto), num);
        }
    }
}
