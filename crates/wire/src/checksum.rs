//! The internet checksum (RFC 1071) and the TCP/UDP pseudo-header sum.

use std::net::Ipv4Addr;

/// Computes the ones-complement sum of `data`, folded to 16 bits, starting
/// from an `initial` partial sum (use 0 when summing a single buffer).
fn ones_complement_sum(initial: u32, data: &[u8]) -> u32 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [odd] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*odd, 0]));
    }
    sum
}

/// Folds a 32-bit partial sum into the final 16-bit internet checksum.
fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Computes the internet checksum over `data`.
///
/// The checksum field inside `data` must be zeroed by the caller before
/// computing, as usual for IP-family protocols.
pub fn checksum(data: &[u8]) -> u16 {
    fold(ones_complement_sum(0, data))
}

/// Verifies that `data` (with its embedded checksum field left in place)
/// sums to zero, i.e. the checksum is valid.
pub fn verify(data: &[u8]) -> bool {
    fold(ones_complement_sum(0, data)) == 0
}

/// Computes the TCP/UDP checksum of `payload` (the full transport header +
/// data) under the IPv4 pseudo-header for `src`/`dst` and `protocol`.
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: &[u8]) -> u16 {
    let mut sum = ones_complement_sum(0, &src.octets());
    sum = ones_complement_sum(sum, &dst.octets());
    sum += u32::from(protocol);
    sum += payload.len() as u32;
    fold(ones_complement_sum(sum, payload))
}

/// Verifies a transport checksum embedded in `payload` under the
/// pseudo-header, returning `true` when valid.
pub fn pseudo_header_verify(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: &[u8]) -> bool {
    pseudo_header_checksum(src, dst, protocol, payload) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Worked example from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Partial sum is 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xff]), checksum(&[0xff, 0x00]));
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x06, 0x00,
                            0x00, 0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[4] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 168, 1, 1);
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&443u16.to_be_bytes());
        seg[2..4].copy_from_slice(&1234u16.to_be_bytes());
        let ck = pseudo_header_checksum(src, dst, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(pseudo_header_verify(src, dst, 6, &seg));
        // A different address (not a src/dst swap — the sum commutes)
        // must break verification.
        assert!(!pseudo_header_verify(src, Ipv4Addr::new(192, 168, 1, 2), 6, &seg));
    }

    #[test]
    fn all_zero_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }
}
