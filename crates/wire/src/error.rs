use std::fmt;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the protocol's header, or a length
    /// field points past the end of the buffer.
    Truncated,
    /// A field holds a value the parser cannot interpret (bad version, bad
    /// header length, unknown mandatory field).
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// The payload does not carry the expected protocol (e.g. asking for a
    /// TLS ClientHello from a record that is not a handshake record).
    WrongProtocol,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::Malformed => write!(f, "malformed field"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::WrongProtocol => write!(f, "unexpected protocol"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire-format operations.
pub type Result<T> = std::result::Result<T, Error>;
