//! TLS ClientHello construction and TSPU-style inspection.
//!
//! The paper establishes (§5.2, Fig. 13) that the TSPU *parses* a
//! ClientHello to locate the SNI extension instead of string-matching whole
//! packets: mutating "type" or "length" fields changes the observed
//! censorship behavior while mutating opaque contents (random, session id,
//! ciphersuite values, other extension bodies) does not. [`extract_sni`]
//! implements exactly such a single-pass parser and reports *where* parsing
//! stopped, which the Fig. 13 fuzzing experiment uses to recover the
//! byte-sensitivity map.
//!
//! [`ClientHelloBuilder`] produces byte-accurate ClientHello records with
//! configurable session id, ciphersuites, extra extensions, and a padding
//! extension — everything the circumvention strategies (§8) manipulate.

use crate::{Error, Result};

/// TLS record content type for handshake records.
pub const CONTENT_TYPE_HANDSHAKE: u8 = 0x16;
/// Handshake message type for ClientHello.
pub const HANDSHAKE_TYPE_CLIENT_HELLO: u8 = 0x01;
/// Extension number for server_name (SNI).
pub const EXT_SERVER_NAME: u16 = 0x0000;
/// Extension number for padding (RFC 7685).
pub const EXT_PADDING: u16 = 0x0015;

/// The stage at which TSPU-style ClientHello parsing stopped.
///
/// Mutations to type/length fields push the parser into one of these
/// failure stages; mutations to opaque contents leave the outcome
/// unchanged. This distinction *is* the Fig. 13 sensitivity map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseStage {
    RecordHeader,
    HandshakeHeader,
    ClientVersion,
    SessionId,
    CipherSuites,
    Compression,
    ExtensionsLength,
    ExtensionHeader,
    SniEntry,
}

/// Outcome of TSPU-style SNI extraction over one TCP segment payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SniOutcome {
    /// A complete ClientHello with this server name.
    Sni(String),
    /// A complete ClientHello without a server_name extension.
    NoSni,
    /// The first record is not a TLS handshake record at all.
    NotTls,
    /// A handshake record whose first message is not a ClientHello.
    NotClientHello,
    /// Structurally invalid or truncated at the given stage. Because the
    /// TSPU does not reassemble TCP streams (§8), a ClientHello split
    /// across segments lands here and never triggers.
    ParseFailure(ParseStage),
}

impl SniOutcome {
    /// The extracted hostname, if any.
    pub fn hostname(&self) -> Option<&str> {
        match self {
            SniOutcome::Sni(name) => Some(name),
            _ => None,
        }
    }
}

/// A cursor over the payload that fails with the current stage on underrun.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes([s[0], s[1]]))
    }

    fn u24(&mut self) -> Option<usize> {
        self.take(3).map(|s| (usize::from(s[0]) << 16) | (usize::from(s[1]) << 8) | usize::from(s[2]))
    }
}

/// Extracts the SNI from a TCP segment payload the way the TSPU does:
/// single pass over the *first* TLS record only, no TCP reassembly.
///
/// Returns [`SniOutcome::NotTls`] when the first bytes are not a plausible
/// handshake record, so prepending an unrelated TLS record (§8's client-side
/// strategy) defeats extraction.
pub fn extract_sni(payload: &[u8]) -> SniOutcome {
    let mut r = Reader::new(payload);

    // Record header: type(1) version(2) length(2).
    let content_type = match r.u8() {
        Some(b) => b,
        None => return SniOutcome::NotTls,
    };
    if content_type != CONTENT_TYPE_HANDSHAKE {
        return SniOutcome::NotTls;
    }
    let record_version = match r.u16() {
        Some(v) => v,
        None => return SniOutcome::ParseFailure(ParseStage::RecordHeader),
    };
    // Accept SSL3.0..TLS1.3 record versions (0x0300..=0x0304), as real DPIs do.
    if !(0x0300..=0x0304).contains(&record_version) {
        return SniOutcome::NotTls;
    }
    let record_len = match r.u16() {
        Some(v) => usize::from(v),
        None => return SniOutcome::ParseFailure(ParseStage::RecordHeader),
    };
    // Inspection is bounded by the record length *and* by what is present
    // in this segment: a too-large record length means the rest of the
    // handshake is in a later segment the TSPU will not join up.
    let body = match r.take(record_len) {
        Some(b) => b,
        None => return SniOutcome::ParseFailure(ParseStage::RecordHeader),
    };

    let mut r = Reader::new(body);
    // Handshake header: type(1) length(3).
    let hs_type = match r.u8() {
        Some(b) => b,
        None => return SniOutcome::ParseFailure(ParseStage::HandshakeHeader),
    };
    if hs_type != HANDSHAKE_TYPE_CLIENT_HELLO {
        return SniOutcome::NotClientHello;
    }
    let hs_len = match r.u24() {
        Some(v) => v,
        None => return SniOutcome::ParseFailure(ParseStage::HandshakeHeader),
    };
    let hello = match r.take(hs_len) {
        Some(b) => b,
        None => return SniOutcome::ParseFailure(ParseStage::HandshakeHeader),
    };

    let mut r = Reader::new(hello);
    // client_version(2) random(32).
    if r.u16().is_none() {
        return SniOutcome::ParseFailure(ParseStage::ClientVersion);
    }
    if r.take(32).is_none() {
        return SniOutcome::ParseFailure(ParseStage::ClientVersion);
    }
    // session_id.
    let sid_len = match r.u8() {
        Some(v) => usize::from(v),
        None => return SniOutcome::ParseFailure(ParseStage::SessionId),
    };
    if r.take(sid_len).is_none() {
        return SniOutcome::ParseFailure(ParseStage::SessionId);
    }
    // cipher_suites.
    let cs_len = match r.u16() {
        Some(v) => usize::from(v),
        None => return SniOutcome::ParseFailure(ParseStage::CipherSuites),
    };
    if cs_len % 2 != 0 || r.take(cs_len).is_none() {
        return SniOutcome::ParseFailure(ParseStage::CipherSuites);
    }
    // compression_methods.
    let comp_len = match r.u8() {
        Some(v) => usize::from(v),
        None => return SniOutcome::ParseFailure(ParseStage::Compression),
    };
    if r.take(comp_len).is_none() {
        return SniOutcome::ParseFailure(ParseStage::Compression);
    }
    // A ClientHello may legally end here (no extensions).
    if r.pos == hello.len() {
        return SniOutcome::NoSni;
    }
    let ext_total = match r.u16() {
        Some(v) => usize::from(v),
        None => return SniOutcome::ParseFailure(ParseStage::ExtensionsLength),
    };
    let exts = match r.take(ext_total) {
        Some(b) => b,
        None => return SniOutcome::ParseFailure(ParseStage::ExtensionsLength),
    };

    // Walk extensions; the TSPU ignores all but server_name (Fig. 13).
    let mut r = Reader::new(exts);
    while r.pos < exts.len() {
        let ext_type = match r.u16() {
            Some(v) => v,
            None => return SniOutcome::ParseFailure(ParseStage::ExtensionHeader),
        };
        let ext_len = match r.u16() {
            Some(v) => usize::from(v),
            None => return SniOutcome::ParseFailure(ParseStage::ExtensionHeader),
        };
        let ext_body = match r.take(ext_len) {
            Some(b) => b,
            None => return SniOutcome::ParseFailure(ParseStage::ExtensionHeader),
        };
        if ext_type != EXT_SERVER_NAME {
            continue;
        }
        // server_name extension: list_len(2), then entries of
        // type(1) len(2) name(len); type 0 = host_name.
        let mut s = Reader::new(ext_body);
        let list_len = match s.u16() {
            Some(v) => usize::from(v),
            None => return SniOutcome::ParseFailure(ParseStage::SniEntry),
        };
        let list = match s.take(list_len) {
            Some(b) => b,
            None => return SniOutcome::ParseFailure(ParseStage::SniEntry),
        };
        let mut s = Reader::new(list);
        while s.pos < list.len() {
            let name_type = match s.u8() {
                Some(v) => v,
                None => return SniOutcome::ParseFailure(ParseStage::SniEntry),
            };
            let name_len = match s.u16() {
                Some(v) => usize::from(v),
                None => return SniOutcome::ParseFailure(ParseStage::SniEntry),
            };
            let name = match s.take(name_len) {
                Some(b) => b,
                None => return SniOutcome::ParseFailure(ParseStage::SniEntry),
            };
            if name_type == 0 {
                return match std::str::from_utf8(name) {
                    Ok(text) => SniOutcome::Sni(text.to_ascii_lowercase()),
                    Err(_) => SniOutcome::ParseFailure(ParseStage::SniEntry),
                };
            }
        }
        return SniOutcome::NoSni;
    }
    SniOutcome::NoSni
}

/// A parsed extension (type and raw body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    pub ext_type: u16,
    pub body: Vec<u8>,
}

/// A fully parsed ClientHello, for endpoints that need more than the SNI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    pub client_version: u16,
    pub random: [u8; 32],
    pub session_id: Vec<u8>,
    pub cipher_suites: Vec<u16>,
    pub compression_methods: Vec<u8>,
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// Strict parse of a single complete ClientHello record.
    pub fn parse(payload: &[u8]) -> Result<ClientHello> {
        let mut r = Reader::new(payload);
        let content_type = r.u8().ok_or(Error::Truncated)?;
        if content_type != CONTENT_TYPE_HANDSHAKE {
            return Err(Error::WrongProtocol);
        }
        let _version = r.u16().ok_or(Error::Truncated)?;
        let record_len = usize::from(r.u16().ok_or(Error::Truncated)?);
        let body = r.take(record_len).ok_or(Error::Truncated)?;

        let mut r = Reader::new(body);
        let hs_type = r.u8().ok_or(Error::Truncated)?;
        if hs_type != HANDSHAKE_TYPE_CLIENT_HELLO {
            return Err(Error::WrongProtocol);
        }
        let hs_len = r.u24().ok_or(Error::Truncated)?;
        let hello = r.take(hs_len).ok_or(Error::Truncated)?;

        let mut r = Reader::new(hello);
        let client_version = r.u16().ok_or(Error::Truncated)?;
        let mut random = [0u8; 32];
        random.copy_from_slice(r.take(32).ok_or(Error::Truncated)?);
        let sid_len = usize::from(r.u8().ok_or(Error::Truncated)?);
        let session_id = r.take(sid_len).ok_or(Error::Truncated)?.to_vec();
        let cs_len = usize::from(r.u16().ok_or(Error::Truncated)?);
        if cs_len % 2 != 0 {
            return Err(Error::Malformed);
        }
        let cs_raw = r.take(cs_len).ok_or(Error::Truncated)?;
        let cipher_suites = cs_raw
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect();
        let comp_len = usize::from(r.u8().ok_or(Error::Truncated)?);
        let compression_methods = r.take(comp_len).ok_or(Error::Truncated)?.to_vec();
        let mut extensions = Vec::new();
        if r.pos < hello.len() {
            let ext_total = usize::from(r.u16().ok_or(Error::Truncated)?);
            let exts = r.take(ext_total).ok_or(Error::Truncated)?;
            let mut r = Reader::new(exts);
            while r.pos < exts.len() {
                let ext_type = r.u16().ok_or(Error::Truncated)?;
                let ext_len = usize::from(r.u16().ok_or(Error::Truncated)?);
                let body = r.take(ext_len).ok_or(Error::Truncated)?.to_vec();
                extensions.push(Extension { ext_type, body });
            }
        }
        Ok(ClientHello {
            client_version,
            random,
            session_id,
            cipher_suites,
            compression_methods,
            extensions,
        })
    }

    /// The server name carried in the SNI extension, if present and valid.
    pub fn sni(&self) -> Option<String> {
        let ext = self.extensions.iter().find(|e| e.ext_type == EXT_SERVER_NAME)?;
        extract_sni_from_ext(&ext.body)
    }
}

fn extract_sni_from_ext(body: &[u8]) -> Option<String> {
    let mut r = Reader::new(body);
    let list_len = usize::from(r.u16()?);
    let list = r.take(list_len)?;
    let mut r = Reader::new(list);
    while r.pos < list.len() {
        let name_type = r.u8()?;
        let name_len = usize::from(r.u16()?);
        let name = r.take(name_len)?;
        if name_type == 0 {
            return std::str::from_utf8(name).ok().map(|s| s.to_ascii_lowercase());
        }
    }
    None
}

/// Builder for byte-accurate ClientHello records.
#[derive(Debug, Clone)]
pub struct ClientHelloBuilder {
    sni: Option<String>,
    record_version: u16,
    client_version: u16,
    random: [u8; 32],
    session_id: Vec<u8>,
    cipher_suites: Vec<u16>,
    compression_methods: Vec<u8>,
    extra_extensions: Vec<Extension>,
    padding: Option<usize>,
}

impl ClientHelloBuilder {
    /// A realistic default ClientHello for `server_name`.
    pub fn new(server_name: &str) -> ClientHelloBuilder {
        ClientHelloBuilder {
            sni: Some(server_name.to_string()),
            record_version: 0x0301,
            client_version: 0x0303,
            random: [0x5a; 32],
            session_id: vec![0x71; 32],
            // A plausible modern suite list.
            cipher_suites: vec![0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, 0xc02c, 0xc030, 0x009e, 0x009f],
            compression_methods: vec![0x00],
            extra_extensions: vec![
                // supported_versions offering TLS 1.3 + 1.2.
                Extension { ext_type: 0x002b, body: vec![0x04, 0x03, 0x04, 0x03, 0x03] },
                // supported_groups: x25519, secp256r1.
                Extension { ext_type: 0x000a, body: vec![0x00, 0x04, 0x00, 0x1d, 0x00, 0x17] },
            ],
            padding: None,
        }
    }

    /// Builds without any server_name extension.
    pub fn without_sni() -> ClientHelloBuilder {
        let mut builder = ClientHelloBuilder::new("");
        builder.sni = None;
        builder
    }

    /// Overrides the 32-byte client random.
    pub fn random(mut self, random: [u8; 32]) -> Self {
        self.random = random;
        self
    }

    /// Overrides the session id (0–32 bytes).
    pub fn session_id(mut self, session_id: Vec<u8>) -> Self {
        debug_assert!(session_id.len() <= 32);
        self.session_id = session_id;
        self
    }

    /// Overrides the ciphersuite list.
    pub fn cipher_suites(mut self, suites: Vec<u16>) -> Self {
        self.cipher_suites = suites;
        self
    }

    /// Appends an arbitrary extension.
    pub fn extension(mut self, ext_type: u16, body: Vec<u8>) -> Self {
        self.extra_extensions.push(Extension { ext_type, body });
        self
    }

    /// Adds a padding extension (RFC 7685) of `len` zero bytes — the
    /// client-side circumvention that inflates the ClientHello past one MSS.
    pub fn padding(mut self, len: usize) -> Self {
        self.padding = Some(len);
        self
    }

    /// Builds the complete TLS record bytes.
    pub fn build(&self) -> Vec<u8> {
        // Assemble extensions: SNI first (as most stacks emit it early).
        let mut ext_bytes = Vec::new();
        if let Some(name) = &self.sni {
            let name_bytes = name.as_bytes();
            let mut body = Vec::with_capacity(5 + name_bytes.len());
            body.extend_from_slice(&((name_bytes.len() + 3) as u16).to_be_bytes());
            body.push(0x00); // host_name
            body.extend_from_slice(&(name_bytes.len() as u16).to_be_bytes());
            body.extend_from_slice(name_bytes);
            push_extension(&mut ext_bytes, EXT_SERVER_NAME, &body);
        }
        for ext in &self.extra_extensions {
            push_extension(&mut ext_bytes, ext.ext_type, &ext.body);
        }
        if let Some(len) = self.padding {
            push_extension(&mut ext_bytes, EXT_PADDING, &vec![0u8; len]);
        }

        let mut hello = Vec::new();
        hello.extend_from_slice(&self.client_version.to_be_bytes());
        hello.extend_from_slice(&self.random);
        hello.push(self.session_id.len() as u8);
        hello.extend_from_slice(&self.session_id);
        hello.extend_from_slice(&((self.cipher_suites.len() * 2) as u16).to_be_bytes());
        for suite in &self.cipher_suites {
            hello.extend_from_slice(&suite.to_be_bytes());
        }
        hello.push(self.compression_methods.len() as u8);
        hello.extend_from_slice(&self.compression_methods);
        hello.extend_from_slice(&(ext_bytes.len() as u16).to_be_bytes());
        hello.extend_from_slice(&ext_bytes);

        let mut record = Vec::with_capacity(hello.len() + 9);
        record.push(CONTENT_TYPE_HANDSHAKE);
        record.extend_from_slice(&self.record_version.to_be_bytes());
        record.extend_from_slice(&((hello.len() + 4) as u16).to_be_bytes());
        record.push(HANDSHAKE_TYPE_CLIENT_HELLO);
        record.push(((hello.len() >> 16) & 0xff) as u8);
        record.push(((hello.len() >> 8) & 0xff) as u8);
        record.push((hello.len() & 0xff) as u8);
        record.extend_from_slice(&hello);
        record
    }
}

fn push_extension(out: &mut Vec<u8>, ext_type: u16, body: &[u8]) {
    out.extend_from_slice(&ext_type.to_be_bytes());
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(body);
}

/// Builds a minimal non-ClientHello TLS record (change_cipher_spec), used
/// by the record-prepend circumvention strategy.
pub fn change_cipher_spec_record() -> Vec<u8> {
    vec![0x14, 0x03, 0x03, 0x00, 0x01, 0x01]
}

/// Builds a minimal ServerHello-ish handshake record used by simulated
/// servers to answer a ClientHello. The contents are not cryptographically
/// meaningful; the TSPU never inspects server responses.
pub fn server_hello_record() -> Vec<u8> {
    let body_len: usize = 2 + 32 + 1 + 2 + 1; // version + random + sid len + suite + comp
    let mut record = Vec::new();
    record.push(CONTENT_TYPE_HANDSHAKE);
    record.extend_from_slice(&0x0303u16.to_be_bytes());
    record.extend_from_slice(&((body_len + 4) as u16).to_be_bytes());
    record.push(0x02); // ServerHello
    record.push(0);
    record.push(0);
    record.push(body_len as u8);
    record.extend_from_slice(&0x0303u16.to_be_bytes());
    record.extend_from_slice(&[0xa5; 32]);
    record.push(0); // empty session id
    record.extend_from_slice(&0x1301u16.to_be_bytes());
    record.push(0); // null compression
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let record = ClientHelloBuilder::new("twitter.com").build();
        assert_eq!(extract_sni(&record), SniOutcome::Sni("twitter.com".into()));
        let hello = ClientHello::parse(&record).unwrap();
        assert_eq!(hello.sni().as_deref(), Some("twitter.com"));
        assert_eq!(hello.compression_methods, vec![0]);
        assert_eq!(hello.cipher_suites[0], 0x1301);
    }

    #[test]
    fn sni_is_case_insensitive() {
        let record = ClientHelloBuilder::new("TWITTER.com").build();
        assert_eq!(extract_sni(&record), SniOutcome::Sni("twitter.com".into()));
    }

    #[test]
    fn no_sni() {
        let record = ClientHelloBuilder::without_sni().build();
        assert_eq!(extract_sni(&record), SniOutcome::NoSni);
    }

    #[test]
    fn not_tls() {
        assert_eq!(extract_sni(b"GET / HTTP/1.1\r\n"), SniOutcome::NotTls);
        assert_eq!(extract_sni(&[]), SniOutcome::NotTls);
    }

    #[test]
    fn not_client_hello() {
        let record = server_hello_record();
        assert_eq!(extract_sni(&record), SniOutcome::NotClientHello);
    }

    #[test]
    fn prepended_record_hides_sni() {
        // §8: prepending another TLS record defeats extraction, because the
        // TSPU only inspects the first record.
        let mut bytes = change_cipher_spec_record();
        bytes.extend_from_slice(&ClientHelloBuilder::new("facebook.com").build());
        assert_eq!(extract_sni(&bytes), SniOutcome::NotTls);
    }

    #[test]
    fn truncated_clienthello_fails_parse() {
        // §8: a ClientHello split across TCP segments never parses, because
        // the TSPU does not reassemble streams.
        let record = ClientHelloBuilder::new("facebook.com").build();
        let first_half = &record[..record.len() / 2];
        assert!(matches!(extract_sni(first_half), SniOutcome::ParseFailure(_)));
    }

    #[test]
    fn mutating_length_fields_changes_outcome() {
        let record = ClientHelloBuilder::new("nordvpn.com").build();
        // Session-id length byte lives at offset 9 (record hdr 5 + hs hdr 4)
        // + 2 (version) + 32 (random) = 43.
        let mut mutated = record.clone();
        mutated[43] = 0xff;
        assert_ne!(extract_sni(&mutated), SniOutcome::Sni("nordvpn.com".into()));
    }

    #[test]
    fn mutating_random_does_not_change_outcome() {
        let record = ClientHelloBuilder::new("nordvpn.com").build();
        let mut mutated = record.clone();
        for byte in &mut mutated[11..43] {
            *byte ^= 0xff; // the 32-byte random
        }
        assert_eq!(extract_sni(&mutated), SniOutcome::Sni("nordvpn.com".into()));
    }

    #[test]
    fn other_extensions_are_ignored() {
        let record = ClientHelloBuilder::new("meduza.io")
            .extension(0x0010, b"\x00\x0c\x02h2\x08http/1.1".to_vec())
            .padding(64)
            .build();
        assert_eq!(extract_sni(&record), SniOutcome::Sni("meduza.io".into()));
    }

    #[test]
    fn padding_inflates_record() {
        let plain = ClientHelloBuilder::new("dw.com").build();
        let padded = ClientHelloBuilder::new("dw.com").padding(1400).build();
        assert!(padded.len() >= plain.len() + 1400);
        assert_eq!(extract_sni(&padded), SniOutcome::Sni("dw.com".into()));
    }

    #[test]
    fn odd_ciphersuite_length_is_malformed() {
        let record = ClientHelloBuilder::new("t.co").build();
        // cipher_suites length at offset 43 + 1 + sid(32) = 76..78.
        let mut mutated = record.clone();
        mutated[77] = mutated[77].wrapping_add(1);
        assert!(matches!(extract_sni(&mutated), SniOutcome::ParseFailure(ParseStage::CipherSuites)));
    }

    #[test]
    fn second_sni_entry_type_skipped() {
        // An SNI extension whose first entry is a non-hostname type falls
        // through to the next entry.
        let name = b"rutracker.org";
        let mut body = Vec::new();
        let entries_len = (3 + 4) + (3 + name.len());
        body.extend_from_slice(&(entries_len as u16).to_be_bytes());
        body.push(0x01); // unknown name type
        body.extend_from_slice(&4u16.to_be_bytes());
        body.extend_from_slice(b"xxxx");
        body.push(0x00); // host_name
        body.extend_from_slice(&(name.len() as u16).to_be_bytes());
        body.extend_from_slice(name);
        let record = {
            let mut b = ClientHelloBuilder::without_sni();
            b = b.extension(EXT_SERVER_NAME, body);
            b.build()
        };
        assert_eq!(extract_sni(&record), SniOutcome::Sni("rutracker.org".into()));
    }
}
