//! ICMPv4 echo messages.
//!
//! The paper observes that ICMP pings to and from IP-blocked hosts are
//! dropped by the TSPU (§5.2, IP-based blocking); this module provides the
//! echo request/reply the simulator's ping uses, plus TTL-exceeded messages
//! the simulated routers emit for traceroute (§7.2).

use crate::checksum;
use crate::{Error, Result};

/// ICMP message kinds modeled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmpv4Repr {
    EchoRequest { ident: u16, seq_no: u16 },
    EchoReply { ident: u16, seq_no: u16 },
    /// Time exceeded in transit (type 11 code 0), carrying no modeled body.
    TimeExceeded,
    /// Destination unreachable (type 3) with the given code.
    DestUnreachable { code: u8 },
}

/// ICMP header length for the message kinds modeled here.
pub const HEADER_LEN: usize = 8;

mod field {
    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const SEQ: core::ops::Range<usize> = 6..8;
}

/// A view over an ICMPv4 message buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Icmpv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Icmpv4Packet<T> {
    /// Wraps a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> Icmpv4Packet<T> {
        Icmpv4Packet { buffer }
    }

    /// Wraps a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> Result<Icmpv4Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validates the minimum header length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[field::TYPE]
    }

    pub fn msg_code(&self) -> u8 {
        self.buffer.as_ref()[field::CODE]
    }

    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::IDENT.start], d[field::IDENT.start + 1]])
    }

    pub fn seq_no(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::SEQ.start], d[field::SEQ.start + 1]])
    }

    /// Verifies the message checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

impl Icmpv4Repr {
    /// Parses the representation from a validated view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Icmpv4Packet<T>) -> Result<Icmpv4Repr> {
        packet.check_len()?;
        match (packet.msg_type(), packet.msg_code()) {
            (8, 0) => Ok(Icmpv4Repr::EchoRequest { ident: packet.ident(), seq_no: packet.seq_no() }),
            (0, 0) => Ok(Icmpv4Repr::EchoReply { ident: packet.ident(), seq_no: packet.seq_no() }),
            (11, 0) => Ok(Icmpv4Repr::TimeExceeded),
            (3, code) => Ok(Icmpv4Repr::DestUnreachable { code }),
            _ => Err(Error::Malformed),
        }
    }

    /// Builds the message bytes with a valid checksum.
    pub fn build(&self) -> Vec<u8> {
        let mut buffer = vec![0u8; HEADER_LEN];
        let (ty, code, ident, seq) = match *self {
            Icmpv4Repr::EchoRequest { ident, seq_no } => (8, 0, ident, seq_no),
            Icmpv4Repr::EchoReply { ident, seq_no } => (0, 0, ident, seq_no),
            Icmpv4Repr::TimeExceeded => (11, 0, 0, 0),
            Icmpv4Repr::DestUnreachable { code } => (3, code, 0, 0),
        };
        buffer[field::TYPE] = ty;
        buffer[field::CODE] = code;
        buffer[field::IDENT].copy_from_slice(&ident.to_be_bytes());
        buffer[field::SEQ].copy_from_slice(&seq.to_be_bytes());
        let ck = checksum::checksum(&buffer);
        buffer[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        for repr in [
            Icmpv4Repr::EchoRequest { ident: 77, seq_no: 3 },
            Icmpv4Repr::EchoReply { ident: 77, seq_no: 3 },
            Icmpv4Repr::TimeExceeded,
            Icmpv4Repr::DestUnreachable { code: 1 },
        ] {
            let bytes = repr.build();
            let packet = Icmpv4Packet::new_checked(&bytes[..]).unwrap();
            assert!(packet.verify_checksum());
            assert_eq!(Icmpv4Repr::parse(&packet).unwrap(), repr);
        }
    }

    #[test]
    fn rejects_unknown_type() {
        let mut bytes = Icmpv4Repr::TimeExceeded.build();
        bytes[0] = 42;
        let packet = Icmpv4Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Icmpv4Repr::parse(&packet).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(Icmpv4Packet::new_checked(&[8u8, 0][..]).unwrap_err(), Error::Truncated);
    }
}
