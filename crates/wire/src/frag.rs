//! IPv4 fragmentation and reassembly helpers.
//!
//! Endpoints and measurement probes need to *produce* fragment trains —
//! including deliberately pathological ones (overlaps, duplicates, > 45
//! pieces) that exercise the TSPU fragment cache (§5.3.1) — and receivers
//! need standards-compliant reassembly to verify delivery.

use crate::ipv4::{Ipv4Packet, Ipv4Repr};
use crate::{Error, Result};

/// Splits an IPv4 datagram (`bytes` must be a complete, non-fragmented
/// packet) into fragments whose payloads are at most `mtu_payload` bytes.
/// `mtu_payload` is rounded down to a multiple of 8 as the offset field
/// requires. Each fragment gets a fresh header with the same
/// (src, dst, ident, protocol) and the original TTL.
pub fn fragment(bytes: &[u8], mtu_payload: usize) -> Result<Vec<Vec<u8>>> {
    let packet = Ipv4Packet::new_checked(bytes)?;
    if packet.is_fragment() {
        return Err(Error::Malformed);
    }
    let repr = Ipv4Repr::parse(&packet)?;
    let payload = packet.payload();
    let chunk = (mtu_payload / 8).max(1) * 8;
    let mut fragments = Vec::new();
    let mut offset = 0;
    while offset < payload.len() {
        let end = (offset + chunk).min(payload.len());
        let piece = &payload[offset..end];
        let mut frag_repr = repr;
        frag_repr.frag_offset = offset;
        frag_repr.more_fragments = end < payload.len();
        frag_repr.dont_fragment = false;
        frag_repr.payload_len = piece.len();
        fragments.push(frag_repr.build(piece));
        offset = end;
    }
    if fragments.is_empty() {
        // Zero-payload datagram: one "fragment" that is the packet itself.
        fragments.push(bytes.to_vec());
    }
    Ok(fragments)
}

/// Splits a datagram into exactly `n` fragments of roughly equal size.
/// Used by the fragment-queue-limit fingerprint probe (45 vs 46 pieces,
/// §7.2). Fails if the payload cannot be cut into `n` non-empty 8-byte
/// aligned pieces.
pub fn fragment_into(bytes: &[u8], n: usize) -> Result<Vec<Vec<u8>>> {
    if n == 0 {
        return Err(Error::Malformed);
    }
    let packet = Ipv4Packet::new_checked(bytes)?;
    if packet.is_fragment() {
        return Err(Error::Malformed);
    }
    let repr = Ipv4Repr::parse(&packet)?;
    let payload = packet.payload();
    if n == 1 {
        return Ok(vec![bytes.to_vec()]);
    }
    // All fragments except the last must carry a multiple of 8 bytes.
    // Use a balanced base size for the first n-1 pieces; the last piece
    // absorbs the remainder.
    let mut base = ((payload.len() / n) / 8 * 8).max(8);
    while base > 8 && base * (n - 1) >= payload.len() {
        base -= 8;
    }
    if base * (n - 1) >= payload.len() {
        return Err(Error::Malformed);
    }
    let mut fragments = Vec::with_capacity(n);
    for i in 0..n {
        let offset = i * base;
        let end = if i == n - 1 { payload.len() } else { offset + base };
        let piece = &payload[offset..end];
        let mut frag_repr = repr;
        frag_repr.frag_offset = offset;
        frag_repr.more_fragments = i != n - 1;
        frag_repr.dont_fragment = false;
        frag_repr.payload_len = piece.len();
        fragments.push(frag_repr.build(piece));
    }
    Ok(fragments)
}

/// Reassembles fragments of one datagram into the original packet bytes.
/// Fragments may arrive in any order; overlaps/duplicates are rejected
/// (strict receiver, per RFC 5722's spirit). All fragments must share
/// (src, dst, ident).
pub fn reassemble(fragments: &[Vec<u8>]) -> Result<Vec<u8>> {
    if fragments.is_empty() {
        return Err(Error::Truncated);
    }
    let first = Ipv4Packet::new_checked(&fragments[0][..])?;
    let key = (first.src_addr(), first.dst_addr(), first.ident());

    let mut pieces: Vec<(usize, bool, Vec<u8>)> = Vec::with_capacity(fragments.len());
    for buf in fragments {
        let packet = Ipv4Packet::new_checked(&buf[..])?;
        if (packet.src_addr(), packet.dst_addr(), packet.ident()) != key {
            return Err(Error::Malformed);
        }
        pieces.push((packet.frag_offset(), packet.more_fragments(), packet.payload().to_vec()));
    }
    pieces.sort_by_key(|(off, _, _)| *off);

    // Validate contiguity: each fragment must start exactly where the
    // previous one ended, the first at 0, the last with MF clear.
    let mut expected = 0usize;
    for (i, (off, more, payload)) in pieces.iter().enumerate() {
        if *off != expected {
            return Err(Error::Malformed);
        }
        expected += payload.len();
        let is_last = i == pieces.len() - 1;
        if is_last == *more {
            return Err(Error::Malformed);
        }
    }

    let mut payload = Vec::with_capacity(expected);
    for (_, _, piece) in &pieces {
        payload.extend_from_slice(piece);
    }
    let mut repr = Ipv4Repr::parse(&first)?;
    repr.more_fragments = false;
    repr.frag_offset = 0;
    repr.payload_len = payload.len();
    Ok(repr.build(&payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Protocol;
    use std::net::Ipv4Addr;

    fn datagram(payload_len: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let mut repr = Ipv4Repr::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Protocol::Tcp,
            payload.len(),
        );
        repr.ident = 0x4242;
        repr.build(&payload)
    }

    #[test]
    fn fragment_reassemble_roundtrip() {
        let original = datagram(1000);
        let fragments = fragment(&original, 256).unwrap();
        assert_eq!(fragments.len(), 4);
        assert!(Ipv4Packet::new_unchecked(&fragments[0][..]).more_fragments());
        assert!(!Ipv4Packet::new_unchecked(&fragments[3][..]).more_fragments());
        let rebuilt = reassemble(&fragments).unwrap();
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn reassemble_out_of_order() {
        let original = datagram(600);
        let mut fragments = fragment(&original, 128).unwrap();
        fragments.reverse();
        assert_eq!(reassemble(&fragments).unwrap(), original);
    }

    #[test]
    fn fragment_into_exact_counts() {
        let original = datagram(1480);
        for n in [2usize, 10, 45, 46] {
            let fragments = fragment_into(&original, n).unwrap();
            assert_eq!(fragments.len(), n, "n={n}");
            assert_eq!(reassemble(&fragments).unwrap(), original);
        }
    }

    #[test]
    fn fragment_into_too_many_pieces_fails() {
        // 24-byte payload cannot make 5 nonempty 8-byte-aligned pieces.
        let original = datagram(24);
        assert!(fragment_into(&original, 5).is_err());
    }

    #[test]
    fn reassemble_rejects_gap() {
        let original = datagram(1000);
        let mut fragments = fragment(&original, 256).unwrap();
        fragments.remove(1);
        assert!(reassemble(&fragments).is_err());
    }

    #[test]
    fn reassemble_rejects_duplicate() {
        let original = datagram(1000);
        let mut fragments = fragment(&original, 256).unwrap();
        let dup = fragments[1].clone();
        fragments.push(dup);
        assert!(reassemble(&fragments).is_err());
    }

    #[test]
    fn reassemble_rejects_mixed_idents() {
        let a = fragment(&datagram(512), 128).unwrap();
        let mut b_src = datagram(512);
        {
            let mut p = Ipv4Packet::new_unchecked(&mut b_src[..]);
            p.set_ident(0x9999);
            p.fill_checksum();
        }
        let b = fragment(&b_src, 128).unwrap();
        let mixed = vec![a[0].clone(), b[1].clone(), a[2].clone(), a[3].clone()];
        assert!(reassemble(&mixed).is_err());
    }

    #[test]
    fn fragmenting_a_fragment_fails() {
        let original = datagram(1000);
        let fragments = fragment(&original, 256).unwrap();
        assert!(fragment(&fragments[0], 64).is_err());
    }

    #[test]
    fn small_payload_single_fragment() {
        let original = datagram(40);
        let fragments = fragment(&original, 1400).unwrap();
        assert_eq!(fragments.len(), 1);
        assert!(!Ipv4Packet::new_unchecked(&fragments[0][..]).is_fragment());
        assert_eq!(reassemble(&fragments).unwrap(), original);
    }
}
