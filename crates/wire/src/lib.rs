//! # tspu-wire
//!
//! Typed wire formats for the TSPU reproduction.
//!
//! This crate follows the smoltcp idiom: every protocol has a *packet view*
//! type (`Ipv4Packet`, `TcpSegment`, …) that wraps a byte buffer and exposes
//! typed accessors over explicit field offsets, plus an owned *representation*
//! type (`Ipv4Repr`, `TcpRepr`, …) that can be parsed from and emitted into a
//! view. Views are generic over `AsRef<[u8]>` (read) and `AsMut<[u8]>`
//! (write), so the same accessors work over `&[u8]`, `Vec<u8>`, and mutable
//! slices without copies.
//!
//! The formats implemented are exactly those the TSPU inspects or rewrites:
//!
//! * [`ipv4`] — IPv4 headers including the fragmentation fields (identification,
//!   MF/DF flags, fragment offset) that drive the TSPU fragment cache.
//! * [`tcp`] — TCP segments including the flag combinations the TSPU's
//!   connection tracker keys on, and the RST/ACK rewrite it performs.
//! * [`udp`] — UDP datagrams (QUIC transport).
//! * [`icmpv4`] — ICMP echo, used for IP-based blocking of pings.
//! * [`tls`] — TLS ClientHello parsing and construction, including the SNI
//!   extension the TSPU extracts (paper Fig. 13).
//! * [`quic`] — the QUIC long-header prefix carrying the version field the
//!   TSPU fingerprints (paper Fig. 14).
//! * [`dns`] — A-record queries/responses for the ISP blockpage resolvers
//!   (paper §6.2).
//! * [`http`] — minimal HTTP/1.1 for blockpages and legacy keyword DPIs
//!   (paper §2's pre-TSPU mechanisms).
//! * [`frag`] — helpers to split an IPv4 datagram into fragments and to
//!   reassemble them, used by endpoints and measurement probes.
//! * [`checksum`] — the internet checksum and TCP/UDP pseudo-header sums.
//!
//! All multi-byte fields are big-endian as on the wire. Buffers shorter than
//! a protocol's minimum header fail `check_len` rather than panic.

pub mod checksum;
pub mod dns;
pub mod fasthash;
pub mod frag;
pub mod http;
pub mod icmpv4;
pub mod ipv4;
pub mod quic;
pub mod tcp;
pub mod tls;
pub mod udp;

mod error;

pub use dns::{DnsQuery, DnsResponse};
pub use error::{Error, Result};
pub use icmpv4::{Icmpv4Packet, Icmpv4Repr};
pub use ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
pub use quic::{QuicHeader, QuicVersion};
pub use tcp::{TcpFlags, TcpRepr, TcpSegment};
pub use tls::{ClientHello, ClientHelloBuilder, Extension, SniOutcome};
pub use udp::{UdpDatagram, UdpRepr};
