//! Minimal HTTP/1.1 request/response handling — enough for ISP blockpages
//! and the legacy keyword-filtering DPIs of the pre-TSPU era (§2: ISPs
//! "implemented different blocking mechanisms with varying efficacy, such
//! as keyword filtering or DNS censorship").

use crate::{Error, Result};

/// A parsed HTTP request line + headers (bodies are not modeled; the
/// censors of interest key on the request line and Host header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub host: Option<String>,
}

impl HttpRequest {
    /// A GET request for `path` at `host`.
    pub fn get(host: &str, path: &str) -> HttpRequest {
        HttpRequest { method: "GET".into(), path: path.into(), host: Some(host.to_string()) }
    }

    /// Serializes the request.
    pub fn build(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.path);
        if let Some(host) = &self.host {
            out.push_str(&format!("Host: {host}\r\n"));
        }
        out.push_str("Connection: close\r\n\r\n");
        out.into_bytes()
    }

    /// Parses a request from the start of a TCP payload.
    pub fn parse(payload: &[u8]) -> Result<HttpRequest> {
        let text = std::str::from_utf8(payload).map_err(|_| Error::Malformed)?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(Error::Truncated)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(Error::Malformed)?.to_string();
        let path = parts.next().ok_or(Error::Malformed)?.to_string();
        let version = parts.next().ok_or(Error::Malformed)?;
        if !version.starts_with("HTTP/") || !method.chars().all(|c| c.is_ascii_uppercase()) {
            return Err(Error::WrongProtocol);
        }
        let mut host = None;
        for line in lines {
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("host") {
                    host = Some(value.trim().to_ascii_lowercase());
                }
            }
        }
        Ok(HttpRequest { method, path, host })
    }
}

/// A minimal HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 with the given body.
    pub fn ok(body: &[u8]) -> HttpResponse {
        HttpResponse { status: 200, body: body.to_vec() }
    }

    /// A 302 redirect (what some ISPs use to bounce users to blockpages).
    pub fn redirect(location: &str) -> HttpResponse {
        HttpResponse { status: 302, body: format!("Location: {location}").into_bytes() }
    }

    /// Serializes the response.
    pub fn build(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            302 => "Found",
            403 => "Forbidden",
            _ => "Status",
        };
        let mut out = format!(
            "HTTP/1.1 {} {reason}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a response.
    pub fn parse(payload: &[u8]) -> Result<HttpResponse> {
        let text = String::from_utf8_lossy(payload);
        let (head, body) = match text.split_once("\r\n\r\n") {
            Some((head, body)) => (head.to_string(), body.as_bytes().to_vec()),
            None => return Err(Error::Truncated),
        };
        let status_line = head.split("\r\n").next().ok_or(Error::Truncated)?;
        let mut parts = status_line.split(' ');
        let version = parts.next().ok_or(Error::Malformed)?;
        if !version.starts_with("HTTP/") {
            return Err(Error::WrongProtocol);
        }
        let status = parts.next().ok_or(Error::Malformed)?.parse().map_err(|_| Error::Malformed)?;
        Ok(HttpResponse { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let request = HttpRequest::get("blocked.ru", "/index.html");
        let bytes = request.build();
        let parsed = HttpRequest::parse(&bytes).unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.path, "/index.html");
        assert_eq!(parsed.host.as_deref(), Some("blocked.ru"));
    }

    #[test]
    fn host_header_case_insensitive() {
        let raw = b"GET / HTTP/1.1\r\nHOST: MiXeD.Ru\r\n\r\n";
        let parsed = HttpRequest::parse(raw).unwrap();
        assert_eq!(parsed.host.as_deref(), Some("mixed.ru"));
    }

    #[test]
    fn response_roundtrip() {
        let response = HttpResponse::ok(b"<html>page</html>");
        let parsed = HttpResponse::parse(&response.build()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, b"<html>page</html>");
    }

    #[test]
    fn redirect_carries_location() {
        let response = HttpResponse::redirect("http://blockpage.isp/");
        let parsed = HttpResponse::parse(&response.build()).unwrap();
        assert_eq!(parsed.status, 302);
        assert!(String::from_utf8_lossy(&parsed.body).contains("blockpage.isp"));
    }

    #[test]
    fn rejects_non_http() {
        assert!(HttpRequest::parse(b"\x16\x03\x01\x00\x20tls-bytes").is_err());
        assert!(HttpRequest::parse(b"").is_err());
        assert!(HttpResponse::parse(b"GET / HTTP/1.1\r\n\r\n").is_err());
    }
}
