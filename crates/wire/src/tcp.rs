//! TCP segment view and representation.
//!
//! The TSPU's connection tracker classifies flows by the *flag sequences* it
//! observes (paper §5.3.2, Fig. 4), and its SNI-I / IP-based behaviors
//! rewrite segments in place to RST/ACK with the payload truncated while
//! preserving sequence numbers (paper §5.2). [`TcpFlags`] and the in-place
//! setters here support both.

use std::fmt;
use std::net::Ipv4Addr;

use crate::checksum;
use crate::{Error, Result};

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const SEQ: core::ops::Range<usize> = 4..8;
    pub const ACK: core::ops::Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: core::ops::Range<usize> = 14..16;
    pub const CHECKSUM: core::ops::Range<usize> = 16..18;
    pub const URGENT: core::ops::Range<usize> = 18..20;
}

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits. Combination helpers cover the handshake shapes the paper
/// exercises (SYN, SYN/ACK, split handshake, simultaneous open).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// SYN|ACK, the normal second handshake packet.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// RST|ACK, the flag combination the TSPU rewrites blocked responses to.
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);
    /// PSH|ACK, a data segment.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }

    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }

    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }

    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }

    pub fn psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }

    /// True for a pure SYN (no ACK), the packet that normally identifies
    /// the connection's client.
    pub fn is_pure_syn(self) -> bool {
        self.syn() && !self.ack()
    }

    /// True for SYN|ACK regardless of other bits.
    pub fn is_syn_ack(self) -> bool {
        self.syn() && self.ack()
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (bit, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(bit) {
                names.push(name);
            }
        }
        if names.is_empty() {
            write!(f, "(none)")
        } else {
            write!(f, "{}", names.join("/"))
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A read (and optionally write) view over a TCP segment buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> TcpSegment<T> {
        TcpSegment { buffer }
    }

    /// Wraps a buffer, validating the header fits.
    pub fn new_checked(buffer: T) -> Result<TcpSegment<T>> {
        let segment = Self::new_unchecked(buffer);
        segment.check_len()?;
        Ok(segment)
    }

    /// Validates the header and data offset against the buffer.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = self.header_len();
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::SRC_PORT.start], d[field::SRC_PORT.start + 1]])
    }

    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::DST_PORT.start], d[field::DST_PORT.start + 1]])
    }

    pub fn seq_number(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    pub fn ack_number(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[field::FLAGS] & 0x3f)
    }

    pub fn window(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::WINDOW.start], d[field::WINDOW.start + 1]])
    }

    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// The segment payload after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the transport checksum under the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        checksum::pseudo_header_verify(src, dst, 6, self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    pub fn set_src_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_dst_port(&mut self, value: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_seq_number(&mut self, value: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_ack_number(&mut self, value: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&value.to_be_bytes());
    }

    /// Sets the header length in bytes; must be a multiple of 4.
    pub fn set_header_len(&mut self, bytes: usize) {
        debug_assert_eq!(bytes % 4, 0);
        self.buffer.as_mut()[field::DATA_OFF] = ((bytes / 4) as u8) << 4;
    }

    pub fn set_flags(&mut self, value: TcpFlags) {
        self.buffer.as_mut()[field::FLAGS] = value.0;
    }

    pub fn set_window(&mut self, value: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&value.to_be_bytes());
    }

    pub fn set_urgent(&mut self, value: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Recomputes the transport checksum under the IPv4 pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::pseudo_header_checksum(src, dst, 6, self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len();
        &mut self.buffer.as_mut()[header_len..]
    }
}

/// An owned representation of a TCP segment (header fields + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq_number: u32,
    pub ack_number: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub payload: Vec<u8>,
}

impl TcpRepr {
    /// A template segment with empty payload and a default window.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> TcpRepr {
        TcpRepr {
            src_port,
            dst_port,
            seq_number: 0,
            ack_number: 0,
            flags,
            window: 64240,
            payload: Vec::new(),
        }
    }

    /// Parses a representation out of a validated segment view.
    pub fn parse<T: AsRef<[u8]>>(segment: &TcpSegment<T>) -> Result<TcpRepr> {
        segment.check_len()?;
        Ok(TcpRepr {
            src_port: segment.src_port(),
            dst_port: segment.dst_port(),
            seq_number: segment.seq_number(),
            ack_number: segment.ack_number(),
            flags: segment.flags(),
            window: segment.window(),
            payload: segment.payload().to_vec(),
        })
    }

    /// Emitted segment length.
    pub fn segment_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Builds the segment bytes, computing the checksum for `src`/`dst`.
    pub fn build(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buffer = vec![0u8; self.segment_len()];
        buffer[HEADER_LEN..].copy_from_slice(&self.payload);
        let mut segment = TcpSegment::new_unchecked(&mut buffer[..]);
        segment.set_src_port(self.src_port);
        segment.set_dst_port(self.dst_port);
        segment.set_seq_number(self.seq_number);
        segment.set_ack_number(self.ack_number);
        segment.set_header_len(HEADER_LEN);
        segment.set_flags(self.flags);
        segment.set_window(self.window);
        segment.set_urgent(0);
        segment.fill_checksum(src, dst);
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn repr() -> TcpRepr {
        TcpRepr {
            src_port: 50123,
            dst_port: 443,
            seq_number: 0x01020304,
            ack_number: 0x0a0b0c0d,
            flags: TcpFlags::PSH_ACK,
            window: 29200,
            payload: b"hello".to_vec(),
        }
    }

    #[test]
    fn build_parse_roundtrip() {
        let bytes = repr().build(SRC, DST);
        let segment = TcpSegment::new_checked(&bytes[..]).unwrap();
        assert!(segment.verify_checksum(SRC, DST));
        assert_eq!(TcpRepr::parse(&segment).unwrap(), repr());
    }

    #[test]
    fn flags_helpers() {
        assert!(TcpFlags::SYN.is_pure_syn());
        assert!(!TcpFlags::SYN_ACK.is_pure_syn());
        assert!(TcpFlags::SYN_ACK.is_syn_ack());
        assert!(TcpFlags::RST_ACK.rst());
        assert!(TcpFlags::RST_ACK.ack());
        assert_eq!(TcpFlags::SYN | TcpFlags::ACK, TcpFlags::SYN_ACK);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "SYN/ACK");
        assert_eq!(format!("{}", TcpFlags(0)), "(none)");
    }

    #[test]
    fn rst_ack_rewrite_in_place() {
        // The TSPU SNI-I rewrite: truncate payload, set RST/ACK, keep seq/ack.
        let bytes = repr().build(SRC, DST);
        let mut truncated = bytes[..HEADER_LEN].to_vec();
        let mut segment = TcpSegment::new_unchecked(&mut truncated[..]);
        segment.set_flags(TcpFlags::RST_ACK);
        segment.fill_checksum(SRC, DST);
        let reparsed = TcpSegment::new_checked(&truncated[..]).unwrap();
        assert!(reparsed.verify_checksum(SRC, DST));
        assert_eq!(reparsed.flags(), TcpFlags::RST_ACK);
        assert_eq!(reparsed.seq_number(), 0x01020304);
        assert_eq!(reparsed.ack_number(), 0x0a0b0c0d);
        assert!(reparsed.payload().is_empty());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = repr().build(SRC, DST);
        bytes[12] = 0x20; // header length 8 < 20
        assert_eq!(TcpSegment::new_checked(&bytes[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(TcpSegment::new_checked(&[0u8; 8][..]).unwrap_err(), Error::Truncated);
    }
}
