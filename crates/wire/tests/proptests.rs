//! Property-based tests over the wire formats: roundtrips, fragmentation
//! invariants, and parser robustness on arbitrary bytes.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use tspu_wire::frag;
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};
use tspu_wire::tls::{extract_sni, ClientHelloBuilder, SniOutcome};
use tspu_wire::udp::{UdpDatagram, UdpRepr};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn ipv4_roundtrip(src in arb_addr(), dst in arb_addr(), ttl in 1u8..=255,
                      ident in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut repr = Ipv4Repr::new(src, dst, Protocol::Tcp, payload.len());
        repr.ttl = ttl;
        repr.ident = ident;
        let bytes = repr.build(&payload);
        let packet = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
    }

    #[test]
    fn ipv4_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Packet::new_checked(&bytes[..]);
    }

    #[test]
    fn tcp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
                     ack in any::<u32>(), flags in 0u8..=0x3f, window in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let repr = TcpRepr {
            src_port: sp, dst_port: dp, seq_number: seq, ack_number: ack,
            flags: TcpFlags(flags), window, payload,
        };
        let bytes = repr.build(src, dst);
        let segment = TcpSegment::new_checked(&bytes[..]).unwrap();
        prop_assert!(segment.verify_checksum(src, dst));
        prop_assert_eq!(TcpRepr::parse(&segment).unwrap(), repr);
    }

    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..1200)) {
        let src = Ipv4Addr::new(192, 0, 2, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 2);
        let repr = UdpRepr::new(sp, dp, payload);
        let bytes = repr.build(src, dst);
        let datagram = UdpDatagram::new_checked(&bytes[..]).unwrap();
        prop_assert!(datagram.verify_checksum(src, dst));
        prop_assert_eq!(UdpRepr::parse(&datagram).unwrap(), repr);
    }

    #[test]
    fn fragment_reassemble_identity(payload_len in 64usize..2048, mtu in 16usize..512) {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i * 7 % 256) as u8).collect();
        let mut repr = Ipv4Repr::new(
            Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(10, 2, 2, 2),
            Protocol::Udp, payload.len());
        repr.ident = 0x1234;
        let original = repr.build(&payload);
        let fragments = frag::fragment(&original, mtu).unwrap();
        // Every fragment is individually a valid IPv4 packet.
        for f in &fragments {
            prop_assert!(Ipv4Packet::new_checked(&f[..]).is_ok());
        }
        prop_assert_eq!(frag::reassemble(&fragments).unwrap(), original);
    }

    #[test]
    fn fragment_into_exact(payload_len in 512usize..4096, n in 2usize..48) {
        let payload: Vec<u8> = vec![0xaa; payload_len];
        let mut repr = Ipv4Repr::new(
            Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(10, 2, 2, 2),
            Protocol::Tcp, payload.len());
        repr.ident = 1;
        let original = repr.build(&payload);
        match frag::fragment_into(&original, n) {
            Ok(fragments) => {
                prop_assert_eq!(fragments.len(), n);
                prop_assert_eq!(frag::reassemble(&fragments).unwrap(), original);
            }
            Err(_) => {
                // Only legal when the payload genuinely cannot be split into
                // n nonempty 8-byte-aligned pieces.
                prop_assert!(8 * (n - 1) >= payload_len);
            }
        }
    }

    #[test]
    fn extract_sni_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = extract_sni(&bytes);
    }

    #[test]
    fn sni_roundtrip_any_hostname(name in "[a-z0-9.-]{1,60}") {
        let record = ClientHelloBuilder::new(&name).build();
        prop_assert_eq!(extract_sni(&record), SniOutcome::Sni(name));
    }

    #[test]
    fn single_byte_mutation_never_panics(seed in any::<u8>(), pos_frac in 0.0f64..1.0) {
        let record = ClientHelloBuilder::new("example.com").build();
        let mut mutated = record.clone();
        let pos = ((record.len() - 1) as f64 * pos_frac) as usize;
        mutated[pos] ^= seed | 1;
        let _ = extract_sni(&mutated);
    }
}
