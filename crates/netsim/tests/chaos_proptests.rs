//! Property-based tests for the chaos subsystem:
//!
//! 1. the same seed replays to a byte-identical capture over arbitrary
//!    fault plans (determinism is total, not just loss-only);
//! 2. a zero-rate plan is an *exact* no-op — same deliveries at the same
//!    virtual times as a fault-free network;
//! 3. the trace-invariant oracle accepts every fault-free trace the
//!    tier-1-style TLS volleys produce through the real vantage labs.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::fault::{ChaosLink, FlapSpec, LinkFaults};
use tspu_netsim::{Direction, Network, Route, RouteStep};
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr};
use tspu_wire::tls::ClientHelloBuilder;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn datagram(tag: u8, len: usize) -> Vec<u8> {
    let payload = vec![tag; len.max(1)];
    let repr = Ipv4Repr::new(A, B, Protocol::Other(0xfd), payload.len());
    repr.build(&payload)
}

/// An arbitrary fault plan, covering every dimension including flaps.
fn link_faults() -> impl Strategy<Value = LinkFaults> {
    (
        (0.0f64..0.5, 0.0f64..0.4, 0.0f64..0.5, 0usize..5),
        0u64..4_000,
        prop_oneof![Just(None::<usize>), (600usize..1200).prop_map(Some)],
        prop_oneof![Just(None::<(u64, u64)>), (1u64..50, 1u64..50).prop_map(Some)],
    )
        .prop_map(|((loss, duplicate, reorder, max_displacement), jitter_us, mtu, flap)| {
            LinkFaults {
                loss,
                duplicate,
                reorder,
                max_displacement,
                jitter: Duration::from_micros(jitter_us),
                mtu,
                flap: flap.map(|(up, down)| FlapSpec {
                    up: Duration::from_millis(up),
                    down: Duration::from_millis(down),
                }),
            }
        })
}

/// Builds a two-host network with one router hop and a `ChaosLink` in each
/// direction hanging off that hop (appended to the existing step, the same
/// placement `VantageLab::apply_fault_plan` uses).
fn chaos_net(faults: &LinkFaults, seed: u64) -> (Network, tspu_netsim::HostId, tspu_netsim::HostId) {
    let mut net = Network::new(Duration::from_millis(1));
    let a = net.add_host(A);
    let b = net.add_host(B);
    let fwd = net.install_middlebox(ChaosLink::new(faults.clone(), seed));
    let rev = net.install_middlebox(ChaosLink::new(faults.clone(), seed.wrapping_add(1)));
    let hop = Ipv4Addr::new(10, 255, 0, 1);
    let mut forward = RouteStep::router(hop);
    forward.devices.push((fwd.id(), Direction::LocalToRemote));
    let mut reverse = RouteStep::router(hop);
    reverse.devices.push((rev.id(), Direction::RemoteToLocal));
    net.set_route(a, b, Route { steps: vec![forward] });
    net.set_route(b, a, Route { steps: vec![reverse] });
    (net, a, b)
}

proptest! {
    /// Same plan + same seed + same sends ⇒ byte-identical capture, at
    /// any loss/duplicate/reorder/jitter/MTU/flap mix.
    #[test]
    fn same_seed_replays_byte_identical(
        faults in link_faults(),
        seed in any::<u64>(),
        sends in proptest::collection::vec((0u8..255, 20usize..1400), 1..40),
    ) {
        let run = || {
            let (mut net, a, b) = chaos_net(&faults, seed);
            net.set_capture(true);
            for &(tag, len) in &sends {
                net.send_from(a, datagram(tag, len));
            }
            net.run_until_idle();
            let mut out = tspu_netsim::pcap::to_pcap_bytes(net.captures());
            for (time, bytes) in net.take_inbox(b) {
                out.extend_from_slice(&time.as_micros().to_le_bytes());
                out.extend_from_slice(&bytes);
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    /// A zero-rate plan is an exact no-op: every delivery arrives with the
    /// same bytes at the same virtual time as in a fault-free network, and
    /// the link counts zero interference.
    #[test]
    fn zero_rate_plan_is_exact_noop(
        seed in any::<u64>(),
        sends in proptest::collection::vec((0u8..255, 20usize..1400), 1..40),
    ) {
        let quiet = LinkFaults::default();
        prop_assert!(quiet.is_noop());

        let (mut chaos, ca, cb) = chaos_net(&quiet, seed);
        let mut plain = Network::new(Duration::from_millis(1));
        let pa = plain.add_host(A);
        let pb = plain.add_host(B);
        plain.set_route_symmetric(pa, pb, Route::through(&[Ipv4Addr::new(10, 255, 0, 1)]));

        for &(tag, len) in &sends {
            chaos.send_from(ca, datagram(tag, len));
            plain.send_from(pa, datagram(tag, len));
        }
        chaos.run_until_idle();
        plain.run_until_idle();

        prop_assert_eq!(chaos.take_inbox(cb), plain.take_inbox(pb));
        prop_assert_eq!(chaos.take_inbox(ca), plain.take_inbox(pa));
    }
}

/// A full IPv4/TCP packet.
#[allow(clippy::too_many_arguments)]
fn tcp_ip(
    src: Ipv4Addr,
    sport: u16,
    dst: Ipv4Addr,
    dport: u16,
    flags: TcpFlags,
    seq: u32,
    ack: u32,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut tcp = TcpRepr::new(sport, dport, flags);
    tcp.seq_number = seq;
    tcp.ack_number = ack;
    tcp.payload = payload;
    let segment = tcp.build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Tcp, segment.len()).build(&segment)
}

/// Drives one TLS-style volley (handshake, ClientHello, server response)
/// from a vantage to the US main host, stepping the simulator between
/// packets so each side reacts to what actually arrived.
fn tls_volley(lab: &mut tspu_topology::VantageLab, vantage_index: usize, domain: &str, sport: u16) {
    let v = &lab.vantages[vantage_index];
    let (v_host, v_addr) = (v.host, v.addr);
    let (us_host, us_addr) = (lab.us_main, lab.us_main_addr);

    let syn = tcp_ip(v_addr, sport, us_addr, 443, TcpFlags::SYN, 1, 0, Vec::new());
    lab.net.send_from(v_host, syn);
    lab.net.run_until_idle();

    if lab.net.take_inbox(us_host).is_empty() {
        return; // SYN consumed (residual block from an earlier volley).
    }
    let syn_ack = tcp_ip(us_addr, 443, v_addr, sport, TcpFlags::SYN_ACK, 1000, 2, Vec::new());
    lab.net.send_from(us_host, syn_ack);
    lab.net.run_until_idle();
    lab.net.take_inbox(v_host);

    let ack = tcp_ip(v_addr, sport, us_addr, 443, TcpFlags::ACK, 2, 1001, Vec::new());
    lab.net.send_from(v_host, ack);
    lab.net.run_until_idle();

    let hello = ClientHelloBuilder::new(domain).build();
    let hello_len = hello.len() as u32;
    let ch = tcp_ip(v_addr, sport, us_addr, 443, TcpFlags::PSH_ACK, 2, 1001, hello);
    lab.net.send_from(v_host, ch);
    lab.net.run_until_idle();

    if !lab.net.take_inbox(us_host).is_empty() {
        let resp = tcp_ip(
            us_addr,
            443,
            v_addr,
            sport,
            TcpFlags::PSH_ACK,
            1001,
            2 + hello_len,
            vec![0x17; 200],
        );
        lab.net.send_from(us_host, resp);
        lab.net.run_until_idle();
    }
    lab.net.take_inbox(v_host);
    lab.net.take_inbox(us_host);
}

proptest! {
    /// The oracle accepts every fault-free trace: arbitrary mixes of
    /// blocked (SNI-I/II/IV) and open domains from arbitrary vantages
    /// produce captures with zero violations — including the device's own
    /// legitimate RST injections and residual drops.
    #[test]
    fn oracle_accepts_fault_free_traces(
        volleys in proptest::collection::vec((0usize..3, 0usize..6), 1..8),
    ) {
        const DOMAINS: [&str; 6] = [
            "twitter.com",      // SNI-I + SNI-IV lists
            "meduza.io",        // SNI-I
            "play.google.com",  // SNI-II
            "nordvpn.com",      // SNI-II
            "wikipedia.org",    // open
            "example.com",      // open
        ];
        let policy = tspu_core::PolicyHandle::new(tspu_core::Policy::example());
        let mut lab = tspu_topology::VantageLab::builder().policy(policy).build();
        lab.net.set_capture(true);
        for (i, &(vantage, domain)) in volleys.iter().enumerate() {
            let sport = 2048 + (i as u16) * 7;
            tls_volley(&mut lab, vantage, DOMAINS[domain], sport);
        }
        let spec = lab.oracle_spec();
        let captures = lab.net.take_captures();
        let report = tspu_netsim::oracle::Oracle::new(spec).check(&captures);
        prop_assert!(report.is_clean(), "oracle violations on fault-free trace:\n{report}");
        prop_assert!(report.calls_audited > 0, "trace never crossed a device");
    }
}
