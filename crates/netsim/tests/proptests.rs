//! Property-based tests for the simulator: determinism, delivery
//! conservation, and exact TTL semantics on arbitrary route shapes.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::{Network, Route, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn packet(ttl: u8, tag: u8) -> Vec<u8> {
    let mut repr = Ipv4Repr::new(A, B, Protocol::Other(0xfd), 1);
    repr.ttl = ttl;
    repr.build(&[tag])
}

fn hops(n: usize) -> Vec<Ipv4Addr> {
    (0..n as u32).map(|i| Ipv4Addr::from(0x0aff_0000 + i)).collect()
}

proptest! {
    /// A packet with TTL t crosses an n-router path iff t > n; otherwise
    /// exactly one ICMP time-exceeded returns, from router t.
    #[test]
    fn ttl_semantics_exact(n in 0usize..20, ttl in 1u8..25) {
        let mut net = Network::new(Duration::from_millis(1));
        let a = net.add_host(A);
        let b = net.add_host(B);
        let route_hops = hops(n);
        net.set_route_symmetric(a, b, Route::through(&route_hops));
        net.send_from(a, packet(ttl, 1));
        net.run_until_idle();
        let delivered = net.take_inbox(b);
        let returned = net.take_inbox(a);
        if usize::from(ttl) > n {
            prop_assert_eq!(delivered.len(), 1);
            prop_assert_eq!(returned.len(), 0);
            let view = Ipv4Packet::new_checked(&delivered[0].1[..]).unwrap();
            prop_assert_eq!(usize::from(view.ttl()), usize::from(ttl) - n);
        } else {
            prop_assert_eq!(delivered.len(), 0);
            prop_assert_eq!(returned.len(), 1);
            let view = Ipv4Packet::new_checked(&returned[0].1[..]).unwrap();
            prop_assert_eq!(view.src_addr(), route_hops[usize::from(ttl) - 1]);
        }
    }

    /// Delivery conservation: k sends on a plain route produce exactly k
    /// deliveries, in send order, each after hops+1 latencies.
    #[test]
    fn delivery_conservation(n in 0usize..12, k in 1usize..30) {
        let mut net = Network::new(Duration::from_millis(1));
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&hops(n)));
        for i in 0..k {
            net.send_from(a, packet(64, i as u8));
        }
        net.run_until_idle();
        let delivered = net.take_inbox(b);
        prop_assert_eq!(delivered.len(), k);
        for (i, (time, bytes)) in delivered.iter().enumerate() {
            let view = Ipv4Packet::new_checked(&bytes[..]).unwrap();
            prop_assert_eq!(view.payload()[0] as usize, i, "FIFO order");
            prop_assert_eq!(*time, Time::from_micros(1_000 * (n as u64 + 1)));
        }
    }

    /// Determinism: two identical runs produce byte-identical captures.
    #[test]
    fn deterministic_replay(n in 0usize..8, sends in proptest::collection::vec(1u8..64, 1..20)) {
        let run = |sends: &[u8]| {
            let mut net = Network::new(Duration::from_millis(1));
            let a = net.add_host(A);
            let b = net.add_host(B);
            net.set_route_symmetric(a, b, Route::through(&hops(n)));
            for &ttl in sends {
                net.send_from(a, packet(ttl, ttl));
            }
            net.run_until_idle();
            tspu_netsim::pcap::to_pcap_bytes(&net.take_captures())
        };
        prop_assert_eq!(run(&sends), run(&sends));
    }

    /// run_for never overshoots the requested deadline and processes
    /// everything due before it.
    #[test]
    fn run_for_is_exact(advance_ms in 1u64..10_000) {
        let mut net = Network::new(Duration::from_millis(1));
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::direct());
        net.send_from(a, packet(64, 9));
        net.run_for(Duration::from_millis(advance_ms));
        prop_assert_eq!(net.now(), Time::from_micros(advance_ms * 1_000));
        // The 1 ms delivery happened iff we advanced at least that far.
        prop_assert_eq!(net.take_inbox(b).len(), usize::from(advance_ms >= 1));
    }
}

proptest! {
    /// The timer wheel pops arbitrary interleaved schedules in exactly the
    /// order the old `BinaryHeap<Reverse<(time, seq)>>` scheduler did —
    /// including schedules that straddle the engagement threshold, collide
    /// on timestamps, and mix near hops with far timers.
    #[test]
    fn wheel_order_matches_binary_heap(
        ops in proptest::collection::vec((0u8..4, 0u64..6_000_000), 1..2_000),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        use tspu_netsim::TimerWheel;

        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (i, &(op, offset)) in ops.iter().enumerate() {
            if op == 0 && !heap.is_empty() {
                let a = wheel.pop();
                let Reverse((t, _, item)) = heap.pop().unwrap();
                prop_assert_eq!(a, Some((t, item)));
                now = t.as_micros();
            } else {
                // Mostly near-future pushes (within the ~4 ms window), with
                // the raw offset kept 1-in-8 so far timers hit the overflow
                // heap too.
                let ahead = if offset % 8 == 0 { offset } else { offset % 5_000 };
                let t = Time::from_micros(now + ahead);
                wheel.push(t, i as u32);
                heap.push(Reverse((t, seq, i as u32)));
                seq += 1;
            }
        }
        while let Some(Reverse((t, _, item))) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some((t, item)));
        }
        prop_assert!(wheel.pop().is_none());
    }
}
