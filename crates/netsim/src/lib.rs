//! # tspu-netsim
//!
//! A deterministic, discrete-event, packet-level network simulator — the
//! substrate on which the TSPU reproduction runs its experiments.
//!
//! Why a simulator and not sockets: the paper's methodology manipulates
//! *time* (timeout inference over 480-second sleeps, §5.3.3), *routing
//! asymmetry* (upstream-only devices, §7.1.1), and *hop position* (TTL-based
//! localization, §7). A virtual clock makes those experiments instantaneous
//! and exactly reproducible; explicit directed routes make asymmetric
//! visibility a first-class object instead of an accident of BGP.
//!
//! ## Model
//!
//! * A [`Network`] owns hosts, middleboxes, and directed routes.
//! * A **host** is an endpoint with one IPv4 address, an inbox that records
//!   every delivered packet, and optionally an [`Application`] that reacts
//!   to packets and timers (echo servers, TLS peers, …).
//! * A **route** from host A to host B is an ordered list of
//!   [`RouteStep`]s: a router hop (with an address, for traceroute
//!   TTL-exceeded replies) followed by zero or more middlebox attachments.
//!   Routes are directional and independently configurable, so the reverse
//!   path may differ — asymmetric routing "is common in Russia" (§7.1.1)
//!   and is what creates upstream-only TSPU visibility.
//! * A **middlebox** ([`Middlebox`]) sees each packet with the traffic
//!   [`Direction`] its placement declared, and maps one input packet to
//!   zero (drop), one (forward, possibly rewritten), or many (fragment
//!   queue flush) output packets.
//!
//! Packets are raw IPv4 datagram bytes from `tspu-wire`; nothing in the
//! simulator is out-of-band, so a middlebox can only act on what is
//! actually on the wire — the same constraint a real DPI has.

mod app;
mod capture;
mod middlebox;
mod network;
mod time;

pub mod fault;
pub mod nat;
pub mod oracle;
pub mod pcap;
pub mod wheel;

pub use app::{Application, Output};
pub use fault::{ChaosLink, DeviceFaults, FaultPlan, FlapSpec, LinkFaults, LinkStats};
pub use oracle::{ArmCandidate, ArmKind, DeviceAudit, Oracle, OracleReport, OracleSpec};
pub use capture::{CaptureRecord, TracePoint};
pub use middlebox::{AsAny, Direction, Middlebox, MiddleboxId, MiddleboxImage, Verdict};
pub use network::{HostId, MiddleboxHandle, Network, NetworkImage, Route, RouteId, RouteStep};
pub use time::Time;
pub use wheel::TimerWheel;
