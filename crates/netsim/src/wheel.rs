//! The event scheduler behind [`crate::Network`]: a hierarchical timer
//! wheel — near-future microsecond buckets plus an overflow heap for far
//! timers — that replaces the old `BinaryHeap<Reverse<Event>>` priority
//! queue.
//!
//! ## Why a wheel
//!
//! A binary heap pays O(log n) per schedule and per pop, with a pointer
//! walk that misses cache at every level. At the population scale this
//! repo now drives (10⁵–10⁶ packets in flight), `log n` is ~20 and the
//! scheduler becomes the simulator's dominant cost. Virtual time makes a
//! wheel almost free instead: event times are discrete microseconds,
//! nearly all of them within a few hop-latencies of `now`, so a ring of
//! one-microsecond buckets covers the near future and schedule/pop become
//! O(1) array operations. The rare far-future event (an idle-timeout probe
//! sleeping 480 s, a diurnal load tick) goes to a conventional heap whose
//! size stays tiny.
//!
//! ## Ordering guarantee
//!
//! The wheel reproduces the heap's total order **byte for byte**: events
//! pop in strictly increasing `(time, seq)` order, where `seq` is the
//! monotone insertion counter. Three facts make this work:
//!
//! 1. Each bucket covers exactly one microsecond, and the window invariant
//!    (every wheel-resident event's time lies in `[base, base + SLOTS)`,
//!    with `base` only ever advancing) means a bucket never mixes two
//!    distinct timestamps. Pushes append, `seq` is monotone, so a bucket
//!    is FIFO-ordered by `seq` for free.
//! 2. The overflow heap orders its own events by `(time, seq)` exactly as
//!    the old scheduler did.
//! 3. A pop compares the wheel's head `(time, seq)` against the heap's
//!    head `(time, seq)` and takes the smaller — no invariant about which
//!    side "should" win is needed; the comparison is the proof.
//!
//! The differential proptest at the bottom drives arbitrary interleaved
//! push/pop schedules through the wheel and a reference heap and asserts
//! identical pop sequences.
//!
//! ## Engagement
//!
//! The bucket array costs ~128 KiB. A forked scenario cell that moves
//! fourteen packets must not pay that, so the wheel starts *disengaged* —
//! everything goes through the overflow heap, byte-identical to the old
//! scheduler — and the buckets are allocated only once the pending-event
//! count crosses [`ENGAGE_THRESHOLD`]. Small labs never engage; a
//! million-flow soak engages once and amortizes the allocation over
//! millions of events. [`TimerWheel::shrink`] releases the buckets (and
//! excess heap capacity) again so a drained engine can be kept around
//! without pinning the soak's peak memory.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// One scheduled item: its due time, the monotone insertion counter that
/// breaks ties, and the caller's payload.
struct Entry<T> {
    time: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Number of near-future buckets; must be a power of two. At one bucket
/// per microsecond this is a ~4 ms window — several hop latencies deep, so
/// the packet-in-flight population lives entirely in the wheel while
/// application timers (hundreds of ms to hundreds of s) overflow to the
/// heap.
const SLOTS: usize = 4096;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// Pending-event count at which the bucket array is allocated. Below this
/// the queue is exactly the old binary heap; a scenario cell moving a
/// handful of packets never pays for buckets it would not fill.
const ENGAGE_THRESHOLD: usize = 1024;

/// The scheduler: near-future microsecond buckets plus an overflow heap,
/// popping in strictly increasing `(time, seq)` order.
pub struct TimerWheel<T> {
    /// Near-future buckets, indexed by `time_us & SLOT_MASK`. Empty until
    /// the queue engages ([`ENGAGE_THRESHOLD`]).
    slots: Vec<VecDeque<Entry<T>>>,
    /// Occupancy bitmap over `slots`, one bit per bucket, so a pop skips
    /// empty buckets a word at a time.
    occupied: Vec<u64>,
    /// Events currently resident in the wheel (not the heap).
    wheel_len: usize,
    /// Lower bound of the wheel window in microseconds. Only advances.
    base_us: u64,
    /// Far-future (and, defensively, any out-of-window) events, ordered by
    /// `(time, seq)` exactly like the pre-wheel scheduler.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Monotone insertion counter; the deterministic tiebreaker.
    next_seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty, disengaged queue. Allocates nothing.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            slots: Vec::new(),
            occupied: Vec::new(),
            wheel_len: 0,
            base_us: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Total pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequence number the next push will get. Exposed so the engine's
    /// fork bookkeeping stays exact.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of occupied near-future buckets — the wheel-bitmap popcount.
    /// This is the occupancy statistic the engine samples into
    /// `netsim.queue_depth`: unlike [`TimerWheel::len`] it measures how
    /// *spread out* the pending population is across the window, which is
    /// what bounds a pop's bucket scan. Zero while disengaged.
    pub fn occupied_slots(&self) -> usize {
        self.occupied.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Events currently parked in the overflow heap (far timers and
    /// out-of-window pushes).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Schedules `item` at `time`, after everything already scheduled at
    /// the same instant.
    pub fn push(&mut self, time: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, item };
        if self.is_empty() {
            // Nothing pending constrains the window: snap it forward so
            // the near future around this event is wheel-eligible. `base`
            // still never moves backward.
            self.base_us = self.base_us.max(time.as_micros());
        }
        if self.slots.is_empty() {
            if self.len() + 1 > ENGAGE_THRESHOLD {
                self.engage();
            } else {
                self.overflow.push(Reverse(entry));
                return;
            }
        }
        let t_us = time.as_micros();
        if t_us < self.base_us || t_us - self.base_us >= SLOTS as u64 {
            // Out of window (far timer, or a defensive below-base push):
            // the heap handles it; the pop-side comparison keeps order.
            self.overflow.push(Reverse(entry));
            return;
        }
        let slot = (t_us & SLOT_MASK) as usize;
        self.slots[slot].push_back(entry);
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        self.wheel_len += 1;
    }

    /// Allocates the bucket array. Existing heap residents stay where they
    /// are — the pop-side comparison orders across both halves — so
    /// engagement is a pure accelerator, not a migration.
    fn engage(&mut self) {
        self.slots = (0..SLOTS).map(|_| VecDeque::new()).collect();
        self.occupied = vec![0u64; SLOTS / 64];
    }

    /// Index of the first occupied bucket at or circularly after
    /// `from_slot`, or `None` when the wheel half is empty.
    fn next_occupied(&self, from_slot: usize) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let words = self.occupied.len();
        let start_word = from_slot >> 6;
        let first = self.occupied[start_word] & (!0u64 << (from_slot & 63));
        if first != 0 {
            return Some((start_word << 6) + first.trailing_zeros() as usize);
        }
        for i in 1..=words {
            let w = (start_word + i) % words;
            if self.occupied[w] != 0 {
                return Some((w << 6) + self.occupied[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// `(time, seq)` of the wheel half's head, plus its bucket index.
    fn wheel_head(&self) -> Option<(Time, u64, usize)> {
        let base_slot = (self.base_us & SLOT_MASK) as usize;
        let slot = self.next_occupied(base_slot)?;
        let head = self.slots[slot].front().expect("occupied bit without entry");
        Some((head.time, head.seq, slot))
    }

    /// Due time of the next event, without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        match (self.wheel_head(), self.overflow.peek()) {
            (Some((wt, ws, _)), Some(Reverse(h))) => {
                Some(if (wt, ws) <= (h.time, h.seq) { wt } else { h.time })
            }
            (Some((wt, _, _)), None) => Some(wt),
            (None, Some(Reverse(h))) => Some(h.time),
            (None, None) => None,
        }
    }

    /// The next event, without popping it.
    pub fn peek(&self) -> Option<(Time, &T)> {
        match (self.wheel_head(), self.overflow.peek()) {
            (Some((wt, ws, slot)), Some(Reverse(h))) => {
                if (wt, ws) <= (h.time, h.seq) {
                    let head = self.slots[slot].front().expect("occupied bucket");
                    Some((head.time, &head.item))
                } else {
                    Some((h.time, &h.item))
                }
            }
            (Some((_, _, slot)), None) => {
                let head = self.slots[slot].front().expect("occupied bucket");
                Some((head.time, &head.item))
            }
            (None, Some(Reverse(h))) => Some((h.time, &h.item)),
            (None, None) => None,
        }
    }

    /// Pops the earliest event — smallest `(time, seq)` across both
    /// halves.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let from_wheel = match (self.wheel_head(), self.overflow.peek()) {
            (Some((wt, ws, _)), Some(Reverse(h))) => (wt, ws) <= (h.time, h.seq),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_wheel {
            let (time, _, slot) = self.wheel_head().expect("wheel head vanished");
            let entry = self.slots[slot].pop_front().expect("occupied bucket");
            if self.slots[slot].is_empty() {
                self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
            }
            self.wheel_len -= 1;
            // The popped event was the global minimum, so every remaining
            // wheel resident is at or after it: the window may advance.
            self.base_us = self.base_us.max(time.as_micros());
            Some((time, entry.item))
        } else {
            let Reverse(entry) = self.overflow.pop().expect("peeked overflow entry");
            self.base_us = self.base_us.max(entry.time.as_micros());
            Some((entry.time, entry.item))
        }
    }

    /// Pops the next event only if `pred` accepts it — the batched-dispatch
    /// hook: the engine drains a run of same-instant, same-leg hops without
    /// committing to pop whatever comes after the run.
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &T) -> bool) -> Option<(Time, T)> {
        let (time, item) = self.peek()?;
        if pred(time, item) {
            self.pop()
        } else {
            None
        }
    }

    /// Drops every pending event, keeping allocated capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied.fill(0);
        self.wheel_len = 0;
        self.overflow.clear();
    }

    /// Releases the bucket array and excess heap capacity — the
    /// post-soak diet. The queue reverts to the disengaged (pure-heap)
    /// state and re-engages on demand; pending events survive.
    ///
    /// # Panics
    /// Never; safe on an empty or never-engaged queue.
    pub fn shrink(&mut self) {
        if !self.slots.is_empty() {
            // Move any wheel residents to the heap before dropping the
            // buckets. Their `(time, seq)` tags ride along, so order is
            // unaffected.
            for slot in &mut self.slots {
                while let Some(entry) = slot.pop_front() {
                    self.overflow.push(Reverse(entry));
                }
            }
            self.slots = Vec::new();
            self.occupied = Vec::new();
            self.wheel_len = 0;
        }
        self.overflow.shrink_to_fit();
    }

    /// Approximate heap bytes retained by the queue's own structures
    /// (buckets, bitmap, overflow arena) — the number the soak-footprint
    /// tests watch. Excludes per-item payload allocations.
    pub fn capacity_bytes(&self) -> usize {
        let slot_bytes: usize = self
            .slots
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<Entry<T>>())
            .sum();
        self.slots.capacity() * std::mem::size_of::<VecDeque<Entry<T>>>()
            + slot_bytes
            + self.occupied.capacity() * std::mem::size_of::<u64>()
            + self.overflow.capacity() * std::mem::size_of::<Reverse<Entry<T>>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference scheduler: the exact structure the wheel replaced.
    struct HeapRef<T> {
        heap: BinaryHeap<Reverse<Entry<T>>>,
        next_seq: u64,
    }

    impl<T> HeapRef<T> {
        fn new() -> Self {
            HeapRef { heap: BinaryHeap::new(), next_seq: 0 }
        }
        fn push(&mut self, time: Time, item: T) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Reverse(Entry { time, seq, item }));
        }
        fn pop(&mut self) -> Option<(Time, T)> {
            self.heap.pop().map(|Reverse(e)| (e.time, e.item))
        }
    }

    #[test]
    fn fifo_within_one_instant() {
        let mut w = TimerWheel::new();
        for i in 0..10u32 {
            w.push(Time::from_micros(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn far_timers_interleave_with_near_hops() {
        let mut w = TimerWheel::new();
        w.push(Time::from_secs(480), 'z'); // far: overflow
        w.push(Time::from_micros(1000), 'a'); // near
        w.push(Time::from_micros(2000), 'b');
        assert_eq!(w.pop().unwrap().1, 'a');
        assert_eq!(w.pop().unwrap().1, 'b');
        assert_eq!(w.pop().unwrap().1, 'z');
        assert!(w.pop().is_none());
    }

    #[test]
    fn engagement_preserves_order_across_halves() {
        let mut w = TimerWheel::new();
        let mut r = HeapRef::new();
        // Fill past the engage threshold with colliding timestamps, then
        // keep pushing after engagement at the same instants.
        for i in 0..(ENGAGE_THRESHOLD as u64 + 500) {
            let t = Time::from_micros(i % 97);
            w.push(t, i);
            r.push(t, i);
        }
        loop {
            let (a, b) = (w.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut w = TimerWheel::new();
        let mut r = HeapRef::new();
        let mut now = 0u64;
        // A deterministic but irregular schedule: pops advance `now`, and
        // pushes land between 0 and ~5 ms ahead (crossing the window
        // boundary both ways).
        let mut x = 0x2545f4914f6cdd1du64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if step % 3 == 0 || w.is_empty() {
                let ahead = x % 5_000;
                let t = Time::from_micros(now + ahead);
                w.push(t, step);
                r.push(t, step);
            } else {
                let (a, b) = (w.pop(), r.pop());
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_micros();
                }
            }
        }
        loop {
            let (a, b) = (w.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn shrink_releases_buckets_and_keeps_events() {
        let mut w = TimerWheel::new();
        for i in 0..(ENGAGE_THRESHOLD as u64 * 4) {
            w.push(Time::from_micros(i), i);
        }
        assert!(w.capacity_bytes() > 100 * 1024, "soak should engage the wheel");
        w.shrink();
        let order: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(_, i)| i)).collect();
        assert_eq!(order.len(), ENGAGE_THRESHOLD * 4);
        assert!(order.windows(2).all(|p| p[0] < p[1]));
        w.shrink();
        assert!(
            w.capacity_bytes() < 64 * 1024,
            "post-drain shrink retained {} bytes",
            w.capacity_bytes()
        );
    }

    #[test]
    fn occupancy_tracks_buckets_not_events() {
        let mut w = TimerWheel::new();
        // Disengaged: everything in the heap, no buckets occupied.
        for i in 0..10u64 {
            w.push(Time::from_micros(i % 3), i);
        }
        assert_eq!(w.occupied_slots(), 0);
        assert_eq!(w.overflow_len(), 10);
        // Engage: colliding timestamps share buckets, so occupancy counts
        // distinct instants, not pending events.
        for i in 0..(ENGAGE_THRESHOLD as u64 + 64) {
            w.push(Time::from_micros(i % 7), i);
        }
        assert!(w.occupied_slots() <= 7);
        assert!(w.occupied_slots() > 0);
        assert!(w.occupied_slots() + w.overflow_len() <= w.len());
        while w.pop().is_some() {}
        assert_eq!(w.occupied_slots(), 0);
        assert_eq!(w.overflow_len(), 0);
    }

    #[test]
    fn peek_agrees_with_pop() {
        let mut w = TimerWheel::new();
        w.push(Time::from_micros(3000), 'c');
        w.push(Time::from_micros(1), 'a');
        w.push(Time::from_micros(1), 'b');
        while let Some(t) = w.peek_time() {
            let (pt, item) = {
                let (pt, item) = w.peek().unwrap();
                (pt, *item)
            };
            assert_eq!(t, pt);
            let (qt, qitem) = w.pop().unwrap();
            assert_eq!((qt, qitem), (pt, item));
        }
    }
}
