//! The discrete-event engine: hosts, routes, and the event loop.

use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use tspu_obs::{CounterId, GaugeId, HistogramId, Registry, Snapshot, Tracer};
use tspu_wire::fasthash::{FxHashMap, FxHasher};
use tspu_wire::icmpv4::Icmpv4Repr;
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};

use crate::app::{Application, Output};
use crate::capture::{CaptureRecord, TracePoint};
use crate::middlebox::{Direction, Middlebox, MiddleboxId, MiddleboxImage, Verdict};
use crate::time::Time;
use crate::wheel::TimerWheel;

/// Index of a host registered with a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// One step of a directed route: a router hop followed by the middleboxes
/// sitting on the link *after* that hop.
///
/// TTL semantics follow traceroute: a packet sent with TTL `k` expires at
/// the `k`-th router, so it reaches the devices after router `k` only with
/// TTL ≥ `k + 1`. This matches the paper's "TSPU device exists between hop
/// N and N+1" reporting (§7.1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RouteStep {
    /// The router's address, used as the source of ICMP time-exceeded.
    pub hop_addr: Ipv4Addr,
    /// Middleboxes on the link after this router, each with the traffic
    /// direction this route represents from the device's point of view.
    pub devices: Vec<(MiddleboxId, Direction)>,
}

impl RouteStep {
    /// A plain router hop with no devices.
    pub fn router(hop_addr: Ipv4Addr) -> RouteStep {
        RouteStep { hop_addr, devices: Vec::new() }
    }

    /// A router hop with one device on its outgoing link.
    pub fn with_device(hop_addr: Ipv4Addr, device: MiddleboxId, direction: Direction) -> RouteStep {
        RouteStep { hop_addr, devices: vec![(device, direction)] }
    }
}

/// A directed path between two hosts.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Route {
    pub steps: Vec<RouteStep>,
}

/// Index of an interned [`Route`] in a [`Network`]'s route arena.
///
/// Routes are deduplicated on installation: every (src, dst) pair whose
/// path is structurally identical — common in topologies where a cluster
/// of clients shares one provider path — maps to the same arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteId(u32);

/// A typed, copyable reference to a middlebox owned by a [`Network`].
///
/// The network owns middleboxes as `Box<dyn Middlebox>`; experiments that
/// reconfigure a device mid-run (the March 4 policy switch from throttling
/// to RST, §5.2) or inspect its counters afterwards keep one of these and
/// borrow the concrete device back through [`Network::middlebox`] /
/// [`Network::middlebox_mut`]. This replaces the old `Rc<RefCell<…>>`
/// `Shared<M>` wrapper, which made the whole simulator `!Send`.
pub struct MiddleboxHandle<M> {
    id: MiddleboxId,
    _concrete: PhantomData<fn() -> M>,
}

impl<M> Clone for MiddleboxHandle<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for MiddleboxHandle<M> {}

impl<M> std::fmt::Debug for MiddleboxHandle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MiddleboxHandle({})", self.id.0)
    }
}

impl<M> MiddleboxHandle<M> {
    /// The untyped id, for route attachments.
    pub fn id(self) -> MiddleboxId {
        self.id
    }
}

impl Route {
    /// A direct path with no intermediate routers.
    pub fn direct() -> Route {
        Route { steps: Vec::new() }
    }

    /// A path through the given plain router hops.
    pub fn through(hops: &[Ipv4Addr]) -> Route {
        Route { steps: hops.iter().map(|&a| RouteStep::router(a)).collect() }
    }
}

struct HostState {
    addr: Ipv4Addr,
    inbox: Vec<(Time, Vec<u8>)>,
    app: Option<Box<dyn Application>>,
}

#[derive(Debug)]
enum EventKind {
    /// A packet arriving at route step `step` of the (src, dst) route.
    Hop { src: HostId, dst: HostId, step: usize, packet: Vec<u8> },
    /// Final delivery to a host interface.
    Deliver { dst: HostId, packet: Vec<u8> },
    /// A host transmission (possibly delayed by an application).
    SendFrom { host: HostId, packet: Vec<u8> },
    /// An application timer.
    Timer { host: HostId },
    /// A scheduled routing-table flip: at its instant, the (src, dst)
    /// entry starts resolving to `rid`. Packets already in flight keep the
    /// route id they were scheduled with — mirroring how a BGP path change
    /// affects new traffic, not packets already past the decision point.
    Reroute { src: HostId, dst: HostId, rid: RouteId },
}

/// The deterministic simulator. See the crate docs for the model.
///
/// The topology half — address map, route table, interned route arena —
/// lives behind [`Arc`]s so [`Network::image`]/[`NetworkImage::fork`] can
/// share it across forked copies without rebuilding it. Mutation goes
/// through [`Arc::make_mut`], so a network that never forks (or a fork
/// that re-routes after forking) behaves exactly as before, paying one
/// copy-on-write clone of the touched table.
pub struct Network {
    now: Time,
    /// The event scheduler: a timer wheel whose internal monotone sequence
    /// counter reproduces the old `BinaryHeap<Reverse<Event>>` total order
    /// `(time, seq)` byte for byte. See [`crate::wheel`].
    queue: TimerWheel<EventKind>,
    /// Events popped from the queue so far. A plain field, not an obs
    /// counter: load drivers divide wall time by it for per-event latency,
    /// which must work in obs-disabled builds too (where
    /// [`Network::events_processed`] reads 0).
    events_popped: u64,
    hosts: Vec<HostState>,
    addr_map: Arc<FxHashMap<Ipv4Addr, HostId>>,
    routes: Arc<FxHashMap<(HostId, HostId), RouteId>>,
    route_arena: Arc<Vec<Route>>,
    /// Route hash → arena slots with that hash, for interning dedup.
    route_intern: Arc<FxHashMap<u64, Vec<RouteId>>>,
    middleboxes: Vec<Box<dyn Middlebox>>,
    hop_latency: Duration,
    capture_enabled: bool,
    captures: Vec<CaptureRecord>,
    /// Engine metrics under the `netsim.` scope. In an obs-disabled build
    /// this (and the tracer) is zero-sized and every recording call below
    /// compiles away.
    registry: Registry,
    tracer: Tracer,
    c_events: CounterId,
    c_captures: CounterId,
    h_queue_depth: HistogramId,
    /// Last-value mirror of [`Network::events_popped`]: merging forked
    /// cells in index order keeps the final cell's count, matching how
    /// the plain field is read after a run.
    g_events_popped: GaugeId,
    /// High-water pending-event count (`TimerWheel::len`).
    g_wheel_depth: GaugeId,
    /// High-water overflow-heap size (`TimerWheel::overflow_len`).
    g_wheel_overflow: GaugeId,
    /// Scheduled route flips applied ([`Network::schedule_reroute`]) —
    /// the churn rate the tomography campaigns read back.
    c_route_flips: CounterId,
}

impl Network {
    /// Creates a network with the given per-hop latency.
    pub fn new(hop_latency: Duration) -> Network {
        let mut registry = Registry::scoped("netsim");
        let c_events = registry.counter("events_processed");
        let c_captures = registry.counter("captures_recorded");
        let h_queue_depth = registry.histogram("queue_depth");
        let g_events_popped = registry.gauge_last("events_popped");
        let g_wheel_depth = registry.gauge("wheel_depth");
        let g_wheel_overflow = registry.gauge("wheel_overflow");
        let c_route_flips = registry.counter("route_flips");
        Network {
            now: Time::ZERO,
            queue: TimerWheel::new(),
            events_popped: 0,
            hosts: Vec::new(),
            addr_map: Arc::default(),
            routes: Arc::default(),
            route_arena: Arc::default(),
            route_intern: Arc::default(),
            middleboxes: Vec::new(),
            hop_latency,
            capture_enabled: true,
            captures: Vec::new(),
            registry,
            tracer: Tracer::new(),
            c_events,
            c_captures,
            h_queue_depth,
            g_events_popped,
            g_wheel_depth,
            g_wheel_overflow,
            c_route_flips,
        }
    }

    /// Creates a network with a 1 ms per-hop latency.
    pub fn with_default_latency() -> Network {
        Network::new(Duration::from_millis(1))
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed so far (for throughput benches). A view
    /// over the `netsim.events_processed` registry counter; reads 0 in an
    /// obs-disabled build.
    pub fn events_processed(&self) -> u64 {
        self.registry.counter_value(self.c_events)
    }

    /// Events popped from the scheduler so far — like
    /// [`Network::events_processed`] but independent of the `obs` feature,
    /// so wall-latency-per-event math works in any build.
    pub fn events_popped(&self) -> u64 {
        self.events_popped
    }

    /// Events currently scheduled (wheel slots + overflow heap) — the
    /// instantaneous scheduler depth, independent of the `obs` feature, so
    /// soak timelines can sample it per slice in any build.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Enables or disables virtual-time span tracing (`hop` / `deliver`
    /// spans). Off by default so the event loop pays only a branch.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Captures the engine's metrics (no spans) as a [`Snapshot`].
    pub fn obs_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Captures the engine's metrics *and* drains recorded spans.
    pub fn take_obs(&mut self) -> Snapshot {
        // Stamp the scheduler gauges with their end-of-run values so the
        // exported snapshot reflects the final state even when the run was
        // too short for the sampled path to fire.
        self.registry.set(self.g_events_popped, self.events_popped as i64);
        self.registry.set_max(self.g_wheel_depth, self.queue.len() as i64);
        self.registry.set_max(self.g_wheel_overflow, self.queue.overflow_len() as i64);
        let mut snap = self.registry.snapshot();
        self.tracer.drain_into(&mut snap);
        snap
    }

    /// The engine's registry, for attaching extra metrics in tests.
    pub fn obs_registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Enables or disables packet capture. Large scans disable it to bound
    /// memory; inboxes still record deliveries.
    pub fn set_capture(&mut self, enabled: bool) {
        self.capture_enabled = enabled;
    }

    /// Registers a host with the given address.
    ///
    /// # Panics
    /// Panics if the address is already registered.
    pub fn add_host(&mut self, addr: Ipv4Addr) -> HostId {
        let id = HostId(self.hosts.len());
        let prev = Arc::make_mut(&mut self.addr_map).insert(addr, id);
        assert!(prev.is_none(), "duplicate host address {addr}");
        self.hosts.push(HostState { addr, inbox: Vec::new(), app: None });
        id
    }

    /// Registers a host with an application attached.
    pub fn add_host_with_app(&mut self, addr: Ipv4Addr, app: Box<dyn Application>) -> HostId {
        let id = self.add_host(addr);
        self.hosts[id.0].app = Some(app);
        id
    }

    /// Attaches (or replaces) the application on a host.
    pub fn set_app(&mut self, host: HostId, app: Box<dyn Application>) {
        self.hosts[host.0].app = Some(app);
    }

    /// The address of a host.
    pub fn host_addr(&self, host: HostId) -> Ipv4Addr {
        self.hosts[host.0].addr
    }

    /// Looks a host up by address.
    pub fn host_by_addr(&self, addr: Ipv4Addr) -> Option<HostId> {
        self.addr_map.get(&addr).copied()
    }

    /// Registers a middlebox, returning its id for route attachments.
    pub fn add_middlebox(&mut self, mb: Box<dyn Middlebox>) -> MiddleboxId {
        let id = MiddleboxId(self.middleboxes.len());
        self.middleboxes.push(mb);
        id
    }

    /// Registers a concrete middlebox, returning a typed handle that can
    /// borrow it back after the network takes ownership. Use
    /// [`MiddleboxHandle::id`] for route attachments.
    pub fn install_middlebox<M: Middlebox + 'static>(&mut self, mb: M) -> MiddleboxHandle<M> {
        let id = self.add_middlebox(Box::new(mb));
        MiddleboxHandle { id, _concrete: PhantomData }
    }

    /// Borrows a middlebox at its concrete type.
    ///
    /// # Panics
    /// Panics if the handle came from a different network whose slot holds
    /// another type — handles are only meaningful for the network that
    /// created them.
    pub fn middlebox<M: Middlebox + 'static>(&self, handle: MiddleboxHandle<M>) -> &M {
        let mb: &dyn Middlebox = &*self.middleboxes[handle.id.0];
        mb.as_any().downcast_ref::<M>().expect("middlebox handle type mismatch")
    }

    /// Mutably borrows a middlebox at its concrete type.
    ///
    /// # Panics
    /// Panics on handle/slot type mismatch, as in [`Network::middlebox`].
    pub fn middlebox_mut<M: Middlebox + 'static>(&mut self, handle: MiddleboxHandle<M>) -> &mut M {
        let mb: &mut dyn Middlebox = &mut *self.middleboxes[handle.id.0];
        mb.as_any_mut().downcast_mut::<M>().expect("middlebox handle type mismatch")
    }

    /// Runs a closure with mutable access to a middlebox — the explicit
    /// mid-run reconfiguration API.
    pub fn with_middlebox_mut<M: Middlebox + 'static, R>(
        &mut self,
        handle: MiddleboxHandle<M>,
        f: impl FnOnce(&mut M) -> R,
    ) -> R {
        f(self.middlebox_mut(handle))
    }

    /// Interns a route, returning the arena slot shared by all
    /// structurally identical routes. Re-interning a route already in the
    /// arena — the common case under routing churn, where paths flip back
    /// and forth between a small set of alternatives — returns the
    /// existing slot without growing the arena.
    ///
    /// Public so topology builders can pre-intern alternate paths (e.g. a
    /// backup provider route) and later install them by id via
    /// [`Network::schedule_reroute`]; ids obtained before
    /// [`Network::image`] stay valid in every fork, since forks share the
    /// arena.
    pub fn intern_route(&mut self, route: Route) -> RouteId {
        let mut hasher = FxHasher::default();
        route.hash(&mut hasher);
        let key = hasher.finish();
        if let Some(ids) = self.route_intern.get(&key) {
            for &id in ids {
                if self.route_arena[id.0 as usize] == route {
                    return id;
                }
            }
        }
        let id = RouteId(u32::try_from(self.route_arena.len()).expect("route arena overflow"));
        Arc::make_mut(&mut self.route_arena).push(route);
        Arc::make_mut(&mut self.route_intern).entry(key).or_default().push(id);
        id
    }

    /// Number of distinct routes in the arena (after interning).
    pub fn interned_routes(&self) -> usize {
        self.route_arena.len()
    }

    /// Installs the directed route from `src` to `dst`.
    pub fn set_route(&mut self, src: HostId, dst: HostId, route: Route) {
        let id = self.intern_route(route);
        Arc::make_mut(&mut self.routes).insert((src, dst), id);
    }

    /// Installs the same (mirrored) route in both directions: the reverse
    /// direction visits hops in reverse order with flipped device
    /// directions. Use [`Network::set_route`] twice for asymmetric paths.
    pub fn set_route_symmetric(&mut self, a: HostId, b: HostId, route: Route) {
        let mut reverse = Route { steps: route.steps.clone() };
        reverse.steps.reverse();
        for step in &mut reverse.steps {
            for (_, dir) in &mut step.devices {
                *dir = dir.flip();
            }
        }
        let forward = self.intern_route(route);
        let backward = self.intern_route(reverse);
        let routes = Arc::make_mut(&mut self.routes);
        routes.insert((a, b), forward);
        routes.insert((b, a), backward);
    }

    /// The route from `src` to `dst`, if installed.
    pub fn route(&self, src: HostId, dst: HostId) -> Option<&Route> {
        self.routes.get(&(src, dst)).map(|&id| &self.route_arena[id.0 as usize])
    }

    /// Removes the route between two hosts (both directions).
    pub fn clear_routes(&mut self, a: HostId, b: HostId) {
        let routes = Arc::make_mut(&mut self.routes);
        routes.remove(&(a, b));
        routes.remove(&(b, a));
    }

    /// Queues a packet for transmission from `host` at the current time.
    /// The destination is taken from the packet's IPv4 destination field.
    pub fn send_from(&mut self, host: HostId, packet: Vec<u8>) {
        // Fast path: when nothing is pending at the current instant the
        // send event would be dispatched next anyway, so run it inline and
        // skip the heap round-trip. Any queued event at `now` (an earlier
        // same-instant send) must keep its seq-order priority, so the
        // slow path stays for that case — and for capture/tracing runs,
        // where the event itself is observable.
        let head_later = match self.queue.peek_time() {
            None => true,
            Some(head_time) => head_time > self.now,
        };
        if head_later && self.fast_path() {
            self.do_send(host, packet);
            return;
        }
        self.push_event(self.now, EventKind::SendFrom { host, packet });
    }

    /// Schedules `on_timer` on `host`'s application after `delay` of
    /// virtual time — the bootstrap for self-driving applications (e.g. a
    /// policy updater firing registry deltas at scheduled timestamps)
    /// that otherwise only wake on their own requested timers.
    pub fn arm_timer(&mut self, host: HostId, delay: Duration) {
        self.push_event(self.now + delay, EventKind::Timer { host });
    }

    /// Schedules a routing-table flip: after `delay` of virtual time the
    /// directed (src, dst) entry resolves to `rid` — an interned route id
    /// from [`Network::intern_route`]. This is the churn primitive: a
    /// topology arms a whole flip schedule up front (like
    /// `PolicyUpdater`'s timer-driven deltas) and the event loop applies
    /// each flip at its exact instant, deterministically. The flip is a
    /// single map insert against the copy-on-write route table, so a
    /// forked network churns without touching its siblings.
    pub fn schedule_reroute(&mut self, delay: Duration, src: HostId, dst: HostId, rid: RouteId) {
        assert!(
            (rid.0 as usize) < self.route_arena.len(),
            "schedule_reroute: route id {} not in arena (len {})",
            rid.0,
            self.route_arena.len()
        );
        self.push_event(self.now + delay, EventKind::Reroute { src, dst, rid });
    }

    /// Immediately repoints the directed (src, dst) entry at an interned
    /// route — the synchronous form of [`Network::schedule_reroute`].
    pub fn apply_reroute(&mut self, src: HostId, dst: HostId, rid: RouteId) {
        assert!(
            (rid.0 as usize) < self.route_arena.len(),
            "apply_reroute: route id {} not in arena (len {})",
            rid.0,
            self.route_arena.len()
        );
        Arc::make_mut(&mut self.routes).insert((src, dst), rid);
        self.registry.inc(self.c_route_flips);
    }

    /// Drains the packets delivered to `host` so far.
    pub fn take_inbox(&mut self, host: HostId) -> Vec<(Time, Vec<u8>)> {
        std::mem::take(&mut self.hosts[host.0].inbox)
    }

    /// The capture log accumulated so far.
    pub fn captures(&self) -> &[CaptureRecord] {
        &self.captures
    }

    /// Drains the capture log.
    pub fn take_captures(&mut self) -> Vec<CaptureRecord> {
        std::mem::take(&mut self.captures)
    }

    /// Runs until no events remain. Panics after an absurd number of
    /// events (a ping-pong loop between applications).
    pub fn run_until_idle(&mut self) {
        let mut budget: u64 = 100_000_000;
        while let Some((time, kind)) = self.queue.pop() {
            self.now = time;
            self.events_popped += 1;
            self.dispatch_batched(kind);
            budget -= 1;
            assert!(budget > 0, "event budget exhausted: likely an application loop");
        }
    }

    /// Runs all events scheduled within the next `duration` of virtual
    /// time, then advances the clock to exactly `now + duration`.
    ///
    /// This is the time warp the timeout-inference experiments (§5.3.3)
    /// rely on: "SLEEP 480" costs nothing.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now + duration;
        while let Some(head_time) = self.queue.peek_time() {
            if head_time > deadline {
                break;
            }
            let (time, kind) = self.queue.pop().expect("peeked event");
            self.now = time;
            self.events_popped += 1;
            self.dispatch_batched(kind);
        }
        self.now = deadline;
    }

    /// Approximate heap bytes retained by the event scheduler's own
    /// structures — what the soak-footprint tests watch.
    pub fn event_queue_capacity_bytes(&self) -> usize {
        self.queue.capacity_bytes()
    }

    /// Releases the scheduler's excess capacity (wheel buckets, overflow
    /// arena) after a large run; pending events survive. See
    /// [`TimerWheel::shrink`].
    pub fn shrink_event_queue(&mut self) {
        self.queue.shrink();
    }

    fn push_event(&mut self, time: Time, kind: EventKind) {
        self.queue.push(time, kind);
    }

    fn capture(&mut self, point: TracePoint, bytes: &[u8]) {
        if self.capture_enabled {
            self.registry.inc(self.c_captures);
            self.captures.push(CaptureRecord { time: self.now, point, bytes: bytes.to_vec() });
        }
    }

    /// Per-event accounting, shared by the single-event and batched paths.
    fn note_event(&mut self) {
        self.registry.inc(self.c_events);
        // Scheduler health is sampled 1-in-64 on the event count: the
        // statistics keep their shape while the bitmap popcount and gauge
        // updates leave the per-event hot path. Event-count sampling is
        // deterministic — no thread-count leak. `queue_depth` records the
        // wheel-bitmap occupancy (occupied buckets), the quantity that
        // bounds a pop's bucket scan, rather than the raw pending count —
        // the pending count is covered by the depth gauge below.
        if self.registry.counter_value(self.c_events) & 63 == 0 {
            self.registry.record(self.h_queue_depth, self.queue.occupied_slots() as u64);
            self.registry.set(self.g_events_popped, self.events_popped as i64);
            self.registry.set_max(self.g_wheel_depth, self.queue.len() as i64);
            self.registry.set_max(self.g_wheel_overflow, self.queue.overflow_len() as i64);
        }
    }

    /// Dispatches one popped event. When it is a route hop on the fast
    /// path, drains the run of same-instant, same-leg hops queued behind it
    /// and processes the whole batch with the route resolved once — a
    /// population soak pushes thousands of packets through the same (src,
    /// dst, step) leg at the same instant, and the route/arena lookups
    /// dominate once the per-packet work is lean.
    ///
    /// Order is unchanged: the drained events are the consecutive smallest
    /// `(time, seq)` entries in the queue, and anything a batch member
    /// pushes gets a larger seq than every drained member, so the
    /// per-event engine would have processed the batch in exactly this
    /// sequence anyway.
    fn dispatch_batched(&mut self, kind: EventKind) {
        if let EventKind::Hop { src, dst, step, packet } = kind {
            if self.fast_path() {
                // Probing the queue head for a same-leg run costs a peek
                // per event; only population-scale queues can actually
                // contain such runs, so shallow queues (every paper-scale
                // lab) skip straight to the single-hop path.
                if self.queue.len() < 64 {
                    self.note_event();
                    self.do_hop(src, dst, step, packet);
                    return;
                }
                let now = self.now;
                let same_leg = |t: Time, k: &EventKind| {
                    t == now
                        && matches!(
                            k,
                            EventKind::Hop { src: s, dst: d, step: st, .. }
                                if *s == src && *d == dst && *st == step
                        )
                };
                // Batch storage is only materialized once a same-instant
                // follower actually exists; the lone-hop case — every hop
                // of every paper-scale workload — stays allocation-free.
                let Some((_, first)) = self.queue.pop_if(same_leg) else {
                    self.note_event();
                    self.do_hop(src, dst, step, packet);
                    return;
                };
                let EventKind::Hop { packet: second, .. } = first else { unreachable!() };
                self.events_popped += 1;
                let mut batch = vec![packet, second];
                while let Some((_, drained)) = self.queue.pop_if(same_leg) {
                    let EventKind::Hop { packet, .. } = drained else { unreachable!() };
                    self.events_popped += 1;
                    batch.push(packet);
                }
                self.do_hop_batch(src, dst, step, batch);
                return;
            }
            self.note_event();
            let now_us = self.now.as_micros();
            self.tracer.span("hop", "netsim", now_us, now_us);
            self.do_hop(src, dst, step, packet);
            return;
        }
        self.dispatch(kind);
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.note_event();
        // Spans use virtual time, which does not advance inside a handler,
        // so hop/deliver spans are instants marking where simulated time
        // was spent — byte-identical across thread counts by construction.
        let now_us = self.now.as_micros();
        match kind {
            EventKind::SendFrom { host, packet } => self.do_send(host, packet),
            EventKind::Hop { src, dst, step, packet } => {
                self.tracer.span("hop", "netsim", now_us, now_us);
                self.do_hop(src, dst, step, packet);
            }
            EventKind::Deliver { dst, packet } => {
                self.tracer.span("deliver", "netsim", now_us, now_us);
                self.do_deliver(dst, packet);
            }
            EventKind::Timer { host } => self.do_timer(host),
            EventKind::Reroute { src, dst, rid } => self.apply_reroute(src, dst, rid),
        }
    }

    fn do_send(&mut self, host: HostId, packet: Vec<u8>) {
        self.capture(TracePoint::HostTx(host), &packet);
        let Ok(view) = Ipv4Packet::new_checked(&packet[..]) else {
            // Unparseable garbage: dropped at the NIC. Still recorded, so
            // scan post-mortems can distinguish "never sent" from "sent
            // and eaten on the path".
            self.capture(TracePoint::Dropped { step: 0 }, &packet);
            return;
        };
        let dst_addr = view.dst_addr();
        let Some(dst) = self.addr_map.get(&dst_addr).copied() else {
            self.capture(TracePoint::Dropped { step: 0 }, &packet);
            return;
        };
        let time = self.now + self.hop_latency;
        if self.fast_path() {
            if let Some(&rid) = self.routes.get(&(host, dst)) {
                self.schedule_walk(host, dst, rid, 0, time, packet);
                return;
            }
            // No installed route: the hop handler's direct delivery, one
            // hop of latency later, without the intermediate event.
            self.push_event(time, EventKind::Deliver { dst, packet });
            return;
        }
        self.push_event(time, EventKind::Hop { src: host, dst, step: 0, packet });
    }

    fn do_hop(&mut self, src: HostId, dst: HostId, step: usize, packet: Vec<u8>) {
        // Copy out the per-step scalars up front; the device loop below
        // re-indexes the arena per device so no `&self` borrow is ever
        // live across the `&mut self.middleboxes` call (the arena is
        // append-only and `process` cannot reach it, so indices are
        // stable). This is what let the interned arena replace `Rc<Route>`
        // without cloning the device list per hop.
        let rid = match self.routes.get(&(src, dst)) {
            Some(&rid) => rid,
            None => {
                // No installed route: direct delivery.
                self.push_event(self.now, EventKind::Deliver { dst, packet });
                return;
            }
        };
        let (hop_addr, n_devices) = {
            let route = &self.route_arena[rid.0 as usize];
            if step >= route.steps.len() {
                self.push_event(self.now, EventKind::Deliver { dst, packet });
                return;
            }
            (route.steps[step].hop_addr, route.steps[step].devices.len())
        };
        self.hop_one(src, dst, rid, step, hop_addr, n_devices, packet);
    }

    /// [`Network::do_hop`] for a drained run of same-instant, same-leg hop
    /// events: the route table lookup, arena index, and step scalars are
    /// resolved once for the whole batch. Only reachable from the fast
    /// path, so the skipped per-event `hop` spans were no-ops anyway.
    fn do_hop_batch(&mut self, src: HostId, dst: HostId, step: usize, batch: Vec<Vec<u8>>) {
        let rid = match self.routes.get(&(src, dst)) {
            Some(&rid) => rid,
            None => {
                for packet in batch {
                    self.note_event();
                    self.push_event(self.now, EventKind::Deliver { dst, packet });
                }
                return;
            }
        };
        let (hop_addr, n_devices) = {
            let route = &self.route_arena[rid.0 as usize];
            if step >= route.steps.len() {
                for packet in batch {
                    self.note_event();
                    self.push_event(self.now, EventKind::Deliver { dst, packet });
                }
                return;
            }
            (route.steps[step].hop_addr, route.steps[step].devices.len())
        };
        for packet in batch {
            self.note_event();
            self.hop_one(src, dst, rid, step, hop_addr, n_devices, packet);
        }
    }

    /// The per-packet half of a hop: TTL handling, the middlebox chain,
    /// and scheduling whatever survives — everything after route
    /// resolution.
    #[allow(clippy::too_many_arguments)]
    fn hop_one(
        &mut self,
        src: HostId,
        dst: HostId,
        rid: RouteId,
        step: usize,
        hop_addr: Ipv4Addr,
        n_devices: usize,
        packet: Vec<u8>,
    ) {
        // Router: decrement TTL; expire with ICMP time-exceeded.
        let mut packet = packet;
        {
            let Ok(mut view) = Ipv4Packet::new_checked(&mut packet[..]) else {
                self.capture(TracePoint::Dropped { step }, &packet);
                return;
            };
            let ttl = view.ttl();
            if ttl <= 1 {
                let orig_src = view.src_addr();
                self.capture(TracePoint::Dropped { step }, &packet);
                self.emit_time_exceeded(hop_addr, orig_src, step);
                return;
            }
            view.set_ttl(ttl - 1);
            view.fill_checksum();
        }

        // Middleboxes on this link, chained in order. The single-packet
        // case — every hop of every non-fragmented flow — is copy-free:
        // the one buffer moves through the chain (rewritten in place or
        // replaced when a device says so) and on into the next hop event.
        // Device-level trace points bracket each call: an ingress record
        // for the packet as the device saw it, an egress record per packet
        // it forwarded. Extra queueing delay from Delay verdicts rides
        // along with each in-flight packet into the next hop event.
        let mut fanout: Option<Vec<Vec<u8>>> = None;
        let mut extra_delay = Duration::ZERO;
        let mut resume = n_devices;
        for di in 0..n_devices {
            let (mb_id, direction) = self.route_arena[rid.0 as usize].steps[step].devices[di];
            self.capture(TracePoint::DeviceIngress { device: mb_id, step }, &packet);
            match self.middleboxes[mb_id.0].process(self.now, direction, &mut packet) {
                Verdict::Pass => {
                    self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &packet);
                }
                Verdict::Drop => {
                    self.capture(TracePoint::Dropped { step }, &packet);
                    return;
                }
                Verdict::Replace(replacement) => {
                    packet = replacement;
                    self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &packet);
                }
                Verdict::Fanout(packets) => {
                    if packets.is_empty() {
                        self.capture(TracePoint::Dropped { step }, &packet);
                        return;
                    }
                    if self.capture_enabled {
                        for pkt in &packets {
                            self.capture(TracePoint::DeviceEgress { device: mb_id, step }, pkt);
                        }
                    }
                    fanout = Some(packets);
                    resume = di + 1;
                    break;
                }
                Verdict::Delay(delay) => {
                    extra_delay += delay;
                    self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &packet);
                }
            }
        }
        let Some(in_flight) = fanout else {
            let time = self.now + self.hop_latency + extra_delay;
            if self.fast_path() {
                self.schedule_walk(src, dst, rid, step + 1, time, packet);
                return;
            }
            if step + 1 >= self.route_arena[rid.0 as usize].steps.len() {
                self.push_event(time, EventKind::Deliver { dst, packet });
            } else {
                self.push_event(time, EventKind::Hop { src, dst, step: step + 1, packet });
            }
            return;
        };
        let mut in_flight: Vec<(Vec<u8>, Duration)> =
            in_flight.into_iter().map(|pkt| (pkt, extra_delay)).collect();

        // Rare multi-packet tail (a fragment train flushed mid-chain): the
        // remaining devices process each packet of the train, each packet
        // carrying its own accumulated queueing delay.
        for di in resume..n_devices {
            let (mb_id, direction) = self.route_arena[rid.0 as usize].steps[step].devices[di];
            let mut next = Vec::new();
            for (mut pkt, delay) in in_flight {
                self.capture(TracePoint::DeviceIngress { device: mb_id, step }, &pkt);
                match self.middleboxes[mb_id.0].process(self.now, direction, &mut pkt) {
                    Verdict::Pass => {
                        self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &pkt);
                        next.push((pkt, delay));
                    }
                    Verdict::Drop => self.capture(TracePoint::Dropped { step }, &pkt),
                    Verdict::Replace(replacement) => {
                        self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &replacement);
                        next.push((replacement, delay));
                    }
                    Verdict::Fanout(packets) => {
                        if packets.is_empty() {
                            self.capture(TracePoint::Dropped { step }, &pkt);
                        }
                        for out in packets {
                            self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &out);
                            next.push((out, delay));
                        }
                    }
                    Verdict::Delay(extra) => {
                        self.capture(TracePoint::DeviceEgress { device: mb_id, step }, &pkt);
                        next.push((pkt, delay + extra));
                    }
                }
            }
            in_flight = next;
            if in_flight.is_empty() {
                return;
            }
        }

        for (pkt, delay) in in_flight {
            let time = self.now + self.hop_latency + delay;
            self.push_event(time, EventKind::Hop { src, dst, step: step + 1, packet: pkt });
        }
    }

    /// Whether the engine may collapse device-free hop runs into a single
    /// scheduled event. Captures and span tracing both observe individual
    /// hops (`Dropped { step }` records on TTL death, per-event `hop`
    /// spans), so the collapse only engages when neither is watching.
    fn fast_path(&self) -> bool {
        !self.capture_enabled && !self.tracer.is_enabled()
    }

    /// Fast-path scheduler: the packet arrives at route step `step` at
    /// `time`. Walks the run of device-free steps from there — each one is
    /// pure bookkeeping, a TTL decrement at a known instant — and pushes
    /// the single event that ends the run: the first device-bearing hop, a
    /// TTL death, or final delivery. Arrival times, TTL deaths, and device
    /// processing instants are identical to the per-event path; only the
    /// internal event count shrinks, which is why callers must check
    /// [`Network::fast_path`] first.
    fn schedule_walk(
        &mut self,
        src: HostId,
        dst: HostId,
        rid: RouteId,
        step: usize,
        mut time: Time,
        mut packet: Vec<u8>,
    ) {
        let route = &self.route_arena[rid.0 as usize];
        let total = route.steps.len();
        let mut next = step;
        while next < total && route.steps[next].devices.is_empty() {
            next += 1;
        }
        let skipped = next - step;
        if skipped > 0 {
            if let Ok(mut view) = Ipv4Packet::new_checked(&mut packet[..]) {
                let ttl = usize::from(view.ttl());
                if ttl <= skipped {
                    // Dies mid-walk, exactly where the per-event path
                    // would kill it: at the hop reached with TTL 1.
                    let die_step = step + ttl - 1;
                    let die_time = time + self.hop_latency * (ttl as u32 - 1);
                    let hop_addr = route.steps[die_step].hop_addr;
                    let orig_src = view.src_addr();
                    self.emit_time_exceeded_at(die_time, hop_addr, orig_src, die_step);
                    return;
                }
                view.set_ttl((ttl - skipped) as u8);
                view.fill_checksum();
                time += self.hop_latency * skipped as u32;
            }
        }
        if next >= total {
            self.push_event(time, EventKind::Deliver { dst, packet });
        } else {
            self.push_event(time, EventKind::Hop { src, dst, step: next, packet });
        }
    }

    /// Sends an ICMP time-exceeded from a router back to the probe source.
    /// The reply is delivered directly (after a latency proportional to the
    /// distance) rather than routed hop-by-hop: the reverse path of an ICMP
    /// error is irrelevant to every experiment modeled here, and routers
    /// are not hosts.
    fn emit_time_exceeded(&mut self, hop_addr: Ipv4Addr, orig_src: Ipv4Addr, steps_back: usize) {
        self.emit_time_exceeded_at(self.now, hop_addr, orig_src, steps_back);
    }

    /// [`Network::emit_time_exceeded`] from an explicit TTL-death instant
    /// — the fast-forwarded hop walk kills packets at virtual times ahead
    /// of the event being dispatched.
    fn emit_time_exceeded_at(
        &mut self,
        at: Time,
        hop_addr: Ipv4Addr,
        orig_src: Ipv4Addr,
        steps_back: usize,
    ) {
        let Some(&src_host) = self.addr_map.get(&orig_src) else {
            return;
        };
        let icmp = Icmpv4Repr::TimeExceeded.build();
        let repr = Ipv4Repr::new(hop_addr, orig_src, Protocol::Icmp, icmp.len());
        let packet = repr.build(&icmp);
        let delay = Duration::from_micros(self.hop_latency.as_micros() as u64 * (steps_back as u64 + 1));
        let time = at + delay;
        self.push_event(time, EventKind::Deliver { dst: src_host, packet });
    }

    fn do_deliver(&mut self, dst: HostId, packet: Vec<u8>) {
        self.capture(TracePoint::HostRx(dst), &packet);
        if let Some(mut app) = self.hosts[dst.0].app.take() {
            let outputs = app.on_packet(self.now, &packet);
            self.hosts[dst.0].app = Some(app);
            self.hosts[dst.0].inbox.push((self.now, packet));
            self.apply_outputs(dst, outputs);
        } else {
            self.hosts[dst.0].inbox.push((self.now, packet));
        }
    }

    fn do_timer(&mut self, host: HostId) {
        if let Some(mut app) = self.hosts[host.0].app.take() {
            let outputs = app.on_timer(self.now);
            self.hosts[host.0].app = Some(app);
            self.apply_outputs(host, outputs);
        }
    }

    fn apply_outputs(&mut self, host: HostId, outputs: Vec<Output>) {
        for output in outputs {
            match output {
                Output::Send { delay, packet } => {
                    let time = self.now + delay;
                    self.push_event(time, EventKind::SendFrom { host, packet });
                }
                Output::Timer { delay } => {
                    let time = self.now + delay;
                    self.push_event(time, EventKind::Timer { host });
                }
            }
        }
    }

    /// Snapshots this network's immutable configuration as a shareable
    /// [`NetworkImage`]. The image captures hosts (addresses only — not
    /// inboxes or applications), routes, middlebox configuration, and
    /// instrument layout; [`NetworkImage::fork`] then stamps out pristine
    /// copies without re-interning routes or metric names.
    ///
    /// # Panics
    /// Panics if any installed middlebox does not implement
    /// [`Middlebox::image`].
    pub fn image(&self) -> NetworkImage {
        let middleboxes = self
            .middleboxes
            .iter()
            .map(|mb| {
                mb.image().unwrap_or_else(|| {
                    panic!("middlebox '{}' does not support snapshotting", mb.label())
                })
            })
            .collect();
        NetworkImage {
            host_addrs: self.hosts.iter().map(|h| h.addr).collect(),
            addr_map: Arc::clone(&self.addr_map),
            routes: Arc::clone(&self.routes),
            route_arena: Arc::clone(&self.route_arena),
            route_intern: Arc::clone(&self.route_intern),
            middleboxes,
            hop_latency: self.hop_latency,
            capture_enabled: self.capture_enabled,
            registry: self.registry.fork_reset(),
            tracer: self.tracer.fork_reset(),
            c_events: self.c_events,
            c_captures: self.c_captures,
            h_queue_depth: self.h_queue_depth,
            g_events_popped: self.g_events_popped,
            g_wheel_depth: self.g_wheel_depth,
            g_wheel_overflow: self.g_wheel_overflow,
            c_route_flips: self.c_route_flips,
        }
    }
}

/// The immutable, shareable half of a [`Network`]: topology, middlebox
/// configuration, and instrument layout, with none of the per-run state.
///
/// Unlike `Network` (whose boxed middleboxes are only `Send`), an image is
/// `Send + Sync`, so sweep workers can fork from one `&NetworkImage`
/// concurrently. Forking shares the address map, route table, and interned
/// route arena by [`Arc`] and rebuilds only the small mutable cell: event
/// queue, host inboxes, middlebox state, captures, and instruments.
///
/// Applications are not captured: a forked network starts with no apps
/// attached, exactly like a freshly built one, and drivers re-attach their
/// per-cell applications after forking.
pub struct NetworkImage {
    host_addrs: Vec<Ipv4Addr>,
    addr_map: Arc<FxHashMap<Ipv4Addr, HostId>>,
    routes: Arc<FxHashMap<(HostId, HostId), RouteId>>,
    route_arena: Arc<Vec<Route>>,
    route_intern: Arc<FxHashMap<u64, Vec<RouteId>>>,
    middleboxes: Vec<Box<dyn MiddleboxImage>>,
    hop_latency: Duration,
    capture_enabled: bool,
    registry: Registry,
    tracer: Tracer,
    c_events: CounterId,
    c_captures: CounterId,
    h_queue_depth: HistogramId,
    g_events_popped: GaugeId,
    g_wheel_depth: GaugeId,
    g_wheel_overflow: GaugeId,
    c_route_flips: CounterId,
}

impl NetworkImage {
    /// Builds a pristine network from the image: virtual time zero, empty
    /// queue and inboxes, freshly instantiated middleboxes, zeroed
    /// instruments — byte-identical in behavior to the network the image
    /// was taken from as it stood at construction time.
    pub fn fork(&self) -> Network {
        Network {
            now: Time::ZERO,
            queue: TimerWheel::new(),
            events_popped: 0,
            hosts: self
                .host_addrs
                .iter()
                .map(|&addr| HostState { addr, inbox: Vec::new(), app: None })
                .collect(),
            addr_map: Arc::clone(&self.addr_map),
            routes: Arc::clone(&self.routes),
            route_arena: Arc::clone(&self.route_arena),
            route_intern: Arc::clone(&self.route_intern),
            middleboxes: self.middleboxes.iter().map(|img| img.instantiate()).collect(),
            hop_latency: self.hop_latency,
            capture_enabled: self.capture_enabled,
            captures: Vec::new(),
            registry: self.registry.fork_reset(),
            tracer: self.tracer.fork_reset(),
            c_events: self.c_events,
            c_captures: self.c_captures,
            h_queue_depth: self.h_queue_depth,
            g_events_popped: self.g_events_popped,
            g_wheel_depth: self.g_wheel_depth,
            g_wheel_overflow: self.g_wheel_overflow,
            c_route_flips: self.c_route_flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::ipv4::{Ipv4Repr, Protocol};

    fn packet(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, payload: &[u8]) -> Vec<u8> {
        let mut repr = Ipv4Repr::new(src, dst, Protocol::Other(0xfd), payload.len());
        repr.ttl = ttl;
        repr.build(payload)
    }

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    const R1: Ipv4Addr = Ipv4Addr::new(10, 255, 0, 1);
    const R2: Ipv4Addr = Ipv4Addr::new(10, 255, 0, 2);

    #[test]
    fn direct_delivery() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::direct());
        net.send_from(a, packet(A, B, 64, b"hi"));
        net.run_until_idle();
        let inbox = net.take_inbox(b);
        assert_eq!(inbox.len(), 1);
        let view = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        assert_eq!(view.payload(), b"hi");
    }

    #[test]
    fn ttl_decrements_per_router() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&[R1, R2]));
        net.send_from(a, packet(A, B, 64, b"x"));
        net.run_until_idle();
        let inbox = net.take_inbox(b);
        let view = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        assert_eq!(view.ttl(), 62);
        assert!(view.verify_checksum());
    }

    #[test]
    fn ttl_expiry_returns_time_exceeded_from_hop() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&[R1, R2]));
        // TTL 2 expires at the second router.
        net.send_from(a, packet(A, B, 2, b"probe"));
        net.run_until_idle();
        assert!(net.take_inbox(b).is_empty());
        let inbox = net.take_inbox(a);
        assert_eq!(inbox.len(), 1);
        let view = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        assert_eq!(view.src_addr(), R2);
        assert_eq!(view.protocol(), Protocol::Icmp);
    }

    #[test]
    fn unroutable_packet_is_dropped() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        net.send_from(a, packet(A, Ipv4Addr::new(8, 8, 8, 8), 64, b"x"));
        net.run_until_idle();
        assert!(net
            .captures()
            .iter()
            .any(|c| matches!(c.point, TracePoint::Dropped { .. })));
    }

    struct DropAll;
    impl Middlebox for DropAll {
        fn process(&mut self, _now: Time, _dir: Direction, _packet: &mut Vec<u8>) -> Verdict {
            Verdict::Drop
        }
    }

    #[derive(Default)]
    struct CountDirections {
        local_to_remote: usize,
        remote_to_local: usize,
    }
    impl Middlebox for CountDirections {
        fn process(&mut self, _now: Time, dir: Direction, _packet: &mut Vec<u8>) -> Verdict {
            match dir {
                Direction::LocalToRemote => self.local_to_remote += 1,
                Direction::RemoteToLocal => self.remote_to_local += 1,
            }
            Verdict::Pass
        }
    }

    #[test]
    fn middlebox_can_drop() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let mb = net.add_middlebox(Box::new(DropAll));
        let route = Route {
            steps: vec![RouteStep::with_device(R1, mb, Direction::LocalToRemote)],
        };
        net.set_route_symmetric(a, b, route);
        net.send_from(a, packet(A, B, 64, b"x"));
        net.run_until_idle();
        assert!(net.take_inbox(b).is_empty());
    }

    #[test]
    fn symmetric_route_flips_direction() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let counter = net.install_middlebox(CountDirections::default());
        let route = Route {
            steps: vec![RouteStep::with_device(R1, counter.id(), Direction::LocalToRemote)],
        };
        net.set_route_symmetric(a, b, route);
        net.send_from(a, packet(A, B, 64, b"up"));
        net.send_from(b, packet(B, A, 64, b"down"));
        net.run_until_idle();
        assert_eq!(net.middlebox(counter).local_to_remote, 1);
        assert_eq!(net.middlebox(counter).remote_to_local, 1);
    }

    #[test]
    fn asymmetric_route_gives_partial_visibility() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let counter = net.install_middlebox(CountDirections::default());
        // Device only on the upstream (a -> b) path: paper §7.1.1.
        net.set_route(a, b, Route {
            steps: vec![RouteStep::with_device(R1, counter.id(), Direction::LocalToRemote)],
        });
        net.set_route(b, a, Route::through(&[R2]));
        net.send_from(a, packet(A, B, 64, b"up"));
        net.send_from(b, packet(B, A, 64, b"down"));
        net.run_until_idle();
        assert_eq!(net.middlebox(counter).local_to_remote, 1);
        assert_eq!(net.middlebox(counter).remote_to_local, 0);
        assert_eq!(net.take_inbox(a).len(), 1);
        assert_eq!(net.take_inbox(b).len(), 1);
    }

    #[test]
    fn with_middlebox_mut_reconfigures_in_place() {
        let mut net = Network::with_default_latency();
        let counter = net.install_middlebox(CountDirections::default());
        net.with_middlebox_mut(counter, |c| c.local_to_remote = 41);
        net.middlebox_mut(counter).local_to_remote += 1;
        assert_eq!(net.middlebox(counter).local_to_remote, 42);
    }

    struct Echo {
        own: Ipv4Addr,
    }
    impl Application for Echo {
        fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
            let view = Ipv4Packet::new_checked(packet).unwrap();
            let repr = Ipv4Repr::new(self.own, view.src_addr(), view.protocol(), view.payload().len());
            vec![Output::send(repr.build(view.payload()))]
        }
    }

    #[test]
    fn application_replies() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host_with_app(B, Box::new(Echo { own: B }));
        net.set_route_symmetric(a, b, Route::through(&[R1]));
        net.send_from(a, packet(A, B, 64, b"ping"));
        net.run_until_idle();
        let inbox = net.take_inbox(a);
        assert_eq!(inbox.len(), 1);
        let view = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        assert_eq!(view.payload(), b"ping");
    }

    struct TimerApp {
        fired: std::sync::Arc<std::sync::Mutex<Vec<Time>>>,
    }
    impl Application for TimerApp {
        fn on_packet(&mut self, _now: Time, _packet: &[u8]) -> Vec<Output> {
            vec![Output::Timer { delay: Duration::from_secs(5) }]
        }
        fn on_timer(&mut self, now: Time) -> Vec<Output> {
            self.fired.lock().unwrap().push(now);
            Vec::new()
        }
    }

    #[test]
    fn timers_fire_at_virtual_time() {
        let fired = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host_with_app(B, Box::new(TimerApp { fired: std::sync::Arc::clone(&fired) }));
        net.set_route_symmetric(a, b, Route::direct());
        net.send_from(a, packet(A, B, 64, b"go"));
        net.run_until_idle();
        let fired = fired.lock().unwrap();
        assert_eq!(fired.len(), 1);
        // 1 hop latency (1 ms) + 5 s timer.
        assert_eq!(fired[0], Time::from_micros(5_001_000));
    }

    #[test]
    fn run_for_advances_clock_exactly() {
        let mut net = Network::with_default_latency();
        net.run_for(Duration::from_secs(480));
        assert_eq!(net.now(), Time::from_secs(480));
    }

    #[test]
    fn network_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Network>();
    }

    #[test]
    fn network_image_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkImage>();
    }

    #[derive(Default)]
    struct CountAll {
        seen: usize,
    }
    impl Middlebox for CountAll {
        fn process(&mut self, _now: Time, _dir: Direction, _packet: &mut Vec<u8>) -> Verdict {
            self.seen += 1;
            Verdict::Pass
        }
        fn image(&self) -> Option<Box<dyn MiddleboxImage>> {
            Some(Box::new(CountAllImage))
        }
    }
    struct CountAllImage;
    impl MiddleboxImage for CountAllImage {
        fn instantiate(&self) -> Box<dyn Middlebox> {
            Box::new(CountAll::default())
        }
    }

    #[test]
    fn forked_networks_share_topology_but_not_state() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let counter = net.install_middlebox(CountAll::default());
        net.set_route_symmetric(a, b, Route {
            steps: vec![RouteStep::with_device(R1, counter.id(), Direction::LocalToRemote)],
        });
        let image = net.image();

        // Dirty the original and one fork; a second fork stays pristine.
        net.send_from(a, packet(A, B, 64, b"orig"));
        net.run_until_idle();
        let mut fork_a = image.fork();
        fork_a.send_from(a, packet(A, B, 64, b"fork"));
        fork_a.run_until_idle();
        let fork_b = image.fork();

        assert_eq!(net.middlebox(counter).seen, 1);
        assert_eq!(fork_a.middlebox(counter).seen, 1);
        assert_eq!(fork_b.middlebox(counter).seen, 0);
        assert_eq!(fork_b.now(), Time::ZERO);
        assert_eq!(fork_b.events_processed(), 0);
        assert!(fork_b.captures().is_empty());
        // Shared topology: same routes without re-interning.
        assert_eq!(fork_a.interned_routes(), net.interned_routes());
        assert_eq!(fork_a.route(a, b).unwrap().steps[0].hop_addr, R1);
    }

    #[test]
    fn post_fork_route_mutation_does_not_leak_into_siblings() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&[R1]));
        let image = net.image();

        let mut fork_a = image.fork();
        let fork_b = image.fork();
        fork_a.set_route(a, b, Route::through(&[R1, R2]));
        let c = fork_a.add_host(Ipv4Addr::new(203, 0, 113, 9));

        // Fork A sees its own changes; fork B and the original don't.
        assert_eq!(fork_a.route(a, b).unwrap().steps.len(), 2);
        assert_eq!(fork_a.host_by_addr(Ipv4Addr::new(203, 0, 113, 9)), Some(c));
        assert_eq!(fork_b.route(a, b).unwrap().steps.len(), 1);
        assert_eq!(fork_b.host_by_addr(Ipv4Addr::new(203, 0, 113, 9)), None);
        assert_eq!(net.route(a, b).unwrap().steps.len(), 1);
    }

    #[test]
    fn scheduled_reroute_flips_path_at_virtual_instant() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let primary = net.intern_route(Route::through(&[R1]));
        let backup = net.intern_route(Route::through(&[R1, R2]));
        net.apply_reroute(a, b, primary);
        net.schedule_reroute(Duration::from_secs(10), a, b, backup);

        // Before the flip: one router, TTL decremented once.
        net.send_from(a, packet(A, B, 64, b"pre"));
        net.run_for(Duration::from_secs(5));
        let pre = net.take_inbox(b);
        assert_eq!(Ipv4Packet::new_checked(&pre[0].1[..]).unwrap().ttl(), 63);
        assert_eq!(net.route(a, b).unwrap().steps.len(), 1);

        // Past the flip instant: the backup path, two routers.
        net.run_for(Duration::from_secs(10));
        assert_eq!(net.route(a, b).unwrap().steps.len(), 2);
        net.send_from(a, packet(A, B, 64, b"post"));
        net.run_until_idle();
        let post = net.take_inbox(b);
        assert_eq!(Ipv4Packet::new_checked(&post[0].1[..]).unwrap().ttl(), 62);
    }

    #[test]
    fn scheduled_reroute_does_not_leak_into_forks() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&[R1]));
        let backup = net.intern_route(Route::through(&[R1, R2]));
        let image = net.image();

        let mut fork_a = image.fork();
        let fork_b = image.fork();
        // The interned id survives into the fork (shared arena) and the
        // flip stays private to the fork that applied it.
        fork_a.schedule_reroute(Duration::from_secs(1), a, b, backup);
        fork_a.run_until_idle();
        assert_eq!(fork_a.route(a, b).unwrap().steps.len(), 2);
        assert_eq!(fork_b.route(a, b).unwrap().steps.len(), 1);
        assert_eq!(net.route(a, b).unwrap().steps.len(), 1);
    }

    #[test]
    fn repeated_route_flips_do_not_grow_the_arena() {
        // The churn regression: flipping the same (src, dst) pair between
        // two alternatives 1,000 times — whether by re-interning the full
        // route each time or by scheduled reroute — must leave the arena
        // at exactly its two slots.
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let primary = Route::through(&[R1]);
        let backup = Route::through(&[R1, R2]);
        net.set_route(a, b, primary.clone());
        net.set_route(a, b, backup.clone());
        let arena = net.interned_routes();
        assert_eq!(arena, 2);

        for i in 0..1_000 {
            let route = if i % 2 == 0 { primary.clone() } else { backup.clone() };
            net.set_route(a, b, route);
        }
        assert_eq!(net.interned_routes(), arena, "re-interning flipped routes grew the arena");

        let rid_primary = net.intern_route(primary);
        let rid_backup = net.intern_route(backup);
        for i in 0..1_000u32 {
            let rid = if i % 2 == 0 { rid_backup } else { rid_primary };
            net.schedule_reroute(Duration::from_millis(u64::from(i) + 1), a, b, rid);
        }
        net.run_until_idle();
        assert_eq!(net.interned_routes(), arena, "scheduled reroutes grew the arena");
        assert_eq!(net.obs_snapshot().counter("netsim.route_flips"), 1_000);
    }

    #[test]
    fn unparseable_packet_records_nic_drop() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        net.send_from(a, vec![0xff; 7]); // too short to be an IPv4 header
        net.run_until_idle();
        assert!(net
            .captures()
            .iter()
            .any(|c| matches!(c.point, TracePoint::Dropped { step: 0 })));
    }

    #[test]
    fn identical_routes_intern_to_one_arena_slot() {
        let mut net = Network::with_default_latency();
        let a = net.add_host(A);
        let b = net.add_host(B);
        let c = net.add_host(Ipv4Addr::new(203, 0, 113, 2));
        net.set_route(a, b, Route::through(&[R1, R2]));
        net.set_route(a, c, Route::through(&[R1, R2]));
        net.set_route(b, a, Route::through(&[R2, R1]));
        assert_eq!(net.interned_routes(), 2);
        // Interned slots still resolve per (src, dst) pair.
        assert_eq!(net.route(a, b).unwrap().steps[0].hop_addr, R1);
        assert_eq!(net.route(b, a).unwrap().steps[0].hop_addr, R2);
    }

    #[test]
    fn fork_footprint_is_soak_independent() {
        let mut net = Network::with_default_latency();
        net.set_capture(false);
        let a = net.add_host(A);
        let b = net.add_host(B);
        net.set_route_symmetric(a, b, Route::through(&[R1]));
        let image = net.image();
        let pristine_bytes = image.fork().event_queue_capacity_bytes();

        // Soak the original hard enough to engage the wheel (>1024 pending
        // events at once).
        for i in 0..4000u16 {
            net.send_from(a, packet(A, B, 64, &i.to_be_bytes()));
        }
        let soaked_bytes = net.event_queue_capacity_bytes();
        assert!(soaked_bytes > 100 * 1024, "soak did not engage the wheel: {soaked_bytes}");
        net.run_until_idle();

        // A post-soak fork must not inherit the soak's queue capacity.
        let forked_bytes = image.fork().event_queue_capacity_bytes();
        assert_eq!(forked_bytes, pristine_bytes);
        assert!(forked_bytes < 1024, "fork carries dead queue capacity: {forked_bytes}");

        // And the soaked engine itself can shed its peak on demand.
        net.shrink_event_queue();
        assert!(
            net.event_queue_capacity_bytes() < 64 * 1024,
            "shrink retained {} bytes",
            net.event_queue_capacity_bytes()
        );
    }

    #[test]
    fn batched_dispatch_matches_per_event_path() {
        // A same-instant burst through a device-bearing route: with capture
        // on the engine walks one event per hop; with capture off it drains
        // the whole run as one batch. Delivery times and payloads must be
        // identical, and the device must see the packets in send order.
        let run = |fast: bool| {
            let mut net = Network::with_default_latency();
            net.set_capture(!fast);
            let a = net.add_host(A);
            let b = net.add_host(B);
            let counter = net.install_middlebox(CountAll::default());
            net.set_route_symmetric(a, b, Route {
                steps: vec![
                    RouteStep::router(R1),
                    RouteStep::with_device(R2, counter.id(), Direction::LocalToRemote),
                ],
            });
            for i in 0..200u8 {
                net.send_from(a, packet(A, B, 64, &[i]));
            }
            net.run_until_idle();
            assert_eq!(net.middlebox(counter).seen, 200);
            net.take_inbox(b)
                .into_iter()
                .map(|(t, p)| {
                    let view = Ipv4Packet::new_checked(&p[..]).unwrap();
                    (t, view.payload().to_vec())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deterministic_ordering() {
        // Two identical runs produce identical capture logs.
        let run = || {
            let mut net = Network::with_default_latency();
            let a = net.add_host(A);
            let b = net.add_host_with_app(B, Box::new(Echo { own: B }));
            net.set_route_symmetric(a, b, Route::through(&[R1, R2]));
            for i in 0..10u8 {
                net.send_from(a, packet(A, B, 64, &[i]));
            }
            net.run_until_idle();
            net.take_captures()
                .into_iter()
                .map(|c| (c.time, c.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
