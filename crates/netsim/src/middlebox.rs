//! The middlebox trait and traffic direction.

use crate::time::Time;

/// Index of a middlebox registered with a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MiddleboxId(pub usize);

/// The direction of a packet *as seen by a particular middlebox placement*.
///
/// The TSPU cares which side of it is "inside Russia": triggers are only
/// honored when sent from the local side (paper §5.3.2). A device placed on
/// a directed route is told, per placement, whether packets on that route
/// flow local→remote or remote→local. An upstream-only device simply has no
/// placement on any remote→local route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the device's local (client-network) side toward the remote
    /// side — "upstream" in the paper's wording.
    LocalToRemote,
    /// From the remote side toward the device's local side — "downstream".
    RemoteToLocal,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::LocalToRemote => Direction::RemoteToLocal,
            Direction::RemoteToLocal => Direction::LocalToRemote,
        }
    }
}

/// An in-path packet processor.
///
/// `process` maps one input packet to zero or more output packets that
/// continue along the same route from the device's position:
///
/// * `vec![]` — the packet is dropped;
/// * `vec![packet]` — forwarded, possibly rewritten in place (the TSPU's
///   RST/ACK rewrite keeps the original IP header);
/// * `vec![a, b, …]` — multiple packets continue (the TSPU's fragment
///   cache flushing a buffered queue when the last fragment arrives).
///
/// State expiry is lazy: implementations compare `now` against their own
/// deadlines on each call. The simulator never calls middleboxes when no
/// packet crosses them, exactly like real in-path hardware.
pub trait Middlebox {
    /// Processes one packet traveling in `direction`.
    fn process(&mut self, now: Time, direction: Direction, packet: &[u8]) -> Vec<Vec<u8>>;

    /// A short name for captures and debugging.
    fn label(&self) -> String {
        "middlebox".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::LocalToRemote.flip(), Direction::RemoteToLocal);
        assert_eq!(Direction::RemoteToLocal.flip(), Direction::LocalToRemote);
    }
}
