//! The middlebox trait and traffic direction.

use std::any::Any;
use std::time::Duration;

use crate::time::Time;

/// Index of a middlebox registered with a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MiddleboxId(pub usize);

/// The direction of a packet *as seen by a particular middlebox placement*.
///
/// The TSPU cares which side of it is "inside Russia": triggers are only
/// honored when sent from the local side (paper §5.3.2). A device placed on
/// a directed route is told, per placement, whether packets on that route
/// flow local→remote or remote→local. An upstream-only device simply has no
/// placement on any remote→local route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the device's local (client-network) side toward the remote
    /// side — "upstream" in the paper's wording.
    LocalToRemote,
    /// From the remote side toward the device's local side — "downstream".
    RemoteToLocal,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::LocalToRemote => Direction::RemoteToLocal,
            Direction::RemoteToLocal => Direction::LocalToRemote,
        }
    }
}

/// The outcome of processing one packet.
///
/// The common cases — forward unchanged, drop — carry no packet buffers at
/// all, so an in-path chain of non-mutating devices moves a packet from
/// hop to hop without a single copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the input packet, possibly rewritten in place.
    Pass,
    /// Consume the packet: dropped, or absorbed into device state (the
    /// TSPU's fragment cache buffering a fragment).
    Drop,
    /// Forward a different packet in the input's place (the TSPU's RST/ACK
    /// rewrite, NAT translation).
    Replace(Vec<u8>),
    /// Forward several packets (the fragment cache flushing a buffered
    /// train when its last fragment arrives).
    Fanout(Vec<Vec<u8>>),
    /// Forward the input packet, but only after an extra queueing delay on
    /// top of the link's hop latency (a chaos link's jitter). Delays from
    /// several devices on the same link accumulate.
    Delay(Duration),
}

/// Object-safe downcast support, blanket-implemented for every `'static`
/// type. [`Middlebox`] requires it so a network-owned `Box<dyn Middlebox>`
/// can be borrowed back at its concrete type through a typed
/// [`crate::MiddleboxHandle`].
pub trait AsAny {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An in-path packet processor.
///
/// `process` inspects one packet — mutating it in place if needed — and
/// returns a [`Verdict`] saying what continues along the route from the
/// device's position.
///
/// State expiry is lazy: implementations compare `now` against their own
/// deadlines on each call. The simulator never calls middleboxes when no
/// packet crosses them, exactly like real in-path hardware.
///
/// `Send` is a supertrait so a whole [`crate::Network`] (which owns its
/// middleboxes) can move between sweep worker threads.
pub trait Middlebox: Send + AsAny {
    /// Processes one packet traveling in `direction`.
    fn process(&mut self, now: Time, direction: Direction, packet: &mut Vec<u8>) -> Verdict;

    /// Convenience wrapper: takes the packet by value and materializes the
    /// verdict as the list of packets that continue. Tests and measurement
    /// drivers use this; the event loop itself consumes [`Verdict`]s
    /// directly to stay copy-free.
    fn process_owned(&mut self, now: Time, direction: Direction, packet: Vec<u8>) -> Vec<Vec<u8>> {
        let mut packet = packet;
        match self.process(now, direction, &mut packet) {
            Verdict::Pass => vec![packet],
            Verdict::Drop => Vec::new(),
            Verdict::Replace(replacement) => vec![replacement],
            Verdict::Fanout(packets) => packets,
            Verdict::Delay(_) => vec![packet],
        }
    }

    /// A short name for captures and debugging.
    fn label(&self) -> String {
        "middlebox".to_string()
    }

    /// The device's immutable configuration as a shareable image, if it
    /// supports forking. [`crate::Network::image`] requires every
    /// installed middlebox to return `Some`; ad-hoc test middleboxes can
    /// keep the `None` default and simply opt out of snapshotting.
    fn image(&self) -> Option<Box<dyn MiddleboxImage>> {
        None
    }
}

/// The immutable half of a fork-able middlebox: everything needed to
/// rebuild a pristine instance (configuration, seeds, interned metric
/// names), none of the per-run state (flow tables, RNG position, metric
/// values).
///
/// `Send + Sync` is the point: a [`crate::NetworkImage`] holding these can
/// be shared by reference across sweep worker threads even though the
/// instantiated `Box<dyn Middlebox>` is only `Send`.
pub trait MiddleboxImage: Send + Sync {
    /// Builds a fresh middlebox, byte-identical in behavior to the one
    /// the image was taken from at construction time.
    fn instantiate(&self) -> Box<dyn Middlebox>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::LocalToRemote.flip(), Direction::RemoteToLocal);
        assert_eq!(Direction::RemoteToLocal.flip(), Direction::LocalToRemote);
    }
}
