//! Deterministic chaos injection, in the smoltcp tradition of testing
//! stacks against adverse links: every fault a real Russian transit path
//! exhibits — loss, duplication, bounded reordering, delay jitter, MTU
//! blackholes, link flaps — driven by a seeded RNG so any failure replays
//! exactly from its (plan, seed) pair.
//!
//! The paper's Table 1 exists because these faults are *why* 20,000-trial
//! reliability campaigns were needed: TSPU devices keep enforcing the same
//! trigger/timeout/fragment model on lossy, reordering, intermittently
//! asymmetric paths. A [`FaultPlan`] makes that adversity a systematic,
//! replayable dimension of every sweep instead of an accident of the
//! physical internet:
//!
//! * [`LinkFaults`] + [`ChaosLink`] — per-link packet-level faults,
//!   composable on any [`crate::RouteStep`] like any other middlebox.
//! * [`DeviceFaults`] — device-level faults (mid-flight restart that wipes
//!   conntrack/fragment state, policy hot-reload mid-connection, the
//!   Table-1 probabilistic bypass), interpreted by `tspu-core`'s device.
//! * [`LinkStats`] — uniform per-middlebox fault counters, the fault
//!   layer's analogue of the device's `DeviceStats`, consumed by oracle
//!   reports.
//!
//! [`LossyLink`] and [`CorruptingLink`] remain as minimal single-fault
//! links; `LossyLink` now keeps its counts in the same [`LinkStats`].

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tspu_obs::{CounterId, Registry, Snapshot};

use crate::middlebox::{Direction, Middlebox, MiddleboxImage, Verdict};
use crate::time::Time;

/// Derives an independent RNG seed from a plan seed and a salt (a link
/// index, scenario number, …) with a splitmix64 finalizer, so every link of
/// a plan gets a decorrelated stream while the whole plan stays a pure
/// function of one seed.
pub fn derive_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform per-link fault counters — the fault layer's `DeviceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets that exited the link (originals, duplicates, releases).
    pub forwarded: u64,
    /// Packets dropped by random loss.
    pub dropped: u64,
    /// Extra packets injected into the stream (duplicate copies).
    pub injected: u64,
    /// Packets that were duplicated.
    pub duplicated: u64,
    /// Packets held back and released out of order.
    pub reordered: u64,
    /// Packets given extra queueing delay.
    pub delayed: u64,
    /// Packets dropped for exceeding the link MTU (a PMTU blackhole).
    pub clamped: u64,
    /// Packets dropped while the link was flapped down.
    pub flapped: u64,
}

impl LinkStats {
    /// Every packet this link consumed rather than forwarded.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.clamped + self.flapped
    }
}

/// The storage behind [`LinkStats`]: a `tspu_obs` registry scope with one
/// counter per fault dimension. [`LinkStats`] is reconstructed on demand,
/// so the old accessors keep working while the same numbers surface in
/// system-wide [`Snapshot`]s under `link.<label>.*`. In an obs-disabled
/// build this is zero-sized and every count is a no-op.
struct LinkMetrics {
    registry: Registry,
    forwarded: CounterId,
    dropped: CounterId,
    injected: CounterId,
    duplicated: CounterId,
    reordered: CounterId,
    delayed: CounterId,
    clamped: CounterId,
    flapped: CounterId,
}

impl LinkMetrics {
    fn new(label: &str) -> LinkMetrics {
        let mut registry = Registry::scoped(format!("link.{label}"));
        LinkMetrics {
            forwarded: registry.counter("forwarded"),
            dropped: registry.counter("dropped"),
            injected: registry.counter("injected"),
            duplicated: registry.counter("duplicated"),
            reordered: registry.counter("reordered"),
            delayed: registry.counter("delayed"),
            clamped: registry.counter("clamped"),
            flapped: registry.counter("flapped"),
            registry,
        }
    }

    #[inline]
    fn inc(&mut self, id: CounterId) {
        self.registry.inc(id);
    }

    #[inline]
    fn add(&mut self, id: CounterId, by: u64) {
        self.registry.add(id, by);
    }

    fn stats(&self) -> LinkStats {
        LinkStats {
            forwarded: self.registry.counter_value(self.forwarded),
            dropped: self.registry.counter_value(self.dropped),
            injected: self.registry.counter_value(self.injected),
            duplicated: self.registry.counter_value(self.duplicated),
            reordered: self.registry.counter_value(self.reordered),
            delayed: self.registry.counter_value(self.delayed),
            clamped: self.registry.counter_value(self.clamped),
            flapped: self.registry.counter_value(self.flapped),
        }
    }

    /// A zeroed copy for a forked link: same scope and counter slots,
    /// shared interned names, all values zero.
    fn fork(&self) -> LinkMetrics {
        LinkMetrics {
            registry: self.registry.fork_reset(),
            forwarded: self.forwarded,
            dropped: self.dropped,
            injected: self.injected,
            duplicated: self.duplicated,
            reordered: self.reordered,
            delayed: self.delayed,
            clamped: self.clamped,
            flapped: self.flapped,
        }
    }
}

/// A link up/down duty cycle: up for `up`, then down for `down`, repeating
/// from simulation start. Packets crossing while down are dropped — the
/// paper's intermittently asymmetric paths, as a deterministic time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSpec {
    /// How long the link stays up in each cycle.
    pub up: Duration,
    /// How long the link stays down in each cycle.
    pub down: Duration,
}

impl FlapSpec {
    /// True if the link is down at `now`.
    pub fn is_down(&self, now: Time) -> bool {
        let period = (self.up + self.down).as_micros() as u64;
        if period == 0 {
            return false;
        }
        now.as_micros() % period >= self.up.as_micros() as u64
    }
}

/// The per-link half of a [`FaultPlan`]: every fault rate in one value.
/// `Default` is an exact no-op — a zero-rate [`ChaosLink`] forwards every
/// packet untouched, undelayed, and in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a packet is dropped, in `[0, 1]`.
    pub loss: f64,
    /// Probability a packet is duplicated, in `[0, 1]`.
    pub duplicate: f64,
    /// Probability a packet is held back and re-injected later, in `[0, 1]`.
    pub reorder: f64,
    /// Upper bound on how many subsequent packets may overtake a held one.
    /// Zero disables reordering regardless of `reorder`.
    pub max_displacement: usize,
    /// Maximum extra queueing delay; each delayed packet draws uniformly
    /// from `[0, jitter]`. Zero disables jitter.
    pub jitter: Duration,
    /// Drop packets longer than this many bytes (a PMTU blackhole).
    pub mtu: Option<usize>,
    /// Link up/down duty cycle.
    pub flap: Option<FlapSpec>,
}

impl LinkFaults {
    /// True if this plan can never perturb a packet.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && (self.reorder == 0.0 || self.max_displacement == 0)
            && self.jitter == Duration::ZERO
            && self.mtu.is_none()
            && self.flap.is_none()
    }

    /// A loss-only plan.
    pub fn lossy(loss: f64) -> LinkFaults {
        LinkFaults { loss, ..LinkFaults::default() }
    }
}

/// The device-level half of a [`FaultPlan`]. The simulator defines the
/// schedule; `tspu-core`'s device interprets it (netsim cannot know what
/// "conntrack" or "policy" mean).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceFaults {
    /// Virtual times at which the device restarts, wiping all flow and
    /// fragment state — the mid-flight reboot that silently unblocks every
    /// residually-blocked 5-tuple.
    pub restarts: Vec<Duration>,
    /// Virtual time at which a policy hot-reload fires mid-connection (the
    /// §5.2 March-4 style switch); the device owner supplies the policy to
    /// swap in.
    pub reload_at: Option<Duration>,
    /// Override for the Table-1 probabilistic bypass rate, unifying the
    /// device failure dice under the same plan as the link faults.
    pub bypass_rate: Option<f64>,
}

impl DeviceFaults {
    /// True if this plan never perturbs the device.
    pub fn is_noop(&self) -> bool {
        self.restarts.is_empty() && self.reload_at.is_none() && self.bypass_rate.is_none()
    }
}

/// One seeded chaos schedule for a whole route: link faults for each
/// traffic direction plus device faults, all derived from one seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Master seed; per-link RNG streams derive from it via [`derive_seed`].
    pub seed: u64,
    /// Faults on the local→remote (upstream) transit link.
    pub forward: LinkFaults,
    /// Faults on the remote→local (downstream) transit link.
    pub reverse: LinkFaults,
    /// Faults applied to the in-path device itself.
    pub device: DeviceFaults,
}

impl FaultPlan {
    /// An all-quiet plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Applies the same link faults in both directions.
    pub fn symmetric(seed: u64, faults: LinkFaults) -> FaultPlan {
        FaultPlan { seed, forward: faults.clone(), reverse: faults, ..FaultPlan::default() }
    }

    /// True if no fault in the plan can ever fire.
    pub fn is_noop(&self) -> bool {
        self.forward.is_noop() && self.reverse.is_noop() && self.device.is_noop()
    }

    /// The RNG seed for the `salt`-th link of this plan.
    pub fn link_seed(&self, salt: u64) -> u64 {
        derive_seed(self.seed, salt)
    }
}

/// A packet held for reordering: released after `remaining` more packets
/// pass the link.
struct HeldPacket {
    remaining: usize,
    packet: Vec<u8>,
}

/// A link that applies every [`LinkFaults`] dimension with one seeded RNG.
///
/// Per-packet draw order is fixed (flap gate, loss, MTU, duplicate,
/// reorder, jitter), so a (plan, seed) pair replays byte-identically.
/// Reordered packets are held in the link and re-injected after a bounded
/// number of later packets pass; if traffic stops first, held packets are
/// lost (trailing loss — exactly what a real reordering queue does when
/// the flow ends).
pub struct ChaosLink {
    rng: SmallRng,
    seed: u64,
    faults: LinkFaults,
    held: Vec<HeldPacket>,
    metrics: LinkMetrics,
}

impl ChaosLink {
    /// Creates a chaos link from a fault plan and a seed. Its metrics
    /// register under `link.chaos.*`; use [`ChaosLink::labeled`] to scope
    /// them to a named link.
    pub fn new(faults: LinkFaults, seed: u64) -> ChaosLink {
        ChaosLink::labeled(faults, seed, "chaos")
    }

    /// Creates a chaos link whose metrics register under `link.<label>.*`.
    pub fn labeled(faults: LinkFaults, seed: u64, label: &str) -> ChaosLink {
        assert!((0.0..=1.0).contains(&faults.loss), "loss out of [0,1]");
        assert!((0.0..=1.0).contains(&faults.duplicate), "duplicate out of [0,1]");
        assert!((0.0..=1.0).contains(&faults.reorder), "reorder out of [0,1]");
        ChaosLink {
            rng: SmallRng::seed_from_u64(seed),
            seed,
            faults,
            held: Vec::new(),
            metrics: LinkMetrics::new(label),
        }
    }

    /// The fault counters so far — a view over the obs registry (all zero
    /// in an obs-disabled build).
    pub fn stats(&self) -> LinkStats {
        self.metrics.stats()
    }

    /// This link's metrics as a [`Snapshot`] under its `link.<label>.*`
    /// scope.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.metrics.registry.snapshot()
    }

    /// The plan this link runs.
    pub fn faults(&self) -> &LinkFaults {
        &self.faults
    }

    /// Packets currently held for reordering (lost if traffic ends).
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Advances hold counters by one forwarded slot, returning the packets
    /// whose displacement is exhausted, in hold order.
    fn take_released(&mut self) -> Vec<Vec<u8>> {
        if self.held.is_empty() {
            return Vec::new();
        }
        let mut released = Vec::new();
        let mut still_held = Vec::new();
        for mut held in self.held.drain(..) {
            held.remaining -= 1;
            if held.remaining == 0 {
                released.push(held.packet);
            } else {
                still_held.push(held);
            }
        }
        self.held = still_held;
        released
    }
}

impl Middlebox for ChaosLink {
    fn process(&mut self, now: Time, _direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        // Zero-rate fast path: no RNG draw, no hold-queue touch — the
        // no-op plan is *exactly* the absent link.
        if self.faults.is_noop() {
            self.metrics.inc(self.metrics.forwarded);
            return Verdict::Pass;
        }

        if let Some(flap) = self.faults.flap {
            if flap.is_down(now) {
                self.metrics.inc(self.metrics.flapped);
                return Verdict::Drop;
            }
        }
        if self.faults.loss > 0.0 && self.rng.gen_bool(self.faults.loss) {
            self.metrics.inc(self.metrics.dropped);
            return Verdict::Drop;
        }
        if let Some(mtu) = self.faults.mtu {
            if packet.len() > mtu {
                self.metrics.inc(self.metrics.clamped);
                return Verdict::Drop;
            }
        }

        let duplicate = self.faults.duplicate > 0.0 && self.rng.gen_bool(self.faults.duplicate);
        let reorder = self.faults.reorder > 0.0
            && self.faults.max_displacement > 0
            && self.rng.gen_bool(self.faults.reorder);

        if reorder {
            // Hold this packet; it re-enters the stream after `displacement`
            // later packets pass. Any packets whose hold expires on this
            // slot still go out now.
            let displacement = self.rng.gen_range(1..=self.faults.max_displacement);
            let released = self.take_released();
            self.metrics.inc(self.metrics.reordered);
            self.held.push(HeldPacket { remaining: displacement, packet: std::mem::take(packet) });
            if released.is_empty() {
                return Verdict::Drop;
            }
            self.metrics.add(self.metrics.forwarded, released.len() as u64);
            return Verdict::Fanout(released);
        }

        let released = self.take_released();
        if duplicate {
            self.metrics.inc(self.metrics.duplicated);
            self.metrics.inc(self.metrics.injected);
        }
        if released.is_empty() && !duplicate {
            // Common case: the packet continues alone, possibly jittered.
            self.metrics.inc(self.metrics.forwarded);
            if self.faults.jitter > Duration::ZERO {
                let jitter_us = self.faults.jitter.as_micros() as u64;
                let extra = self.rng.gen_range(0..=jitter_us);
                if extra > 0 {
                    self.metrics.inc(self.metrics.delayed);
                    return Verdict::Delay(Duration::from_micros(extra));
                }
            }
            return Verdict::Pass;
        }

        // Multi-packet slot: releases first (they were sent earlier), then
        // the current packet, then its duplicate.
        let mut out = released;
        out.push(packet.clone());
        if duplicate {
            out.push(packet.clone());
        }
        self.metrics.add(self.metrics.forwarded, out.len() as u64);
        Verdict::Fanout(out)
    }

    fn label(&self) -> String {
        format!(
            "chaos(loss={:.2}%, dup={:.2}%, reorder={:.2}%)",
            self.faults.loss * 100.0,
            self.faults.duplicate * 100.0,
            self.faults.reorder * 100.0
        )
    }

    fn image(&self) -> Option<Box<dyn MiddleboxImage>> {
        Some(Box::new(ChaosLinkImage {
            faults: self.faults.clone(),
            seed: self.seed,
            metrics: self.metrics.fork(),
        }))
    }
}

/// The immutable configuration of a [`ChaosLink`]: fault plan, RNG seed,
/// and metric layout. Instantiation reseeds the RNG from scratch, so a
/// forked link replays the exact fault sequence of a freshly built one.
struct ChaosLinkImage {
    faults: LinkFaults,
    seed: u64,
    metrics: LinkMetrics,
}

impl MiddleboxImage for ChaosLinkImage {
    fn instantiate(&self) -> Box<dyn Middlebox> {
        Box::new(ChaosLink {
            rng: SmallRng::seed_from_u64(self.seed),
            seed: self.seed,
            faults: self.faults.clone(),
            held: Vec::new(),
            metrics: self.metrics.fork(),
        })
    }
}

/// A link that randomly drops packets with a fixed probability.
pub struct LossyLink {
    rng: SmallRng,
    loss: f64,
    metrics: LinkMetrics,
}

impl LossyLink {
    /// Creates a lossy link with `loss` drop probability in `[0, 1]`.
    /// Metrics register under `link.lossy.*`.
    pub fn new(loss: f64, seed: u64) -> LossyLink {
        assert!((0.0..=1.0).contains(&loss));
        LossyLink { rng: SmallRng::seed_from_u64(seed), loss, metrics: LinkMetrics::new("lossy") }
    }

    /// The uniform fault counters — a view over the obs registry.
    pub fn stats(&self) -> LinkStats {
        self.metrics.stats()
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.metrics.registry.counter_value(self.metrics.dropped)
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.metrics.registry.counter_value(self.metrics.forwarded)
    }
}

impl Middlebox for LossyLink {
    fn process(&mut self, _now: Time, _direction: Direction, _packet: &mut Vec<u8>) -> Verdict {
        if self.rng.gen_bool(self.loss) {
            self.metrics.inc(self.metrics.dropped);
            Verdict::Drop
        } else {
            self.metrics.inc(self.metrics.forwarded);
            Verdict::Pass
        }
    }

    fn label(&self) -> String {
        format!("lossy({:.2}%)", self.loss * 100.0)
    }
}

/// A link that flips one random byte of a packet with a fixed probability.
/// Corruption happens *below* the IP checksum, so receivers (and DPIs)
/// see packets that fail verification — useful for robustness tests.
pub struct CorruptingLink {
    rng: SmallRng,
    chance: f64,
}

impl CorruptingLink {
    /// Creates a corrupting link with `chance` probability in `[0, 1]`.
    pub fn new(chance: f64, seed: u64) -> CorruptingLink {
        assert!((0.0..=1.0).contains(&chance));
        CorruptingLink { rng: SmallRng::seed_from_u64(seed), chance }
    }
}

impl Middlebox for CorruptingLink {
    fn process(&mut self, _now: Time, _direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        if !packet.is_empty() && self.rng.gen_bool(self.chance) {
            let pos = self.rng.gen_range(0..packet.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            packet[pos] ^= bit;
        }
        Verdict::Pass
    }

    fn label(&self) -> String {
        format!("corrupting({:.2}%)", self.chance * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut link = LossyLink::new(0.25, 7);
        let packet = vec![0u8; 32];
        let mut delivered = 0;
        for _ in 0..10_000 {
            delivered += link.process_owned(Time::ZERO, Direction::LocalToRemote, packet.clone()).len();
        }
        assert!((7_300..=7_700).contains(&delivered), "delivered {delivered}");
        assert_eq!(link.dropped() + link.forwarded(), 10_000);
    }

    #[test]
    fn zero_loss_forwards_everything() {
        let mut link = LossyLink::new(0.0, 1);
        for _ in 0..100 {
            assert_eq!(link.process_owned(Time::ZERO, Direction::RemoteToLocal, vec![1, 2, 3]).len(), 1);
        }
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let mut link = CorruptingLink::new(1.0, 3);
        let original = vec![0u8; 64];
        let out = link.process_owned(Time::ZERO, Direction::LocalToRemote, original.clone());
        let corrupted = &out[0];
        let flipped: u32 = original
            .iter()
            .zip(corrupted.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut link = LossyLink::new(0.5, seed);
            (0..64)
                .map(|_| link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![0]).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn derive_seed_decorrelates_salts() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn zero_rate_chaos_link_is_pure_passthrough() {
        let mut link = ChaosLink::new(LinkFaults::default(), 99);
        for i in 0..1000u32 {
            let pkt = i.to_be_bytes().to_vec();
            let out = link.process_owned(Time::from_micros(i as u64), Direction::LocalToRemote, pkt.clone());
            assert_eq!(out, vec![pkt]);
        }
        assert_eq!(link.stats().forwarded, 1000);
        assert_eq!(link.stats().total_dropped(), 0);
    }

    #[test]
    fn chaos_loss_counts_in_stats() {
        let mut link = ChaosLink::new(LinkFaults::lossy(0.5), 11);
        for _ in 0..1000 {
            link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![0; 16]);
        }
        let stats = link.stats();
        assert_eq!(stats.forwarded + stats.dropped, 1000);
        assert!((300..=700).contains(&(stats.dropped as usize)), "dropped {}", stats.dropped);
    }

    #[test]
    fn duplication_injects_copies() {
        let faults = LinkFaults { duplicate: 1.0, ..LinkFaults::default() };
        let mut link = ChaosLink::new(faults, 5);
        let out = link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![7; 8]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(link.stats().duplicated, 1);
        assert_eq!(link.stats().injected, 1);
        assert_eq!(link.stats().forwarded, 2);
    }

    #[test]
    fn reordering_displaces_by_bounded_count() {
        // With reorder=1.0 every packet would be held; use a plan that holds
        // only the first packet by construction: displace ≤ 2, then watch
        // the held packet re-enter within 2 slots.
        let faults = LinkFaults { reorder: 0.3, max_displacement: 2, ..LinkFaults::default() };
        let mut link = ChaosLink::new(faults, 13);
        let mut out_order = Vec::new();
        for i in 0..200u8 {
            for pkt in link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![i]) {
                out_order.push(pkt[0]);
            }
        }
        assert!(link.stats().reordered > 0, "no packet was ever held");
        // Bounded displacement: a packet may move at most max_displacement
        // slots later, so values can only lag their sorted position.
        for (pos, &val) in out_order.iter().enumerate() {
            let displacement = pos as i64 - val as i64;
            assert!(
                (-3..=3).contains(&displacement),
                "packet {val} displaced by {displacement} at position {pos}"
            );
        }
        // Conservation: everything except still-held trailing packets came out.
        assert_eq!(out_order.len() + link.held(), 200);
    }

    #[test]
    fn jitter_delays_but_never_drops() {
        let faults = LinkFaults { jitter: Duration::from_millis(5), ..LinkFaults::default() };
        let mut link = ChaosLink::new(faults, 17);
        let mut delayed = 0;
        for _ in 0..100 {
            let mut pkt = vec![1, 2, 3];
            match link.process(Time::ZERO, Direction::LocalToRemote, &mut pkt) {
                Verdict::Pass => {}
                Verdict::Delay(d) => {
                    assert!(d <= Duration::from_millis(5));
                    delayed += 1;
                }
                other => panic!("unexpected verdict {other:?}"),
            }
        }
        assert!(delayed > 0);
        assert_eq!(link.stats().delayed, delayed);
        assert_eq!(link.stats().forwarded, 100);
    }

    #[test]
    fn mtu_clamp_drops_oversized() {
        let faults = LinkFaults { mtu: Some(100), ..LinkFaults::default() };
        let mut link = ChaosLink::new(faults, 23);
        assert_eq!(link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![0; 99]).len(), 1);
        assert_eq!(link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![0; 101]).len(), 0);
        assert_eq!(link.stats().clamped, 1);
    }

    #[test]
    fn flap_window_drops_during_down_phase() {
        let faults = LinkFaults {
            flap: Some(FlapSpec { up: Duration::from_secs(1), down: Duration::from_secs(1) }),
            ..LinkFaults::default()
        };
        let mut link = ChaosLink::new(faults, 29);
        // t=0.5s: up. t=1.5s: down. t=2.5s: up again.
        assert_eq!(link.process_owned(Time::from_micros(500_000), Direction::LocalToRemote, vec![1]).len(), 1);
        assert_eq!(link.process_owned(Time::from_micros(1_500_000), Direction::LocalToRemote, vec![2]).len(), 0);
        assert_eq!(link.process_owned(Time::from_micros(2_500_000), Direction::LocalToRemote, vec![3]).len(), 1);
        assert_eq!(link.stats().flapped, 1);
    }

    #[test]
    fn chaos_replays_byte_identically_per_seed() {
        let faults = LinkFaults {
            loss: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            max_displacement: 3,
            jitter: Duration::from_millis(2),
            ..LinkFaults::default()
        };
        let run = |seed| {
            let mut link = ChaosLink::new(faults.clone(), seed);
            let mut out = Vec::new();
            for i in 0..500u16 {
                let pkt = i.to_be_bytes().to_vec();
                out.push(link.process_owned(Time::from_micros(i as u64 * 100), Direction::LocalToRemote, pkt));
            }
            (out, link.stats())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).0, run(78).0);
    }

    #[test]
    fn fault_plan_noop_detection() {
        assert!(FaultPlan::new(1).is_noop());
        assert!(!FaultPlan::symmetric(1, LinkFaults::lossy(0.01)).is_noop());
        let mut plan = FaultPlan::new(2);
        plan.device.restarts.push(Duration::from_secs(30));
        assert!(!plan.is_noop());
        // Reorder rate without displacement budget can never fire.
        let stuck = LinkFaults { reorder: 0.5, max_displacement: 0, ..LinkFaults::default() };
        assert!(stuck.is_noop());
    }
}
