//! Fault injection middleboxes, in the smoltcp tradition of testing stacks
//! against adverse links: random loss and byte corruption with a seeded RNG
//! so failures replay exactly.
//!
//! [`LossyLink`] also models the *device failure rate* half of Table 1:
//! the paper measures small but non-zero percentages of connections that a
//! TSPU fails to censor, which we reproduce by wrapping devices in a
//! probabilistic bypass (see `tspu-core`'s failure knob) and links in loss.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::middlebox::{Direction, Middlebox, Verdict};
use crate::time::Time;

/// A link that randomly drops packets with a fixed probability.
pub struct LossyLink {
    rng: SmallRng,
    loss: f64,
    dropped: u64,
    forwarded: u64,
}

impl LossyLink {
    /// Creates a lossy link with `loss` drop probability in `[0, 1]`.
    pub fn new(loss: f64, seed: u64) -> LossyLink {
        assert!((0.0..=1.0).contains(&loss));
        LossyLink { rng: SmallRng::seed_from_u64(seed), loss, dropped: 0, forwarded: 0 }
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Middlebox for LossyLink {
    fn process(&mut self, _now: Time, _direction: Direction, _packet: &mut Vec<u8>) -> Verdict {
        if self.rng.gen_bool(self.loss) {
            self.dropped += 1;
            Verdict::Drop
        } else {
            self.forwarded += 1;
            Verdict::Pass
        }
    }

    fn label(&self) -> String {
        format!("lossy({:.2}%)", self.loss * 100.0)
    }
}

/// A link that flips one random byte of a packet with a fixed probability.
/// Corruption happens *below* the IP checksum, so receivers (and DPIs)
/// see packets that fail verification — useful for robustness tests.
pub struct CorruptingLink {
    rng: SmallRng,
    chance: f64,
}

impl CorruptingLink {
    /// Creates a corrupting link with `chance` probability in `[0, 1]`.
    pub fn new(chance: f64, seed: u64) -> CorruptingLink {
        assert!((0.0..=1.0).contains(&chance));
        CorruptingLink { rng: SmallRng::seed_from_u64(seed), chance }
    }
}

impl Middlebox for CorruptingLink {
    fn process(&mut self, _now: Time, _direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        if !packet.is_empty() && self.rng.gen_bool(self.chance) {
            let pos = self.rng.gen_range(0..packet.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            packet[pos] ^= bit;
        }
        Verdict::Pass
    }

    fn label(&self) -> String {
        format!("corrupting({:.2}%)", self.chance * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut link = LossyLink::new(0.25, 7);
        let packet = vec![0u8; 32];
        let mut delivered = 0;
        for _ in 0..10_000 {
            delivered += link.process_owned(Time::ZERO, Direction::LocalToRemote, packet.clone()).len();
        }
        assert!((7_300..=7_700).contains(&delivered), "delivered {delivered}");
        assert_eq!(link.dropped() + link.forwarded(), 10_000);
    }

    #[test]
    fn zero_loss_forwards_everything() {
        let mut link = LossyLink::new(0.0, 1);
        for _ in 0..100 {
            assert_eq!(link.process_owned(Time::ZERO, Direction::RemoteToLocal, vec![1, 2, 3]).len(), 1);
        }
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let mut link = CorruptingLink::new(1.0, 3);
        let original = vec![0u8; 64];
        let out = link.process_owned(Time::ZERO, Direction::LocalToRemote, original.clone());
        let corrupted = &out[0];
        let flipped: u32 = original
            .iter()
            .zip(corrupted.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut link = LossyLink::new(0.5, seed);
            (0..64)
                .map(|_| link.process_owned(Time::ZERO, Direction::LocalToRemote, vec![0]).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
