//! Endpoint applications: auto-responders attached to hosts.

use crate::time::Time;
use std::time::Duration;

/// Something an application wants the host to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Transmit an IPv4 datagram after `delay` of virtual time.
    Send { delay: Duration, packet: Vec<u8> },
    /// Wake the application up with `on_timer` after `delay`.
    Timer { delay: Duration },
}

impl Output {
    /// Transmit immediately.
    pub fn send(packet: Vec<u8>) -> Output {
        Output::Send { delay: Duration::ZERO, packet }
    }

    /// Transmit after a delay.
    pub fn send_after(delay: Duration, packet: Vec<u8>) -> Output {
        Output::Send { delay, packet }
    }
}

/// A host-side protocol endpoint driven by the simulator.
///
/// Implementations are the paper's cast of characters: echo servers
/// (port 7, §7.2), TLS measurement servers, split-handshake servers (§8),
/// and scripted probes. All state lives inside the implementation;
/// the simulator only delivers packets and timer ticks.
///
/// `Send` is a supertrait so networks carrying applications can move
/// between sweep worker threads.
pub trait Application: Send {
    /// Called when a packet addressed to this host arrives. Outputs are
    /// executed by the host.
    fn on_packet(&mut self, now: Time, packet: &[u8]) -> Vec<Output>;

    /// Called when a previously requested timer fires.
    fn on_timer(&mut self, _now: Time) -> Vec<Output> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_constructors() {
        assert_eq!(
            Output::send(vec![1]),
            Output::Send { delay: Duration::ZERO, packet: vec![1] }
        );
        assert_eq!(
            Output::send_after(Duration::from_secs(1), vec![2]),
            Output::Send { delay: Duration::from_secs(1), packet: vec![2] }
        );
    }
}
