//! libpcap-format export of capture logs, so simulator traces open in
//! Wireshark/tcpdump — the paper's workflow ("capturing traffic from both
//! ends for analysis", §3) applied to the reproduction.
//!
//! The format is the classic libpcap file: a 24-byte global header
//! followed by 16-byte-headed records. Packets are raw IPv4
//! (`LINKTYPE_RAW` = 101), exactly what the simulator carries.

use std::io::{self, Write};

use crate::capture::CaptureRecord;

/// libpcap magic (microsecond timestamps, little-endian).
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with the IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;

/// Serializes capture records into libpcap bytes.
pub fn to_pcap_bytes(records: &[CaptureRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + records.iter().map(|r| 16 + r.bytes.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
    for record in records {
        let micros = record.time.as_micros();
        out.extend_from_slice(&((micros / 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&((micros % 1_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(record.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(record.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&record.bytes);
    }
    out
}

/// Writes capture records to `writer` in libpcap format.
pub fn write_pcap<W: Write>(mut writer: W, records: &[CaptureRecord]) -> io::Result<()> {
    writer.write_all(&to_pcap_bytes(records))
}

/// Writes capture records to a file at `path`.
pub fn save_pcap(path: &std::path::Path, records: &[CaptureRecord]) -> io::Result<()> {
    write_pcap(std::fs::File::create(path)?, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::TracePoint;
    use crate::network::HostId;
    use crate::time::Time;

    fn record(micros: u64, bytes: Vec<u8>) -> CaptureRecord {
        CaptureRecord { time: Time::from_micros(micros), point: TracePoint::HostTx(HostId(0)), bytes }
    }

    #[test]
    fn header_layout() {
        let bytes = to_pcap_bytes(&[]);
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 0xa1b2_c3d4);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 101);
    }

    #[test]
    fn record_layout_and_timestamps() {
        let bytes = to_pcap_bytes(&[record(2_500_123, vec![0x45, 0, 0, 20])]);
        let rec = &bytes[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 2); // sec
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 500_123); // usec
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 4); // incl
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 4); // orig
        assert_eq!(&rec[16..], &[0x45, 0, 0, 20]);
    }

    #[test]
    fn multiple_records_concatenate() {
        let bytes = to_pcap_bytes(&[record(1, vec![1; 10]), record(2, vec![2; 20])]);
        assert_eq!(bytes.len(), 24 + (16 + 10) + (16 + 20));
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("tspu-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.pcap");
        save_pcap(&path, &[record(77, vec![9; 40])]).unwrap();
        let read = std::fs::read(&path).unwrap();
        assert_eq!(read, to_pcap_bytes(&[record(77, vec![9; 40])]));
        let _ = std::fs::remove_file(&path);
    }
}
