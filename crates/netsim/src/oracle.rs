//! The trace-invariant oracle: replays a capture and machine-checks the
//! paper's TSPU model invariants at every audited device, under *any*
//! fault schedule, so chaos runs fail loudly with the offending packet and
//! trace instead of producing quietly-wrong statistics.
//!
//! Invariants checked (each tied to its paper evidence):
//!
//! * **I1 — injection metadata (Fig. 2).** An injected RST/ACK preserves
//!   the victim packet's addresses, ports, sequence and acknowledgement
//!   numbers, and TTL, and carries no payload (§5.2: "other packet
//!   metadata, such as TTL, sequence and acknowledgement numbers, are not
//!   altered").
//! * **I2 — fragment forwarding (Fig. 3, §5.3.1).** Fragment trains are
//!   forwarded *unreassembled*, each flushed fragment byte-identical in
//!   payload to one the device ingressed, in nondecreasing offset order,
//!   with fragments 2..n carrying the offset-0 fragment's TTL.
//! * **I3 — residual bounds (Table 2).** Enforcement on a non-trigger
//!   packet (a drop or an injection) only happens while some arm of the
//!   flow's most recent trigger is within its residual window; enforcement
//!   after every window expired — or with no trigger ever — is a
//!   violation.
//! * **I4 — monotone verdicts (§5.3.3).** Once a flow is observed
//!   *enforcing* (first drop or injection — the gate that keeps the
//!   Table-1 exemption dice from producing false positives), it must not
//!   silently unblock before `min(residual window, the conservative state
//!   idle timeout)`, unless the device restarted in between.
//!
//! The oracle knows nothing about policies: a [`DeviceAudit`] carries
//! closures (built by `tspu-core` from the device's actual policy) that
//! classify trigger packets and stateless IP-blocking, plus the device's
//! restart schedule from its fault plan. That keeps the checker sound
//! under policy hot-reloads that only add rules (the March 4 transition):
//! a packet the *current* policy classifies as a trigger that the device
//! did not act on merely arms an audit window that never fires.

use std::fmt;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_wire::fasthash::FxHashMap;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::TcpSegment;
use tspu_wire::udp::UdpDatagram;

use crate::capture::{CaptureRecord, TracePoint};
use crate::middlebox::MiddleboxId;
use crate::time::Time;

/// The blocking mechanisms a trigger can arm, as the oracle models them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmKind {
    /// SNI-I: remote→local packets rewritten to RST/ACK.
    RstRewrite,
    /// SNI-II: an allowance of packets passes, then symmetric drops.
    DelayedDrop,
    /// SNI-III: token-bucket throttling — passes are always legitimate.
    Throttle,
    /// SNI-IV: every packet dropped, including the trigger.
    FullDrop,
    /// QUIC: every packet of the UDP flow dropped, including the trigger.
    QuicDrop,
    /// HTTP-200 block-page injection (India profile): remote→local
    /// payloads replaced with the audited device's block page.
    BlockPage,
}

impl ArmKind {
    fn paper_name(self) -> &'static str {
        match self {
            ArmKind::RstRewrite => "SNI-I",
            ArmKind::DelayedDrop => "SNI-II",
            ArmKind::Throttle => "SNI-III",
            ArmKind::FullDrop => "SNI-IV",
            ArmKind::QuicDrop => "QUIC",
            ArmKind::BlockPage => "HTTP-200",
        }
    }
}

/// One mechanism a trigger packet might arm, with its residual window
/// (Table 2 for the TSPU profile; profile-specific otherwise). A packet
/// can yield several candidates when the oracle cannot know which one the
/// device chose (role-dependent precedence); ambiguous flows get the
/// sound subset of checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmCandidate {
    pub kind: ArmKind,
    pub window: Duration,
    /// Whether an injection verdict fires in both directions (the
    /// Turkmenistan profile) or only remote→local (TSPU SNI-I). Decides
    /// which untouched passes count as early unblocks (I4).
    pub bidirectional: bool,
}

/// Classifies a packet into the blocking mechanisms it could arm.
pub type ClassifyFn = Box<dyn Fn(&[u8]) -> Vec<ArmCandidate> + Send + Sync>;

/// Predicate over IPv4 addresses (IP-blocklist membership, locality).
pub type AddrPredicate = Box<dyn Fn(Ipv4Addr) -> bool + Send + Sync>;

/// How to audit one device: its id, policy-derived classification
/// closures, and its restart schedule.
pub struct DeviceAudit {
    /// The middlebox to audit. Other middleboxes in the capture (chaos
    /// links, NATs) are ignored.
    pub device: MiddleboxId,
    /// Label used in violation reports.
    pub label: String,
    /// The censor profile the device enforces ("tspu", "turkmenistan",
    /// "india", …) — named in violation reports so a differential
    /// campaign's failures identify the offending country model.
    pub profile: String,
    /// Classifies a local→remote packet: every blocking mechanism its
    /// payload could arm under the device's policy. Empty = not a trigger.
    pub classify: ClassifyFn,
    /// True for addresses under stateless IP-based blocking; flows
    /// touching them are exempt from the stateful checks (every packet is
    /// fair game for the device, with no arming required).
    pub ip_blocked: AddrPredicate,
    /// The exact block-page bytes this device injects, if its profile
    /// does. An egress whose TCP payload equals this (where the ingress
    /// payload did not) is a block-page injection and needs an in-window
    /// `BlockPage` arm.
    pub block_page: Option<Vec<u8>>,
    /// Virtual times at which the device restarted (from its fault plan):
    /// all flow and fragment audit state resets, exactly like the device's.
    pub restarts: Vec<Time>,
}

/// The full audit specification for one capture.
pub struct OracleSpec {
    pub devices: Vec<DeviceAudit>,
    /// Which addresses are on the local (client-network) side — decides
    /// packet direction, since trace points do not carry it.
    pub is_local_addr: AddrPredicate,
    /// Conservative lower bound on conntrack idle timeouts: enforcement is
    /// only *required* (I4) within this long of the arm, because a frozen
    /// flow entry may legitimately expire afterwards. The TSPU's shortest
    /// state timeout is 60 s.
    pub min_state_timeout: Duration,
}

impl OracleSpec {
    /// A spec with the default 60 s conservative state-timeout bound.
    pub fn new(is_local_addr: impl Fn(Ipv4Addr) -> bool + Send + Sync + 'static) -> OracleSpec {
        OracleSpec {
            devices: Vec::new(),
            is_local_addr: Box::new(is_local_addr),
            min_state_timeout: Duration::from_secs(60),
        }
    }
}

/// One detected model violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// I1: an injected RST/ACK altered metadata the model preserves.
    InjectedRstMetadata { field: &'static str, expected: u64, actual: u64 },
    /// I2: a flushed train left the device out of offset order.
    FragmentOrder { prev_offset: usize, offset: usize },
    /// I2: a flushed fragment does not match any ingressed fragment
    /// byte-for-byte (reassembled, rewritten, or fabricated).
    FragmentModified { offset: usize },
    /// I2: a non-first fragment left without the offset-0 fragment's TTL.
    FragmentTtl { offset: usize, expected: u8, actual: u8 },
    /// I3: enforcement observed after every residual window of the flow's
    /// last trigger had expired.
    ResidualExceeded { armed_at: Time, window: Duration },
    /// I3: a drop on a flow that no trigger ever armed.
    UnexplainedDrop,
    /// I3: an injection on a flow with no RST-arming trigger.
    UnexplainedInjection,
    /// I3: a block page injected on a flow no trigger armed for
    /// `BlockPage`, or outside the armed window.
    UnexplainedBlockPage,
    /// I4: a flow observed enforcing passed a packet untouched before its
    /// residual window (clipped by the state timeout) could have expired.
    EarlyUnblock { kind: ArmKind, armed_at: Time, deadline: Time },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::InjectedRstMetadata { field, expected, actual } => write!(
                f,
                "injected RST/ACK altered {field}: expected {expected}, got {actual} (Fig. 2 metadata preservation)"
            ),
            Violation::FragmentOrder { prev_offset, offset } => write!(
                f,
                "fragment flushed out of offset order: offset {offset} after {prev_offset} (Fig. 3)"
            ),
            Violation::FragmentModified { offset } => write!(
                f,
                "flushed fragment at offset {offset} matches no ingressed fragment — train was reassembled or rewritten"
            ),
            Violation::FragmentTtl { offset, expected, actual } => write!(
                f,
                "fragment at offset {offset} flushed with TTL {actual}, expected first fragment's TTL {expected} (§7.2)"
            ),
            Violation::ResidualExceeded { armed_at, window } => write!(
                f,
                "enforcement {:.0} s after the trigger at {armed_at}, beyond the {:.0} s Table-2 residual",
                window.as_secs_f64(),
                window.as_secs_f64()
            ),
            Violation::UnexplainedDrop => {
                write!(f, "packet consumed by the device with no armed verdict on its flow")
            }
            Violation::UnexplainedInjection => {
                write!(f, "RST/ACK injected on a flow no trigger armed for SNI-I")
            }
            Violation::UnexplainedBlockPage => {
                write!(f, "HTTP-200 block page injected on a flow no trigger armed")
            }
            Violation::EarlyUnblock { kind, armed_at, deadline } => write!(
                f,
                "{} verdict armed at {armed_at} stopped enforcing before {deadline} (monotonicity)",
                kind.paper_name()
            ),
        }
    }
}

/// A violation plus the minimal offending trace: the device call's capture
/// records (ingress and every egress) around the packet that broke the
/// invariant.
pub struct ViolationReport {
    pub violation: Violation,
    pub device: MiddleboxId,
    pub device_label: String,
    /// The censor profile the offending device enforces — so a
    /// differential campaign's failures name the country model at fault.
    pub profile: String,
    pub time: Time,
    /// The packet the check fired on (the offending egress for I1/I2, the
    /// ingress for I3/I4).
    pub packet: Vec<u8>,
    /// The full device call: ingress record followed by its egresses.
    pub trace: Vec<CaptureRecord>,
    /// The device's metric counters that moved over the audited run
    /// (`(name, delta)` pairs), attached via
    /// [`OracleReport::attach_device_counters`] so a violation names both
    /// the packet *and* the counter behind the decision. Empty until
    /// attached (or in an obs-disabled build).
    pub counters_moved: Vec<(String, u64)>,
    /// The offending device's last flight-recorder ledger events for the
    /// offending flow (rendered lines, oldest first), attached via
    /// [`OracleReport::attach_device_ledger`] — the enforcement history
    /// that explains *why* the device held the verdict it did. Empty until
    /// attached (or in an obs-disabled build).
    pub ledger: Vec<String>,
}

impl fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}/{}] at {}: {}",
            self.device_label, self.profile, self.time, self.violation
        )?;
        writeln!(f, "  offending packet: {}", summarize_packet(&self.packet))?;
        for record in &self.trace {
            let direction = match record.point {
                TracePoint::DeviceIngress { .. } => "ingress",
                TracePoint::DeviceEgress { .. } => " egress",
                _ => "  other",
            };
            writeln!(f, "  {direction} {} {}", record.time, summarize_packet(&record.bytes))?;
        }
        if !self.counters_moved.is_empty() {
            write!(f, "  counters moved:")?;
            for (name, delta) in &self.counters_moved {
                write!(f, " {name}=+{delta}")?;
            }
            writeln!(f)?;
        }
        if !self.ledger.is_empty() {
            writeln!(f, "  enforcement ledger (oldest first):")?;
            for line in &self.ledger {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// The oracle's verdict on one capture.
pub struct OracleReport {
    pub violations: Vec<ViolationReport>,
    /// Device calls audited (ingress records of audited devices).
    pub calls_audited: u64,
    /// RST/ACK injections whose metadata was checked (I1).
    pub injections_checked: u64,
    /// Fragment flushes checked (I2).
    pub flushes_checked: u64,
    /// Flows that armed at least one audit window.
    pub flows_armed: u64,
}

impl OracleReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full violation listing unless the capture is clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "oracle found {} violation(s):\n{self}", self.violations.len());
    }

    /// Attaches per-device metric movement to every violation: `lookup`
    /// maps a device id to its `(name, delta)` counter list (typically a
    /// `tspu_obs` snapshot delta over the audited run). Violations whose
    /// device has no entry are left untouched.
    pub fn attach_device_counters<F>(&mut self, mut lookup: F)
    where
        F: FnMut(MiddleboxId) -> Option<Vec<(String, u64)>>,
    {
        for violation in &mut self.violations {
            if let Some(counters) = lookup(violation.device) {
                violation.counters_moved = counters;
            }
        }
    }

    /// Attaches each violation's flight-recorder ledger: `lookup` maps the
    /// offending device id and packet to the device's last ledger events
    /// for that packet's flow (rendered lines, oldest first — typically
    /// `TspuDevice::ledger_for_packet` through the lab). The arming event
    /// behind a residual/monotonicity violation then appears verbatim in
    /// the report.
    pub fn attach_device_ledger<F>(&mut self, mut lookup: F)
    where
        F: FnMut(MiddleboxId, &[u8]) -> Vec<String>,
    {
        for violation in &mut self.violations {
            violation.ledger = lookup(violation.device, &violation.packet);
        }
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "oracle: {} calls, {} injections, {} flushes, {} armed flows, {} violation(s)",
            self.calls_audited,
            self.injections_checked,
            self.flushes_checked,
            self.flows_armed,
            self.violations.len()
        )?;
        for report in &self.violations {
            write!(f, "{report}")?;
        }
        Ok(())
    }
}

/// One device call reconstructed from the capture: an ingress record and
/// the contiguous egress records that followed it.
struct Call<'a> {
    time: Time,
    ingress_idx: usize,
    input: &'a [u8],
    outputs: Vec<&'a [u8]>,
    /// Index one past the last record of this call, for trace extraction.
    end_idx: usize,
}

/// Direction-normalized 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TupleKey {
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
    protocol: u8,
}

/// Per-flow audit state on one device.
#[derive(Debug, Default)]
struct FlowAudit {
    /// Candidates of the flow's most recent trigger (the device replaces
    /// the block on re-trigger, so only the latest arm matters).
    arms: Vec<ArmCandidate>,
    armed_at: Option<Time>,
    /// Enforcement observed since the last arm — the exemption-dice gate.
    enforcing: bool,
}

/// Ingressed fragments of one train: offset → (ttl, payload).
type FragTrain = FxHashMap<usize, (u8, Vec<u8>)>;

/// Per-device audit state.
struct DeviceState {
    flows: FxHashMap<TupleKey, FlowAudit>,
    /// Ingressed fragment trains, keyed by (src, dst, ident).
    frags: FxHashMap<(Ipv4Addr, Ipv4Addr, u16), FragTrain>,
    /// Restarts not yet applied, sorted ascending.
    pending_restarts: Vec<Time>,
}

/// The trace-invariant oracle. Build one from a spec, then [`Oracle::check`]
/// any capture the simulator produced.
pub struct Oracle {
    spec: OracleSpec,
}

impl Oracle {
    pub fn new(spec: OracleSpec) -> Oracle {
        Oracle { spec }
    }

    /// Replays `captures` and returns every invariant violation found.
    pub fn check(&self, captures: &[CaptureRecord]) -> OracleReport {
        let mut report = OracleReport {
            violations: Vec::new(),
            calls_audited: 0,
            injections_checked: 0,
            flushes_checked: 0,
            flows_armed: 0,
        };
        for audit in &self.spec.devices {
            let mut restarts = audit.restarts.clone();
            restarts.sort();
            let mut state = DeviceState {
                flows: FxHashMap::default(),
                frags: FxHashMap::default(),
                pending_restarts: restarts,
            };
            let mut idx = 0;
            while idx < captures.len() {
                let Some(call) = next_call(captures, &mut idx, audit.device) else {
                    break;
                };
                // A restart wipes conntrack and the fragment cache; the
                // device applies it lazily at its next packet, so the
                // audit state resets the same way.
                while state
                    .pending_restarts
                    .first()
                    .is_some_and(|&r| r <= call.time)
                {
                    state.pending_restarts.remove(0);
                    state.flows.clear();
                    state.frags.clear();
                }
                report.calls_audited += 1;
                self.check_call(audit, &mut state, &call, captures, &mut report);
            }
            report.flows_armed += state.flows.values().filter(|fa| fa.armed_at.is_some()).count() as u64;
        }
        report
    }

    fn check_call(
        &self,
        audit: &DeviceAudit,
        state: &mut DeviceState,
        call: &Call<'_>,
        captures: &[CaptureRecord],
        report: &mut OracleReport,
    ) {
        let Ok(ip) = Ipv4Packet::new_checked(call.input) else {
            return; // not IPv4: the device passes it untouched
        };
        if ip.is_fragment() {
            self.check_fragment_call(audit, state, call, &ip, captures, report);
            return;
        }
        let (src, dst) = (ip.src_addr(), ip.dst_addr());
        // Stateless IP-based blocking: every packet of such flows is fair
        // game (drops and RST rewrites need no arming). I1 still applies.
        let ip_block = (audit.ip_blocked)(src) || (audit.ip_blocked)(dst);

        let tuple;
        let src_is_local = (self.spec.is_local_addr)(src);
        let mut input_is_rst = false;
        let mut input_payload_len = 0;
        match ip.protocol() {
            Protocol::Tcp => {
                let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
                    return; // device passes unparseable TCP untouched
                };
                input_is_rst = tcp.flags().rst();
                input_payload_len = tcp.payload().len();
                tuple = tuple_key(src_is_local, src, tcp.src_port(), dst, tcp.dst_port(), 6);
            }
            Protocol::Udp => {
                let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
                    return;
                };
                tuple = tuple_key(src_is_local, src, udp.src_port(), dst, udp.dst_port(), 17);
            }
            _ => return, // ICMP and others: only stateless IP blocking applies
        }

        // I1: any output that is a TCP RST where the input was not.
        let mut injected = false;
        if !input_is_rst && ip.protocol() == Protocol::Tcp {
            for output in &call.outputs {
                if let Some(fields) = parse_tcp_fields(output) {
                    if fields.rst {
                        injected = true;
                        report.injections_checked += 1;
                        self.check_injection_metadata(audit, call, &ip, output, captures, report);
                    }
                }
            }
        }

        // I3: an egress whose TCP payload equals the device's block page,
        // where the ingress payload did not, is a block-page injection.
        // (A device forwarding a page injected *upstream* — the India
        // cross-ISP leakage topology — has page bytes on its ingress too
        // and is not charged with the injection.)
        let mut paged = false;
        if let Some(page) = &audit.block_page {
            if ip.protocol() == Protocol::Tcp && !tcp_payload_is(call.input, page) {
                paged = call.outputs.iter().any(|o| tcp_payload_is(o, page));
            }
        }

        if ip_block {
            return;
        }

        // Trigger classification (local→remote packets only — the TSPU
        // honors triggers only from the local side, §5.3.2).
        let candidates = if src_is_local { (audit.classify)(call.input) } else { Vec::new() };
        let dropped = call.outputs.is_empty();
        if !candidates.is_empty() {
            // The device replaces any existing verdict on re-trigger; the
            // allowance and enforcement evidence reset with it.
            let flow = state.flows.entry(tuple).or_default();
            flow.arms = candidates;
            flow.armed_at = Some(call.time);
            flow.enforcing = dropped; // SNI-IV / QUIC eat the trigger itself
            return;
        }

        let flow = state.flows.entry(tuple).or_default();
        if dropped {
            match flow.armed_at {
                None => self.violation(report, audit, call, captures, call.input, Violation::UnexplainedDrop),
                Some(armed_at) => {
                    let active = flow.arms.iter().any(|a| call.time <= armed_at + a.window);
                    if active {
                        flow.enforcing = true;
                    } else {
                        let window = flow.arms.iter().map(|a| a.window).max().unwrap_or_default();
                        self.violation(
                            report,
                            audit,
                            call,
                            captures,
                            call.input,
                            Violation::ResidualExceeded { armed_at, window },
                        );
                    }
                }
            }
        } else if paged {
            let page_arm = flow.arms.iter().find(|a| a.kind == ArmKind::BlockPage).copied();
            match (flow.armed_at, page_arm) {
                (Some(armed_at), Some(arm)) => {
                    if call.time <= armed_at + arm.window {
                        flow.enforcing = true;
                    } else {
                        self.violation(
                            report,
                            audit,
                            call,
                            captures,
                            call.input,
                            Violation::ResidualExceeded { armed_at, window: arm.window },
                        );
                    }
                }
                _ => self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    call.input,
                    Violation::UnexplainedBlockPage,
                ),
            }
        } else if injected {
            let rst_arm = flow.arms.iter().find(|a| a.kind == ArmKind::RstRewrite).copied();
            match (flow.armed_at, rst_arm) {
                (Some(armed_at), Some(arm)) => {
                    if call.time <= armed_at + arm.window {
                        flow.enforcing = true;
                    } else {
                        self.violation(
                            report,
                            audit,
                            call,
                            captures,
                            call.input,
                            Violation::ResidualExceeded { armed_at, window: arm.window },
                        );
                    }
                }
                _ => self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    call.input,
                    Violation::UnexplainedInjection,
                ),
            }
        } else {
            // The packet passed untouched. Only flag when the verdict is
            // unambiguous, enforcement was already observed, and the state
            // timeout cannot have expired the flow yet (I4).
            if let (Some(armed_at), true, [arm]) = (flow.armed_at, flow.enforcing, flow.arms.as_slice())
            {
                let deadline = armed_at + arm.window.min(self.spec.min_state_timeout);
                let kind_applies = match arm.kind {
                    ArmKind::FullDrop | ArmKind::QuicDrop | ArmKind::DelayedDrop => true,
                    // SNI-I rewrites only remote→local packets; a
                    // bidirectional arm (Turkmenistan) must also rewrite
                    // the local→remote direction.
                    ArmKind::RstRewrite => arm.bidirectional || !src_is_local,
                    // The page replaces remote→local payloads; empty
                    // segments (pure ACKs) pass untouched.
                    ArmKind::BlockPage => !src_is_local && input_payload_len > 0,
                    // A policer admits packets whenever its bucket refills.
                    ArmKind::Throttle => false,
                };
                if kind_applies && call.time <= deadline {
                    let violation =
                        Violation::EarlyUnblock { kind: arm.kind, armed_at, deadline };
                    self.violation(report, audit, call, captures, call.input, violation);
                }
            }
        }
    }

    /// I1: the injected RST/ACK must preserve addresses, ports, seq, ack,
    /// and TTL, and carry no payload.
    fn check_injection_metadata(
        &self,
        audit: &DeviceAudit,
        call: &Call<'_>,
        ingress: &Ipv4Packet<&[u8]>,
        output: &[u8],
        captures: &[CaptureRecord],
        report: &mut OracleReport,
    ) {
        let Some(out) = parse_tcp_fields(output) else { return };
        let Ok(in_tcp) = TcpSegment::new_checked(ingress.payload()) else { return };
        let checks: [(&'static str, u64, u64); 7] = [
            ("src addr", u32::from(ingress.src_addr()) as u64, u32::from(out.src) as u64),
            ("dst addr", u32::from(ingress.dst_addr()) as u64, u32::from(out.dst) as u64),
            ("src port", in_tcp.src_port() as u64, out.src_port as u64),
            ("dst port", in_tcp.dst_port() as u64, out.dst_port as u64),
            ("seq", in_tcp.seq_number() as u64, out.seq as u64),
            ("ack", in_tcp.ack_number() as u64, out.ack as u64),
            ("ttl", ingress.ttl() as u64, out.ttl as u64),
        ];
        for (field, expected, actual) in checks {
            if expected != actual {
                self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    output,
                    Violation::InjectedRstMetadata { field, expected, actual },
                );
            }
        }
        if out.payload_len != 0 {
            self.violation(
                report,
                audit,
                call,
                captures,
                output,
                Violation::InjectedRstMetadata {
                    field: "payload length",
                    expected: 0,
                    actual: out.payload_len as u64,
                },
            );
        }
    }

    /// I2: fragment calls — record ingresses, check flushes.
    fn check_fragment_call(
        &self,
        audit: &DeviceAudit,
        state: &mut DeviceState,
        call: &Call<'_>,
        ip: &Ipv4Packet<&[u8]>,
        captures: &[CaptureRecord],
        report: &mut OracleReport,
    ) {
        let (src, dst) = (ip.src_addr(), ip.dst_addr());
        if (audit.ip_blocked)(src) || (audit.ip_blocked)(dst) {
            return; // dropped statelessly before the cache
        }
        let key = (src, dst, ip.ident());
        state
            .frags
            .entry(key)
            .or_default()
            .insert(ip.frag_offset(), (ip.ttl(), ip.payload().to_vec()));

        if call.outputs.is_empty() {
            return; // buffered (or poisoned) — nothing to check yet
        }
        report.flushes_checked += 1;

        let recorded = state.frags.get(&key).cloned().unwrap_or_default();
        // The expected TTL for fragments 2..n is the offset-0 fragment's
        // ingress TTL; with no offset-0 in the flush, fragments keep their
        // own TTLs (the cache found no first fragment to copy from).
        let flushed_has_first = call
            .outputs
            .iter()
            .filter_map(|o| Ipv4Packet::new_checked(*o).ok())
            .any(|v| v.is_fragment() && v.frag_offset() == 0);
        let first_ttl = recorded.get(&0).map(|(ttl, _)| *ttl);

        let mut prev_offset: Option<usize> = None;
        for output in &call.outputs {
            let Ok(out) = Ipv4Packet::new_checked(*output) else {
                self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    output,
                    Violation::FragmentModified { offset: 0 },
                );
                continue;
            };
            if !out.is_fragment() {
                // A whole datagram left where fragments entered: the train
                // was reassembled — exactly what the TSPU never does.
                self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    output,
                    Violation::FragmentModified { offset: out.frag_offset() },
                );
                continue;
            }
            let offset = out.frag_offset();
            if let Some(prev) = prev_offset {
                if offset < prev {
                    self.violation(
                        report,
                        audit,
                        call,
                        captures,
                        output,
                        Violation::FragmentOrder { prev_offset: prev, offset },
                    );
                }
            }
            prev_offset = Some(offset);

            match recorded.get(&offset) {
                None => self.violation(
                    report,
                    audit,
                    call,
                    captures,
                    output,
                    Violation::FragmentModified { offset },
                ),
                Some((ingress_ttl, payload)) => {
                    if out.payload() != &payload[..]
                        || out.src_addr() != src
                        || out.dst_addr() != dst
                        || out.ident() != key.2
                    {
                        self.violation(
                            report,
                            audit,
                            call,
                            captures,
                            output,
                            Violation::FragmentModified { offset },
                        );
                    }
                    let expected_ttl = if offset == 0 {
                        *ingress_ttl
                    } else if flushed_has_first {
                        first_ttl.unwrap_or(*ingress_ttl)
                    } else {
                        *ingress_ttl
                    };
                    if out.ttl() != expected_ttl {
                        self.violation(
                            report,
                            audit,
                            call,
                            captures,
                            output,
                            Violation::FragmentTtl {
                                offset,
                                expected: expected_ttl,
                                actual: out.ttl(),
                            },
                        );
                    }
                }
            }
        }
        // The train left the device; its audit record is spent.
        state.frags.remove(&key);
    }

    fn violation(
        &self,
        report: &mut OracleReport,
        audit: &DeviceAudit,
        call: &Call<'_>,
        captures: &[CaptureRecord],
        packet: &[u8],
        violation: Violation,
    ) {
        report.violations.push(ViolationReport {
            violation,
            device: audit.device,
            device_label: audit.label.clone(),
            profile: audit.profile.clone(),
            time: call.time,
            packet: packet.to_vec(),
            trace: captures[call.ingress_idx..call.end_idx].to_vec(),
            counters_moved: Vec::new(),
            ledger: Vec::new(),
        });
    }
}

/// Advances `idx` to the next call of `device` and reconstructs it: the
/// ingress record plus the contiguous egress records that follow (the
/// event loop is synchronous, so a call's records are never interleaved
/// with anything else).
fn next_call<'a>(
    captures: &'a [CaptureRecord],
    idx: &mut usize,
    device: MiddleboxId,
) -> Option<Call<'a>> {
    while *idx < captures.len() {
        let i = *idx;
        *idx += 1;
        let TracePoint::DeviceIngress { device: d, step } = captures[i].point else {
            continue;
        };
        if d != device {
            continue;
        }
        let mut outputs = Vec::new();
        let mut end = i + 1;
        while end < captures.len() {
            match captures[end].point {
                TracePoint::DeviceEgress { device: d2, step: s2 } if d2 == device && s2 == step => {
                    outputs.push(&captures[end].bytes[..]);
                    end += 1;
                }
                _ => break,
            }
        }
        *idx = end;
        return Some(Call {
            time: captures[i].time,
            ingress_idx: i,
            input: &captures[i].bytes,
            outputs,
            end_idx: end,
        });
    }
    None
}

fn tuple_key(
    src_is_local: bool,
    src: Ipv4Addr,
    src_port: u16,
    dst: Ipv4Addr,
    dst_port: u16,
    protocol: u8,
) -> TupleKey {
    if src_is_local {
        TupleKey { local: (src, src_port), remote: (dst, dst_port), protocol }
    } else {
        TupleKey { local: (dst, dst_port), remote: (src, src_port), protocol }
    }
}

struct TcpFields {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    ttl: u8,
    rst: bool,
    payload_len: usize,
}

fn parse_tcp_fields(packet: &[u8]) -> Option<TcpFields> {
    let ip = Ipv4Packet::new_checked(packet).ok()?;
    if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
        return None;
    }
    let tcp = TcpSegment::new_checked(ip.payload()).ok()?;
    Some(TcpFields {
        src: ip.src_addr(),
        dst: ip.dst_addr(),
        src_port: tcp.src_port(),
        dst_port: tcp.dst_port(),
        seq: tcp.seq_number(),
        ack: tcp.ack_number(),
        ttl: ip.ttl(),
        rst: tcp.flags().rst(),
        payload_len: tcp.payload().len(),
    })
}

/// Whether `packet` is an unfragmented IPv4/TCP packet whose TCP payload
/// equals `page` byte-for-byte.
fn tcp_payload_is(packet: &[u8], page: &[u8]) -> bool {
    let Ok(ip) = Ipv4Packet::new_checked(packet) else { return false };
    if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
        return false;
    }
    let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else { return false };
    tcp.payload() == page
}

/// One line describing a packet, for violation reports.
fn summarize_packet(bytes: &[u8]) -> String {
    let Ok(ip) = Ipv4Packet::new_checked(bytes) else {
        return format!("<unparseable, {} bytes>", bytes.len());
    };
    if ip.is_fragment() {
        return format!(
            "frag {} -> {} ident={} offset={} mf={} ttl={} len={}",
            ip.src_addr(),
            ip.dst_addr(),
            ip.ident(),
            ip.frag_offset(),
            ip.more_fragments(),
            ip.ttl(),
            bytes.len()
        );
    }
    match ip.protocol() {
        Protocol::Tcp => match TcpSegment::new_checked(ip.payload()) {
            Ok(tcp) => format!(
                "tcp {}:{} -> {}:{} {:?} seq={} ack={} ttl={} payload={}",
                ip.src_addr(),
                tcp.src_port(),
                ip.dst_addr(),
                tcp.dst_port(),
                tcp.flags(),
                tcp.seq_number(),
                tcp.ack_number(),
                ip.ttl(),
                tcp.payload().len()
            ),
            Err(_) => format!("tcp {} -> {} <bad header>", ip.src_addr(), ip.dst_addr()),
        },
        Protocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
            Ok(udp) => format!(
                "udp {}:{} -> {}:{} ttl={} payload={}",
                ip.src_addr(),
                udp.src_port(),
                ip.dst_addr(),
                udp.dst_port(),
                ip.ttl(),
                udp.payload().len()
            ),
            Err(_) => format!("udp {} -> {} <bad header>", ip.src_addr(), ip.dst_addr()),
        },
        proto => format!("{proto:?} {} -> {} ttl={}", ip.src_addr(), ip.dst_addr(), ip.ttl()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::ipv4::Ipv4Repr;
    use tspu_wire::tcp::{TcpFlags, TcpRepr};

    const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const REMOTE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);
    const DEV: MiddleboxId = MiddleboxId(0);

    #[allow(clippy::too_many_arguments)]
    fn tcp_packet(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        ttl: u8,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut tcp = TcpRepr::new(src_port, dst_port, flags);
        tcp.seq_number = seq;
        tcp.ack_number = ack;
        tcp.payload = payload.to_vec();
        let segment = tcp.build(src, dst);
        let mut ip = Ipv4Repr::new(src, dst, Protocol::Tcp, segment.len());
        ip.ttl = ttl;
        ip.build(&segment)
    }

    fn ingress(t: u64, bytes: Vec<u8>) -> CaptureRecord {
        CaptureRecord {
            time: Time::from_micros(t),
            point: TracePoint::DeviceIngress { device: DEV, step: 0 },
            bytes,
        }
    }

    fn egress(t: u64, bytes: Vec<u8>) -> CaptureRecord {
        CaptureRecord {
            time: Time::from_micros(t),
            point: TracePoint::DeviceEgress { device: DEV, step: 0 },
            bytes,
        }
    }

    fn spec_no_triggers() -> OracleSpec {
        let mut spec = OracleSpec::new(|addr: Ipv4Addr| addr.octets()[0] == 10);
        spec.devices.push(DeviceAudit {
            device: DEV,
            label: "dev".into(),
            profile: "tspu".into(),
            classify: Box::new(|_| Vec::new()),
            ip_blocked: Box::new(|_| false),
            block_page: None,
            restarts: Vec::new(),
        });
        spec
    }

    #[test]
    fn clean_passthrough_is_clean() {
        let pkt = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::SYN, 1, 0, 63, &[]);
        let captures = vec![ingress(0, pkt.clone()), egress(0, pkt)];
        let report = Oracle::new(spec_no_triggers()).check(&captures);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.calls_audited, 1);
    }

    #[test]
    fn good_injection_metadata_accepted() {
        // A response from the remote rewritten to RST/ACK, all metadata kept.
        let response = tcp_packet(REMOTE, 443, LOCAL, 40000, TcpFlags::SYN_ACK, 500, 2, 60, &[]);
        let rewritten =
            tcp_packet(REMOTE, 443, LOCAL, 40000, TcpFlags::RST_ACK, 500, 2, 60, &[]);
        // The flow needs an RST arm: classify the *local* trigger.
        let mut spec = OracleSpec::new(|addr: Ipv4Addr| addr.octets()[0] == 10);
        spec.devices.push(DeviceAudit {
            device: DEV,
            label: "dev".into(),
            profile: "tspu".into(),
            classify: Box::new(|bytes| {
                let ip = Ipv4Packet::new_checked(bytes).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                if tcp.payload().is_empty() {
                    Vec::new()
                } else {
                    vec![ArmCandidate {
                        kind: ArmKind::RstRewrite,
                        window: Duration::from_secs(75),
                        bidirectional: false,
                    }]
                }
            }),
            ip_blocked: Box::new(|_| false),
            block_page: None,
            restarts: Vec::new(),
        });
        let hello = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::PSH_ACK, 2, 500, 63, b"hello");
        let captures = vec![
            ingress(0, hello.clone()),
            egress(0, hello),
            ingress(10, response),
            egress(10, rewritten),
        ];
        let report = Oracle::new(spec).check(&captures);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.injections_checked, 1);
    }

    #[test]
    fn fresh_ttl_on_injected_rst_is_flagged() {
        let response = tcp_packet(REMOTE, 443, LOCAL, 40000, TcpFlags::SYN_ACK, 500, 2, 60, &[]);
        // The model violation: injected RST with a fresh TTL of 64.
        let rewritten =
            tcp_packet(REMOTE, 443, LOCAL, 40000, TcpFlags::RST_ACK, 500, 2, 64, &[]);
        let captures = vec![ingress(0, response), egress(0, rewritten)];
        let report = Oracle::new(spec_no_triggers()).check(&captures);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.violation, Violation::InjectedRstMetadata { field: "ttl", .. })));
        // The report carries the offending packet and its call trace.
        let offending = &report.violations[0];
        assert_eq!(offending.trace.len(), 2);
        assert!(format!("{offending}").contains("ttl"));
    }

    #[test]
    fn unexplained_drop_is_flagged() {
        let pkt = tcp_packet(LOCAL, 40001, REMOTE, 443, TcpFlags::PSH_ACK, 9, 1, 62, b"data");
        let captures = vec![ingress(0, pkt)];
        let report = Oracle::new(spec_no_triggers()).check(&captures);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.violation, Violation::UnexplainedDrop)));
    }

    #[test]
    fn restart_forgives_lost_state() {
        // Armed flow stops being enforced after a device restart: no
        // violation, because the restart wiped conntrack.
        let mut spec = OracleSpec::new(|addr: Ipv4Addr| addr.octets()[0] == 10);
        spec.devices.push(DeviceAudit {
            device: DEV,
            label: "dev".into(),
            profile: "tspu".into(),
            classify: Box::new(|bytes| {
                let ip = Ipv4Packet::new_checked(bytes).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                if tcp.payload().is_empty() {
                    Vec::new()
                } else {
                    vec![ArmCandidate {
                        kind: ArmKind::FullDrop,
                        window: Duration::from_secs(40),
                        bidirectional: false,
                    }]
                }
            }),
            ip_blocked: Box::new(|_| false),
            block_page: None,
            restarts: vec![Time::from_secs(5)],
        });
        let hello = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::PSH_ACK, 2, 1, 63, b"x");
        let follow = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::ACK, 3, 1, 63, &[]);
        let captures = vec![
            // Trigger dropped (SNI-IV eats it): flow enforcing.
            ingress(0, hello),
            // After the restart the same flow passes — legitimate.
            ingress(10_000_000, follow.clone()),
            egress(10_000_000, follow),
        ];
        let report = Oracle::new(spec).check(&captures);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn early_unblock_without_restart_is_flagged() {
        let mut spec = OracleSpec::new(|addr: Ipv4Addr| addr.octets()[0] == 10);
        spec.devices.push(DeviceAudit {
            device: DEV,
            label: "dev".into(),
            profile: "tspu".into(),
            classify: Box::new(|bytes| {
                let ip = Ipv4Packet::new_checked(bytes).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                if tcp.payload().is_empty() {
                    Vec::new()
                } else {
                    vec![ArmCandidate {
                        kind: ArmKind::FullDrop,
                        window: Duration::from_secs(40),
                        bidirectional: false,
                    }]
                }
            }),
            ip_blocked: Box::new(|_| false),
            block_page: None,
            restarts: Vec::new(),
        });
        let hello = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::PSH_ACK, 2, 1, 63, b"x");
        let follow = tcp_packet(LOCAL, 40000, REMOTE, 443, TcpFlags::ACK, 3, 1, 63, &[]);
        let captures = vec![
            ingress(0, hello),
            ingress(10_000_000, follow.clone()),
            egress(10_000_000, follow),
        ];
        let report = Oracle::new(spec).check(&captures);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.violation, Violation::EarlyUnblock { kind: ArmKind::FullDrop, .. })));
    }
}
