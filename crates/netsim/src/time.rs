//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation's virtual clock, in microseconds since the
/// simulation started. Durations are ordinary [`std::time::Duration`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from microseconds since simulation start.
    pub fn from_micros(micros: u64) -> Time {
        Time(micros)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub fn from_secs(secs: u64) -> Time {
        Time(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: Time) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration::from_micros(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(2);
        assert_eq!(t + Duration::from_millis(500), Time::from_micros(2_500_000));
        assert_eq!(Time::from_secs(3) - Time::from_secs(1), Duration::from_secs(2));
        assert_eq!(Time::from_secs(1).since(Time::from_secs(3)), Duration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Time::from_micros(1_500_000)), "1.500000s");
    }
}
