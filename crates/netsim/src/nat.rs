//! Carrier-grade NAT as a middlebox.
//!
//! Roskomnadzor's installation guideline puts TSPU devices *before* (on
//! the subscriber side of) CG-NAT (§7.1), and the paper's remote
//! fragmentation scan explicitly cannot see devices behind a NAT (§7.3's
//! limitations: measured deployment counts are a lower bound). This NAT
//! model makes that limitation reproducible:
//!
//! * outbound TCP/UDP flows get (address, port) translations from a
//!   public pool, inbound packets are reverse-translated;
//! * unsolicited inbound packets are dropped (endpoint-independent
//!   filtering would be more permissive; subscriber NATs reject);
//! * **non-first fragments are dropped** — they carry no transport
//!   header, so a NAT that does not reassemble cannot translate them
//!   (the common CG-NAT behavior, and the precise reason fragmented
//!   probes die at the NAT boundary).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::TcpSegment;
use tspu_wire::udp::UdpDatagram;

use crate::middlebox::{Direction, Middlebox, Verdict};
use crate::time::Time;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InnerKey {
    addr: Ipv4Addr,
    port: u16,
    proto: u8,
}

/// The CG-NAT box.
pub struct Cgnat {
    public_addr: Ipv4Addr,
    next_port: u16,
    outbound: HashMap<InnerKey, u16>,
    inbound: HashMap<(u16, u8), InnerKey>,
    /// Fragments dropped (the §7.3 observable).
    pub fragments_dropped: u64,
    /// Unsolicited inbound packets dropped.
    pub unsolicited_dropped: u64,
}

impl Cgnat {
    /// Creates a NAT translating to `public_addr`.
    pub fn new(public_addr: Ipv4Addr) -> Cgnat {
        Cgnat {
            public_addr,
            next_port: 10_000,
            outbound: HashMap::new(),
            inbound: HashMap::new(),
            fragments_dropped: 0,
            unsolicited_dropped: 0,
        }
    }

    /// The public address of this NAT.
    pub fn public_addr(&self) -> Ipv4Addr {
        self.public_addr
    }

    /// Active translations.
    pub fn sessions(&self) -> usize {
        self.outbound.len()
    }

    fn allocate(&mut self, key: InnerKey) -> u16 {
        if let Some(&port) = self.outbound.get(&key) {
            return port;
        }
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(10_000);
        self.outbound.insert(key, port);
        self.inbound.insert((port, key.proto), key);
        port
    }

    fn translate_out(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let mut bytes = packet.to_vec();
        let view = Ipv4Packet::new_unchecked(&bytes[..]);
        let (src, dst, proto) = (view.src_addr(), view.dst_addr(), view.protocol());
        let header_len = view.header_len();
        match proto {
            Protocol::Tcp => {
                let seg = TcpSegment::new_checked(&bytes[header_len..]).ok()?;
                let key = InnerKey { addr: src, port: seg.src_port(), proto: 6 };
                let public_port = self.allocate(key);
                let mut seg = TcpSegment::new_unchecked(&mut bytes[header_len..]);
                seg.set_src_port(public_port);
                seg.fill_checksum(self.public_addr, dst);
            }
            Protocol::Udp => {
                let datagram = UdpDatagram::new_checked(&bytes[header_len..]).ok()?;
                let key = InnerKey { addr: src, port: datagram.src_port(), proto: 17 };
                let public_port = self.allocate(key);
                let mut datagram = UdpDatagram::new_unchecked(&mut bytes[header_len..]);
                datagram.set_src_port(public_port);
                datagram.fill_checksum(self.public_addr, dst);
            }
            _ => return None, // ICMP & friends: not translated here
        }
        let mut ip = Ipv4Packet::new_unchecked(&mut bytes[..]);
        ip.set_src_addr(self.public_addr);
        ip.fill_checksum();
        Some(bytes)
    }

    fn translate_in(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let mut bytes = packet.to_vec();
        let view = Ipv4Packet::new_unchecked(&bytes[..]);
        let header_len = view.header_len();
        let src = view.src_addr();
        let (public_port, proto) = match view.protocol() {
            Protocol::Tcp => {
                let seg = TcpSegment::new_checked(&bytes[header_len..]).ok()?;
                (seg.dst_port(), 6u8)
            }
            Protocol::Udp => {
                let datagram = UdpDatagram::new_checked(&bytes[header_len..]).ok()?;
                (datagram.dst_port(), 17u8)
            }
            _ => return None,
        };
        let key = *self.inbound.get(&(public_port, proto))?;
        match proto {
            6 => {
                let mut seg = TcpSegment::new_unchecked(&mut bytes[header_len..]);
                seg.set_dst_port(key.port);
                seg.fill_checksum(src, key.addr);
            }
            _ => {
                let mut datagram = UdpDatagram::new_unchecked(&mut bytes[header_len..]);
                datagram.set_dst_port(key.port);
                datagram.fill_checksum(src, key.addr);
            }
        }
        let mut ip = Ipv4Packet::new_unchecked(&mut bytes[..]);
        ip.set_dst_addr(key.addr);
        ip.fill_checksum();
        Some(bytes)
    }
}

impl Middlebox for Cgnat {
    fn process(&mut self, _now: Time, direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        let Ok(view) = Ipv4Packet::new_checked(&packet[..]) else {
            return Verdict::Pass;
        };
        if view.is_fragment() {
            // No transport header (or unmatchable train): untranslatable.
            self.fragments_dropped += 1;
            return Verdict::Drop;
        }
        match direction {
            Direction::LocalToRemote => match self.translate_out(packet) {
                Some(translated) => Verdict::Replace(translated),
                None => Verdict::Pass,
            },
            Direction::RemoteToLocal => match self.translate_in(packet) {
                Some(translated) => Verdict::Replace(translated),
                None => {
                    self.unsolicited_dropped += 1;
                    Verdict::Drop
                }
            },
        }
    }

    fn label(&self) -> String {
        format!("cgnat({})", self.public_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::ipv4::Ipv4Repr;
    use tspu_wire::tcp::{TcpFlags, TcpRepr};

    const INNER: Ipv4Addr = Ipv4Addr::new(100, 64, 5, 2);
    const PUBLIC: Ipv4Addr = Ipv4Addr::new(5, 18, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 3);

    fn tcp(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, flags: TcpFlags) -> Vec<u8> {
        let seg = TcpRepr::new(sp, dp, flags).build(src, dst);
        Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
    }

    #[test]
    fn outbound_translation_and_return_path() {
        let mut nat = Cgnat::new(PUBLIC);
        let syn = tcp(INNER, 40_000, SERVER, 443, TcpFlags::SYN);
        let out = nat.process_owned(Time::ZERO, Direction::LocalToRemote, syn.clone());
        assert_eq!(out.len(), 1);
        let view = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert_eq!(view.src_addr(), PUBLIC);
        assert!(view.verify_checksum());
        let seg = TcpSegment::new_checked(view.payload()).unwrap();
        let public_port = seg.src_port();
        assert!(seg.verify_checksum(PUBLIC, SERVER));

        // Reply to the translated port returns to the inner host.
        let synack = tcp(SERVER, 443, PUBLIC, public_port, TcpFlags::SYN_ACK);
        let back = nat.process_owned(Time::ZERO, Direction::RemoteToLocal, synack.clone());
        assert_eq!(back.len(), 1);
        let view = Ipv4Packet::new_checked(&back[0][..]).unwrap();
        assert_eq!(view.dst_addr(), INNER);
        let seg = TcpSegment::new_checked(view.payload()).unwrap();
        assert_eq!(seg.dst_port(), 40_000);
        assert!(seg.verify_checksum(SERVER, INNER));
        assert_eq!(nat.sessions(), 1);
    }

    #[test]
    fn mapping_is_stable_per_flow() {
        let mut nat = Cgnat::new(PUBLIC);
        let pkt = tcp(INNER, 40_001, SERVER, 443, TcpFlags::SYN);
        let a = nat.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
        let b = nat.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
        let port = |bytes: &Vec<u8>| {
            let view = Ipv4Packet::new_unchecked(&bytes[..]);
            TcpSegment::new_unchecked(view.payload()).src_port()
        };
        assert_eq!(port(&a[0]), port(&b[0]));
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut nat = Cgnat::new(PUBLIC);
        let probe = tcp(SERVER, 5555, PUBLIC, 40_404, TcpFlags::SYN);
        assert!(nat.process_owned(Time::ZERO, Direction::RemoteToLocal, probe.clone()).is_empty());
        assert_eq!(nat.unsolicited_dropped, 1);
    }

    #[test]
    fn fragments_die_at_the_nat() {
        // §7.3: the fragmentation scan cannot cross a NAT.
        let mut nat = Cgnat::new(PUBLIC);
        let mut tcp_syn = TcpRepr::new(1234, 443, TcpFlags::SYN);
        tcp_syn.payload = vec![0xaa; 256];
        let seg = tcp_syn.build(SERVER, PUBLIC);
        let packet = Ipv4Repr::new(SERVER, PUBLIC, Protocol::Tcp, seg.len()).build(&seg);
        for fragment in tspu_wire::frag::fragment(&packet, 64).unwrap() {
            assert!(nat.process_owned(Time::ZERO, Direction::RemoteToLocal, fragment.clone()).is_empty());
        }
        assert!(nat.fragments_dropped >= 4);
    }

    #[test]
    fn distinct_inner_hosts_get_distinct_ports() {
        let mut nat = Cgnat::new(PUBLIC);
        let other = Ipv4Addr::new(100, 64, 5, 3);
        let a = nat.process_owned(Time::ZERO, Direction::LocalToRemote, tcp(INNER, 40_000, SERVER, 443, TcpFlags::SYN));
        let b = nat.process_owned(Time::ZERO, Direction::LocalToRemote, tcp(other, 40_000, SERVER, 443, TcpFlags::SYN));
        let port = |bytes: &Vec<u8>| {
            let view = Ipv4Packet::new_unchecked(&bytes[..]);
            TcpSegment::new_unchecked(view.payload()).src_port()
        };
        assert_ne!(port(&a[0]), port(&b[0]));
        assert_eq!(nat.sessions(), 2);
    }
}
