//! Packet capture: the simulator's equivalent of running tcpdump on both
//! ends, which the paper's methodology does for every measurement (§3).

use crate::network::HostId;
use crate::time::Time;

/// Where a captured packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// Leaving a host's network interface.
    HostTx(HostId),
    /// Arriving at a host's network interface.
    HostRx(HostId),
    /// Dropped in transit: TTL expiry or a middlebox drop, at the given
    /// route step index.
    Dropped { step: usize },
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    pub time: Time,
    pub point: TracePoint,
    pub bytes: Vec<u8>,
}

impl CaptureRecord {
    /// True if this record is a receive at `host`.
    pub fn is_rx_at(&self, host: HostId) -> bool {
        self.point == TracePoint::HostRx(host)
    }

    /// True if this record is a transmit from `host`.
    pub fn is_tx_from(&self, host: HostId) -> bool {
        self.point == TracePoint::HostTx(host)
    }
}
