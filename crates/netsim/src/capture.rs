//! Packet capture: the simulator's equivalent of running tcpdump on both
//! ends, which the paper's methodology does for every measurement (§3) —
//! plus per-middlebox trace points, the equivalent of a tap on either side
//! of an in-path device, which the chaos oracle replays to check model
//! invariants exactly where the device acted.

use crate::middlebox::MiddleboxId;
use crate::network::HostId;
use crate::time::Time;

/// Where a captured packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// Leaving a host's network interface.
    HostTx(HostId),
    /// Arriving at a host's network interface.
    HostRx(HostId),
    /// Dropped in transit: TTL expiry or a middlebox drop, at the given
    /// route step index.
    Dropped { step: usize },
    /// Entering a middlebox at the given route step (the packet as the
    /// device sees it, post router-TTL-decrement).
    DeviceIngress { device: MiddleboxId, step: usize },
    /// Leaving a middlebox: one record per packet the device forwarded for
    /// the preceding ingress, in forwarding order. An ingress followed by
    /// no egress means the device consumed the packet (drop or buffering).
    DeviceEgress { device: MiddleboxId, step: usize },
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    pub time: Time,
    pub point: TracePoint,
    pub bytes: Vec<u8>,
}

impl CaptureRecord {
    /// True if this record is a receive at `host`.
    pub fn is_rx_at(&self, host: HostId) -> bool {
        self.point == TracePoint::HostRx(host)
    }

    /// True if this record is a transmit from `host`.
    pub fn is_tx_from(&self, host: HostId) -> bool {
        self.point == TracePoint::HostTx(host)
    }
}
