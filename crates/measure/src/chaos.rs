//! ChaosSweep: the Table-1 reliability campaign as a (scenario ×
//! fault-seed) grid under seeded link and device faults, sharded across
//! the work-stealing [`ScanPool`] with byte-identical output at any
//! thread count, every cell's capture replayed through the trace-invariant
//! oracle.
//!
//! Each cell is a self-contained simulation: a private Table-1 lab
//! forked from a warm image built once per run, the cell's [`FaultPlan`]
//! wired through it at fork time, one reliability cell measured, then —
//! when `check_oracle` is on — the full capture audited against the
//! paper's model invariants. A fault schedule that provokes a model
//! violation therefore fails the sweep loudly with the offending packet
//! and trace, instead of quietly skewing a failure percentage.

use tspu_core::PolicyHandle;
use tspu_netsim::fault::{DeviceFaults, FaultPlan, LinkFaults};
use tspu_netsim::oracle::Oracle;
use tspu_topology::VantageLab;

use crate::reliability::{run_cell, FailureStats, Mechanism};
use crate::sweep::{PoolRun, RunOpts, ScanPool};

/// One scenario of the grid: a vantage × mechanism pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosScenario {
    pub vantage: &'static str,
    pub mechanism: Mechanism,
}

/// The (scenario × seed) grid specification. Scenarios and seeds are
/// crossed in scenario-major order; every cell derives its own
/// [`FaultPlan`] from the shared fault template and the cell's seed.
#[derive(Clone)]
pub struct ChaosSweep {
    pub policy: PolicyHandle,
    pub scenarios: Vec<ChaosScenario>,
    pub seeds: Vec<u64>,
    /// Link faults on the local→remote transit segment of every vantage.
    pub forward: LinkFaults,
    /// Link faults on the remote→local transit segment.
    pub reverse: LinkFaults,
    /// Device faults applied to every TSPU device.
    pub device: DeviceFaults,
    /// Trials per cell (each on a fresh source port).
    pub trials: u32,
    /// Capture every cell and replay it through the oracle.
    pub check_oracle: bool,
}

/// One finished cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    pub vantage: &'static str,
    pub mechanism: Mechanism,
    pub seed: u64,
    pub stats: FailureStats,
    /// Rendered oracle violations; empty means the capture was clean.
    pub oracle_violations: Vec<String>,
    /// Packets the cell's chaos links consumed (loss + MTU + flap).
    pub chaos_dropped: u64,
    /// Extra packets the cell's chaos links injected (duplicates).
    pub chaos_injected: u64,
}

impl ChaosSweep {
    /// The full Table-1 grid — every vantage × every mechanism — under a
    /// moderate loss + bounded-reorder plan, oracle on: 15 scenarios, so
    /// 7 seeds make a 105-cell grid.
    pub fn table1_grid(policy: PolicyHandle, seeds: Vec<u64>, trials: u32) -> ChaosSweep {
        let mut scenarios = Vec::new();
        for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
            for mechanism in Mechanism::ALL {
                scenarios.push(ChaosScenario { vantage, mechanism });
            }
        }
        let link = LinkFaults {
            loss: 0.02,
            reorder: 0.05,
            max_displacement: 3,
            ..LinkFaults::default()
        };
        ChaosSweep {
            policy,
            scenarios,
            seeds,
            forward: link.clone(),
            reverse: link,
            device: DeviceFaults::default(),
            trials,
            check_oracle: true,
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.seeds.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the grid on the pool. Cells come back in scenario-major,
    /// seed-minor order — byte-identical at every thread count, because
    /// each cell is a pure function of (scenario, seed) and the pool
    /// reassembles results by index. Ask for the wall-clock
    /// [`crate::sweep::PoolReport`] with [`RunOpts::report`].
    pub fn run(&self, pool: &ScanPool) -> Vec<ChaosCell> {
        self.run_opts(pool, &RunOpts::quick()).results
    }

    /// [`ChaosSweep::run`] with explicit [`RunOpts`] — `report` yields the
    /// per-worker utilization and cell-latency histogram for campaign
    /// dashboards; `observe` is interpreted by the cells themselves (the
    /// oracle audit), so the flag is ignored here.
    pub fn run_opts(&self, pool: &ScanPool, opts: &RunOpts) -> PoolRun<ChaosCell> {
        let cells: Vec<(ChaosScenario, u64)> = self
            .scenarios
            .iter()
            .flat_map(|&scenario| self.seeds.iter().map(move |&seed| (scenario, seed)))
            .collect();
        // The warm Table-1 lab is built once; each cell forks it and wires
        // its own seeded fault plan through the fork. A cell stays a pure
        // function of (scenario, seed) — the fork is byte-identical to the
        // fresh build the old per-cell path did.
        let image = VantageLab::builder().policy(self.policy.clone()).table1().image();
        pool.run(&cells, opts, || (), |(), index, &(scenario, seed)| {
            self.run_one(&image, index, scenario, seed)
        })
    }

    /// Runs one cell: forked lab, fault plan, reliability measurement,
    /// oracle audit.
    fn run_one(
        &self,
        image: &tspu_topology::LabImage,
        index: usize,
        scenario: ChaosScenario,
        seed: u64,
    ) -> ChaosCell {
        let plan = FaultPlan {
            seed,
            forward: self.forward.clone(),
            reverse: self.reverse.clone(),
            device: self.device.clone(),
        };
        let mut lab = image.fork(index);
        lab.apply_fault_plan(&plan);
        if self.check_oracle {
            lab.net.set_capture(true);
        }
        let stats = run_cell(&mut lab, scenario.vantage, scenario.mechanism, self.trials);
        let oracle_violations = if self.check_oracle {
            let spec = lab.oracle_spec();
            let captures = lab.net.take_captures();
            let mut report = Oracle::new(spec).check(&captures);
            // Name the counters that moved on the offending device: the
            // lab is fresh per cell, so its totals ARE the cell's deltas.
            let device_snapshots = lab.device_snapshots();
            report.attach_device_counters(|id| {
                device_snapshots
                    .iter()
                    .find(|(device, _)| *device == id)
                    .map(|(_, snapshot)| snapshot.moved_counters())
            });
            report.violations.iter().map(|v| v.to_string()).collect()
        } else {
            Vec::new()
        };
        let (mut chaos_dropped, mut chaos_injected) = (0, 0);
        for (_, handle) in &lab.chaos_links {
            let link_stats = lab.net.middlebox(*handle).stats();
            chaos_dropped += link_stats.total_dropped();
            chaos_injected += link_stats.injected;
        }
        ChaosCell {
            vantage: scenario.vantage,
            mechanism: scenario.mechanism,
            seed,
            stats,
            oracle_violations,
            chaos_dropped,
            chaos_injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::policy_from_universe;

    #[test]
    fn single_cell_is_deterministic_and_clean() {
        let universe = Universe::generate(3);
        let policy = policy_from_universe(&universe, false, true);
        let sweep = ChaosSweep::table1_grid(policy, vec![1], 4);
        let one = ChaosSweep { scenarios: vec![sweep.scenarios[0]], ..sweep };
        let a = one.run(&ScanPool::single_thread());
        let b = one.run(&ScanPool::single_thread());
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(a[0].oracle_violations.is_empty(), "{:?}", a[0].oracle_violations);
    }
}
