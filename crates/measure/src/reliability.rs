//! Trigger reliability (Table 1): how often does the TSPU *fail* to censor
//! a triggering connection?
//!
//! Method (§5.2.1): thousands of requests per vantage point and blocking
//! type, each on a fresh source port, counting the fraction that escaped.
//! Vantages with two devices on path (Rostelecom, OBIT) require both to
//! fail for the mechanisms both can enforce, which is why their observed
//! rates are far below the single-device ER-Telecom's.

use std::time::Duration;

use tspu_netsim::Network;
use tspu_stack::craft::{udp_packet, TcpPacketSpec};
use tspu_topology::VantageLab;
use tspu_wire::quic::{initial_payload, QuicVersion};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};

/// The five mechanisms of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    Sni1,
    Sni2,
    Sni4,
    Quic,
    IpBased,
}

impl Mechanism {
    /// All five, in Table 1 column order.
    pub const ALL: [Mechanism; 5] =
        [Mechanism::Sni1, Mechanism::Sni2, Mechanism::Sni4, Mechanism::Quic, Mechanism::IpBased];

    /// Column label as in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Sni1 => "SNI-I",
            Mechanism::Sni2 => "SNI-II",
            Mechanism::Sni4 => "SNI-IV",
            Mechanism::Quic => "QUIC",
            Mechanism::IpBased => "IP-Based",
        }
    }
}

/// Result of one Table 1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureStats {
    pub trials: u32,
    pub failures: u32,
}

impl FailureStats {
    /// Failure percentage (Table 1's unit).
    pub fn percent(&self) -> f64 {
        100.0 * f64::from(self.failures) / f64::from(self.trials.max(1))
    }
}

/// Runs one cell of Table 1: `trials` attempts of `mechanism` from the
/// named vantage. Returns the failure count.
pub fn run_cell(lab: &mut VantageLab, vantage_name: &str, mechanism: Mechanism, trials: u32) -> FailureStats {
    // Let all prior flow state (and any residual verdicts) expire first.
    lab.net.run_for(Duration::from_secs(600));

    let vantage = lab.vantage(vantage_name);
    let (v_host, v_addr) = (vantage.host, vantage.addr);
    let us = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let tor_host = lab.tor;
    let tor_addr = lab.tor_addr;

    let mut failures = 0;
    for trial in 0..trials {
        let sport = 1025 + (trial % 64_000) as u16;
        let local = ScriptEnd { host: v_host, addr: v_addr, port: sport };
        let escaped = match mechanism {
            Mechanism::Sni1 => {
                let mut steps = crate::harness::handshake_prefix();
                steps.push(
                    ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                        .payload(ClientHelloBuilder::new("meduza.io").build()),
                );
                steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0xaa; 200]));
                let result = run_script(&mut lab.net, local, us, &steps);
                // Escaped iff the response arrived unrewritten.
                result.at_local.iter().any(|p| p.payload_len == 200)
            }
            Mechanism::Sni2 => {
                let mut steps = crate::harness::handshake_prefix();
                steps.push(
                    ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                        .payload(ClientHelloBuilder::new("play.google.com").build()),
                );
                // Bidirectional verification: upstream-only devices can
                // only drop the *upstream* half, so a one-sided volley
                // would miss their (backup) enforcement — and each half
                // must exceed the maximum 8-packet allowance, since a
                // partially-visible device only counts the packets it
                // sees.
                for _ in 0..9 {
                    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0xbb; 100]));
                    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0xcc; 90]));
                }
                let result = run_script(&mut lab.net, local, us, &steps);
                result.at_local.iter().filter(|p| p.payload_len == 100).count() == 9
                    && result.at_remote.iter().filter(|p| p.payload_len == 90).count() == 9
            }
            Mechanism::Sni4 => {
                // Split-handshake prefix evades SNI-I; the backup filter
                // must eat the ClientHello.
                let steps = vec![
                    ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
                    ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
                    ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                        .payload(ClientHelloBuilder::new("twitter.com").build()),
                ];
                let result = run_script(&mut lab.net, local, us, &steps);
                result.at_remote.iter().any(|p| p.sni.is_some())
            }
            Mechanism::Quic => {
                quic_trial(&mut lab.net, local, us)
            }
            Mechanism::IpBased => {
                // SYN from the Tor node; SYN/ACK back from the vantage;
                // escaped iff the Tor node sees a real SYN/ACK.
                let _ = lab.net.take_inbox(tor_host);
                let syn = TcpPacketSpec::new(tor_addr, sport, v_addr, 443, TcpFlags::SYN).build();
                lab.net.send_from(tor_host, syn);
                lab.net.run_for(Duration::from_millis(200));
                let synack =
                    TcpPacketSpec::new(v_addr, 443, tor_addr, sport, TcpFlags::SYN_ACK).build();
                lab.net.send_from(v_host, synack);
                lab.net.run_for(Duration::from_millis(300));
                lab.net
                    .take_inbox(tor_host)
                    .iter()
                    .filter_map(|(_, bytes)| {
                        let ip = tspu_wire::ipv4::Ipv4Packet::new_checked(&bytes[..]).ok()?;
                        let seg = tspu_wire::tcp::TcpSegment::new_checked(ip.payload()).ok()?;
                        Some(seg.flags())
                    })
                    .any(|flags| flags == TcpFlags::SYN_ACK)
            }
        };
        if escaped {
            failures += 1;
        }
        // Ports recycle after 64 000 trials; the 600 s drain below plus
        // idle expiry keeps recycled flows fresh.
        if trial % 16_000 == 15_999 {
            lab.net.run_for(Duration::from_secs(600));
        }
    }
    FailureStats { trials, failures }
}

fn quic_trial(net: &mut Network, local: ScriptEnd, us: ScriptEnd) -> bool {
    let _ = net.take_inbox(us.host);
    let initial = udp_packet(local.addr, local.port, us.addr, 443, &initial_payload(QuicVersion::V1, 1200));
    net.send_from(local.host, initial);
    net.run_for(Duration::from_millis(100));
    let follow = udp_packet(local.addr, local.port, us.addr, 443, &[0x11; 64]);
    net.send_from(local.host, follow);
    net.run_for(Duration::from_millis(300));
    // Escaped iff the follow-up datagram reached the US machine.
    net.take_inbox(us.host).iter().any(|(_, bytes)| {
        tspu_wire::ipv4::Ipv4Packet::new_checked(&bytes[..])
            .ok()
            .map(|ip| ip.protocol() == tspu_wire::ipv4::Protocol::Udp && ip.payload().len() >= 8 + 64)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;

    #[test]
    fn reliable_vantage_has_zero_failures() {
        // Build a lab, then zero out the failure dice by swapping in
        // uniform-0 devices: easiest is many trials on OBIT QUIC, whose
        // per-device rate is 0.0.
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        let stats = run_cell(&mut lab, "OBIT", Mechanism::Quic, 300);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn single_device_vantage_fails_more_than_double_device() {
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        // SNI-II per-device rates: ER-Telecom 1.76 % (one device) vs
        // Rostelecom 0.5 % per device squared ≈ 0.0025 %.
        let er = run_cell(&mut lab, "ER-Telecom", Mechanism::Sni2, 1200);
        let rt = run_cell(&mut lab, "Rostelecom", Mechanism::Sni2, 1200);
        assert!(er.failures > rt.failures, "ER {} vs RT {}", er.failures, rt.failures);
        assert!((0.5..=4.0).contains(&er.percent()), "ER-Telecom % {}", er.percent());
    }

    #[test]
    fn ip_based_blocking_nearly_perfect() {
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        let stats = run_cell(&mut lab, "Rostelecom", Mechanism::IpBased, 300);
        assert_eq!(stats.failures, 0, "Rostelecom IP-based rate is 0.00 %");
    }
}
