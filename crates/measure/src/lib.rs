//! # tspu-measure
//!
//! The paper's measurement techniques, implemented as a library against
//! the simulator. Each module carries one experiment family and maps to
//! tables/figures as follows (see DESIGN.md for the full index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`harness`] | shared probe machinery (§3's setup) |
//! | [`behaviors`] | Fig. 2 behavior traces, behavior classification |
//! | [`reliability`] | Table 1 |
//! | [`sequences`] | Fig. 4 (TCP trigger sequences) |
//! | [`timeouts`] | Fig. 5, Table 2, Table 8 |
//! | [`localize`] | §7.1 TTL localization, §7.1.1 upstream-only devices |
//! | [`tomography`] | AS-level censor localization on generated graphs |
//! | [`echo`] | Fig. 8-right, Table 4 (Quack echo measurements) |
//! | [`fragscan`] | §7.2 fragmentation fingerprint, Fig. 9, Fig. 12, Table 5 |
//! | [`traceroute`] | Figs. 10–11 (TSPU links) |
//! | [`domains`] | §6, Fig. 6, Fig. 7, Table 3 |
//! | [`chfuzz`] | Fig. 13 (ClientHello byte sensitivity) |
//! | [`profiles`] | cross-country differential matrix (DESIGN.md §12) |
//! | [`quicfp`] | Fig. 14 (minimal QUIC fingerprint) |
//! | [`os_reference`] | Table 7 (OS/spec timeout comparison) |
//!
//! Everything is black-box: the techniques only send packets from hosts
//! they control and look at what arrives, exactly as the authors could.
//! Ground truth from `tspu-topology` is used solely for *scoring*.

pub mod behaviors;
pub mod chaos;
pub mod chfuzz;
pub mod churn;
pub mod domains;
pub mod echo;
pub mod fragscan;
pub mod harness;
pub mod localize;
pub mod os_reference;
pub mod profiles;
pub mod quicfp;
pub mod reliability;
pub mod sequences;
pub mod sweep;
pub mod timeouts;
pub mod tomography;
pub mod traceroute;

pub use behaviors::{classify_behavior, ObservedBehavior};
pub use chaos::{ChaosCell, ChaosScenario, ChaosSweep};
pub use churn::{churn_delta, ChurnCampaign, ChurnReport, DeltaConvergence};
pub use harness::{PacketSummary, ProbeSide, ScriptResult, ScriptStep};
pub use localize::{LocalizeRun, LocalizeSpec, LocalizeTechnique, LocalizedDevice};
pub use profiles::{
    DifferentialCampaign, DnsVerdict, HttpVerdict, ProfileCell, ProfileMatrix, TlsVerdict,
};
pub use sweep::{PoolReport, PoolRun, RunOpts, ScanPool, SweepRun, SweepSpec, WorkerReport};
pub use tomography::{ProbeObs, TomographyCell, TomographyConfig, TomographyRun};
