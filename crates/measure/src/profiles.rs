//! DifferentialCampaign: the same domain universe probed against every
//! [`CensorProfile`] (DESIGN.md §12).
//!
//! Each (profile × domain) cell forks a pristine lab from that profile's
//! warm [`LabImage`] and sends three volleys from the same vantage — a TLS
//! ClientHello, an HTTP GET, and a DNS A-query — then classifies what the
//! endpoints saw into a per-protocol verdict. The cells land in a
//! [`ProfileMatrix`] in (profile-major, domain-minor) order, a pure
//! function of the campaign spec: byte-identical at every thread count.
//! With `check_oracle`, every cell's capture is replayed through the
//! trace-invariant oracle with the per-profile audit, so a profile whose
//! engine departs from its declared semantics fails the campaign naming
//! the offending packet and profile.

use std::fmt;

use tspu_core::{CensorProfile, PolicyHandle};
use tspu_netsim::oracle::Oracle;
use tspu_obs::{MetricValue, Snapshot, TimeSeries};
use tspu_stack::craft::udp_packet;
use tspu_topology::{LabImage, VantageLab};
use tspu_wire::dns::{DnsQuery, DnsResponse, QTYPE_A};
use tspu_wire::http::{HttpRequest, HttpResponse};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use crate::sweep::{scenario_port, PoolReport, RunOpts, ScanPool};

/// The vantage every differential cell probes from — the single-device
/// ER-Telecom path, so per-profile verdicts reflect exactly one middlebox.
const VANTAGE: &str = "ER-Telecom";

/// What the TLS ClientHello volley provoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsVerdict {
    /// Everything arrived unmodified.
    Pass,
    /// The response came back as RST/ACK; local→remote data still reached
    /// the remote — the TSPU's unidirectional SNI-I.
    RstLocal,
    /// RST/ACKs observed at *both* endpoints — the Turkmenistan
    /// chokepoint shape.
    RstBidirectional,
    /// Some post-trigger packets passed, then symmetric silence (SNI-II).
    DelayedDrop,
    /// The trigger itself and everything after it vanished (SNI-IV).
    FullDrop,
}

/// What the HTTP GET volley provoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVerdict {
    /// The origin's response arrived untouched.
    Ok,
    /// The censor's HTTP 200 block page arrived in place of the origin
    /// response (India).
    BlockPage,
    /// The response came back as RST/ACK (Turkmenistan's Host trigger).
    Reset,
    /// Neither response nor reset arrived.
    Dropped,
}

/// What the DNS A-query provoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsVerdict {
    /// The response made it back.
    Answered,
    /// Query or response was consumed in flight (Turkmenistan's residual
    /// DNS drop).
    Dropped,
}

/// One (profile × domain) cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileCell {
    pub profile: &'static str,
    pub domain: String,
    pub tls: TlsVerdict,
    pub http: HttpVerdict,
    pub dns: DnsVerdict,
    /// Rendered oracle violations; empty means the cell's capture was
    /// clean under the profile's own audit.
    pub oracle_violations: Vec<String>,
}

/// The campaign specification: one policy universe, several country
/// profiles, one domain list.
#[derive(Clone)]
pub struct DifferentialCampaign {
    pub policy: PolicyHandle,
    pub profiles: Vec<CensorProfile>,
    pub domains: Vec<String>,
    /// Capture every cell and replay it through the per-profile oracle.
    pub check_oracle: bool,
}

/// The campaign result: cells in (profile-major, domain-minor) order plus
/// the merged observability snapshot (present iff [`RunOpts::observe`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileMatrix {
    pub cells: Vec<ProfileCell>,
    pub profiles: Vec<&'static str>,
    pub domains: Vec<String>,
    pub snapshot: Option<Snapshot>,
    /// The matrix as a profile-indexed [`TimeSeries`]: window `i` holds
    /// profile `profiles[i]`'s verdict mix (`diff.tls.*`, `diff.http.*`,
    /// `diff.dns.*` counters plus `diff.cells` and
    /// `diff.oracle_violations`). Windows are 1 µs wide — the axis is the
    /// profile index, not virtual time (every cell runs from its own
    /// forked clock at zero, so there is no shared timeline to plot on).
    /// Built from the cells, so it exists in every build and is
    /// byte-identical at every thread count.
    pub series: TimeSeries,
}

impl ProfileMatrix {
    /// The cell for (`profile`, `domain`).
    pub fn cell(&self, profile: &str, domain: &str) -> &ProfileCell {
        self.cells
            .iter()
            .find(|c| c.profile == profile && c.domain == domain)
            .expect("known (profile, domain) pair")
    }

    /// Every rendered oracle violation across the matrix.
    pub fn oracle_violations(&self) -> Vec<&str> {
        self.cells
            .iter()
            .flat_map(|c| c.oracle_violations.iter().map(String::as_str))
            .collect()
    }

    /// True when no cell's capture violated its profile's invariants.
    pub fn oracle_clean(&self) -> bool {
        self.cells.iter().all(|c| c.oracle_violations.is_empty())
    }

    /// One value off the per-profile series: counter `name` in `profile`'s
    /// window (0 when absent).
    pub fn profile_counter(&self, profile: &str, name: &str) -> u64 {
        self.profiles
            .iter()
            .position(|p| *p == profile)
            .and_then(|pi| self.series.window_at(pi as u64))
            .map_or(0, |snap| snap.counter(name))
    }
}

impl fmt::Display for ProfileMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "domain × profile verdicts (tls/http/dns):")?;
        for domain in &self.domains {
            write!(f, "  {domain}:")?;
            for profile in &self.profiles {
                let cell = self.cell(profile, domain);
                write!(f, " {profile}={:?}/{:?}/{:?}", cell.tls, cell.http, cell.dns)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Volley payload sizes — chosen so every packet class is recognizable by
/// length alone in endpoint summaries, and SNI-II's 5–8 allowance is
/// strictly less than the follow-up count.
const REMOTE_DATA_LEN: usize = 120;
const LOCAL_DATA_LEN: usize = 60;
const REMOTE_VOLLEY_N: usize = 8;
const LOCAL_VOLLEY_N: usize = 2;
static REMOTE_DATA: [u8; REMOTE_DATA_LEN] = [0xb0; REMOTE_DATA_LEN];
static LOCAL_DATA: [u8; LOCAL_DATA_LEN] = [0xc0; LOCAL_DATA_LEN];

impl DifferentialCampaign {
    /// The standard three-country campaign — TSPU, Turkmenistan, India —
    /// against one shared policy universe.
    pub fn three_country(policy: PolicyHandle, domains: Vec<String>) -> DifferentialCampaign {
        DifferentialCampaign {
            policy,
            profiles: vec![
                CensorProfile::tspu(),
                CensorProfile::turkmenistan(),
                CensorProfile::india(),
            ],
            domains,
            check_oracle: true,
        }
    }

    /// Number of cells in the matrix.
    pub fn len(&self) -> usize {
        self.profiles.len() * self.domains.len()
    }

    /// True when the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the matrix on the pool. One warm [`LabImage`] per profile is
    /// built up front; every cell forks its profile's image, so a cell is
    /// a pure function of (profile, domain, index) and the reassembled
    /// matrix is byte-identical at every thread count.
    pub fn run(&self, pool: &ScanPool, opts: &RunOpts) -> (ProfileMatrix, Option<PoolReport>) {
        let images: Vec<LabImage> = self
            .profiles
            .iter()
            .map(|profile| {
                VantageLab::builder()
                    .policy(self.policy.clone())
                    .censor_profile(profile.clone())
                    .image()
            })
            .collect();
        let cells: Vec<(usize, usize)> = (0..self.profiles.len())
            .flat_map(|pi| (0..self.domains.len()).map(move |di| (pi, di)))
            .collect();
        let observe = opts.observe;
        let run = pool.run(&cells, opts, || (), |(), index, &(pi, di)| {
            self.run_one(&images[pi], index, pi, di, observe)
        });
        let mut matrix_cells = Vec::with_capacity(run.results.len());
        let mut snapshot = observe.then(Snapshot::new);
        // Index-ordered merge: the pool reassembles results by index, so
        // the merged snapshot is as deterministic as the cells.
        for (cell, cell_snapshot) in run.results {
            matrix_cells.push(cell);
            if let (Some(snap), Some(cell_snap)) = (snapshot.as_mut(), cell_snapshot) {
                snap.merge(&cell_snap);
            }
        }
        let profiles: Vec<&'static str> = self.profiles.iter().map(|p| p.name).collect();
        let mut series = TimeSeries::with_window_us(1);
        for cell in &matrix_cells {
            let pi = profiles.iter().position(|p| *p == cell.profile).expect("known profile");
            let mut snap = Snapshot::new();
            snap.insert("diff.cells", MetricValue::Counter(1));
            let tls = match cell.tls {
                TlsVerdict::Pass => "diff.tls.pass",
                TlsVerdict::RstLocal => "diff.tls.rst_local",
                TlsVerdict::RstBidirectional => "diff.tls.rst_bidirectional",
                TlsVerdict::DelayedDrop => "diff.tls.delayed_drop",
                TlsVerdict::FullDrop => "diff.tls.full_drop",
            };
            let http = match cell.http {
                HttpVerdict::Ok => "diff.http.ok",
                HttpVerdict::BlockPage => "diff.http.block_page",
                HttpVerdict::Reset => "diff.http.reset",
                HttpVerdict::Dropped => "diff.http.dropped",
            };
            let dns = match cell.dns {
                DnsVerdict::Answered => "diff.dns.answered",
                DnsVerdict::Dropped => "diff.dns.dropped",
            };
            snap.insert(tls, MetricValue::Counter(1));
            snap.insert(http, MetricValue::Counter(1));
            snap.insert(dns, MetricValue::Counter(1));
            snap.insert(
                "diff.oracle_violations",
                MetricValue::Counter(cell.oracle_violations.len() as u64),
            );
            series.observe(pi as u64, &snap);
        }
        let matrix = ProfileMatrix {
            cells: matrix_cells,
            profiles,
            domains: self.domains.clone(),
            snapshot,
            series,
        };
        (matrix, run.report)
    }

    /// Runs one cell: forked per-profile lab, three volleys, optional
    /// oracle audit.
    fn run_one(
        &self,
        image: &LabImage,
        index: usize,
        pi: usize,
        di: usize,
        observe: bool,
    ) -> (ProfileCell, Option<Snapshot>) {
        let profile = &self.profiles[pi];
        let domain = &self.domains[di];
        let mut lab = image.fork(index);
        if self.check_oracle {
            lab.net.set_capture(true);
        }
        let port = scenario_port(index);
        let page_len = profile.block_page_bytes().map(<[u8]>::len);

        let tls = probe_tls(&mut lab, port, domain);
        let http = probe_http(&mut lab, port, domain, page_len);
        let dns = probe_dns(&mut lab, port, domain);

        let oracle_violations = if self.check_oracle {
            let spec = lab.oracle_spec();
            let captures = lab.net.take_captures();
            let mut report = Oracle::new(spec).check(&captures);
            let device_snapshots = lab.device_snapshots();
            report.attach_device_counters(|id| {
                device_snapshots
                    .iter()
                    .find(|(device, _)| *device == id)
                    .map(|(_, snapshot)| snapshot.moved_counters())
            });
            report.attach_device_ledger(|id, packet| lab.device_ledger(id, packet, 8));
            report.violations.iter().map(|v| v.to_string()).collect()
        } else {
            Vec::new()
        };
        let snapshot = observe.then(|| lab.obs_snapshot().with_scenario(index as u32));
        let cell = ProfileCell {
            profile: profile.name,
            domain: domain.clone(),
            tls,
            http,
            dns,
            oracle_violations,
        };
        (cell, snapshot)
    }
}

fn ends(lab: &VantageLab, local_port: u16, remote_port: u16) -> (ScriptEnd, ScriptEnd) {
    let vantage = lab.vantage(VANTAGE);
    (
        ScriptEnd { host: vantage.host, addr: vantage.addr, port: local_port },
        ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: remote_port },
    )
}

/// TLS volley: handshake, ClientHello for `domain`, 8 remote + 2 local
/// data packets.
fn probe_tls(lab: &mut VantageLab, port: u16, domain: &str) -> TlsVerdict {
    let (local, remote) = ends(lab, port, 443);
    let hello = ClientHelloBuilder::new(domain).build();
    let hello_len = hello.len();
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(hello));
    for _ in 0..REMOTE_VOLLEY_N {
        steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(&REMOTE_DATA[..]));
    }
    for _ in 0..LOCAL_VOLLEY_N {
        steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(&LOCAL_DATA[..]));
    }
    let result = run_script(&mut lab.net, local, remote, &steps);

    let local_rst = result.at_local.iter().any(|p| p.is_rst_ack && p.payload_len == 0);
    let remote_rst = result.at_remote.iter().any(|p| p.is_rst_ack && p.payload_len == 0);
    let trigger_arrived = result.at_remote.iter().any(|p| p.payload_len == hello_len);
    let remote_data = result.at_local.iter().filter(|p| p.payload_len == REMOTE_DATA_LEN).count();
    let local_data = result.at_remote.iter().filter(|p| p.payload_len == LOCAL_DATA_LEN).count();

    if local_rst && remote_rst {
        TlsVerdict::RstBidirectional
    } else if local_rst {
        TlsVerdict::RstLocal
    } else if !trigger_arrived && remote_data == 0 {
        TlsVerdict::FullDrop
    } else if remote_data == REMOTE_VOLLEY_N && local_data == LOCAL_VOLLEY_N {
        TlsVerdict::Pass
    } else {
        TlsVerdict::DelayedDrop
    }
}

/// HTTP volley: handshake, GET with `Host: domain`, the origin's scripted
/// response, one local follow-up.
fn probe_http(lab: &mut VantageLab, port: u16, domain: &str, page_len: Option<usize>) -> HttpVerdict {
    let (local, remote) = ends(lab, port, 80);
    let request = HttpRequest::get(domain, "/").build();
    let origin = HttpResponse::ok(b"origin-content-ok").build();
    let origin_len = origin.len();
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(request));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(origin));
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(&LOCAL_DATA[..]));
    let result = run_script(&mut lab.net, local, remote, &steps);

    if page_len.is_some_and(|len| result.at_local.iter().any(|p| p.payload_len == len)) {
        HttpVerdict::BlockPage
    } else if result.at_local.iter().any(|p| p.is_rst_ack && p.payload_len == 0) {
        HttpVerdict::Reset
    } else if result.at_local.iter().any(|p| p.payload_len == origin_len) {
        HttpVerdict::Ok
    } else {
        HttpVerdict::Dropped
    }
}

/// DNS volley: one A-query for `domain` from the vantage, one scripted
/// answer from the remote. UDP, so it bypasses the TCP script harness.
fn probe_dns(lab: &mut VantageLab, port: u16, domain: &str) -> DnsVerdict {
    let vantage = lab.vantage(VANTAGE);
    let (v_host, v_addr) = (vantage.host, vantage.addr);
    let (r_host, r_addr) = (lab.us_main, lab.us_main_addr);
    let _ = lab.net.take_inbox(v_host);
    let _ = lab.net.take_inbox(r_host);

    let query = DnsQuery { id: 0x5021, qname: domain.to_string(), qtype: QTYPE_A };
    lab.net.send_from(v_host, udp_packet(v_addr, port, r_addr, 53, &query.build()));
    lab.net.run_for(std::time::Duration::from_millis(200));
    let _ = lab.net.take_inbox(r_host);

    // The scripted answer goes out whether or not the query arrived —
    // exactly like the TCP scripts, so the *response path* is probed too
    // (Turkmenistan's residual drop consumes it even when re-sent).
    let answer = DnsResponse::answer(&query, &[std::net::Ipv4Addr::new(93, 184, 216, 34)]).build();
    lab.net.send_from(r_host, udp_packet(r_addr, 53, v_addr, port, &answer));
    lab.net.run_for(std::time::Duration::from_millis(500));

    if lab.net.take_inbox(v_host).is_empty() {
        DnsVerdict::Dropped
    } else {
        DnsVerdict::Answered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::policy_from_universe;

    #[test]
    fn three_country_verdicts_differ_on_a_blocked_domain() {
        let universe = Universe::generate(3);
        let policy = policy_from_universe(&universe, false, true);
        let campaign = DifferentialCampaign::three_country(
            policy,
            vec!["meduza.io".into(), "rust-lang.org".into()],
        );
        let (matrix, _) = campaign.run(&ScanPool::single_thread(), &RunOpts::quick());
        assert!(matrix.oracle_clean(), "{:?}", matrix.oracle_violations());

        // meduza.io sits on the sni_rst list: each country enforces it in
        // its own shape.
        let tspu = matrix.cell("tspu", "meduza.io");
        assert_eq!(tspu.tls, TlsVerdict::RstLocal);
        assert_eq!(tspu.http, HttpVerdict::Ok, "the TSPU has no HTTP Host trigger");
        assert_eq!(tspu.dns, DnsVerdict::Answered);

        let tkm = matrix.cell("turkmenistan", "meduza.io");
        assert_eq!(tkm.tls, TlsVerdict::RstBidirectional);
        assert_eq!(tkm.http, HttpVerdict::Reset);
        assert_eq!(tkm.dns, DnsVerdict::Dropped);

        let india = matrix.cell("india", "meduza.io");
        assert_eq!(india.tls, TlsVerdict::Pass, "India leaves TLS alone");
        assert_eq!(india.http, HttpVerdict::BlockPage);
        assert_eq!(india.dns, DnsVerdict::Answered);

        // The innocuous control is untouched everywhere.
        for profile in ["tspu", "turkmenistan", "india"] {
            let cell = matrix.cell(profile, "rust-lang.org");
            assert_eq!(cell.tls, TlsVerdict::Pass, "{profile}");
            assert_eq!(cell.http, HttpVerdict::Ok, "{profile}");
            assert_eq!(cell.dns, DnsVerdict::Answered, "{profile}");
        }

        // The per-profile series summarizes the same verdicts as counters:
        // one window per profile, in profile order.
        assert_eq!(matrix.series.len(), 3);
        for profile in ["tspu", "turkmenistan", "india"] {
            assert_eq!(matrix.profile_counter(profile, "diff.cells"), 2, "{profile}");
            assert_eq!(matrix.profile_counter(profile, "diff.oracle_violations"), 0);
        }
        assert_eq!(matrix.profile_counter("tspu", "diff.tls.rst_local"), 1);
        assert_eq!(matrix.profile_counter("turkmenistan", "diff.tls.rst_bidirectional"), 1);
        assert_eq!(matrix.profile_counter("turkmenistan", "diff.dns.dropped"), 1);
        assert_eq!(matrix.profile_counter("india", "diff.http.block_page"), 1);
        assert_eq!(matrix.profile_counter("india", "diff.tls.pass"), 2);
    }
}
