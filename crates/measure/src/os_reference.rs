//! Table 7: connection-state timeout values for open- and closed-source
//! connection-tracking systems, compared against the TSPU's measured
//! values. Static reference data transcribed from the paper's appendix.

/// One reference row: system, state name, timeout in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsTimeout {
    pub system: &'static str,
    pub state: &'static str,
    pub timeout_secs: u64,
}

/// The full Table 7.
pub const TABLE7: &[OsTimeout] = &[
    OsTimeout { system: "rdp", state: "timeout_inactivity translation", timeout_secs: 86_400 },
    OsTimeout { system: "rdp", state: "timeouts_inactivity tcp_handshake", timeout_secs: 4 },
    OsTimeout { system: "rdp", state: "timeouts_inactivity tcp_active", timeout_secs: 300 },
    OsTimeout { system: "rdp", state: "timeouts_inactivity tcp_final", timeout_secs: 240 },
    OsTimeout { system: "rdp", state: "timeouts_inactivity tcp_reset", timeout_secs: 4 },
    OsTimeout { system: "rdp", state: "timeouts_inactivity tcp_session_active", timeout_secs: 120 },
    OsTimeout { system: "freebsd", state: "tcp.first", timeout_secs: 120 },
    OsTimeout { system: "freebsd", state: "tcp.opening", timeout_secs: 30 },
    OsTimeout { system: "freebsd", state: "tcp.established", timeout_secs: 86_400 },
    OsTimeout { system: "freebsd", state: "tcp.closing", timeout_secs: 900 },
    OsTimeout { system: "freebsd", state: "tcp.finwait", timeout_secs: 45 },
    OsTimeout { system: "freebsd", state: "tcp.closed", timeout_secs: 90 },
    OsTimeout { system: "windows", state: "TCP FIN", timeout_secs: 60 },
    OsTimeout { system: "windows", state: "TCP RST", timeout_secs: 10 },
    OsTimeout { system: "windows", state: "TCP half open", timeout_secs: 30 },
    OsTimeout { system: "windows", state: "TCP idle timeout", timeout_secs: 240 },
    OsTimeout { system: "linux", state: "syn_sent", timeout_secs: 120 },
    OsTimeout { system: "linux", state: "syn_recv", timeout_secs: 60 },
    OsTimeout { system: "linux", state: "established", timeout_secs: 432_000 },
    OsTimeout { system: "linux", state: "time_wait", timeout_secs: 120 },
    OsTimeout { system: "linux", state: "unacknowledged", timeout_secs: 300 },
    OsTimeout { system: "linux", state: "last_ack", timeout_secs: 30 },
    OsTimeout { system: "linux", state: "fin_wait", timeout_secs: 120 },
    OsTimeout { system: "linux", state: "close", timeout_secs: 10 },
    OsTimeout { system: "linux", state: "close_wait", timeout_secs: 60 },
    OsTimeout { system: "rfc 5382", state: "half open", timeout_secs: 240 },
    OsTimeout { system: "rfc 5382", state: "established idle", timeout_secs: 7_200 },
    OsTimeout { system: "rfc 5382", state: "TIME WAIT", timeout_secs: 240 },
    OsTimeout { system: "rfc 7857", state: "partial open idle timeout", timeout_secs: 240 },
    OsTimeout { system: "huawei", state: "TCP session aging time", timeout_secs: 600 },
    OsTimeout { system: "cisco", state: "Tcp-timeout", timeout_secs: 86_400 },
    OsTimeout { system: "juniper", state: "TCP session timeout", timeout_secs: 1_800 },
];

/// The TSPU's measured values (Table 2), for the comparison the paper
/// makes: "the timeout values for the TSPU do not seem to conform to any
/// other OSes with documentation."
pub const TSPU_MEASURED: &[(&str, u64)] =
    &[("SYN_SENT", 60), ("SYN_RCVD", 105), ("ESTABLISHED", 480)];

/// True when some documented system matches all three TSPU values for the
/// comparable states — the paper found none.
pub fn any_system_matches_tspu() -> bool {
    let systems: std::collections::HashSet<&str> = TABLE7.iter().map(|r| r.system).collect();
    systems.iter().any(|system| {
        let find = |fragment: &str| {
            TABLE7
                .iter()
                .find(|r| r.system == *system && r.state.to_ascii_lowercase().contains(fragment))
                .map(|r| r.timeout_secs)
        };
        let syn_sent = find("syn_sent").or_else(|| find("first")).or_else(|| find("half open"));
        let established = find("established").or_else(|| find("active"));
        matches!((syn_sent, established), (Some(60), Some(480)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_transcription_sane() {
        assert_eq!(TABLE7.len(), 32);
        let linux_est = TABLE7
            .iter()
            .find(|r| r.system == "linux" && r.state == "established")
            .unwrap();
        assert_eq!(linux_est.timeout_secs, 432_000);
    }

    #[test]
    fn tspu_matches_no_documented_system() {
        assert!(!any_system_matches_tspu());
    }

    #[test]
    fn tspu_timeouts_much_shorter_than_linux() {
        // §5.3.3's comparison.
        let linux_syn_sent = 120;
        let linux_established = 432_000;
        let tspu = |name: &str| TSPU_MEASURED.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(tspu("SYN_SENT") < linux_syn_sent);
        assert!(tspu("ESTABLISHED") < linux_established / 100);
    }
}
