//! Tomography-based censorship localization on generated AS graphs.
//!
//! The TTL walks of [`crate::localize`] need a cooperating path: they see
//! *where on one route* a device sits. Tomography instead exploits route
//! churn — the seeded flip schedule a generated topology carries — to see
//! *which AS* censors, using only end-to-end blocked/passed verdicts:
//!
//! 1. Every cell forks the shared generated-lab image, picks one ground-
//!    truth device to leave active (all others get a permissive policy),
//!    and arms the churn schedule.
//! 2. In each inter-flip epoch it probes the target domain from every
//!    client and records the verdict against the AS path the client rode
//!    during that epoch (replayed from the schedule — the observer and
//!    the engine's route table agree by construction).
//! 3. The solver intersects the AS sets of blocked paths and subtracts
//!    every AS seen on a passed path. Provider-diverse clients plus at
//!    least one flip per client shrink the suspect set to exactly the
//!    active device's AS.
//! 4. A TTL cross-check ([`crate::localize::symmetric_trial`] mechanics)
//!    confirms the named AS at the hop ground truth says the device
//!    occupies.
//!
//! Every cell is a pure function of its index, so a sharded campaign is
//! byte-identical at any thread count, like every other sweep here.

use std::collections::BTreeSet;
use std::time::Duration;

use tspu_core::{Policy, PolicyHandle};
use tspu_obs::{MetricValue, Snapshot, TimeSeries};
use tspu_topology::{GenClient, GenParams, TopologySpec, VantageLab};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use crate::localize::first_onset;
use crate::sweep::{PoolReport, RunOpts, ScanPool};

/// Configuration of one tomography campaign: the generated topology to
/// probe and how many localization cells to run. Each cell activates a
/// different ground-truth device (round-robin over the candidates the
/// topology's client paths can reach).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomographyConfig {
    /// The generated topology (graph, placement, churn schedule).
    pub params: GenParams,
    /// Number of localization cells.
    pub cells: usize,
    /// The SNI-RST trigger domain probes carry.
    pub domain: String,
}

impl TomographyConfig {
    /// Defaults: 8 cells probing `meduza.io` (the paper's running SNI-I
    /// example).
    pub fn new(params: GenParams) -> TomographyConfig {
        TomographyConfig { params, cells: 8, domain: "meduza.io".to_string() }
    }

    /// Sets the cell count.
    pub fn cells(mut self, cells: usize) -> TomographyConfig {
        self.cells = cells;
        self
    }

    /// Sets the trigger domain (must be SNI-RST-listed in the policy).
    pub fn domain(mut self, domain: &str) -> TomographyConfig {
        self.domain = domain.to_string();
        self
    }
}

/// One end-to-end probe observation: what a client saw during one epoch,
/// tagged with the AS path it rode (replayed from the churn schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeObs {
    /// Inter-flip epoch index (`0` = before the first flip).
    pub epoch: usize,
    /// Probing client index.
    pub client: usize,
    /// AS ids on the client's path during this epoch.
    pub path_ases: Vec<usize>,
    /// Whether the probe was blocked (RST/ACK observed at the client).
    pub blocked: bool,
}

/// One localization cell's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomographyCell {
    /// Cell index.
    pub cell: usize,
    /// Ground truth: AS id of the one active device (`None` = negative
    /// control, no device reachable from any client path).
    pub active_as: Option<usize>,
    /// The solver's suspect set, sorted AS ids. Localization succeeded
    /// when this is exactly `[active_as]`.
    pub suspects: Vec<usize>,
    /// Whether the solver named the ground truth: singleton suspect set
    /// equal to the active AS, or (negative control) nothing blocked and
    /// no suspects.
    pub named: bool,
    /// Every probe observation, in (epoch, client) order.
    pub probes: Vec<ProbeObs>,
    /// TTL cross-check: the measured onset hop of the active device on a
    /// final-epoch path that crosses it (`None` when no final path does,
    /// or on negative controls).
    pub ttl_hop: Option<u8>,
    /// Ground truth hop for the cross-check, from the route generator.
    pub ttl_truth: Option<u8>,
}

/// What a tomography campaign produced: per-cell outcomes and the
/// campaign's virtual-time probe series (windowed at the churn period, so
/// each window is one epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct TomographyRun {
    /// One outcome per cell, in cell order at every thread count.
    pub cells: Vec<TomographyCell>,
    /// `tomography.probes` / `tomography.blocked` per epoch window.
    pub series: TimeSeries,
}

impl TomographyRun {
    /// Fraction of cells whose solver named the ground truth.
    pub fn named_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        self.cells.iter().filter(|c| c.named).count() as f64 / self.cells.len() as f64
    }
}

/// One blocked/passed trial from a generated client: handshake, the
/// trigger ClientHello (TTL-limited when `ttl` is given), then a remote
/// response the active device rewrites to RST/ACK on the return pass.
fn trial(
    lab: &mut VantageLab,
    client: &GenClient,
    domain: &str,
    port: u16,
    ttl: Option<u8>,
) -> bool {
    let local = ScriptEnd { host: client.host, addr: client.addr, port };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps = handshake_prefix();
    let mut trigger = ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
        .payload(ClientHelloBuilder::new(domain).build());
    if let Some(ttl) = ttl {
        trigger = trigger.ttl(ttl);
    }
    steps.push(trigger);
    steps.push(
        ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
            .payload(vec![0x99; 90])
            .after(Duration::from_millis(100)),
    );
    let result = run_script(&mut lab.net, local, remote, &steps);
    result.at_local.iter().any(|p| p.is_rst_ack)
}

/// Runs one localization cell on a freshly forked lab. Pure in
/// `(image, config, cell)` — the determinism unit the pool shards.
fn run_cell(lab: &mut VantageLab, config: &TomographyConfig, cell: usize) -> TomographyCell {
    let gen = lab.gen.clone().expect("tomography runs on generated labs");
    let candidates = gen.censor_candidates();
    let active = (!candidates.is_empty()).then(|| candidates[cell % candidates.len()]);

    // Exactly one censor: every other device turns permissive. `set_policy`
    // on the fork's private middlebox cell leaves the shared image intact.
    let off = PolicyHandle::new(Policy::permissive());
    for (di, device) in gen.devices.iter().enumerate() {
        if Some(di) != active {
            lab.net.middlebox_mut(device.handle).set_policy(off.clone());
        }
    }

    lab.arm_route_churn();
    let clients = gen.clients.len();
    let epochs = gen.churn.len() + 1;
    let mut probes = Vec::with_capacity(epochs * clients);
    for epoch in 0..epochs {
        for client in 0..clients {
            let port = 3000 + (epoch * clients + client) as u16;
            let blocked = trial(lab, &gen.clients[client], &config.domain, port, None);
            let variant = gen.variant_after(client, epoch);
            probes.push(ProbeObs { epoch, client, path_ases: variant.path_ases.clone(), blocked });
        }
        if epoch < gen.churn.len() {
            // Warp to just past the next flip; the armed reroute events
            // fire inside this run_for window.
            let flip_us = gen.churn[epoch].at.as_micros() as u64;
            let now_us = lab.net.now().as_micros();
            assert!(
                now_us < flip_us,
                "tomography: epoch {epoch} probes overran the churn period \
                 ({now_us} us > flip at {flip_us} us) — lengthen GenParams::churn_period"
            );
            lab.net.run_for(Duration::from_micros(flip_us - now_us + 1_000));
        }
    }

    // The solver: suspects = ∩ (blocked-path AS sets) \ ∪ (passed-path
    // AS sets). Blocked paths all cross the censor AS; every AS that ever
    // carried a passed probe is exonerated.
    let mut blocked_isect: Option<BTreeSet<usize>> = None;
    let mut cleared: BTreeSet<usize> = BTreeSet::new();
    for p in &probes {
        let ases: BTreeSet<usize> = p.path_ases.iter().copied().collect();
        if p.blocked {
            blocked_isect = Some(match blocked_isect {
                None => ases,
                Some(so_far) => so_far.intersection(&ases).copied().collect(),
            });
        } else {
            cleared.extend(ases);
        }
    }
    let any_blocked = blocked_isect.is_some();
    let suspects: Vec<usize> =
        blocked_isect.unwrap_or_default().difference(&cleared).copied().collect();

    let named = match active {
        Some(di) => suspects == [gen.devices[di].as_id],
        None => !any_blocked && suspects.is_empty(),
    };

    // TTL cross-check on the final routing state: walk the path of a
    // client whose post-churn variant crosses the active device and
    // compare the onset hop to the generator's ground truth.
    let (ttl_hop, ttl_truth) = match active {
        Some(di) => {
            let target = (0..clients).find_map(|c| {
                let v = gen.variant_after(c, gen.churn.len());
                v.devices.iter().find(|&&(d, _)| d == di).map(|&(_, hop)| (c, hop))
            });
            match target {
                Some((c, hop)) => {
                    let blocked: Vec<bool> = (1..=4u8)
                        .map(|ttl| {
                            let port = 20_000 + u16::from(ttl);
                            trial(lab, &gen.clients[c], &config.domain, port, Some(ttl))
                        })
                        .collect();
                    (first_onset(&blocked).map(|d| d.after_hop), Some(hop))
                }
                None => (None, None),
            }
        }
        None => (None, None),
    };

    TomographyCell { cell, active_as: active.map(|di| gen.devices[di].as_id), suspects, named, probes, ttl_hop, ttl_truth }
}

/// Runs the campaign: one cell per index, sharded across the pool, cells
/// reassembled in index order. Returns the run plus the merged campaign
/// snapshot (`Some` iff [`RunOpts::observe`]; includes the engine's
/// `netsim.route_flips` from every cell) and the wall-clock report
/// (`Some` iff [`RunOpts::report`]).
pub(crate) fn run_tomography(
    config: &TomographyConfig,
    policy: &PolicyHandle,
    pool: &ScanPool,
    opts: &RunOpts,
) -> (TomographyRun, Option<Snapshot>, Option<PoolReport>) {
    let image = VantageLab::builder()
        .policy(policy.clone())
        .topology(TopologySpec::Generated(config.params.clone()))
        .image();
    let indices: Vec<usize> = (0..config.cells).collect();
    let observe = opts.observe;
    let run = pool.run(&indices, opts, || (), |(), _, &cell| {
        let mut lab = image.fork(cell);
        let outcome = run_cell(&mut lab, config, cell);
        let snap = observe.then(|| lab.take_obs().with_scenario(cell as u32));
        (outcome, snap)
    });

    // Epoch-windowed probe series, built in cell order from the replayed
    // observations — deterministic because the observations are.
    let window_us = (config.params.churn_period.as_micros() as u64).max(1);
    let mut series = TimeSeries::with_window_us(window_us);
    let mut snapshot = observe.then(Snapshot::new);
    let mut cells = Vec::with_capacity(run.results.len());
    for (outcome, snap) in run.results {
        for p in &outcome.probes {
            let mut obs = Snapshot::new();
            obs.insert("tomography.probes", MetricValue::Counter(1));
            if p.blocked {
                obs.insert("tomography.blocked", MetricValue::Counter(1));
            }
            series.observe(p.epoch as u64 * window_us, &obs);
        }
        if let (Some(total), Some(snap)) = (snapshot.as_mut(), snap.as_ref()) {
            total.merge(snap);
        }
        cells.push(outcome);
    }
    if tspu_obs::ENABLED {
        if let Some(total) = snapshot.as_mut() {
            total.insert("tomography.cells", MetricValue::Counter(cells.len() as u64));
            let named = cells.iter().filter(|c| c.named).count() as u64;
            total.insert("tomography.named", MetricValue::Counter(named));
        }
    }
    (TomographyRun { cells, series }, snapshot, run.report)
}
