//! Fragmentation measurements (§7.2): the TSPU's 45-fragment queue limit
//! as a remotely observable fingerprint, the TTL-rewrite localization
//! trick, and the correlations of Table 5.
//!
//! Fingerprint: a SYN (with payload) split into 45 fragments is buffered,
//! flushed, reassembled by the endpoint, and answered; the same SYN in 46
//! fragments dies in the TSPU's queue. Endpoints *not* behind a TSPU
//! answer both (Linux reassembles up to 64). Only innocuous traffic is
//! sent — no censorship triggers (§4's ethics posture, preserved here for
//! fidelity).

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_topology::Runet;
use tspu_wire::frag;
use tspu_wire::ipv4::Ipv4Packet;
use tspu_wire::tcp::{TcpFlags, TcpSegment};

use tspu_stack::craft::TcpPacketSpec;

/// One endpoint's fingerprint result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragVerdict {
    pub responded_plain: bool,
    pub responded_45: bool,
    pub responded_46: bool,
}

impl FragVerdict {
    /// TSPU-like: answers 45 fragments but not 46.
    pub fn tspu_positive(&self) -> bool {
        self.responded_45 && !self.responded_46
    }

    /// Usable test target (the paper's control pre-filter: must respond to
    /// SYNs and fragmented SYNs at all).
    pub fn responsive(&self) -> bool {
        self.responded_plain && self.responded_45
    }
}

/// Sends one SYN(+payload) to the endpoint, fragmented into `pieces`
/// (1 = unfragmented), and reports whether a SYN/ACK came back.
fn syn_probe(runet: &mut Runet, addr: Ipv4Addr, port: u16, src_port: u16, pieces: usize) -> bool {
    let scanner = runet.scanner;
    let _ = runet.net.take_inbox(scanner);
    let syn = TcpPacketSpec::new(runet.scanner_addr, src_port, addr, port, TcpFlags::SYN)
        .payload(vec![0x5c; 512])
        .ident(src_port ^ 0x0f0f)
        .build();
    let packets = if pieces <= 1 {
        vec![syn]
    } else {
        match frag::fragment_into(&syn, pieces) {
            Ok(fragments) => fragments,
            Err(_) => return false,
        }
    };
    for packet in packets {
        runet.net.send_from(scanner, packet);
    }
    runet.net.run_for(Duration::from_millis(400));
    runet.net.take_inbox(scanner).iter().any(|(_, bytes)| {
        let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
            return false;
        };
        ip.src_addr() == addr
            && TcpSegment::new_checked(ip.payload())
                .map(|seg| seg.flags().is_syn_ack())
                .unwrap_or(false)
    })
}

/// Runs the 45/46 fingerprint against one endpoint.
pub fn fingerprint(runet: &mut Runet, addr: Ipv4Addr, port: u16, src_port: u16) -> FragVerdict {
    FragVerdict {
        responded_plain: syn_probe(runet, addr, port, src_port, 1),
        responded_45: syn_probe(runet, addr, port, src_port.wrapping_add(1), 45),
        responded_46: syn_probe(runet, addr, port, src_port.wrapping_add(2), 46),
    }
}

/// The Table 5 IP-blocking probe: a SYN from the (blocked) Tor node; the
/// endpoint's SYN/ACK response is rewritten to RST/ACK by any TSPU with
/// visibility into the endpoint's outbound traffic.
pub fn ip_block_probe(runet: &mut Runet, addr: Ipv4Addr, port: u16, src_port: u16) -> bool {
    let tor = runet.tor;
    let _ = runet.net.take_inbox(tor);
    let syn = TcpPacketSpec::new(runet.tor_addr, src_port, addr, port, TcpFlags::SYN).build();
    runet.net.send_from(tor, syn);
    runet.net.run_for(Duration::from_millis(400));
    runet.net.take_inbox(tor).iter().any(|(_, bytes)| {
        let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
            return false;
        };
        ip.src_addr() == addr
            && TcpSegment::new_checked(ip.payload())
                .map(|seg| seg.flags() == TcpFlags::RST_ACK)
                .unwrap_or(false)
    })
}

/// TTL-limited fragment localization (§7.2, Fig. 12): the first fragment
/// carries a full TTL and waits in the TSPU's queue; the second fragment's
/// TTL is swept upward. Once it *reaches the device* before expiring, the
/// device forwards both with the first fragment's TTL and the endpoint
/// answers. The flip TTL localizes the device; combined with a traceroute
/// path length it yields hops-from-destination.
pub fn localize_device_ttl(runet: &mut Runet, addr: Ipv4Addr, port: u16, src_port: u16, max_ttl: u8) -> Option<u8> {
    for ttl in 1..=max_ttl {
        let scanner = runet.scanner;
        let _ = runet.net.take_inbox(scanner);
        let syn = TcpPacketSpec::new(
            runet.scanner_addr,
            src_port.wrapping_add(u16::from(ttl)),
            addr,
            port,
            TcpFlags::SYN,
        )
        .payload(vec![0x6d; 64])
        .ident(0x7000 + u16::from(ttl))
        .build();
        let fragments = frag::fragment(&syn, 48).ok()?;
        if fragments.len() < 2 {
            return None;
        }
        // First fragment: full TTL. Second: limited.
        let mut limited = fragments[1].clone();
        {
            let mut view = Ipv4Packet::new_unchecked(&mut limited[..]);
            view.set_ttl(ttl);
            view.fill_checksum();
        }
        runet.net.send_from(scanner, fragments[0].clone());
        runet.net.send_from(scanner, limited);
        for rest in &fragments[2..] {
            runet.net.send_from(scanner, rest.clone());
        }
        runet.net.run_for(Duration::from_millis(400));
        let answered = runet.net.take_inbox(scanner).iter().any(|(_, bytes)| {
            Ipv4Packet::new_checked(&bytes[..])
                .map(|ip| {
                    ip.src_addr() == addr
                        && TcpSegment::new_checked(ip.payload())
                            .map(|seg| seg.flags().is_syn_ack())
                            .unwrap_or(false)
                })
                .unwrap_or(false)
        });
        if answered {
            return Some(ttl);
        }
    }
    None
}

/// Scan summary per port (Fig. 9's series).
#[derive(Debug, Clone, Default)]
pub struct PortScanRow {
    pub port: u16,
    pub endpoints: usize,
    pub positive: usize,
}

impl PortScanRow {
    /// Positivity percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.positive as f64 / self.endpoints.max(1) as f64
    }
}

/// Runs the country scan (Fig. 9): fingerprints every endpoint (optionally
/// a sampled subset) and tallies by port. Returns (rows, AS counts).
pub fn run_port_scan(runet: &mut Runet, sample_every: usize) -> (Vec<PortScanRow>, usize, usize) {
    use std::collections::{HashMap, HashSet};
    let targets: Vec<(Ipv4Addr, u16, u32)> = runet
        .endpoints
        .iter()
        .enumerate()
        .filter(|(i, _)| i % sample_every.max(1) == 0)
        .map(|(_, e)| (e.addr, e.port, e.asn))
        .collect();

    let mut rows: HashMap<u16, PortScanRow> = HashMap::new();
    let mut ases_seen: HashSet<u32> = HashSet::new();
    let mut ases_positive: HashSet<u32> = HashSet::new();
    let mut src_port = 1024u16;
    for (addr, port, asn) in targets {
        src_port = src_port.wrapping_add(7) | 1024;
        let verdict = fingerprint(runet, addr, port, src_port);
        if !verdict.responsive() && !verdict.responded_plain {
            continue; // unresponsive endpoints are excluded, as in §7.2
        }
        let row = rows.entry(port).or_insert(PortScanRow { port, ..Default::default() });
        row.endpoints += 1;
        ases_seen.insert(asn);
        if verdict.tspu_positive() {
            row.positive += 1;
            ases_positive.insert(asn);
        }
    }
    let mut rows: Vec<PortScanRow> = rows.into_values().collect();
    rows.sort_by_key(|r| r.port);
    (rows, ases_seen.len(), ases_positive.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::{Runet, RunetConfig};

    fn runet() -> Runet {
        let universe = Universe::generate(5);
        Runet::generate(&universe, RunetConfig::tiny(9))
    }

    #[test]
    fn fingerprint_separates_covered_from_uncovered() {
        let mut r = runet();
        let covered = r.endpoints.iter().find(|e| e.behind_symmetric && !e.behind_nat).cloned().unwrap();
        let uncovered = r
            .endpoints
            .iter()
            .find(|e| !e.behind_symmetric && !e.behind_upstream_only)
            .cloned()
            .unwrap();

        let v = fingerprint(&mut r, covered.addr, covered.port, 2000);
        assert!(v.responsive(), "{v:?}");
        assert!(v.tspu_positive(), "covered endpoint must fingerprint positive: {v:?}");

        let v = fingerprint(&mut r, uncovered.addr, uncovered.port, 2100);
        assert!(v.responded_46, "{v:?}");
        assert!(!v.tspu_positive(), "{v:?}");
    }

    #[test]
    fn upstream_only_coverage_invisible_to_fragments() {
        // §7.3 limitations: the fragments travel inbound, which
        // upstream-only devices never see.
        let mut r = runet();
        let Some(e) = r
            .endpoints
            .iter()
            .find(|e| e.behind_upstream_only && !e.behind_symmetric)
            .cloned()
        else {
            return;
        };
        let v = fingerprint(&mut r, e.addr, e.port, 2200);
        assert!(!v.tspu_positive(), "{v:?}");
    }

    #[test]
    fn ip_probe_positive_behind_any_upstream_visibility() {
        let mut r = runet();
        let sym = r.endpoints.iter().find(|e| e.behind_symmetric && !e.behind_nat).cloned().unwrap();
        assert!(ip_block_probe(&mut r, sym.addr, sym.port, 4000));

        if let Some(up) = r
            .endpoints
            .iter()
            .find(|e| e.behind_upstream_only && !e.behind_symmetric)
            .cloned()
        {
            assert!(ip_block_probe(&mut r, up.addr, up.port, 4001), "upstream-only still rewrites");
        }

        let none = r
            .endpoints
            .iter()
            .find(|e| !e.behind_symmetric && !e.behind_upstream_only)
            .cloned()
            .unwrap();
        assert!(!ip_block_probe(&mut r, none.addr, none.port, 4002));
    }

    #[test]
    fn ttl_localization_matches_ground_truth() {
        let mut r = runet();
        let covered: Vec<_> = r
            .endpoints
            .iter()
            .filter(|e| e.behind_symmetric && !e.behind_nat)
            .take(5)
            .cloned()
            .collect();
        for e in covered {
            let flip = localize_device_ttl(&mut r, e.addr, e.port, 6000, 24)
                .unwrap_or_else(|| panic!("no flip for {e:?}"));
            // Path: 4 core + 2 ingress + leaf_len routers; device after
            // leaf index (leaf_len - hops). The flip TTL equals the number
            // of routers strictly before the device plus one.
            let path_len = r.net.route(r.scanner, e.host).unwrap().steps.len();
            let hops_from_dst = path_len + 2 - flip as usize;
            assert_eq!(hops_from_dst, e.device_hops.unwrap(), "flip {flip} path {path_len} truth {:?}", e.device_hops);
        }
    }
}
