//! TCP SYN traceroute and TSPU-link identification (§7.2, Figs. 10–11):
//! every fragmentation-positive endpoint gets a traceroute; combining the
//! hop list with the TTL-flip localization names the "TSPU link" — the
//! pair of router addresses the device sits between.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_topology::Runet;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};

use tspu_stack::craft::TcpPacketSpec;

/// A traceroute result: hop addresses in order, and whether the
/// destination answered.
#[derive(Debug, Clone)]
pub struct TraceResult {
    pub hops: Vec<Option<Ipv4Addr>>,
    pub reached: bool,
}

impl TraceResult {
    /// Path length in router hops (when the destination was reached).
    pub fn path_len(&self) -> Option<usize> {
        self.reached.then_some(self.hops.len())
    }
}

/// Runs a TCP SYN traceroute from the scanner to `addr:port`.
pub fn traceroute(runet: &mut Runet, addr: Ipv4Addr, port: u16, src_port: u16, max_ttl: u8) -> TraceResult {
    let scanner = runet.scanner;
    let scanner_addr = runet.scanner_addr;
    let mut hops = Vec::new();
    for ttl in 1..=max_ttl {
        let _ = runet.net.take_inbox(scanner);
        let syn = TcpPacketSpec::new(scanner_addr, src_port.wrapping_add(u16::from(ttl)), addr, port, TcpFlags::SYN)
            .ttl(ttl)
            .build();
        runet.net.send_from(scanner, syn);
        runet.net.run_for(Duration::from_millis(300));
        let inbox = runet.net.take_inbox(scanner);
        let mut hop = None;
        let mut reached = false;
        for (_, bytes) in &inbox {
            let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
                continue;
            };
            match ip.protocol() {
                Protocol::Icmp => hop = Some(ip.src_addr()),
                Protocol::Tcp if ip.src_addr() == addr
                    && TcpSegment::new_checked(ip.payload())
                        .map(|seg| seg.flags().is_syn_ack())
                        .unwrap_or(false)
                    => {
                        reached = true;
                    }
                _ => {}
            }
        }
        if reached {
            return TraceResult { hops, reached: true };
        }
        hops.push(hop);
    }
    TraceResult { hops, reached: false }
}

/// One identified TSPU link: the router before the device (and after,
/// when visible). Fig. 10/11's red edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TspuLink {
    pub before: Ipv4Addr,
    pub after: Option<Ipv4Addr>,
}

/// Combines a traceroute with the fragmentation TTL flip to name the
/// TSPU link for one endpoint (§7.2: "the last hop where we do not
/// observe TSPU behaviors and the first hop that we do").
pub fn identify_link(trace: &TraceResult, flip_ttl: u8) -> Option<TspuLink> {
    // The device sits after router index (flip_ttl - 2), 0-based: a
    // fragment needs TTL ≥ k+1 to pass k routers.
    let before_idx = flip_ttl.checked_sub(2)? as usize;
    let before = trace.hops.get(before_idx).copied().flatten()?;
    let after = trace.hops.get(before_idx + 1).copied().flatten();
    Some(TspuLink { before, after })
}

/// Clusters links over many endpoints (Fig. 10's statistic: "6,871 unique
/// TSPU links"). Leaf links (no hop after) cluster by the hop before.
pub fn cluster_links(links: &[TspuLink]) -> usize {
    let mut unique: HashMap<(Ipv4Addr, Option<Ipv4Addr>), usize> = HashMap::new();
    for link in links {
        *unique.entry((link.before, link.after)).or_default() += 1;
    }
    unique.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragscan::localize_device_ttl;
    use tspu_registry::Universe;
    use tspu_topology::{Runet, RunetConfig};

    fn runet() -> Runet {
        let universe = Universe::generate(5);
        Runet::generate(&universe, RunetConfig::tiny(9))
    }

    #[test]
    fn traceroute_reaches_and_lists_hops() {
        let mut r = runet();
        let e = r.endpoints.iter().find(|e| !e.behind_nat).cloned().unwrap();
        let trace = traceroute(&mut r, e.addr, e.port, 9000, 30);
        assert!(trace.reached);
        let expected = r.net.route(r.scanner, e.host).unwrap().steps.len();
        assert_eq!(trace.hops.len(), expected);
        // First four hops are the shared core.
        assert_eq!(trace.hops[0], Some(Ipv4Addr::new(198, 51, 100, 1)));
        assert_eq!(trace.hops[2], Some(Ipv4Addr::new(188, 128, 0, 1)));
    }

    #[test]
    fn identified_link_matches_ground_truth() {
        let mut r = runet();
        let covered: Vec<_> = r
            .endpoints
            .iter()
            .filter(|e| e.behind_symmetric && !e.behind_nat)
            .take(4)
            .cloned()
            .collect();
        for e in covered {
            let trace = traceroute(&mut r, e.addr, e.port, 9100, 30);
            assert!(trace.reached);
            let flip = localize_device_ttl(&mut r, e.addr, e.port, 9200, 30).unwrap();
            let link = identify_link(&trace, flip).unwrap();
            let truth = e.tspu_link.unwrap();
            assert_eq!(link.before, truth.0, "endpoint {e:?}");
        }
    }

    #[test]
    fn clustering_counts_unique_links() {
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        let links = vec![
            TspuLink { before: a, after: Some(b) },
            TspuLink { before: a, after: Some(b) },
            TspuLink { before: b, after: None },
        ];
        assert_eq!(cluster_links(&links), 2);
    }
}
