//! TCP trigger-sequence exploration (Fig. 4, §5.3.2): exhaustively play
//! every flag sequence up to length 3 as a prefix, append a triggering
//! ClientHello, and record which prefixes arm which blocking mechanism.

use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::behaviors::{classify_behavior, ObservedBehavior};
use crate::harness::{ProbeSide, ScriptEnd, ScriptStep};

/// The probe alphabet: who sends, with which flags. The paper modulates
/// SYN/SYN-ACK/ACK from both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symbol {
    pub from: ProbeSide,
    pub flags: TcpFlags,
}

impl Symbol {
    /// The six symbols (L/R × SYN, SYN/ACK, ACK).
    pub fn alphabet() -> [Symbol; 6] {
        [
            Symbol { from: ProbeSide::Local, flags: TcpFlags::SYN },
            Symbol { from: ProbeSide::Local, flags: TcpFlags::SYN_ACK },
            Symbol { from: ProbeSide::Local, flags: TcpFlags::ACK },
            Symbol { from: ProbeSide::Remote, flags: TcpFlags::SYN },
            Symbol { from: ProbeSide::Remote, flags: TcpFlags::SYN_ACK },
            Symbol { from: ProbeSide::Remote, flags: TcpFlags::ACK },
        ]
    }

    /// Short notation as in Table 8: `Ls`, `Rsa`, `La`, …
    pub fn notation(&self) -> String {
        let side = match self.from {
            ProbeSide::Local => "L",
            ProbeSide::Remote => "R",
        };
        let flags = if self.flags == TcpFlags::SYN {
            "s"
        } else if self.flags == TcpFlags::SYN_ACK {
            "sa"
        } else {
            "a"
        };
        format!("{side}{flags}")
    }
}

/// One explored sequence and what it armed.
#[derive(Debug, Clone)]
pub struct SequenceVerdict {
    pub notation: String,
    /// Behavior with a domain only on the SNI-I list.
    pub sni1_behavior: ObservedBehavior,
    /// Behavior with a domain on both SNI-I and SNI-IV lists.
    pub sni4_behavior: ObservedBehavior,
}

impl SequenceVerdict {
    /// "Valid prefix": the sequence arms SNI-I blocking.
    pub fn sni1_valid(&self) -> bool {
        self.sni1_behavior == ObservedBehavior::RstAck
    }

    /// "Green" node (Fig. 4): evades SNI-I but not SNI-IV.
    pub fn green(&self) -> bool {
        !self.sni1_valid() && self.sni4_behavior == ObservedBehavior::FullDrop
    }
}

/// Enumerates all sequences of length ≤ `max_len` and classifies each.
/// `domain_sni1` must be SNI-I-only; `domain_sni4` on both I and IV.
pub fn explore(lab: &mut VantageLab, max_len: usize, vantage: &str) -> Vec<SequenceVerdict> {
    let mut sequences: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &frontier {
            for &sym in &Symbol::alphabet() {
                let mut extended = seq.clone();
                extended.push(sym);
                next.push(extended.clone());
                sequences.push(extended);
            }
        }
        frontier = next;
    }

    let vantage_info = lab.vantage(vantage);
    let (v_host, v_addr) = (vantage_info.host, vantage_info.addr);
    let us = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };

    let mut verdicts = Vec::with_capacity(sequences.len());
    let mut port = 10_000u16;
    for seq in &sequences {
        let notation: Vec<String> = seq.iter().map(Symbol::notation).collect();
        let notation = if notation.is_empty() { "∅".to_string() } else { notation.join(";") };
        let prefix: Vec<ScriptStep> =
            seq.iter().map(|sym| ScriptStep::new(sym.from, sym.flags)).collect();

        port += 1;
        let local = ScriptEnd { host: v_host, addr: v_addr, port };
        let sni1_behavior = classify_behavior(
            &mut lab.net,
            local,
            us,
            &prefix,
            ClientHelloBuilder::new("meduza.io").build(),
        );
        port += 1;
        let local = ScriptEnd { host: v_host, addr: v_addr, port };
        let sni4_behavior = classify_behavior(
            &mut lab.net,
            local,
            us,
            &prefix,
            ClientHelloBuilder::new("twitter.com").build(),
        );
        verdicts.push(SequenceVerdict { notation, sni1_behavior, sni4_behavior });
    }
    verdicts
}

/// Summary counts over an exploration (the Fig. 4 statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceSummary {
    pub total: usize,
    pub sni1_valid: usize,
    pub green: usize,
    pub inert: usize,
}

/// Summarizes verdicts.
pub fn summarize(verdicts: &[SequenceVerdict]) -> SequenceSummary {
    let sni1_valid = verdicts.iter().filter(|v| v.sni1_valid()).count();
    let green = verdicts.iter().filter(|v| v.green()).count();
    SequenceSummary {
        total: verdicts.len(),
        sni1_valid,
        green,
        inert: verdicts.len() - sni1_valid - green,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;

    /// Length ≤ 2 exploration asserts the paper's three headline findings.
    #[test]
    fn exploration_matches_fig4_claims() {
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        let verdicts = explore(&mut lab, 2, "ER-Telecom");

        let by_notation = |n: &str| verdicts.iter().find(|v| v.notation == n).unwrap();

        // Remote-first sequences are never valid prefixes.
        for n in ["Rs", "Rsa", "Ra", "Rs;Ls", "Ra;Lsa"] {
            let v = by_notation(n);
            assert!(!v.sni1_valid(), "{n} must not arm SNI-I");
            assert!(!v.green(), "{n} must not arm SNI-IV either");
        }

        // Local-first with a later remote SYN: green (SNI-I evaded,
        // SNI-IV armed).
        let v = by_notation("Ls;Rs");
        assert!(v.green(), "Ls;Rs is a green node: {v:?}");

        // The normal client openings are valid prefixes.
        for n in ["Ls", "Ls;Rsa", "Lsa"] {
            assert!(by_notation(n).sni1_valid(), "{n} arms SNI-I");
        }

        // The empty prefix: a bare triggering ClientHello is blocked.
        assert!(by_notation("∅").sni1_valid());
    }

    #[test]
    fn notation_formatting() {
        let syms = Symbol::alphabet();
        let notations: Vec<String> = syms.iter().map(Symbol::notation).collect();
        assert_eq!(notations, vec!["Ls", "Lsa", "La", "Rs", "Rsa", "Ra"]);
    }
}
