//! Minimal QUIC fingerprint search (Fig. 14): which parts of a UDP packet
//! does the TSPU's QUIC filter actually require? The paper's answer: dst
//! port 443, payload ≥ 1001 bytes, and the version-1 bytes at offset 1–4.
//! Everything else — including the long-header bit — is ignored.

use std::net::Ipv4Addr;

use tspu_core::{Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::udp::UdpRepr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 3);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 98);

/// Sends one UDP payload and reports whether the QUIC filter dropped it
/// (probed with a same-flow follow-up, which an installed verdict eats).
pub fn filter_drops(policy: &PolicyHandle, dst_port: u16, payload: &[u8]) -> bool {
    let mut dev = TspuDevice::reliable("quicfp", policy.clone());
    let now = Time::ZERO;
    let build = |bytes: &[u8]| {
        let datagram = UdpRepr::new(50_001, dst_port, bytes.to_vec()).build(CLIENT, SERVER);
        Ipv4Repr::new(CLIENT, SERVER, Protocol::Udp, datagram.len()).build(&datagram)
    };
    let first = dev.process_owned(now, Direction::LocalToRemote, build(payload));
    let follow = dev.process_owned(now, Direction::LocalToRemote, build(&[0x01; 32]));
    first.is_empty() && follow.is_empty()
}

/// The Fig. 14 findings, verified by construction over the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintFindings {
    /// Smallest payload length (bytes) that triggers.
    pub min_len: usize,
    /// Whether any port other than 443 triggers.
    pub other_ports_trigger: bool,
    /// Byte offsets (within the payload) that must hold specific values.
    pub required_offsets: [usize; 4],
    /// Whether filler bytes affect the verdict.
    pub filler_matters: bool,
}

/// Runs the minimal-fingerprint search: a 0xff-filled payload with the
/// version field planted at offset 1, varied along each axis.
pub fn search(policy: &PolicyHandle) -> FingerprintFindings {
    let base = |len: usize| {
        let mut payload = vec![0xffu8; len];
        if payload.len() >= 5 {
            payload[1..5].copy_from_slice(&1u32.to_be_bytes());
        }
        payload
    };

    // Length sweep around the threshold.
    let mut min_len = usize::MAX;
    for len in (995..=1005).rev() {
        if filter_drops(policy, 443, &base(len)) {
            min_len = len;
        } else {
            break;
        }
    }

    // Port sweep.
    let other_ports_trigger = [80u16, 8443, 444, 53]
        .iter()
        .any(|&p| filter_drops(policy, p, &base(1200)));

    // Which offsets hold the required bytes: mutate one byte at a time.
    let mut required = Vec::new();
    for offset in 0..16 {
        let mut mutated = base(1200);
        mutated[offset] ^= 0x55;
        if !filter_drops(policy, 443, &mutated) {
            required.push(offset);
        }
    }
    let required_offsets: [usize; 4] = match required.as_slice() {
        [a, b, c, d] => [*a, *b, *c, *d],
        other => panic!("unexpected required offsets: {other:?}"),
    };

    // Filler: zero the tail instead of 0xff.
    let mut zero_fill = base(1200);
    for byte in zero_fill.iter_mut().skip(16) {
        *byte = 0;
    }
    let filler_matters = !filter_drops(policy, 443, &zero_fill);

    FingerprintFindings { min_len, other_ports_trigger, required_offsets, filler_matters }
}

/// Default policy for the experiment.
pub fn quicfp_policy() -> PolicyHandle {
    PolicyHandle::new(Policy::example())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::quic::{initial_payload, QuicVersion};

    #[test]
    fn findings_match_fig14() {
        let policy = quicfp_policy();
        let findings = search(&policy);
        assert_eq!(findings.min_len, 1001, "≥ 1001 bytes of payload");
        assert!(!findings.other_ports_trigger, "only port 443");
        assert_eq!(findings.required_offsets, [1, 2, 3, 4], "version bytes only");
        assert!(!findings.filler_matters, "filler is ignored");
    }

    #[test]
    fn version_evasion() {
        let policy = quicfp_policy();
        // Version 1 triggers; draft-29 and quicping do not (§5.2).
        assert!(filter_drops(&policy, 443, &initial_payload(QuicVersion::V1, 1200)));
        assert!(!filter_drops(&policy, 443, &initial_payload(QuicVersion::Draft29, 1200)));
        assert!(!filter_drops(&policy, 443, &initial_payload(QuicVersion::QuicPing, 1200)));
    }

    #[test]
    fn long_header_bit_not_required() {
        // The paper's fingerprint has 0xff in byte 0 — not a valid QUIC
        // first byte — and still triggers.
        let policy = quicfp_policy();
        let mut payload = vec![0x00u8; 1200];
        payload[1..5].copy_from_slice(&1u32.to_be_bytes());
        assert!(filter_drops(&policy, 443, &payload));
    }
}
