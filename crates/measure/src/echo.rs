//! Echo-server measurements (Fig. 8-right, Table 4): Quack-style remote
//! detection of upstream-only TSPU devices using echo servers inside
//! Russia.
//!
//! Protocol (§7.2): from the measurement machine, complete a handshake to
//! TCP port 7, send a ClientHello with a target SNI and wait for it to be
//! echoed, then send 20 random-payload packets and count the echoes. With
//! a non-offending SNI all 20 come back; with an SNI-II domain an
//! upstream-only device on the echo server's outbound path triggers on the
//! *echoed* ClientHello (it sees the server as a client talking to port
//! 443 — hence the measurement machine's source port must be 443) and
//! suppresses most of the rest.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_topology::Runet;
use tspu_wire::ipv4::Ipv4Packet;
use tspu_wire::tcp::{TcpFlags, TcpSegment};
use tspu_wire::tls::ClientHelloBuilder;

use tspu_stack::craft::TcpPacketSpec;

/// Outcome of one echo measurement.
#[derive(Debug, Clone, Copy)]
pub struct EchoMeasurement {
    /// Echoes received with the control (non-offending) SNI.
    pub control_received: usize,
    /// Echoes received with the triggering SNI.
    pub trigger_received: usize,
}

impl EchoMeasurement {
    /// The paper's verdict: responsive under control, suppressed under
    /// trigger. (The paper thresholds at < 5 of 20; our SNI-II allowance
    /// model delivers 5–8, so the cut is placed at half the volley — the
    /// shape, control ≫ trigger, is identical.)
    pub fn tspu_positive(&self) -> bool {
        self.control_received >= 18 && self.trigger_received <= 10
    }
}

const VOLLEY: usize = 20;

/// Runs the echo measurement against one echo server. `src_port` should
/// be 443 (the paper's finding); passing another port is how the
/// role-reversal hypothesis was confirmed.
pub fn measure_echo_server(
    runet: &mut Runet,
    server_addr: Ipv4Addr,
    src_port: u16,
    sni: &str,
    control: bool,
) -> usize {
    let Some(_server_host) = runet.net.host_by_addr(server_addr) else {
        return 0;
    };
    let scanner = runet.scanner;
    let scanner_addr = runet.scanner_addr;
    let _ = runet.net.take_inbox(scanner);

    // Handshake (driver-crafted; the echo app tolerates scripted seqs).
    let syn = TcpPacketSpec::new(scanner_addr, src_port, server_addr, 7, TcpFlags::SYN).build();
    runet.net.send_from(scanner, syn);
    runet.net.run_for(Duration::from_millis(200));
    let ack = TcpPacketSpec::new(scanner_addr, src_port, server_addr, 7, TcpFlags::ACK).build();
    runet.net.send_from(scanner, ack);
    runet.net.run_for(Duration::from_millis(200));

    // The ClientHello; its echo is the potential trigger.
    let hello = ClientHelloBuilder::new(if control { "example.org" } else { sni }).build();
    let ch = TcpPacketSpec::new(scanner_addr, src_port, server_addr, 7, TcpFlags::PSH_ACK)
        .payload(hello)
        .build();
    runet.net.send_from(scanner, ch);
    runet.net.run_for(Duration::from_millis(400));
    let _ = runet.net.take_inbox(scanner);

    // The volley.
    for i in 0..VOLLEY {
        let probe = TcpPacketSpec::new(scanner_addr, src_port, server_addr, 7, TcpFlags::PSH_ACK)
            .payload(vec![0xc0 ^ (i as u8); 33])
            .build();
        runet.net.send_from(scanner, probe);
        runet.net.run_for(Duration::from_millis(120));
    }
    runet.net.run_for(Duration::from_millis(500));

    runet
        .net
        .take_inbox(scanner)
        .iter()
        .filter(|(_, bytes)| {
            let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
                return false;
            };
            if ip.src_addr() != server_addr {
                return false;
            }
            TcpSegment::new_checked(ip.payload())
                .map(|seg| seg.payload().len() == 33)
                .unwrap_or(false)
        })
        .count()
}

/// Runs the full control+trigger measurement.
pub fn echo_measurement(runet: &mut Runet, server_addr: Ipv4Addr, src_port: u16) -> EchoMeasurement {
    let control_received = measure_echo_server(runet, server_addr, src_port, "nordvpn.com", true);
    // Fresh source flow state decays naturally; the trigger run uses the
    // same 4-tuple but a different SNI, matching the paper's procedure.
    runet.net.run_for(Duration::from_secs(600));
    let trigger_received = measure_echo_server(runet, server_addr, src_port, "nordvpn.com", false);
    EchoMeasurement { control_received, trigger_received }
}

/// Table 4 funnel over the echo population.
#[derive(Debug, Clone, Default)]
pub struct EchoFunnel {
    pub discovered_ips: usize,
    pub discovered_ases: usize,
    pub discovered_networks: usize,
    pub filtered_ips: usize,
    pub filtered_ases: usize,
    pub positive_ips: usize,
    pub positive_ases: usize,
}

/// Runs Table 4: discover echo servers, apply the non-residential filter,
/// measure each with source port 443.
pub fn run_table4(runet: &mut Runet) -> EchoFunnel {
    use std::collections::HashSet;
    let echo: Vec<(Ipv4Addr, u32, bool)> = runet
        .echo_servers()
        .map(|e| {
            (
                e.addr,
                e.asn,
                e.label != tspu_topology::runet::DeviceLabel::EndUser,
            )
        })
        .collect();

    let mut funnel = EchoFunnel {
        discovered_ips: echo.len(),
        discovered_ases: echo.iter().map(|(_, asn, _)| asn).collect::<HashSet<_>>().len(),
        discovered_networks: echo
            .iter()
            .map(|(addr, _, _)| u32::from(*addr) >> 8)
            .collect::<HashSet<_>>()
            .len(),
        ..Default::default()
    };

    let filtered: Vec<(Ipv4Addr, u32)> = echo
        .iter()
        .filter(|(_, _, infra)| *infra)
        .map(|(addr, asn, _)| (*addr, *asn))
        .collect();
    funnel.filtered_ips = filtered.len();
    funnel.filtered_ases = filtered.iter().map(|(_, asn)| asn).collect::<HashSet<_>>().len();

    let mut positive_ases = HashSet::new();
    for (addr, asn) in &filtered {
        let result = echo_measurement(runet, *addr, 443);
        if result.tspu_positive() {
            funnel.positive_ips += 1;
            positive_ases.insert(*asn);
        }
    }
    funnel.positive_ases = positive_ases.len();
    funnel
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::{Runet, RunetConfig};

    fn runet() -> Runet {
        let universe = Universe::generate(5);
        Runet::generate(&universe, RunetConfig::tiny(9))
    }

    #[test]
    fn upstream_only_echo_server_detected_with_port_443() {
        let mut r = runet();
        let target = r
            .echo_servers()
            .find(|e| e.behind_upstream_only && !e.behind_symmetric)
            .map(|e| e.addr);
        let Some(addr) = target else {
            // Tiny topologies may lack such a server; regenerate louder.
            panic!("tiny runet produced no upstream-only echo server");
        };
        let result = echo_measurement(&mut r, addr, 443);
        assert!(result.control_received >= 18, "{result:?}");
        assert!(result.tspu_positive(), "{result:?}");
    }

    #[test]
    fn ephemeral_port_does_not_trigger() {
        // The role-reversal confirmation: with a non-443 source port the
        // echoed ClientHello is not headed to "port 443", so no trigger.
        let mut r = runet();
        let target = r
            .echo_servers()
            .find(|e| e.behind_upstream_only && !e.behind_symmetric)
            .map(|e| e.addr)
            .expect("echo server behind upstream-only device");
        let result = echo_measurement(&mut r, target, 51_234);
        assert!(!result.tspu_positive(), "{result:?}");
        assert!(result.trigger_received >= 18, "{result:?}");
    }

    #[test]
    fn uncovered_echo_server_is_negative() {
        let mut r = runet();
        let target = r
            .echo_servers()
            .find(|e| !e.behind_upstream_only && !e.behind_symmetric)
            .map(|e| e.addr)
            .expect("uncovered echo server");
        let result = echo_measurement(&mut r, target, 443);
        assert!(!result.tspu_positive(), "{result:?}");
    }
}
