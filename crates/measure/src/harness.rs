//! Shared probe machinery: scripted packet exchanges between a vantage
//! point and a remote machine, with captures at both ends (§3: "send
//! different types of traffic — often with triggers — while capturing
//! traffic from both ends for analysis").

use std::borrow::Cow;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::{HostId, Network};
use tspu_stack::craft::TcpPacketSpec;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};
use tspu_wire::tls::extract_sni;

/// Which endpoint emits a scripted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSide {
    /// The Russian vantage point.
    Local,
    /// The measurement machine outside Russia.
    Remote,
}

/// One scripted packet.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    pub from: ProbeSide,
    pub flags: TcpFlags,
    /// Borrowed for the constant volley payloads the scan hot path replays
    /// thousands of times per sweep; owned for per-scenario triggers.
    pub payload: Cow<'static, [u8]>,
    /// Virtual time to let pass *before* sending this packet.
    pub wait_before: Duration,
    /// TTL override (TTL-limited probing).
    pub ttl: Option<u8>,
}

impl ScriptStep {
    /// A flags-only packet from a side.
    pub fn new(from: ProbeSide, flags: TcpFlags) -> ScriptStep {
        ScriptStep { from, flags, payload: Cow::Borrowed(&[]), wait_before: Duration::ZERO, ttl: None }
    }

    /// Adds a payload (PSH/ACK data, triggers). Accepts owned bytes or a
    /// `'static` slice (the scripted volleys are compile-time constants).
    pub fn payload(mut self, payload: impl Into<Cow<'static, [u8]>>) -> ScriptStep {
        self.payload = payload.into();
        self
    }

    /// Waits `wait` of virtual time before this packet.
    pub fn after(mut self, wait: Duration) -> ScriptStep {
        self.wait_before = wait;
        self
    }

    /// Sets a TTL override.
    pub fn ttl(mut self, ttl: u8) -> ScriptStep {
        self.ttl = Some(ttl);
        self
    }
}

/// Summary of one packet observed at an endpoint.
#[derive(Debug, Clone)]
pub struct PacketSummary {
    pub time: tspu_netsim::Time,
    pub flags: TcpFlags,
    pub payload_len: usize,
    pub is_rst_ack: bool,
    pub sni: Option<String>,
    pub src: Ipv4Addr,
}

/// What each endpoint saw during a script run.
#[derive(Debug, Clone, Default)]
pub struct ScriptResult {
    pub at_local: Vec<PacketSummary>,
    pub at_remote: Vec<PacketSummary>,
}

thread_local! {
    /// Recycled packet buffers: crafted packets travel through the
    /// simulator into an inbox, come back via [`summarize`], and their
    /// allocations are reused by the next scripted step. Contents are
    /// fully overwritten on every build, so pooling is invisible to
    /// results — it only spares the scan hot path a malloc per packet.
    static PACKET_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Pool cap: enough for one scenario's packets in flight, small enough
/// that an unusual burst does not pin memory.
const PACKET_POOL_CAP: usize = 32;

/// Largest buffer the pool will retain. A reassembled jumbo or a soak's
/// oversized probe would otherwise park its allocation in the pool forever
/// — 32 slots × one bad burst could pin megabytes after the run ends.
/// Ordinary crafted packets (headers + ClientHello-sized payloads) sit
/// well under this.
const PACKET_POOL_MAX_BYTES: usize = 4096;

fn pooled_packet() -> Vec<u8> {
    PACKET_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

fn recycle_packet(buf: Vec<u8>) {
    PACKET_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < PACKET_POOL_CAP && buf.capacity() <= PACKET_POOL_MAX_BYTES {
            pool.push(buf);
        }
    });
}

/// Total bytes currently retained by this thread's packet pool (the
/// soak-footprint tests watch this).
pub fn packet_pool_retained_bytes() -> usize {
    PACKET_POOL.with(|p| p.borrow().iter().map(Vec::capacity).sum())
}

fn summarize(inbox: Vec<(tspu_netsim::Time, Vec<u8>)>) -> Vec<PacketSummary> {
    let mut out = Vec::with_capacity(inbox.len());
    for (time, bytes) in inbox {
        let summary = (|| {
            let ip = Ipv4Packet::new_checked(&bytes[..]).ok()?;
            if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
                return None;
            }
            let seg = TcpSegment::new_checked(ip.payload()).ok()?;
            let flags = seg.flags();
            let payload = seg.payload();
            Some(PacketSummary {
                time,
                flags,
                payload_len: payload.len(),
                is_rst_ack: flags == TcpFlags::RST_ACK,
                sni: extract_sni(payload).hostname().map(str::to_string),
                src: ip.src_addr(),
            })
        })();
        recycle_packet(bytes);
        out.extend(summary);
    }
    out
}

/// Endpoint descriptor for script runs.
#[derive(Debug, Clone, Copy)]
pub struct ScriptEnd {
    pub host: HostId,
    pub addr: Ipv4Addr,
    pub port: u16,
}

/// Plays a scripted exchange between `local` and `remote` on `net`.
/// Neither endpoint runs an application: every packet (including
/// "responses") is scripted, which is how the paper isolates the DPI's
/// *own* contribution from endpoint behavior.
///
/// Each step is followed by enough virtual time for in-flight packets to
/// settle, so captures at both ends are complete when this returns.
pub fn run_script(
    net: &mut Network,
    local: ScriptEnd,
    remote: ScriptEnd,
    steps: &[ScriptStep],
) -> ScriptResult {
    // Drain anything stale.
    let _ = net.take_inbox(local.host);
    let _ = net.take_inbox(remote.host);

    for step in steps {
        if step.wait_before > Duration::ZERO {
            net.run_for(step.wait_before);
        }
        let (src_host, spec) = match step.from {
            ProbeSide::Local => (
                local.host,
                TcpPacketSpec::new(local.addr, local.port, remote.addr, remote.port, step.flags),
            ),
            ProbeSide::Remote => (
                remote.host,
                TcpPacketSpec::new(remote.addr, remote.port, local.addr, local.port, step.flags),
            ),
        };
        let mut spec = spec;
        if let Some(ttl) = step.ttl {
            spec = spec.ttl(ttl);
        }
        let mut packet = pooled_packet();
        spec.build_into(&step.payload, &mut packet);
        net.send_from(src_host, packet);
        // Let this packet (and anything it provokes) propagate before the
        // next scripted step, as the paper's sequential tests do.
        net.run_for(Duration::from_millis(200));
    }
    net.run_for(Duration::from_millis(500));

    ScriptResult {
        at_local: summarize(net.take_inbox(local.host)),
        at_remote: summarize(net.take_inbox(remote.host)),
    }
}

/// Convenience: the standard handshake prefix `Ls; Rsa; La`.
pub fn handshake_prefix() -> Vec<ScriptStep> {
    vec![
        ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
        ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN_ACK),
        ScriptStep::new(ProbeSide::Local, TcpFlags::ACK),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::VantageLab;
    use tspu_wire::tls::ClientHelloBuilder;

    #[test]
    fn script_roundtrip_with_blocked_sni() {
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 42000 };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps = handshake_prefix();
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("twitter.com").build()),
        );
        steps.push(
            ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(b"serverhello".to_vec()),
        );
        let result = run_script(&mut lab.net, local, remote, &steps);
        // The remote got the handshake + the CH (SNI-I lets it pass).
        assert!(result.at_remote.iter().any(|p| p.sni.as_deref() == Some("twitter.com")));
        // The local side saw the response rewritten to RST/ACK.
        assert!(result.at_local.iter().any(|p| p.is_rst_ack && p.payload_len == 0));
    }

    #[test]
    fn packet_pool_rejects_oversized_buffers() {
        // Drop whatever earlier steps on this thread left behind so the
        // bound is exact.
        PACKET_POOL.with(|p| p.borrow_mut().clear());
        for _ in 0..PACKET_POOL_CAP * 2 {
            recycle_packet(Vec::with_capacity(1 << 20)); // a soak-sized jumbo
            recycle_packet(Vec::with_capacity(512));
        }
        let retained = packet_pool_retained_bytes();
        assert!(
            retained <= PACKET_POOL_CAP * PACKET_POOL_MAX_BYTES,
            "pool pinned {retained} bytes"
        );
        PACKET_POOL.with(|p| p.borrow_mut().clear());
    }

    #[test]
    fn script_wait_advances_virtual_time() {
        let universe = Universe::generate(3);
        let mut lab = VantageLab::builder().universe(&universe).table1().build();
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 42001 };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let before = lab.net.now();
        let steps = [ScriptStep::new(ProbeSide::Local, TcpFlags::SYN).after(Duration::from_secs(480))];
        let _ = run_script(&mut lab.net, local, remote, &steps);
        assert!(lab.net.now() - before >= Duration::from_secs(480));
    }
}
