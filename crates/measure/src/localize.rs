//! Local-to-remote TSPU localization (§7.1): TTL-limited triggers find the
//! hop where blocking begins; the Fig. 8-left protocol finds additional
//! upstream-only devices that symmetric probing cannot see.

use std::time::Duration;

use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};

/// Result of the TTL sweep: the device lies between `hop` and `hop + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalizedDevice {
    pub after_hop: u8,
}

/// §7.1: sends triggers with increasing TTL; control packets establish the
/// flow and detect whether blocking occurred. "If we identify some TTL
/// value N where we do not observe blocking but TTL N+1 results in
/// blocking, the TSPU device exists between hop N and N+1."
///
/// One trial per TTL, each on a fresh source port and flow.
pub fn localize_symmetric(
    lab: &mut VantageLab,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
) -> Option<LocalizedDevice> {
    let mut previous_blocked = None;
    for ttl in 1..=max_ttl {
        let vantage = lab.vantage(vantage_name);
        let local = ScriptEnd {
            host: vantage.host,
            addr: vantage.addr,
            port: port_base + u16::from(ttl),
        };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        // Control packets (full TTL) establish the flow; the trigger is
        // TTL-limited; a remote control response tests for blocking.
        let mut steps = crate::harness::handshake_prefix();
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("meduza.io").build())
                .ttl(ttl),
        );
        steps.push(
            ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
                .payload(vec![0x99; 90])
                .after(Duration::from_millis(100)),
        );
        let result = run_script(&mut lab.net, local, remote, &steps);
        let blocked = result.at_local.iter().any(|p| p.is_rst_ack);
        if let Some(false) = previous_blocked {
            if blocked {
                return Some(LocalizedDevice { after_hop: ttl - 1 });
            }
        }
        if previous_blocked.is_none() && blocked {
            // Blocked already at TTL 1: device on the first link.
            return Some(LocalizedDevice { after_hop: 0 });
        }
        previous_blocked = Some(blocked);
    }
    None
}

/// §7.1.1 (Fig. 8-left): detects upstream-only devices. The US machine
/// opens the connection (so symmetric devices treat the remote as client
/// and stay quiet); the RU side answers with a SYN/ACK which upstream-only
/// devices see *first*, making them treat the RU side as client. A
/// TTL-limited SNI-II ClientHello then walks the path: once it reaches the
/// upstream-only device, the flow gets the delayed-drop verdict, observed
/// by counting suppressed follow-ups.
pub fn find_upstream_only(
    lab: &mut VantageLab,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
) -> Vec<LocalizedDevice> {
    let mut found = Vec::new();
    let mut prev_blocked = false;
    for ttl in 1..=max_ttl {
        let vantage = lab.vantage(vantage_name);
        let local = ScriptEnd {
            host: vantage.host,
            addr: vantage.addr,
            port: port_base + u16::from(ttl),
        };
        // The US peer's port must be 443: from the upstream-only device's
        // reversed perspective the RU side is a client talking to remote
        // port 443 — the same quirk that forces the echo technique to pin
        // the Paris ephemeral port to 443 (§7.2).
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps = vec![
            // Remote-initiated connection.
            ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
            ScriptStep::new(ProbeSide::Local, TcpFlags::SYN_ACK),
            ScriptStep::new(ProbeSide::Remote, TcpFlags::ACK),
            // TTL-limited SNI-II trigger from the RU side.
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("play.google.com").build())
                .ttl(ttl),
        ];
        // Follow-up volley from the RU side: SNI-II drops upstream traffic
        // after its allowance, which the US machine observes as missing
        // packets.
        for _ in 0..12 {
            steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x66; 70]));
        }
        let result = run_script(&mut lab.net, local, remote, &steps);
        let through = result.at_remote.iter().filter(|p| p.payload_len == 70).count();
        let blocked = through < 12;
        if blocked && !prev_blocked {
            found.push(LocalizedDevice { after_hop: ttl - 1 });
        }
        prev_blocked = blocked;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;

    fn lab() -> VantageLab {
        let universe = Universe::generate(3);
        VantageLab::build(&universe, false, true)
    }

    #[test]
    fn symmetric_device_within_first_three_hops() {
        let mut lab = lab();
        for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
            let found = localize_symmetric(&mut lab, vantage, 50_000, 8)
                .unwrap_or_else(|| panic!("no device found at {vantage}"));
            // The lab installs symmetric devices after hop 2.
            assert_eq!(found.after_hop, 2, "{vantage}");
            assert!(found.after_hop <= 3, "§7.1: within the first three hops");
        }
    }

    #[test]
    fn upstream_only_found_on_rostelecom_and_obit() {
        let mut lab = lab();
        // Rostelecom: upstream-only device one hop behind the symmetric
        // one (after hop 3).
        let found = find_upstream_only(&mut lab, "Rostelecom", 52_000, 8);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].after_hop, 3);

        // OBIT: at the first transit link (after hop 3 in the lab).
        let found = find_upstream_only(&mut lab, "OBIT", 53_000, 8);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].after_hop, 3);

        // ER-Telecom: none.
        let found = find_upstream_only(&mut lab, "ER-Telecom", 54_000, 8);
        assert!(found.is_empty(), "{found:?}");
    }
}
