//! Local-to-remote TSPU localization (§7.1): TTL-limited triggers find the
//! hop where blocking begins; the Fig. 8-left protocol finds additional
//! upstream-only devices that symmetric probing cannot see.
//!
//! Each TTL probe is one self-contained trial on a fresh flow, so the
//! sweep parallelizes scenario-per-TTL through [`crate::sweep::ScanPool`]
//! (`*_pooled` variants) with results identical to the sequential walk.

use std::time::Duration;

use tspu_core::PolicyHandle;
use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};
use crate::sweep::{RunOpts, ScanPool};

/// Result of the TTL sweep: the device lies between `hop` and `hop + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalizedDevice {
    pub after_hop: u8,
}

/// One symmetric-localization trial: control packets (full TTL) establish
/// the flow, the trigger is TTL-limited, and a remote control response
/// tests for blocking. Returns whether the flow was blocked (RST/ACK seen
/// at the local side).
pub fn symmetric_trial(lab: &mut VantageLab, vantage_name: &str, port: u16, ttl: u8) -> bool {
    let vantage = lab.vantage(vantage_name);
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps = crate::harness::handshake_prefix();
    steps.push(
        ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
            .payload(ClientHelloBuilder::new("meduza.io").build())
            .ttl(ttl),
    );
    steps.push(
        ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
            .payload(vec![0x99; 90])
            .after(Duration::from_millis(100)),
    );
    let result = run_script(&mut lab.net, local, remote, &steps);
    result.at_local.iter().any(|p| p.is_rst_ack)
}

/// One upstream-only trial (Fig. 8 left): the US machine opens the
/// connection, the RU side answers SYN/ACK, then sends a TTL-limited
/// SNI-II ClientHello and a 12-packet volley; blocking shows as missing
/// volley packets at the remote.
pub fn upstream_trial(lab: &mut VantageLab, vantage_name: &str, port: u16, ttl: u8) -> bool {
    let vantage = lab.vantage(vantage_name);
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
    // The US peer's port must be 443: from the upstream-only device's
    // reversed perspective the RU side is a client talking to remote
    // port 443 — the same quirk that forces the echo technique to pin
    // the Paris ephemeral port to 443 (§7.2).
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps = vec![
        // Remote-initiated connection.
        ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
        ScriptStep::new(ProbeSide::Local, TcpFlags::SYN_ACK),
        ScriptStep::new(ProbeSide::Remote, TcpFlags::ACK),
        // TTL-limited SNI-II trigger from the RU side.
        ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
            .payload(ClientHelloBuilder::new("play.google.com").build())
            .ttl(ttl),
    ];
    // Follow-up volley from the RU side: SNI-II drops upstream traffic
    // after its allowance, which the US machine observes as missing
    // packets.
    for _ in 0..12 {
        steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x66; 70]));
    }
    let result = run_script(&mut lab.net, local, remote, &steps);
    let through = result.at_remote.iter().filter(|p| p.payload_len == 70).count();
    through < 12
}

/// The first false→true transition in the per-TTL blocking vector
/// (`blocked[i]` is the trial at TTL `i + 1`): "if we identify some TTL
/// value N where we do not observe blocking but TTL N+1 results in
/// blocking, the TSPU device exists between hop N and N+1." Blocked
/// already at TTL 1 means the device sits on the first link.
fn first_onset(blocked: &[bool]) -> Option<LocalizedDevice> {
    blocked
        .iter()
        .enumerate()
        .position(|(i, &b)| b && (i == 0 || !blocked[i - 1]))
        .map(|i| LocalizedDevice { after_hop: i as u8 })
}

/// Every false→true transition — one per device on the path.
fn all_onsets(blocked: &[bool]) -> Vec<LocalizedDevice> {
    blocked
        .iter()
        .enumerate()
        .filter(|&(i, &b)| b && (i == 0 || !blocked[i - 1]))
        .map(|(i, _)| LocalizedDevice { after_hop: i as u8 })
        .collect()
}

/// §7.1: sends triggers with increasing TTL; one trial per TTL, each on a
/// fresh source port and flow.
pub fn localize_symmetric(
    lab: &mut VantageLab,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
) -> Option<LocalizedDevice> {
    let blocked: Vec<bool> = (1..=max_ttl)
        .map(|ttl| symmetric_trial(lab, vantage_name, port_base + u16::from(ttl), ttl))
        .collect();
    first_onset(&blocked)
}

/// [`localize_symmetric`] sharded TTL-per-scenario across the pool, each
/// trial on a private lab forked from a warm scan image built once.
/// Identical results at any thread count.
pub fn localize_symmetric_pooled(
    policy: &PolicyHandle,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
    pool: &ScanPool,
) -> Option<LocalizedDevice> {
    let ttls: Vec<u8> = (1..=max_ttl).collect();
    let image = VantageLab::builder().policy(policy.clone()).image();
    let run = pool.run(&ttls, &RunOpts::quick(), || (), |(), index, &ttl| {
        let mut lab = image.fork(index);
        symmetric_trial(&mut lab, vantage_name, port_base + u16::from(ttl), ttl)
    });
    let blocked = run.results;
    first_onset(&blocked)
}

/// §7.1.1 (Fig. 8-left): detects upstream-only devices. The US machine
/// opens the connection (so symmetric devices treat the remote as client
/// and stay quiet); the RU side answers with a SYN/ACK which upstream-only
/// devices see *first*, making them treat the RU side as client. A
/// TTL-limited SNI-II ClientHello then walks the path: once it reaches the
/// upstream-only device, the flow gets the delayed-drop verdict, observed
/// by counting suppressed follow-ups.
pub fn find_upstream_only(
    lab: &mut VantageLab,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
) -> Vec<LocalizedDevice> {
    let blocked: Vec<bool> = (1..=max_ttl)
        .map(|ttl| upstream_trial(lab, vantage_name, port_base + u16::from(ttl), ttl))
        .collect();
    all_onsets(&blocked)
}

/// [`find_upstream_only`] sharded TTL-per-scenario across the pool.
pub fn find_upstream_only_pooled(
    policy: &PolicyHandle,
    vantage_name: &str,
    port_base: u16,
    max_ttl: u8,
    pool: &ScanPool,
) -> Vec<LocalizedDevice> {
    let ttls: Vec<u8> = (1..=max_ttl).collect();
    let image = VantageLab::builder().policy(policy.clone()).image();
    let run = pool.run(&ttls, &RunOpts::quick(), || (), |(), index, &ttl| {
        let mut lab = image.fork(index);
        upstream_trial(&mut lab, vantage_name, port_base + u16::from(ttl), ttl)
    });
    let blocked = run.results;
    all_onsets(&blocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::policy_from_universe;

    fn lab() -> VantageLab {
        let universe = Universe::generate(3);
        VantageLab::builder().universe(&universe).table1().build()
    }

    #[test]
    fn symmetric_device_within_first_three_hops() {
        let mut lab = lab();
        for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
            let found = localize_symmetric(&mut lab, vantage, 50_000, 8)
                .unwrap_or_else(|| panic!("no device found at {vantage}"));
            // The lab installs symmetric devices after hop 2.
            assert_eq!(found.after_hop, 2, "{vantage}");
            assert!(found.after_hop <= 3, "§7.1: within the first three hops");
        }
    }

    #[test]
    fn upstream_only_found_on_rostelecom_and_obit() {
        let mut lab = lab();
        // Rostelecom: upstream-only device one hop behind the symmetric
        // one (after hop 3).
        let found = find_upstream_only(&mut lab, "Rostelecom", 52_000, 8);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].after_hop, 3);

        // OBIT: at the first transit link (after hop 3 in the lab).
        let found = find_upstream_only(&mut lab, "OBIT", 53_000, 8);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].after_hop, 3);

        // ER-Telecom: none.
        let found = find_upstream_only(&mut lab, "ER-Telecom", 54_000, 8);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn pooled_localization_matches_sequential() {
        let universe = Universe::generate(3);
        let policy = policy_from_universe(&universe, false, true);
        for threads in [1, 2, 8] {
            let pool = ScanPool::new(threads);
            for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
                let sym = localize_symmetric_pooled(&policy, vantage, 50_000, 8, &pool);
                assert_eq!(sym, Some(LocalizedDevice { after_hop: 2 }), "{vantage} x{threads}");
            }
            let upstream = find_upstream_only_pooled(&policy, "Rostelecom", 52_000, 8, &pool);
            assert_eq!(upstream, vec![LocalizedDevice { after_hop: 3 }], "x{threads}");
            let none = find_upstream_only_pooled(&policy, "ER-Telecom", 54_000, 8, &pool);
            assert!(none.is_empty(), "x{threads}: {none:?}");
        }
    }
}
