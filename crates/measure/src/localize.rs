//! TSPU localization (§7.1): where on the path — and on generated graphs,
//! in which AS — enforcement happens.
//!
//! One entry point, shaped like [`crate::sweep::SweepSpec::run`]:
//! [`LocalizeSpec::run`] takes the pool and a [`RunOpts`] and dispatches
//! on [`LocalizeTechnique`] — the §7.1 symmetric TTL walk, the §7.1.1
//! upstream-only protocol (Fig. 8-left), or churn-driven tomography
//! ([`crate::tomography`]) — replacing the old `localize_symmetric` /
//! `localize_symmetric_pooled` / `find_upstream_only` /
//! `find_upstream_only_pooled` driver family. TTL trials shard
//! scenario-per-TTL across the pool, each on a private lab forked from a
//! warm image; results are identical at every thread count.

use std::time::Duration;

use tspu_core::PolicyHandle;
use tspu_obs::Snapshot;
use tspu_topology::{TopologySpec, VantageLab};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};
use crate::sweep::{PoolReport, RunOpts, ScanPool};
use crate::tomography::{run_tomography, TomographyConfig, TomographyRun};

/// Result of the TTL sweep: the device lies between `hop` and `hop + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalizedDevice {
    pub after_hop: u8,
}

/// The probing client's script end. On the Fig. 1 lab `vantage` is an ISP
/// name; on a generated lab it is a client index rendered as a string
/// (`"0"`, `"1"`, …) — generated topologies have no named vantages.
fn local_end(lab: &VantageLab, vantage: &str, port: u16) -> ScriptEnd {
    match &lab.gen {
        Some(gen) => {
            let index: usize =
                vantage.parse().expect("generated labs: vantage is a client index string");
            let client = &gen.clients[index];
            ScriptEnd { host: client.host, addr: client.addr, port }
        }
        None => {
            let vantage = lab.vantage(vantage);
            ScriptEnd { host: vantage.host, addr: vantage.addr, port }
        }
    }
}

/// One symmetric-localization trial: control packets (full TTL) establish
/// the flow, the trigger is TTL-limited, and a remote control response
/// tests for blocking. Returns whether the flow was blocked (RST/ACK seen
/// at the local side).
pub fn symmetric_trial(lab: &mut VantageLab, vantage_name: &str, port: u16, ttl: u8) -> bool {
    let local = local_end(lab, vantage_name, port);
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps = crate::harness::handshake_prefix();
    steps.push(
        ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
            .payload(ClientHelloBuilder::new("meduza.io").build())
            .ttl(ttl),
    );
    steps.push(
        ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
            .payload(vec![0x99; 90])
            .after(Duration::from_millis(100)),
    );
    let result = run_script(&mut lab.net, local, remote, &steps);
    result.at_local.iter().any(|p| p.is_rst_ack)
}

/// One upstream-only trial (Fig. 8 left): the US machine opens the
/// connection, the RU side answers SYN/ACK, then sends a TTL-limited
/// SNI-II ClientHello and a 12-packet volley; blocking shows as missing
/// volley packets at the remote.
pub fn upstream_trial(lab: &mut VantageLab, vantage_name: &str, port: u16, ttl: u8) -> bool {
    let local = local_end(lab, vantage_name, port);
    // The US peer's port must be 443: from the upstream-only device's
    // reversed perspective the RU side is a client talking to remote
    // port 443 — the same quirk that forces the echo technique to pin
    // the Paris ephemeral port to 443 (§7.2).
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps = vec![
        // Remote-initiated connection.
        ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
        ScriptStep::new(ProbeSide::Local, TcpFlags::SYN_ACK),
        ScriptStep::new(ProbeSide::Remote, TcpFlags::ACK),
        // TTL-limited SNI-II trigger from the RU side.
        ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
            .payload(ClientHelloBuilder::new("play.google.com").build())
            .ttl(ttl),
    ];
    // Follow-up volley from the RU side: SNI-II drops upstream traffic
    // after its allowance, which the US machine observes as missing
    // packets.
    for _ in 0..12 {
        steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x66; 70]));
    }
    let result = run_script(&mut lab.net, local, remote, &steps);
    let through = result.at_remote.iter().filter(|p| p.payload_len == 70).count();
    through < 12
}

/// The first false→true transition in the per-TTL blocking vector
/// (`blocked[i]` is the trial at TTL `i + 1`): "if we identify some TTL
/// value N where we do not observe blocking but TTL N+1 results in
/// blocking, the TSPU device exists between hop N and N+1." Blocked
/// already at TTL 1 means the device sits on the first link.
pub(crate) fn first_onset(blocked: &[bool]) -> Option<LocalizedDevice> {
    blocked
        .iter()
        .enumerate()
        .position(|(i, &b)| b && (i == 0 || !blocked[i - 1]))
        .map(|i| LocalizedDevice { after_hop: i as u8 })
}

/// Every false→true transition — one per device on the path.
pub(crate) fn all_onsets(blocked: &[bool]) -> Vec<LocalizedDevice> {
    blocked
        .iter()
        .enumerate()
        .filter(|&(i, &b)| b && (i == 0 || !blocked[i - 1]))
        .map(|(i, _)| LocalizedDevice { after_hop: i as u8 })
        .collect()
}

/// Which localization technique a [`LocalizeSpec`] runs.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalizeTechnique {
    /// §7.1 symmetric TTL walk: first blocking onset on the path.
    SymmetricTtl,
    /// §7.1.1 upstream-only protocol: every onset, one per device.
    UpstreamTtl,
    /// Churn-driven tomography on a generated topology.
    Tomography(TomographyConfig),
}

/// Shared immutable description of a localization run — the
/// [`crate::sweep::SweepSpec`]-shaped spec unifying the old four-driver
/// family with tomography under one `run(pool, &RunOpts)`.
#[derive(Clone)]
pub struct LocalizeSpec {
    pub policy: PolicyHandle,
    /// The lab the TTL techniques probe. [`LocalizeTechnique::Tomography`]
    /// carries its own generated topology and ignores this field.
    pub topology: TopologySpec,
    /// Probing client: ISP name on Fig. 1, client index string (`"0"`…)
    /// on generated labs. Unused by tomography (it probes every client).
    pub vantage: String,
    /// First trial port; trial `ttl` probes `port_base + ttl`.
    pub port_base: u16,
    /// Deepest TTL the walk tries.
    pub max_ttl: u8,
    pub technique: LocalizeTechnique,
}

impl LocalizeSpec {
    /// A §7.1 symmetric TTL walk from `vantage` (port base 50 000,
    /// max TTL 8 — the defaults every old call site used).
    pub fn symmetric(policy: PolicyHandle, vantage: &str) -> LocalizeSpec {
        LocalizeSpec {
            policy,
            topology: TopologySpec::Fig1,
            vantage: vantage.to_string(),
            port_base: 50_000,
            max_ttl: 8,
            technique: LocalizeTechnique::SymmetricTtl,
        }
    }

    /// A §7.1.1 upstream-only walk from `vantage` (port base 52 000).
    pub fn upstream(policy: PolicyHandle, vantage: &str) -> LocalizeSpec {
        LocalizeSpec {
            policy,
            topology: TopologySpec::Fig1,
            vantage: vantage.to_string(),
            port_base: 52_000,
            max_ttl: 8,
            technique: LocalizeTechnique::UpstreamTtl,
        }
    }

    /// A tomography campaign over `config`'s generated topology.
    pub fn tomography(policy: PolicyHandle, config: TomographyConfig) -> LocalizeSpec {
        LocalizeSpec {
            policy,
            topology: TopologySpec::Generated(config.params.clone()),
            vantage: String::new(),
            port_base: 0,
            max_ttl: 0,
            technique: LocalizeTechnique::Tomography(config),
        }
    }

    /// Overrides the TTL-trial port base.
    pub fn port_base(mut self, port_base: u16) -> LocalizeSpec {
        self.port_base = port_base;
        self
    }

    /// Overrides the deepest TTL.
    pub fn max_ttl(mut self, max_ttl: u8) -> LocalizeSpec {
        self.max_ttl = max_ttl;
        self
    }

    /// Runs the lab the TTL walk probes on a different topology (e.g. a
    /// generated graph with `vantage` naming a client index).
    pub fn with_topology(mut self, topology: TopologySpec) -> LocalizeSpec {
        self.topology = topology;
        self
    }

    /// The single localization entry point. TTL techniques shard
    /// scenario-per-TTL across the pool (trial `ttl` on port
    /// `port_base + ttl`, a pure function of the scenario); tomography
    /// shards cell-per-scenario. Deterministic at every thread count.
    pub fn run(&self, pool: &ScanPool, opts: &RunOpts) -> LocalizeRun {
        let symmetric = match &self.technique {
            LocalizeTechnique::SymmetricTtl => true,
            LocalizeTechnique::UpstreamTtl => false,
            LocalizeTechnique::Tomography(config) => {
                let (tomography, snapshot, report) =
                    run_tomography(config, &self.policy, pool, opts);
                return LocalizeRun {
                    devices: Vec::new(),
                    tomography: Some(tomography),
                    snapshot,
                    report,
                };
            }
        };
        let image = VantageLab::builder()
            .policy(self.policy.clone())
            .topology(self.topology.clone())
            .image();
        let ttls: Vec<u8> = (1..=self.max_ttl).collect();
        let observe = opts.observe;
        let run = pool.run(&ttls, opts, || (), |(), index, &ttl| {
            let mut lab = image.fork(index);
            let port = self.port_base + u16::from(ttl);
            let blocked = if symmetric {
                symmetric_trial(&mut lab, &self.vantage, port, ttl)
            } else {
                upstream_trial(&mut lab, &self.vantage, port, ttl)
            };
            (blocked, observe.then(|| lab.take_obs().with_scenario(index as u32)))
        });
        let mut blocked = Vec::with_capacity(run.results.len());
        let mut snapshot = observe.then(Snapshot::new);
        for (b, snap) in run.results {
            blocked.push(b);
            if let (Some(total), Some(snap)) = (snapshot.as_mut(), snap.as_ref()) {
                total.merge(snap);
            }
        }
        let devices = if symmetric {
            first_onset(&blocked).into_iter().collect()
        } else {
            all_onsets(&blocked)
        };
        LocalizeRun { devices, tomography: None, snapshot, report: run.report }
    }
}

/// What [`LocalizeSpec::run`] returns.
#[derive(Debug, Clone)]
pub struct LocalizeRun {
    /// Localized devices in onset order. Symmetric walks report at most
    /// one (the first onset); upstream walks one per device; tomography
    /// none (its results are AS-level, in [`LocalizeRun::tomography`]).
    pub devices: Vec<LocalizedDevice>,
    /// `Some` iff the spec's technique was tomography.
    pub tomography: Option<TomographyRun>,
    /// Merged campaign snapshot, `Some` iff [`RunOpts::observe`].
    pub snapshot: Option<Snapshot>,
    /// Wall-clock report, `Some` iff [`RunOpts::report`].
    pub report: Option<PoolReport>,
}

impl LocalizeRun {
    /// The first localized device, if any — what the symmetric walk's
    /// old `Option<LocalizedDevice>` return carried.
    pub fn first(&self) -> Option<LocalizedDevice> {
        self.devices.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;
    use tspu_topology::policy_from_universe;

    fn policy() -> PolicyHandle {
        policy_from_universe(&Universe::generate(3), false, true)
    }

    #[test]
    fn symmetric_device_within_first_three_hops() {
        let policy = policy();
        let pool = ScanPool::single_thread();
        for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
            let run = LocalizeSpec::symmetric(policy.clone(), vantage).run(&pool, &RunOpts::quick());
            let found = run.first().unwrap_or_else(|| panic!("no device found at {vantage}"));
            // The lab installs symmetric devices after hop 2.
            assert_eq!(found.after_hop, 2, "{vantage}");
            assert!(found.after_hop <= 3, "§7.1: within the first three hops");
        }
    }

    #[test]
    fn upstream_only_found_on_rostelecom_and_obit() {
        let policy = policy();
        let pool = ScanPool::single_thread();
        // Rostelecom: upstream-only device one hop behind the symmetric
        // one (after hop 3).
        let found = LocalizeSpec::upstream(policy.clone(), "Rostelecom")
            .run(&pool, &RunOpts::quick())
            .devices;
        assert_eq!(found, vec![LocalizedDevice { after_hop: 3 }], "{found:?}");

        // OBIT: at the first transit link (after hop 3 in the lab).
        let found =
            LocalizeSpec::upstream(policy.clone(), "OBIT").run(&pool, &RunOpts::quick()).devices;
        assert_eq!(found, vec![LocalizedDevice { after_hop: 3 }], "{found:?}");

        // ER-Telecom: none.
        let found =
            LocalizeSpec::upstream(policy, "ER-Telecom").run(&pool, &RunOpts::quick()).devices;
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn pooled_localization_matches_sequential() {
        let policy = policy();
        let sequential = |spec: &LocalizeSpec| {
            spec.run(&ScanPool::single_thread(), &RunOpts::quick()).devices
        };
        for threads in [2, 8] {
            let pool = ScanPool::new(threads);
            for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
                let spec = LocalizeSpec::symmetric(policy.clone(), vantage);
                assert_eq!(
                    spec.run(&pool, &RunOpts::quick()).devices,
                    sequential(&spec),
                    "{vantage} x{threads}"
                );
            }
            let spec = LocalizeSpec::upstream(policy.clone(), "Rostelecom");
            assert_eq!(spec.run(&pool, &RunOpts::quick()).devices, sequential(&spec));
            let spec = LocalizeSpec::upstream(policy.clone(), "ER-Telecom");
            assert!(spec.run(&pool, &RunOpts::quick()).devices.is_empty(), "x{threads}");
        }
    }

    #[test]
    fn onset_helpers_pin_transitions() {
        assert_eq!(first_onset(&[false, false, true, true]), Some(LocalizedDevice { after_hop: 2 }));
        assert_eq!(first_onset(&[true, true]), Some(LocalizedDevice { after_hop: 0 }));
        assert_eq!(first_onset(&[false, false]), None);
        assert_eq!(
            all_onsets(&[false, true, false, true]),
            vec![LocalizedDevice { after_hop: 1 }, LocalizedDevice { after_hop: 3 }]
        );
    }
}
