//! Behavior classification and Fig. 2 trace generation: given a scripted
//! exchange, decide which of the paper's blocking behaviors (if any) was
//! observed.

use std::time::Duration;

use tspu_netsim::Network;
use tspu_wire::tcp::TcpFlags;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};

/// The observable outcomes of a trigger exchange (§5.2's behaviors, as
/// seen from the endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedBehavior {
    /// No interference: everything arrived unmodified.
    Pass,
    /// SNI-I / IP-based signature: response arrived as RST/ACK with the
    /// payload stripped.
    RstAck,
    /// SNI-II signature: the first handful of packets passed, then
    /// symmetric silence. Carries how many post-trigger packets made it.
    DelayedDrop(usize),
    /// SNI-IV / QUIC signature: immediate symmetric drops, including the
    /// trigger itself.
    FullDrop,
    /// SNI-III signature: data flows but at a policed trickle.
    Throttled,
}

/// Volley payload table: packet `i` is `LEN` copies of `base + i`, so each
/// packet in a volley is distinguishable in captures.
const fn volley<const LEN: usize, const N: usize>(base: u8) -> [[u8; LEN]; N] {
    let mut out = [[0u8; LEN]; N];
    let mut i = 0;
    while i < N {
        out[i] = [base + i as u8; LEN];
        i += 1;
    }
    out
}

static REMOTE_VOLLEY: [[u8; 120]; 8] = volley(0xd0);
static LOCAL_VOLLEY: [[u8; 60]; 2] = volley(0xe0);

/// Probes one flow: plays `prefix`, then the `trigger` payload from the
/// local side, then a scripted response volley (8 remote data packets,
/// 2 local data packets), and classifies what the endpoints saw.
///
/// The volley sizes are chosen so every behavior is distinguishable:
/// SNI-II's 5–8 packet allowance is strictly less than the 10 follow-ups.
pub fn classify_behavior(
    net: &mut Network,
    local: ScriptEnd,
    remote: ScriptEnd,
    prefix: &[ScriptStep],
    trigger: Vec<u8>,
) -> ObservedBehavior {
    let mut steps = prefix.to_vec();
    let trigger_marker = trigger.len();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(trigger));
    // Remote "ServerHello"-ish reply plus data volley. The payloads are
    // compile-time constants: a domain sweep replays this volley once per
    // scenario, so they are borrowed, never re-allocated.
    for payload in &REMOTE_VOLLEY {
        steps.push(
            ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
                .payload(&payload[..])
                .after(Duration::from_millis(50)),
        );
    }
    for payload in &LOCAL_VOLLEY {
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(&payload[..])
                .after(Duration::from_millis(50)),
        );
    }
    let result = run_script(net, local, remote, &steps);

    let trigger_arrived = result
        .at_remote
        .iter()
        .any(|p| p.payload_len == trigger_marker);
    let local_rst = result.at_local.iter().any(|p| p.is_rst_ack && p.payload_len == 0);
    let remote_data_received = result
        .at_local
        .iter()
        .filter(|p| p.payload_len == 120)
        .count();
    let local_data_received = result
        .at_remote
        .iter()
        .filter(|p| p.payload_len == 60)
        .count();

    if !trigger_arrived && remote_data_received == 0 {
        return ObservedBehavior::FullDrop;
    }
    if local_rst {
        return ObservedBehavior::RstAck;
    }
    if remote_data_received == 8 && local_data_received == 2 {
        return ObservedBehavior::Pass;
    }
    // Some packets passed, then silence on both sides: the delayed drop.
    // The count is the post-trigger allowance the paper reports as 5–8.
    ObservedBehavior::DelayedDrop(remote_data_received + local_data_received)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::handshake_prefix;
    use tspu_registry::Universe;
    use tspu_topology::VantageLab;
    use tspu_wire::tls::ClientHelloBuilder;

    fn ends(lab: &VantageLab, port: u16) -> (ScriptEnd, ScriptEnd) {
        let vantage = lab.vantage("ER-Telecom");
        (
            ScriptEnd { host: vantage.host, addr: vantage.addr, port },
            ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 },
        )
    }

    /// Reliable lab (no failure dice) for behavior classification.
    fn reliable_lab() -> VantageLab {
        let universe = Universe::generate(3);
        VantageLab::builder().universe(&universe).build()
    }

    #[test]
    fn sni1_classified_rst_ack() {
        let mut lab = reliable_lab();
        let (local, remote) = ends(&lab, 43100);
        let behavior = classify_behavior(
            &mut lab.net,
            local,
            remote,
            &handshake_prefix(),
            ClientHelloBuilder::new("meduza.io").build(),
        );
        assert_eq!(behavior, ObservedBehavior::RstAck);
    }

    #[test]
    fn sni2_classified_delayed_drop() {
        let mut lab = reliable_lab();
        let (local, remote) = ends(&lab, 43101);
        let behavior = classify_behavior(
            &mut lab.net,
            local,
            remote,
            &handshake_prefix(),
            ClientHelloBuilder::new("nordvpn.com").build(),
        );
        match behavior {
            ObservedBehavior::DelayedDrop(n) => assert!((5..=8).contains(&n), "allowance {n}"),
            other => panic!("expected DelayedDrop, got {other:?}"),
        }
    }

    #[test]
    fn sni4_classified_full_drop_on_split_handshake() {
        let mut lab = reliable_lab();
        let (local, remote) = ends(&lab, 43102);
        let prefix = vec![
            ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
            ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
        ];
        let behavior = classify_behavior(
            &mut lab.net,
            local,
            remote,
            &prefix,
            ClientHelloBuilder::new("twitter.com").build(),
        );
        assert_eq!(behavior, ObservedBehavior::FullDrop);
    }

    #[test]
    fn innocuous_passes() {
        let mut lab = reliable_lab();
        let (local, remote) = ends(&lab, 43103);
        let behavior = classify_behavior(
            &mut lab.net,
            local,
            remote,
            &handshake_prefix(),
            ClientHelloBuilder::new("rust-lang.org").build(),
        );
        assert_eq!(behavior, ObservedBehavior::Pass);
    }
}
