//! ClientHello byte-sensitivity mapping (Fig. 13): fuzz a triggering
//! ClientHello one byte at a time and record which positions change the
//! TSPU's verdict. The paper concludes the TSPU *parses* the record to
//! locate the SNI ("altering values in positions that represent 'type' or
//! 'length' would lead to different censorship behaviors") and ignores
//! other extensions' contents.
//!
//! This experiment runs against a bare device (black-box at the packet
//! interface): topology adds nothing to a per-byte sweep.

use std::net::Ipv4Addr;

use tspu_core::{Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};
use tspu_wire::tls::ClientHelloBuilder;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 99, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 99);

/// Classification of one byte position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteSensitivity {
    /// Mutating this byte still triggers blocking (ignored content).
    Ignored,
    /// Mutating this byte defeats the trigger (structural or SNI bytes).
    Sensitive,
}

/// The Fig. 13 map: per-byte sensitivity plus a region label for
/// human-readable reporting.
#[derive(Debug, Clone)]
pub struct SensitivityMap {
    pub record: Vec<u8>,
    pub sensitivity: Vec<ByteSensitivity>,
}

impl SensitivityMap {
    /// Count of sensitive positions.
    pub fn sensitive_count(&self) -> usize {
        self.sensitivity.iter().filter(|s| **s == ByteSensitivity::Sensitive).count()
    }

    /// Region label for a byte offset, following the record layout the
    /// builder emits (record header, handshake header, version, random,
    /// session id, ciphersuites, compression, extensions).
    pub fn region(&self, offset: usize) -> &'static str {
        region_of(&self.record, offset)
    }
}

/// Identifies the layout region of `offset` inside a builder-emitted
/// ClientHello.
pub fn region_of(record: &[u8], offset: usize) -> &'static str {
    // Fixed prefix: 5 (record hdr) + 4 (handshake hdr) + 2 (version) +
    // 32 (random) + 1 (sid len) + sid + 2 (cs len) + cs + 1 (comp len) +
    // comp + 2 (ext len) + extensions.
    if offset < 1 {
        return "record content-type";
    }
    if offset < 3 {
        return "record version";
    }
    if offset < 5 {
        return "record length";
    }
    if offset < 6 {
        return "handshake type";
    }
    if offset < 9 {
        return "handshake length";
    }
    if offset < 11 {
        return "client version";
    }
    if offset < 43 {
        return "random";
    }
    let sid_len = record[43] as usize;
    if offset == 43 {
        return "session-id length";
    }
    if offset < 44 + sid_len {
        return "session id";
    }
    let cs_off = 44 + sid_len;
    if offset < cs_off + 2 {
        return "ciphersuites length";
    }
    let cs_len = u16::from_be_bytes([record[cs_off], record[cs_off + 1]]) as usize;
    if offset < cs_off + 2 + cs_len {
        return "ciphersuites";
    }
    let comp_off = cs_off + 2 + cs_len;
    if offset == comp_off {
        return "compression length";
    }
    let comp_len = record[comp_off] as usize;
    if offset < comp_off + 1 + comp_len {
        return "compression";
    }
    let ext_off = comp_off + 1 + comp_len;
    if offset < ext_off + 2 {
        return "extensions length";
    }
    "extensions"
}

/// Whether a given ClientHello byte-mutation still triggers SNI blocking,
/// probed against a fresh reliable device.
fn still_triggers(policy: &PolicyHandle, record: &[u8]) -> bool {
    let mut dev = TspuDevice::reliable("fuzz", policy.clone());
    let now = Time::ZERO;
    // Handshake.
    for (dir, flags, src, sp, dst, dp) in [
        (Direction::LocalToRemote, TcpFlags::SYN, CLIENT, 4444u16, SERVER, 443u16),
        (Direction::RemoteToLocal, TcpFlags::SYN_ACK, SERVER, 443, CLIENT, 4444),
        (Direction::LocalToRemote, TcpFlags::ACK, CLIENT, 4444, SERVER, 443),
    ] {
        let seg = TcpRepr::new(sp, dp, flags).build(src, dst);
        let pkt = Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg);
        dev.process_owned(now, dir, pkt.clone());
    }
    // The (mutated) ClientHello.
    let mut tcp = TcpRepr::new(4444, 443, TcpFlags::PSH_ACK);
    tcp.payload = record.to_vec();
    let seg = tcp.build(CLIENT, SERVER);
    let ch = Ipv4Repr::new(CLIENT, SERVER, Protocol::Tcp, seg.len()).build(&seg);
    dev.process_owned(now, Direction::LocalToRemote, ch.clone());
    // Does the response get rewritten?
    let mut reply = TcpRepr::new(443, 4444, TcpFlags::PSH_ACK);
    reply.payload = vec![0xaa; 64];
    let seg = reply.build(SERVER, CLIENT);
    let response = Ipv4Repr::new(SERVER, CLIENT, Protocol::Tcp, seg.len()).build(&seg);
    let out = dev.process_owned(now, Direction::RemoteToLocal, response.clone());
    out.len() == 1 && {
        let ip = tspu_wire::ipv4::Ipv4Packet::new_unchecked(&out[0][..]);
        TcpSegment::new_unchecked(ip.payload()).flags() == TcpFlags::RST_ACK
    }
}

/// Builds the Fig. 13 sensitivity map for a ClientHello carrying
/// `domain` (which must be SNI-I blocked under `policy`).
pub fn sensitivity_map(policy: &PolicyHandle, domain: &str) -> SensitivityMap {
    let record = ClientHelloBuilder::new(domain).build();
    assert!(still_triggers(policy, &record), "baseline must trigger");
    let mut sensitivity = Vec::with_capacity(record.len());
    for position in 0..record.len() {
        let mut mutated = record.clone();
        mutated[position] ^= 0xff;
        let triggered = still_triggers(policy, &mutated);
        sensitivity.push(if triggered { ByteSensitivity::Ignored } else { ByteSensitivity::Sensitive });
    }
    SensitivityMap { record, sensitivity }
}

/// Default policy for the experiment.
pub fn fuzz_policy() -> PolicyHandle {
    PolicyHandle::new(Policy::example())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_bytes_sensitive_content_bytes_ignored() {
        let policy = fuzz_policy();
        let map = sensitivity_map(&policy, "meduza.io");

        // Structural fields are sensitive.
        for (offset, label) in [(0usize, "record content-type"), (5, "handshake type"), (43, "session-id length")] {
            assert_eq!(map.region(offset), label);
            assert_eq!(
                map.sensitivity[offset],
                ByteSensitivity::Sensitive,
                "{label} at {offset}"
            );
        }

        // The random is entirely ignored.
        for offset in 11..43 {
            assert_eq!(map.sensitivity[offset], ByteSensitivity::Ignored, "random byte {offset}");
        }

        // Session-id contents ignored.
        let sid_start = 44;
        for offset in sid_start..sid_start + 8 {
            assert_eq!(map.sensitivity[offset], ByteSensitivity::Ignored, "sid byte {offset}");
        }

        // SNI hostname bytes are sensitive (mutating them changes the
        // matched domain).
        let host_pos = map
            .record
            .windows(b"meduza.io".len())
            .position(|w| w == b"meduza.io")
            .expect("hostname embedded");
        for offset in host_pos..host_pos + 6 {
            assert_eq!(map.sensitivity[offset], ByteSensitivity::Sensitive, "sni byte {offset}");
        }
    }

    #[test]
    fn other_extension_contents_ignored() {
        let policy = fuzz_policy();
        // Build with a fat extra extension and check its body is ignored.
        let record = ClientHelloBuilder::new("meduza.io")
            .extension(0x0010, vec![0x5a; 24])
            .build();
        assert!(still_triggers(&policy, &record));
        // Mutate a byte in the middle of the extra extension body.
        let pos = record.len() - 10;
        let mut mutated = record.clone();
        mutated[pos] ^= 0xff;
        assert!(still_triggers(&policy, &mutated), "extension body must be ignored");
    }

    #[test]
    fn sensitive_fraction_is_small() {
        // Most of a ClientHello is opaque content; only the skeleton and
        // the SNI itself matter.
        let policy = fuzz_policy();
        let map = sensitivity_map(&policy, "meduza.io");
        let fraction = map.sensitive_count() as f64 / map.record.len() as f64;
        assert!(fraction < 0.45, "sensitive fraction {fraction}");
    }
}
