//! Domain testing (§6): what the TSPU blocks versus what each ISP's
//! resolver blocks, over the Tranco-style list and the registry sample.
//! Produces Fig. 6's set relations, Fig. 7's category histogram, and
//! Table 3's behavior classification.

use std::collections::{BTreeMap, HashSet};

use tspu_registry::{classifier, Category, Universe};
use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::behaviors::{classify_behavior, ObservedBehavior};
use crate::harness::{handshake_prefix, ProbeSide, ScriptEnd, ScriptStep};

/// How one domain was (or wasn't) censored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainVerdict {
    Open,
    Sni1,
    Sni2,
    Sni4,
    Throttled,
}

/// Results of the §6 campaign for one list.
#[derive(Debug, Default)]
pub struct DomainCampaign {
    /// Domain → TSPU verdict.
    pub tspu: BTreeMap<String, DomainVerdict>,
    /// ISP name → set of domains its resolver blockpages.
    pub isp_blocked: BTreeMap<String, HashSet<String>>,
}

impl DomainCampaign {
    /// Domains the TSPU blocks by any mechanism.
    pub fn tspu_blocked(&self) -> HashSet<String> {
        self.tspu
            .iter()
            .filter(|(_, v)| **v != DomainVerdict::Open)
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Domains blocked by the TSPU but by no ISP resolver — the
    /// "out-registry" wedge of Fig. 6 (plus any resolver lag).
    pub fn tspu_only(&self) -> HashSet<String> {
        let union: HashSet<&String> = self.isp_blocked.values().flatten().collect();
        let mut only = self.tspu_blocked();
        only.retain(|d| !union.contains(d));
        only
    }
}

/// Tests one domain against the TSPU from a vantage, via the full behavior
/// classification, including the split-handshake follow-up that exposes
/// SNI-IV membership (§6.2: "the measurement machines were configured to
/// respond to a SYN with a SYN to start a split handshake").
///
/// On the Fig. 1 lab the probing client is the ER-Telecom vantage; on a
/// generated topology it is client `port as usize % clients` — sweep
/// drivers pass index-derived ports, so scenarios spread across clients
/// deterministically. Use [`test_domain_from`] to pick the client
/// explicitly.
pub fn test_domain(lab: &mut VantageLab, domain: &str, port: u16) -> DomainVerdict {
    let (host, addr) = match &lab.gen {
        Some(gen) => {
            let c = &gen.clients[port as usize % gen.clients.len()];
            (c.host, c.addr)
        }
        None => {
            let vantage = lab.vantage("ER-Telecom");
            (vantage.host, vantage.addr)
        }
    };
    test_domain_from(lab, host, addr, domain, port)
}

/// [`test_domain`] from an explicit local endpoint — the form generated
/// topologies and tomography probes use, where the client is a scenario
/// coordinate rather than a fixed vantage.
pub fn test_domain_from(
    lab: &mut VantageLab,
    local_host: tspu_netsim::HostId,
    local_addr: std::net::Ipv4Addr,
    domain: &str,
    port: u16,
) -> DomainVerdict {
    let local = ScriptEnd { host: local_host, addr: local_addr, port };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let behavior = classify_behavior(
        &mut lab.net,
        local,
        remote,
        &handshake_prefix(),
        ClientHelloBuilder::new(domain).build(),
    );
    match behavior {
        ObservedBehavior::Pass => DomainVerdict::Open,
        ObservedBehavior::DelayedDrop(_) => DomainVerdict::Sni2,
        ObservedBehavior::Throttled => DomainVerdict::Throttled,
        ObservedBehavior::FullDrop => DomainVerdict::Sni4,
        ObservedBehavior::RstAck => {
            // RST-blocked: check for SNI-IV membership with the split
            // handshake (which evades SNI-I).
            let local = ScriptEnd { host: local_host, addr: local_addr, port: port ^ 0x8000 };
            let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
            let split = vec![
                ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
                ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
            ];
            let follow = classify_behavior(
                &mut lab.net,
                local,
                remote,
                &split,
                ClientHelloBuilder::new(domain).build(),
            );
            if follow == ObservedBehavior::FullDrop {
                DomainVerdict::Sni4
            } else {
                DomainVerdict::Sni1
            }
        }
    }
}

/// Runs the campaign over `domains` (already name-only) against the TSPU
/// and all three ISP resolvers.
pub fn run_campaign<'a, I: IntoIterator<Item = &'a str>>(
    lab: &mut VantageLab,
    domains: I,
) -> DomainCampaign {
    let mut campaign = DomainCampaign::default();
    let mut port = 2048u16;
    let resolver_names: Vec<String> = lab.resolvers.iter().map(|r| r.isp().to_string()).collect();
    for name in &resolver_names {
        campaign.isp_blocked.insert(name.clone(), HashSet::new());
    }
    for domain in domains {
        port = port.wrapping_add(3) | 2048;
        let mut verdict = test_domain(lab, domain, port);
        // §3: "all measurements … were repeated multiple times (>5) to
        // account for the TSPU failure" — an Open result gets retried on
        // fresh ports before being believed.
        let mut retries = 0;
        while verdict == DomainVerdict::Open && retries < 2 {
            port = port.wrapping_add(3) | 2048;
            verdict = test_domain(lab, domain, port);
            retries += 1;
        }
        campaign.tspu.insert(domain.to_string(), verdict);
        for resolver in &lab.resolvers {
            if resolver.lists(domain) {
                campaign
                    .isp_blocked
                    .get_mut(resolver.isp())
                    .expect("resolver registered")
                    .insert(domain.to_string());
            }
        }
    }
    campaign
}

/// Fig. 7: category histogram over the registry sample — fetch each
/// domain's page from outside Russia, classify, and tally all vs blocked.
#[derive(Debug, Default)]
pub struct CategoryHistogram {
    /// Category → (all classified, blocked by TSPU).
    pub rows: BTreeMap<&'static str, (usize, usize)>,
    pub failed_tcp: usize,
    pub bad_html: usize,
}

/// Builds Fig. 7 for a subset of the registry sample. `blocked` is the
/// TSPU-blocked set from the campaign (or the ground-truth list for
/// full-scale runs).
pub fn category_histogram(
    universe: &Universe,
    blocked: &HashSet<String>,
    limit: usize,
    fetch_seed: u64,
) -> CategoryHistogram {
    let mut hist = CategoryHistogram::default();
    for category in Category::ALL {
        hist.rows.insert(category.name(), (0, 0));
    }
    for domain in universe.registry_sample.iter().take(limit) {
        match classifier::fetch(domain, fetch_seed) {
            classifier::FetchOutcome::FailedTcp => hist.failed_tcp += 1,
            classifier::FetchOutcome::BadHtml => hist.bad_html += 1,
            classifier::FetchOutcome::Html(html) => {
                if let Some(category) = classifier::classify_html(&html) {
                    let row = hist.rows.get_mut(category.name()).expect("all categories");
                    row.0 += 1;
                    if blocked.contains(&domain.name) {
                        row.1 += 1;
                    }
                }
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab_and_universe() -> (Universe, VantageLab) {
        let universe = Universe::generate(3);
        let lab = VantageLab::builder().universe(&universe).table1().build();
        (universe, lab)
    }

    #[test]
    fn verdicts_match_table3_anchors() {
        let (_u, mut lab) = lab_and_universe();
        assert_eq!(test_domain(&mut lab, "meduza.io", 3001), DomainVerdict::Sni1);
        assert_eq!(test_domain(&mut lab, "play.google.com", 3003), DomainVerdict::Sni2);
        assert_eq!(test_domain(&mut lab, "twitter.com", 3005), DomainVerdict::Sni4);
        assert_eq!(test_domain(&mut lab, "wikipedia.org", 3007), DomainVerdict::Open);
    }

    #[test]
    fn campaign_over_sample_shows_tspu_superset() {
        let (universe, mut lab) = lab_and_universe();
        // A slice of the registry sample: TSPU coverage must exceed the
        // stale Rostelecom resolver's.
        let names: Vec<&str> = universe
            .registry_sample
            .iter()
            .take(60)
            .map(|d| d.name.as_str())
            .collect();
        let campaign = run_campaign(&mut lab, names.iter().copied());
        let tspu = campaign.tspu_blocked();
        let rostelecom = &campaign.isp_blocked["Rostelecom"];
        assert!(tspu.len() > rostelecom.len(), "tspu {} vs rostelecom {}", tspu.len(), rostelecom.len());
        // Uniformity: the TSPU list is identical from any vantage by
        // construction (central policy); resolvers differ per ISP.
        let obit = &campaign.isp_blocked["OBIT"];
        assert!(rostelecom.len() <= obit.len());
    }

    #[test]
    fn out_registry_domains_blocked_only_by_tspu() {
        let (_u, mut lab) = lab_and_universe();
        let campaign = run_campaign(&mut lab, ["play.google.com", "nordvpn.com"]);
        let only = campaign.tspu_only();
        assert!(only.contains("play.google.com"));
        assert!(only.contains("nordvpn.com"));
    }

    #[test]
    fn histogram_counts_and_exclusions() {
        let (universe, _lab) = lab_and_universe();
        let blocked: HashSet<String> = universe.blocks.sni_rst.iter().cloned().collect();
        let hist = category_histogram(&universe, &blocked, 2000, 42);
        let total: usize = hist.rows.values().map(|(all, _)| all).sum();
        assert!(total > 1000, "classified {total}");
        assert!(hist.failed_tcp > 150, "failed {}", hist.failed_tcp);
        assert!(hist.bad_html > 350, "bad {}", hist.bad_html);
        // Gambling and media dominate (Fig. 7's shape).
        let gambling = hist.rows["Gambling"].0;
        let circumvention = hist.rows["Circumvention"].0;
        assert!(gambling > circumvention * 3);
    }
}
