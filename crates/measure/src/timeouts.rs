//! State-timeout inference (Fig. 5, Table 2, Table 8): play a packet
//! sequence, SLEEP a variable T, then send a trigger and see whether the
//! TSPU still holds (or already dropped) the state — "we repeat the
//! experiment while iteratively adjusting T until we find a threshold that
//! consistently leads to different behaviors" (§5.3.3).
//!
//! Two observables are used, matching how each row is measurable:
//!
//! * **flip search** — the trigger outcome (blocked/bypassed) differs
//!   across the threshold (used when the pre-trigger state is exempt on
//!   one side of the threshold, e.g. remote-client flows);
//! * **residual search** — for sequences where the trigger is blocked
//!   regardless, the *duration* of the installed verdict is measured by
//!   probing the same flow after a variable delay.

use std::time::Duration;

use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use crate::harness::{run_script, ProbeSide, ScriptEnd, ScriptStep};
use crate::sequences::Symbol;

/// Whether the trigger was acted on (DROP) or ignored (PASS) — Table 8's
/// "Action" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    Drop,
    Pass,
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct TimeoutEstimate {
    pub notation: String,
    /// Seconds at which behavior flips (the state/residual timeout).
    pub timeout_secs: Option<u64>,
    /// Behavior right after the sequence (small T).
    pub action: Action,
}

/// The domain used for triggers: SNI-II, as the paper does, "to avoid
/// potentially inducing interference from ISPs' filtering devices".
fn trigger() -> Vec<u8> {
    ClientHelloBuilder::new("play.google.com").build()
}

/// Plays `prefix`, sleeps `sleep`, sends the SNI-II trigger, then probes
/// with 10 local data packets; returns true when the flow was blocked
/// (probes suppressed).
fn blocked_after(
    lab: &mut VantageLab,
    port: u16,
    prefix: &[Symbol],
    sleep: Duration,
) -> bool {
    let vantage = lab.vantage("ER-Telecom");
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps: Vec<ScriptStep> =
        prefix.iter().map(|s| ScriptStep::new(s.from, s.flags)).collect();
    let mut trigger_step = ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(trigger());
    trigger_step.wait_before = sleep;
    steps.push(trigger_step);
    // Probe volley: SNI-II allows 5–8 through, so 10 probes always expose
    // an installed verdict.
    for _ in 0..10 {
        steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x77; 64]));
    }
    let result = run_script(&mut lab.net, local, remote, &steps);
    let probes_through = result.at_remote.iter().filter(|p| p.payload_len == 64).count();
    probes_through < 10
}

/// After `prefix` + immediate trigger (which must block), probes the same
/// flow after `delay` with plain data; returns true when still blocked —
/// the residual-censorship observable.
fn still_blocked_after(
    lab: &mut VantageLab,
    port: u16,
    prefix: &[Symbol],
    delay: Duration,
) -> bool {
    let vantage = lab.vantage("ER-Telecom");
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    let mut steps: Vec<ScriptStep> =
        prefix.iter().map(|s| ScriptStep::new(s.from, s.flags)).collect();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(trigger()));
    // Exhaust the SNI-II allowance right away so the verdict is plainly
    // observable…
    for _ in 0..10 {
        steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x77; 64]));
    }
    // …then probe after the delay.
    let mut probe = ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x55; 48]);
    probe.wait_before = delay;
    steps.push(probe);
    let result = run_script(&mut lab.net, local, remote, &steps);
    !result.at_remote.iter().any(|p| p.payload_len == 48)
}

/// Binary-searches (to 1 s resolution) the smallest T in `[lo, hi]` where
/// `predicate(T)` changes value relative to `predicate(lo)`.
fn flip_search<F: FnMut(Duration) -> bool>(lo: u64, hi: u64, mut predicate: F) -> Option<u64> {
    let at_lo = predicate(Duration::from_secs(lo));
    if predicate(Duration::from_secs(hi)) == at_lo {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if predicate(Duration::from_secs(mid)) == at_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Measures one sequence row (Table 8 methodology): first try the
/// trigger-outcome flip; when the trigger drops on both sides of the
/// window, fall back to the residual-duration observable.
pub fn measure_sequence(lab: &mut VantageLab, prefix: &[Symbol], port_base: u16) -> TimeoutEstimate {
    let notation = if prefix.is_empty() {
        "∅".to_string()
    } else {
        prefix.iter().map(Symbol::notation).collect::<Vec<_>>().join(";")
    };

    let mut port = port_base;
    let mut next_port = || {
        port += 1;
        port
    };

    let blocked_short = blocked_after(lab, next_port(), prefix, Duration::from_secs(1));
    let action = if blocked_short { Action::Drop } else { Action::Pass };

    let timeout_secs = if !blocked_short {
        // PASS rows: find where the protective state expires.
        flip_search(1, 600, |t| blocked_after(lab, next_port(), prefix, t))
    } else {
        // DROP rows: measure the verdict's residual duration.
        flip_search(1, 600, |t| still_blocked_after(lab, next_port(), prefix, t))
    };

    TimeoutEstimate { notation, timeout_secs, action }
}

/// The Table 8 sequence set (prefixes before the trigger).
pub fn table8_sequences() -> Vec<Vec<Symbol>> {
    use ProbeSide::{Local as L, Remote as R};
    let s = |from, flags| Symbol { from, flags };
    let ls = s(L, TcpFlags::SYN);
    let lsa = s(L, TcpFlags::SYN_ACK);
    let la = s(L, TcpFlags::ACK);
    let rs = s(R, TcpFlags::SYN);
    let rsa = s(R, TcpFlags::SYN_ACK);
    let ra = s(R, TcpFlags::ACK);
    vec![
        vec![],                     // Lt
        vec![rs],                   // Rs;Lt
        vec![rs, ls],               // Rs;Ls;Lt
        vec![ls, rs],               // Ls;Rs;Lt
        vec![rs, ls, rsa],          // Rs;Ls;Rsa;Lt
        vec![rs, ls, lsa],          // (Table 8's "Ss;Ls;Lsa" row, read as Rs)
        vec![rs, ls, rsa, lsa],     // Rs;Ls;Rsa;Lsa;Lt
        vec![ra],                   // Ra;Lt
        vec![ra, lsa],              // Ra;Lsa;Lt
        vec![lsa],                  // Lsa;Lt
        vec![rs, lsa],              // Rs;Lsa;Lt
        vec![ra, lsa, ra],          // Ra;Lsa;Ra;Lt
        vec![rsa],                  // Rsa;Lt
        vec![ls, ra],               // Ls;Ra;Lt
        vec![rsa, lsa],             // Rsa;Lsa;Lt
        vec![rsa, la],              // Rsa;La;Lt
        vec![la],                   // La;Lt
    ]
}

/// A Table 2 row: notation, sequence with sleep position, and the state
/// the paper names.
pub struct Table2Row {
    pub label: &'static str,
    pub paper_timeout: u64,
    /// Steps before the sleep.
    pub before: Vec<Symbol>,
    /// Steps after the sleep (before the trigger).
    pub after: Vec<Symbol>,
}

/// The first three rows of Table 2 (the TCP states; the block residuals
/// are measured by [`measure_block_residuals`]).
pub fn table2_state_rows() -> Vec<Table2Row> {
    use ProbeSide::{Local as L, Remote as R};
    let s = |from, flags| Symbol { from, flags };
    let ls = s(L, TcpFlags::SYN);
    let la = s(L, TcpFlags::ACK);
    let rs = s(R, TcpFlags::SYN);
    let rsa = s(R, TcpFlags::SYN_ACK);
    let ra = s(R, TcpFlags::ACK);
    vec![
        Table2Row {
            label: "SYN_SENT",
            paper_timeout: 60,
            before: vec![rs],
            after: vec![ls, rsa],
        },
        Table2Row {
            label: "SYN_RCVD",
            paper_timeout: 105,
            before: vec![ls, rs, la],
            after: vec![],
        },
        Table2Row {
            label: "ESTABLISHED",
            paper_timeout: 480,
            before: vec![ls, rsa],
            after: vec![ra],
        },
    ]
}

/// Measures a Table 2 state row: play `before`, SLEEP T, play `after`,
/// trigger; binary-search the flip.
pub fn measure_table2_row(lab: &mut VantageLab, row: &Table2Row, port_base: u16) -> Option<u64> {
    let mut port = port_base;
    let mut outcome = |t: Duration| {
        port += 1;
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps: Vec<ScriptStep> =
            row.before.iter().map(|s| ScriptStep::new(s.from, s.flags)).collect();
        for (i, sym) in row.after.iter().enumerate() {
            let mut step = ScriptStep::new(sym.from, sym.flags);
            if i == 0 {
                step.wait_before = t;
            }
            steps.push(step);
        }
        let mut trig =
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(trigger());
        if row.after.is_empty() {
            trig.wait_before = t;
        }
        steps.push(trig);
        for _ in 0..10 {
            steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x77; 64]));
        }
        let result = run_script(&mut lab.net, local, remote, &steps);
        result.at_remote.iter().filter(|p| p.payload_len == 64).count() < 10
    };
    flip_search(1, 600, &mut outcome)
}

/// Measured residuals of the four blocking verdicts (Table 2's lower
/// half): trigger on an established flow, then probe after T.
pub fn measure_block_residuals(lab: &mut VantageLab, port_base: u16) -> Vec<(&'static str, Option<u64>)> {
    let mut results = Vec::new();
    let mut port = port_base;

    // SNI-I residual (75 s): after the trigger, remote data is rewritten
    // to RST/ACK until the verdict lapses.
    let mut sni1 = |t: Duration| {
        port += 1;
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps = crate::harness::handshake_prefix();
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("meduza.io").build()),
        );
        let mut probe = ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0x44; 80]);
        probe.wait_before = t;
        steps.push(probe);
        let result = run_script(&mut lab.net, local, remote, &steps);
        result.at_local.iter().any(|p| p.is_rst_ack)
    };
    results.push(("SNI-I", flip_search(1, 600, &mut sni1)));

    // SNI-II residual (420 s).
    let handshake: Vec<Symbol> = vec![
        Symbol { from: ProbeSide::Local, flags: TcpFlags::SYN },
        Symbol { from: ProbeSide::Remote, flags: TcpFlags::SYN_ACK },
        Symbol { from: ProbeSide::Local, flags: TcpFlags::ACK },
    ];
    let base = port + 10;
    let mut p2 = base;
    let mut sni2 = |t: Duration| {
        p2 += 1;
        still_blocked_after(lab, p2, &handshake, t)
    };
    results.push(("SNI-II", flip_search(1, 600, &mut sni2)));

    // SNI-IV residual (40 s): split-handshake prefix, backup verdict, then
    // probe whether local data still drops.
    let mut p4 = p2 + 200;
    let mut sni4 = |t: Duration| {
        p4 += 1;
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: p4 };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let steps = vec![
            ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
            ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new("twitter.com").build()),
            {
                let mut probe =
                    ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0x33; 32]);
                probe.wait_before = t;
                probe
            },
        ];
        let result = run_script(&mut lab.net, local, remote, &steps);
        !result.at_remote.iter().any(|p| p.payload_len == 32)
    };
    results.push(("SNI-IV", flip_search(1, 600, &mut sni4)));

    // QUIC residual (420 s).
    let mut pq = p4 + 200;
    let mut quic = |t: Duration| {
        pq += 1;
        let vantage = lab.vantage("ER-Telecom");
        let (v_host, v_addr) = (vantage.host, vantage.addr);
        let us_host = lab.us_main;
        let us_addr = lab.us_main_addr;
        let _ = lab.net.take_inbox(us_host);
        let initial = tspu_stack::craft::udp_packet(
            v_addr,
            pq,
            us_addr,
            443,
            &tspu_wire::quic::initial_payload(tspu_wire::quic::QuicVersion::V1, 1200),
        );
        lab.net.send_from(v_host, initial);
        lab.net.run_for(Duration::from_millis(100));
        lab.net.run_for(t);
        let probe = tspu_stack::craft::udp_packet(v_addr, pq, us_addr, 443, &[0x22; 40]);
        lab.net.send_from(v_host, probe);
        lab.net.run_for(Duration::from_millis(300));
        !lab.net.take_inbox(us_host).iter().any(|(_, bytes)| {
            tspu_wire::ipv4::Ipv4Packet::new_checked(&bytes[..])
                .map(|ip| ip.payload().len() == 8 + 40)
                .unwrap_or(false)
        })
    };
    results.push(("QUIC", flip_search(1, 600, &mut quic)));

    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;

    fn lab() -> VantageLab {
        // Reliable devices: these tests recover the ground-truth timeout
        // constants via binary search, where one failure-dice exemption
        // would flip an observable mid-search.
        let universe = Universe::generate(3);
        VantageLab::builder().universe(&universe).build()
    }

    fn close_to(measured: u64, expected: u64) -> bool {
        measured.abs_diff(expected) <= 5
    }

    #[test]
    fn table2_states_recovered() {
        let mut lab = lab();
        let rows = table2_state_rows();
        let syn_sent = measure_table2_row(&mut lab, &rows[0], 20_000).unwrap();
        assert!(close_to(syn_sent, 60), "SYN_SENT measured {syn_sent}");
        let syn_rcvd = measure_table2_row(&mut lab, &rows[1], 21_000).unwrap();
        assert!(close_to(syn_rcvd, 105), "SYN_RCVD measured {syn_rcvd}");
        let established = measure_table2_row(&mut lab, &rows[2], 22_000).unwrap();
        assert!(close_to(established, 480), "ESTABLISHED measured {established}");
    }

    #[test]
    fn block_residuals_recovered() {
        let mut lab = lab();
        let residuals = measure_block_residuals(&mut lab, 30_000);
        let get = |name: &str| {
            residuals
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} unmeasured"))
        };
        assert!(close_to(get("SNI-I"), 75), "SNI-I {}", get("SNI-I"));
        assert!(close_to(get("SNI-II"), 420), "SNI-II {}", get("SNI-II"));
        assert!(close_to(get("SNI-IV"), 40), "SNI-IV {}", get("SNI-IV"));
        assert!(close_to(get("QUIC"), 420), "QUIC {}", get("QUIC"));
    }

    #[test]
    fn table8_selected_rows() {
        let mut lab = lab();
        // `Lt` (empty prefix): DROP with the 180 s Loose residual.
        let row = measure_sequence(&mut lab, &[], 40_000);
        assert_eq!(row.action, Action::Drop);
        assert!(close_to(row.timeout_secs.unwrap(), 180), "{row:?}");

        // `Rs;Lt`: PASS; flips at the SYN-SENT expiry.
        let rs = vec![Symbol { from: ProbeSide::Remote, flags: TcpFlags::SYN }];
        let row = measure_sequence(&mut lab, &rs, 41_000);
        assert_eq!(row.action, Action::Pass);
        assert!(close_to(row.timeout_secs.unwrap(), 60), "{row:?}");

        // `Ls;Ra;Lt`: PASS (Invalid state), flips at 180 s.
        let seq = vec![
            Symbol { from: ProbeSide::Local, flags: TcpFlags::SYN },
            Symbol { from: ProbeSide::Remote, flags: TcpFlags::ACK },
        ];
        let row = measure_sequence(&mut lab, &seq, 42_000);
        assert_eq!(row.action, Action::Pass);
        assert!(close_to(row.timeout_secs.unwrap(), 180), "{row:?}");

        // `Lsa;Lt`: DROP, residual clipped by the SNI-II verdict (420 s).
        let seq = vec![Symbol { from: ProbeSide::Local, flags: TcpFlags::SYN_ACK }];
        let row = measure_sequence(&mut lab, &seq, 43_000);
        assert_eq!(row.action, Action::Drop);
        assert!(close_to(row.timeout_secs.unwrap(), 420), "{row:?}");
    }
}
