//! Parallel sweep engine: shards independent scan scenarios across OS
//! threads with chunked work-stealing, then reassembles results in
//! scenario order so the output is byte-identical at any thread count.
//!
//! The design exploits the measurement structure of the paper: every
//! scenario (vantage × target × technique) is a self-contained simulation.
//! Workers build their own `VantageLab` per scenario from a shared
//! immutable [`SweepSpec`]; the only shared state is the read-only policy
//! behind its `RwLock`, so no ordering between scenarios can influence a
//! verdict and determinism survives parallelism by construction.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use tspu_core::PolicyHandle;
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, VantageLab};

use crate::domains::{test_domain, DomainCampaign, DomainVerdict};

/// Largest chunk a worker claims at once. Small enough that stragglers
/// near the end of the sweep still spread across workers, large enough
/// that the shared cursor is touched rarely.
const MAX_CHUNK: usize = 256;

/// A pool of scan workers. Cheap to construct — threads are spawned per
/// [`ScanPool::run`] call (scoped), not kept alive between sweeps.
#[derive(Debug, Clone)]
pub struct ScanPool {
    threads: usize,
}

impl ScanPool {
    /// A pool with exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> ScanPool {
        ScanPool { threads: threads.max(1) }
    }

    /// The sequential fallback: everything runs on the calling thread.
    pub fn single_thread() -> ScanPool {
        ScanPool::new(1)
    }

    /// Reads `TSPU_THREADS`; falls back to the machine's parallelism.
    pub fn from_env() -> ScanPool {
        let threads = std::env::var("TSPU_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        ScanPool::new(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, sharding across the pool. Results come back
    /// in item order regardless of which worker ran which index.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_with(items, || (), |(), index, item| f(index, item))
    }

    /// Like [`ScanPool::run`] with per-worker scratch state: each worker
    /// calls `init` once and threads the state through its scenarios.
    /// The state must not affect results (it is reuse, not memory) — the
    /// determinism guarantee assumes `f` is a pure function of
    /// `(index, item)`.
    pub fn run_with<T, R, S, Init, F>(&self, items: &[T], init: Init, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let mut state = init();
            return items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
        }
        let workers = self.threads.min(items.len());
        let total = items.len();
        let cursor = AtomicUsize::new(0);
        let mut shards: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Guided self-scheduling: claim a quarter of
                            // an even share of what's left, so early
                            // chunks are big and the tail rebalances.
                            let seen = cursor.load(Ordering::Relaxed);
                            if seen >= total {
                                break;
                            }
                            let chunk = ((total - seen) / (workers * 4)).clamp(1, MAX_CHUNK);
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= total {
                                break;
                            }
                            let end = (start + chunk).min(total);
                            for (index, item) in
                                items.iter().enumerate().take(end).skip(start)
                            {
                                out.push((index, f(&mut state, index, item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                shards.push(handle.join().expect("sweep worker panicked"));
            }
        });
        let mut indexed: Vec<(usize, R)> = shards.into_iter().flatten().collect();
        indexed.sort_by_key(|&(index, _)| index);
        indexed.into_iter().map(|(_, result)| result).collect()
    }
}

/// Shared immutable description of a registry sweep: one scenario per
/// domain, all against the same central policy. Workers clone the policy
/// handle (an `Arc`) and build a fresh scan lab per scenario.
#[derive(Clone)]
pub struct SweepSpec {
    pub policy: PolicyHandle,
    pub domains: Vec<String>,
}

impl SweepSpec {
    pub fn new(policy: PolicyHandle, domains: Vec<String>) -> SweepSpec {
        SweepSpec { policy, domains }
    }

    /// A spec over the universe's central policy (the post-March-4 epoch
    /// the §6 campaign measures: no throttling, QUIC filter on).
    pub fn from_universe<I, D>(universe: &Universe, domains: I) -> SweepSpec
    where
        I: IntoIterator<Item = D>,
        D: Into<String>,
    {
        SweepSpec {
            policy: policy_from_universe(universe, false, true),
            domains: domains.into_iter().map(Into::into).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Sweeps every domain through [`test_domain`], one fresh scan lab per
    /// scenario. Returns verdicts parallel to `self.domains`, in domain
    /// order at every thread count.
    ///
    /// Scan labs use reliable devices, so the §3 "repeat >5 times" retry
    /// loop of the sequential campaign is unnecessary here: one attempt
    /// per scenario, on a port derived purely from the scenario index.
    pub fn run(&self, pool: &ScanPool) -> Vec<DomainVerdict> {
        pool.run(&self.domains, |index, domain| {
            let mut lab = VantageLab::build_scan(self.policy.clone());
            test_domain(&mut lab, domain, scenario_port(index))
        })
    }
}

/// Source port for scenario `index`, a pure function of the index so the
/// sweep's traffic is identical no matter which worker runs the scenario.
/// Stays in `2048..32048`: below `0x8000`, because [`test_domain`]'s
/// split-handshake follow-up probes `port ^ 0x8000`, and clear of the
/// well-known range.
pub fn scenario_port(index: usize) -> u16 {
    2048 + (index % 30_000) as u16
}

/// The §6 campaign, parallel: TSPU verdicts via the pool, ISP resolver
/// membership computed sequentially during aggregation (a pure lookup).
/// Byte-identical to itself at any thread count; equivalent to the
/// sequential [`crate::domains::run_campaign`] on reliable labs.
pub fn registry_campaign<'a, I>(universe: &Universe, domains: I, pool: &ScanPool) -> DomainCampaign
where
    I: IntoIterator<Item = &'a str>,
{
    let spec = SweepSpec::from_universe(universe, domains);
    let verdicts = spec.run(pool);

    let resolvers = tspu_ispdpi::vantage_resolvers(universe);
    let mut campaign = DomainCampaign {
        tspu: BTreeMap::new(),
        isp_blocked: resolvers.iter().map(|r| (r.isp().to_string(), HashSet::new())).collect(),
    };
    for (domain, verdict) in spec.domains.iter().zip(verdicts) {
        campaign.tspu.insert(domain.clone(), verdict);
        for resolver in &resolvers {
            if resolver.lists(domain) {
                campaign
                    .isp_blocked
                    .get_mut(resolver.isp())
                    .expect("resolver registered")
                    .insert(domain.clone());
            }
        }
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let pool = ScanPool::new(4);
        let doubled = pool.run(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_with_matches_single_thread() {
        let items: Vec<u64> = (0..317).collect();
        let work = |_state: &mut u64, index: usize, item: &u64| {
            *item * 31 + index as u64
        };
        let sequential = ScanPool::single_thread().run_with(&items, || 0u64, work);
        for threads in [2, 3, 8] {
            let parallel = ScanPool::new(threads).run_with(&items, || 0u64, work);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ScanPool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.run(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.run(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn from_env_honors_tspu_threads() {
        // No env mutation (tests share the process): just check clamping.
        assert_eq!(ScanPool::new(0).threads(), 1);
        assert!(ScanPool::from_env().threads() >= 1);
    }

    #[test]
    fn scenario_ports_stay_below_split_handshake_bit() {
        for index in [0usize, 1, 29_999, 30_000, 123_456] {
            let port = scenario_port(index);
            assert!((2048..0x8000).contains(&port), "index {index} -> port {port}");
            assert_ne!(port ^ 0x8000, 443);
        }
    }

    #[test]
    fn sweep_matches_sequential_verdicts() {
        let universe = Universe::generate(3);
        let domains = ["meduza.io", "play.google.com", "twitter.com", "wikipedia.org"];
        let spec = SweepSpec::from_universe(&universe, domains);
        let verdicts = spec.run(&ScanPool::new(2));
        assert_eq!(
            verdicts,
            vec![
                DomainVerdict::Sni1,
                DomainVerdict::Sni2,
                DomainVerdict::Sni4,
                DomainVerdict::Open,
            ]
        );
    }

    #[test]
    fn parallel_campaign_matches_table3_anchors() {
        let universe = Universe::generate(3);
        let pool = ScanPool::new(4);
        let campaign =
            registry_campaign(&universe, ["play.google.com", "nordvpn.com", "wikipedia.org"], &pool);
        let only = campaign.tspu_only();
        assert!(only.contains("play.google.com"));
        assert!(only.contains("nordvpn.com"));
        assert_eq!(campaign.tspu["wikipedia.org"], DomainVerdict::Open);
    }
}
