//! Parallel sweep engine: shards independent scan scenarios across OS
//! threads with chunked work-stealing, then reassembles results in
//! scenario order so the output is byte-identical at any thread count.
//!
//! The design exploits the measurement structure of the paper: every
//! scenario (vantage × target × technique) is a self-contained simulation.
//! The warm lab is built once per run into a shared immutable
//! `LabImage`; workers fork a private `VantageLab` per scenario
//! (sub-microsecond: the compiled policy, topology, and route arena are
//! `Arc`-shared, only the mutable cell — conntrack, clocks, RNG,
//! instruments — is rebuilt). A fork is byte-identical to a fresh build,
//! so no ordering between scenarios can influence a verdict and
//! determinism survives parallelism by construction.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tspu_core::PolicyHandle;
use tspu_obs::{Histogram, MetricValue, Snapshot};
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, TopologySpec, VantageLab};

use crate::domains::{test_domain, DomainCampaign, DomainVerdict};

/// Largest chunk a worker claims at once. Small enough that stragglers
/// near the end of the sweep still spread across workers, large enough
/// that the shared cursor is touched rarely.
const MAX_CHUNK: usize = 256;

/// How a pool or sweep run executes — the one config struct behind
/// [`ScanPool::run`] and [`SweepSpec::run`], replacing the old
/// `run`/`run_with`/`run_reported`/`run_reported_with` and
/// `run`/`run_observed`/`run_observed_sampled` variant families.
///
/// Every knob is orthogonal and none affects result values: observation
/// and reporting ride on the side of the same deterministic execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOpts {
    /// Capture each scenario's metrics and spans and merge them into one
    /// campaign [`Snapshot`] (sweep-level runs only; pool-level `run`
    /// leaves interpretation to the closure).
    pub observe: bool,
    /// Span-sampling period when observing: scenario indices divisible by
    /// `trace_every` record spans, the rest record metrics only; `0`
    /// disables spans entirely. A pure function of the scenario index, so
    /// it cannot break cross-thread-count determinism.
    pub trace_every: usize,
    /// Collect the wall-clock [`PoolReport`] (per-worker utilization,
    /// chunk-claim timing, scenario-latency histogram). Reports are
    /// timing-dependent and never part of the deterministic results.
    pub report: bool,
}

impl RunOpts {
    /// Results only: no snapshot, no report. (`RunOpts::default()`.)
    pub fn quick() -> RunOpts {
        RunOpts::default()
    }

    /// Full observation: every scenario traced, campaign snapshot merged,
    /// wall-clock report collected.
    pub fn observed() -> RunOpts {
        RunOpts { observe: true, trace_every: 1, report: true }
    }

    /// Observation with span sampling: metrics from every scenario, spans
    /// from every `trace_every`-th. A 100k-scenario campaign traced at
    /// `trace_every = 1000` keeps ~0.1% of its spans — enough to see the
    /// shape without a gigabyte trace.
    pub fn sampled(trace_every: usize) -> RunOpts {
        RunOpts { observe: true, trace_every, report: true }
    }

    /// Results plus the wall-clock report, no observation.
    pub fn reported() -> RunOpts {
        RunOpts { report: true, ..RunOpts::default() }
    }
}

/// What [`ScanPool::run`] returns: reassembled results, plus the
/// wall-clock report when [`RunOpts::report`] asked for one.
#[derive(Debug, Clone)]
pub struct PoolRun<R> {
    /// One result per item, in item order at every thread count.
    pub results: Vec<R>,
    /// `Some` iff the run's [`RunOpts::report`] was set.
    pub report: Option<PoolReport>,
}

/// A pool of scan workers. Cheap to construct — threads are spawned per
/// [`ScanPool::run`] call (scoped), not kept alive between sweeps.
#[derive(Debug, Clone)]
pub struct ScanPool {
    threads: usize,
}

impl ScanPool {
    /// A pool with exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> ScanPool {
        ScanPool { threads: threads.max(1) }
    }

    /// The sequential fallback: everything runs on the calling thread.
    pub fn single_thread() -> ScanPool {
        ScanPool::new(1)
    }

    /// Reads `TSPU_THREADS`; falls back to the machine's parallelism.
    pub fn from_env() -> ScanPool {
        let threads = std::env::var("TSPU_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        ScanPool::new(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The single pool entry point: maps `f` over `items`, sharding
    /// across the pool with guided self-scheduling over a shared cursor.
    /// Results come back in item order regardless of which worker ran
    /// which index.
    ///
    /// `init` builds per-worker scratch state, called once per worker and
    /// threaded through its scenarios (pass `|| ()` when stateless). The
    /// state must not affect results (it is reuse, not memory) — the
    /// determinism guarantee assumes `f` is a pure function of
    /// `(index, item)`. Per-worker timing flows only into the report
    /// (returned iff [`RunOpts::report`]), never into result values.
    pub fn run<T, R, S, Init, F>(
        &self,
        items: &[T],
        opts: &RunOpts,
        init: Init,
        f: F,
    ) -> PoolRun<R>
    where
        T: Sync,
        R: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let (results, report) = self.run_inner(items, init, f);
        PoolRun { results, report: opts.report.then_some(report) }
    }

    /// The scheduler: guided self-scheduling over a shared cursor, per-
    /// worker timing on the side.
    fn run_inner<T, R, S, Init, F>(&self, items: &[T], init: Init, f: F) -> (Vec<R>, PoolReport)
    where
        T: Sync,
        R: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let sweep_start = Instant::now();
        if self.threads == 1 || items.len() <= 1 {
            let mut state = init();
            let mut worker = WorkerReport::default();
            let mut latencies = Histogram::new();
            let results = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let started = Instant::now();
                    let result = f(&mut state, i, item);
                    let elapsed = started.elapsed().as_nanos() as u64;
                    worker.busy_ns += elapsed;
                    worker.items += 1;
                    latencies.record(elapsed);
                    result
                })
                .collect();
            worker.chunks = usize::from(!items.is_empty());
            worker.alive_ns = sweep_start.elapsed().as_nanos() as u64;
            let report = PoolReport {
                wall_ns: worker.alive_ns,
                workers: vec![worker],
                scenario_wall_ns: latencies,
            };
            return (results, report);
        }
        let workers = self.threads.min(items.len());
        let total = items.len();
        let cursor = AtomicUsize::new(0);
        type Shard<R> = (Vec<(usize, R)>, WorkerReport, Histogram);
        let mut shards: Vec<Shard<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let born = Instant::now();
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let mut worker = WorkerReport::default();
                        let mut latencies = Histogram::new();
                        loop {
                            // Guided self-scheduling: claim a quarter of
                            // an even share of what's left, so early
                            // chunks are big and the tail rebalances.
                            let claim_started = Instant::now();
                            let seen = cursor.load(Ordering::Relaxed);
                            if seen >= total {
                                break;
                            }
                            let chunk = ((total - seen) / (workers * 4)).clamp(1, MAX_CHUNK);
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            worker.claim_ns += claim_started.elapsed().as_nanos() as u64;
                            if start >= total {
                                break;
                            }
                            worker.chunks += 1;
                            let end = (start + chunk).min(total);
                            for (index, item) in
                                items.iter().enumerate().take(end).skip(start)
                            {
                                let started = Instant::now();
                                out.push((index, f(&mut state, index, item)));
                                let elapsed = started.elapsed().as_nanos() as u64;
                                worker.busy_ns += elapsed;
                                worker.items += 1;
                                latencies.record(elapsed);
                            }
                        }
                        worker.alive_ns = born.elapsed().as_nanos() as u64;
                        (out, worker, latencies)
                    })
                })
                .collect();
            for handle in handles {
                shards.push(handle.join().expect("sweep worker panicked"));
            }
        });
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(total);
        let mut worker_reports = Vec::with_capacity(workers);
        let mut latencies = Histogram::new();
        for (shard, worker, shard_latencies) in shards {
            indexed.extend(shard);
            worker_reports.push(worker);
            latencies.merge(&shard_latencies);
        }
        indexed.sort_by_key(|&(index, _)| index);
        let report = PoolReport {
            wall_ns: sweep_start.elapsed().as_nanos() as u64,
            workers: worker_reports,
            scenario_wall_ns: latencies,
        };
        (indexed.into_iter().map(|(_, result)| result).collect(), report)
    }
}

/// What one worker did during a pool run. All wall-clock.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Scenarios this worker executed.
    pub items: usize,
    /// Chunks it claimed from the shared cursor.
    pub chunks: usize,
    /// Nanoseconds inside scenario closures.
    pub busy_ns: u64,
    /// Nanoseconds spent claiming chunks (cursor contention).
    pub claim_ns: u64,
    /// Nanoseconds from worker start to worker exit.
    pub alive_ns: u64,
}

impl WorkerReport {
    /// Fraction of the worker's lifetime spent doing scenario work.
    pub fn utilization(&self) -> f64 {
        if self.alive_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.alive_ns as f64
    }
}

/// Wall-clock execution report for one pool run.
///
/// Wall-clock numbers vary run to run and thread count to thread count,
/// so they live here and are deliberately NOT part of [`Snapshot`] —
/// snapshots stay byte-identical across `TSPU_THREADS`; reports do not.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Nanoseconds from sweep start to reassembled results.
    pub wall_ns: u64,
    /// One entry per worker, in spawn order.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock latency of every scenario, pooled across workers.
    pub scenario_wall_ns: Histogram,
}

impl PoolReport {
    /// Total scenarios executed across all workers.
    pub fn total_items(&self) -> usize {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// A human-readable multi-line summary (for example binaries).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool: {} scenarios on {} workers in {:.1} ms",
            self.total_items(),
            self.workers.len(),
            self.wall_ns as f64 / 1e6,
        );
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {i}: {} items in {} chunks, {:.1} ms busy ({:.0}% util), {:.2} ms claiming",
                w.items,
                w.chunks,
                w.busy_ns as f64 / 1e6,
                w.utilization() * 100.0,
                w.claim_ns as f64 / 1e6,
            );
        }
        if let (Some(min), Some(max)) = (self.scenario_wall_ns.min(), self.scenario_wall_ns.max()) {
            let _ = writeln!(
                out,
                "  scenario latency: min {:.1} us, p50 {:.1} us, p99 {:.1} us, max {:.1} us",
                min as f64 / 1e3,
                self.scenario_wall_ns.quantile_lower(0.50) as f64 / 1e3,
                self.scenario_wall_ns.quantile_lower(0.99) as f64 / 1e3,
                max as f64 / 1e3,
            );
        }
        out
    }
}

/// Shared immutable description of a registry sweep: one scenario per
/// domain, all against the same central policy. The run builds the warm
/// scan-lab image once; workers fork a private lab per scenario.
#[derive(Clone)]
pub struct SweepSpec {
    pub policy: PolicyHandle,
    pub domains: Vec<String>,
    /// Which lab the sweep probes: the Fig. 1 vantage lab (default), or a
    /// generated AS graph — scenarios then probe from generated clients,
    /// rotating by scenario port.
    pub topology: TopologySpec,
}

impl SweepSpec {
    pub fn new(policy: PolicyHandle, domains: Vec<String>) -> SweepSpec {
        SweepSpec { policy, domains, topology: TopologySpec::Fig1 }
    }

    /// A spec over the universe's central policy (the post-March-4 epoch
    /// the §6 campaign measures: no throttling, QUIC filter on).
    pub fn from_universe<I, D>(universe: &Universe, domains: I) -> SweepSpec
    where
        I: IntoIterator<Item = D>,
        D: Into<String>,
    {
        SweepSpec {
            policy: policy_from_universe(universe, false, true),
            domains: domains.into_iter().map(Into::into).collect(),
            topology: TopologySpec::Fig1,
        }
    }

    /// Runs the sweep on a different lab topology (e.g. a generated
    /// 5000-AS graph instead of the Fig. 1 vantage lab).
    pub fn with_topology(mut self, topology: TopologySpec) -> SweepSpec {
        self.topology = topology;
        self
    }

    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The single sweep entry point: sweeps every domain through
    /// [`test_domain`], one private lab per scenario forked from a warm
    /// image built once up front. Verdicts come back parallel to
    /// `self.domains`, in domain order at every thread count.
    ///
    /// Scan labs use reliable devices, so the §3 "repeat >5 times" retry
    /// loop of the sequential campaign is unnecessary here: one attempt
    /// per scenario, on a port derived purely from the scenario index.
    ///
    /// With [`RunOpts::observe`], tracing is enabled on every sampled
    /// scenario lab, each scenario's metrics and spans are captured,
    /// stamped with the scenario index, and merged into one campaign
    /// [`Snapshot`] alongside a `sweep.scenario_us` histogram of
    /// *virtual* scenario durations. The snapshot is a pure function of
    /// the spec — byte-identical at every thread count — while the
    /// wall-clock side lands in the separate [`PoolReport`]
    /// (with [`RunOpts::report`]).
    pub fn run(&self, pool: &ScanPool, opts: &RunOpts) -> SweepRun {
        let image = VantageLab::builder()
            .policy(self.policy.clone())
            .topology(self.topology.clone())
            .image();
        if !opts.observe {
            let run = pool.run(&self.domains, opts, || (), |(), index, domain| {
                let mut lab = image.fork(index);
                test_domain(&mut lab, domain, scenario_port(index))
            });
            return SweepRun { verdicts: run.results, snapshot: None, report: run.report };
        }
        let trace_every = opts.trace_every;
        let run = pool.run(&self.domains, opts, || (), |(), index, domain| {
            let mut lab = image.fork(index);
            lab.set_tracing(trace_every != 0 && index % trace_every == 0);
            let verdict = test_domain(&mut lab, domain, scenario_port(index));
            let virtual_us = lab.net.now().as_micros();
            let snapshot = lab.take_obs().with_scenario(index as u32);
            (verdict, virtual_us, snapshot)
        });
        let mut verdicts = Vec::with_capacity(run.results.len());
        let mut snapshot = Snapshot::new();
        let mut scenario_us = Histogram::new();
        // Reassembled scenario order: merging here (not in the workers)
        // keeps the merge order index-driven, though merge itself is
        // order-insensitive anyway.
        for (verdict, virtual_us, scenario_snapshot) in run.results {
            verdicts.push(verdict);
            scenario_us.record(virtual_us);
            snapshot.merge(&scenario_snapshot);
        }
        if tspu_obs::ENABLED {
            snapshot.insert("sweep.scenarios", MetricValue::Counter(verdicts.len() as u64));
            snapshot.insert("sweep.scenario_us", MetricValue::Hist(scenario_us));
        }
        SweepRun { verdicts, snapshot: Some(snapshot), report: run.report }
    }
}

/// What [`SweepSpec::run`] returns: the verdicts, the deterministic
/// campaign [`Snapshot`] (`Some` iff [`RunOpts::observe`]), and the
/// nondeterministic wall-clock [`PoolReport`] (`Some` iff
/// [`RunOpts::report`]).
#[derive(Debug, Clone)]
pub struct SweepRun {
    pub verdicts: Vec<DomainVerdict>,
    pub snapshot: Option<Snapshot>,
    pub report: Option<PoolReport>,
}

/// Source port for scenario `index`, a pure function of the index so the
/// sweep's traffic is identical no matter which worker runs the scenario.
/// Stays in `2048..32048`: below `0x8000`, because [`test_domain`]'s
/// split-handshake follow-up probes `port ^ 0x8000`, and clear of the
/// well-known range.
pub fn scenario_port(index: usize) -> u16 {
    2048 + (index % 30_000) as u16
}

/// The §6 campaign, parallel: TSPU verdicts via the pool, ISP resolver
/// membership computed sequentially during aggregation (a pure lookup).
/// Byte-identical to itself at any thread count; equivalent to the
/// sequential [`crate::domains::run_campaign`] on reliable labs.
pub fn registry_campaign<'a, I>(universe: &Universe, domains: I, pool: &ScanPool) -> DomainCampaign
where
    I: IntoIterator<Item = &'a str>,
{
    let spec = SweepSpec::from_universe(universe, domains);
    let verdicts = spec.run(pool, &RunOpts::quick()).verdicts;

    let resolvers = tspu_ispdpi::vantage_resolvers(universe);
    let mut campaign = DomainCampaign {
        tspu: BTreeMap::new(),
        isp_blocked: resolvers.iter().map(|r| (r.isp().to_string(), HashSet::new())).collect(),
    };
    for (domain, verdict) in spec.domains.iter().zip(verdicts) {
        campaign.tspu.insert(domain.clone(), verdict);
        for resolver in &resolvers {
            if resolver.lists(domain) {
                campaign
                    .isp_blocked
                    .get_mut(resolver.isp())
                    .expect("resolver registered")
                    .insert(domain.clone());
            }
        }
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let pool = ScanPool::new(4);
        let run = pool.run(&items, &RunOpts::quick(), || (), |(), _, &x| x * 2);
        assert_eq!(run.results, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert!(run.report.is_none(), "quick run must not report");
    }

    #[test]
    fn stateful_run_matches_single_thread() {
        let items: Vec<u64> = (0..317).collect();
        let work = |_state: &mut u64, index: usize, item: &u64| {
            *item * 31 + index as u64
        };
        let sequential =
            ScanPool::single_thread().run(&items, &RunOpts::quick(), || 0u64, work).results;
        for threads in [2, 3, 8] {
            let parallel = ScanPool::new(threads).run(&items, &RunOpts::quick(), || 0u64, work);
            assert_eq!(parallel.results, sequential, "{threads} threads");
        }
    }

    #[test]
    fn reported_run_counts_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let run = ScanPool::new(4).run(&items, &RunOpts::reported(), || (), |(), _, &x| x);
        assert_eq!(run.results, items);
        assert_eq!(run.report.expect("report requested").total_items(), items.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ScanPool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.run(&empty, &RunOpts::quick(), || (), |(), _, &x| x).results.is_empty());
        assert_eq!(pool.run(&[7u32], &RunOpts::quick(), || (), |(), _, &x| x + 1).results, vec![8]);
    }

    #[test]
    fn from_env_honors_tspu_threads() {
        // No env mutation (tests share the process): just check clamping.
        assert_eq!(ScanPool::new(0).threads(), 1);
        assert!(ScanPool::from_env().threads() >= 1);
    }

    #[test]
    fn scenario_ports_stay_below_split_handshake_bit() {
        for index in [0usize, 1, 29_999, 30_000, 123_456] {
            let port = scenario_port(index);
            assert!((2048..0x8000).contains(&port), "index {index} -> port {port}");
            assert_ne!(port ^ 0x8000, 443);
        }
    }

    #[test]
    fn sweep_matches_sequential_verdicts() {
        let universe = Universe::generate(3);
        let domains = ["meduza.io", "play.google.com", "twitter.com", "wikipedia.org"];
        let spec = SweepSpec::from_universe(&universe, domains);
        let verdicts = spec.run(&ScanPool::new(2), &RunOpts::quick()).verdicts;
        assert_eq!(
            verdicts,
            vec![
                DomainVerdict::Sni1,
                DomainVerdict::Sni2,
                DomainVerdict::Sni4,
                DomainVerdict::Open,
            ]
        );
    }

    #[test]
    fn parallel_campaign_matches_table3_anchors() {
        let universe = Universe::generate(3);
        let pool = ScanPool::new(4);
        let campaign =
            registry_campaign(&universe, ["play.google.com", "nordvpn.com", "wikipedia.org"], &pool);
        let only = campaign.tspu_only();
        assert!(only.contains("play.google.com"));
        assert!(only.contains("nordvpn.com"));
        assert_eq!(campaign.tspu["wikipedia.org"], DomainVerdict::Open);
    }
}
