//! The registry-churn campaign: per-delta blocking-convergence latency,
//! measured in virtual time and sharded across the [`ScanPool`].
//!
//! Each cell replays one registry day of a [`ChurnSchedule`]: the lab
//! starts from the policy as of the previous day (every prior batch
//! applied through the incremental [`Policy::apply_delta`] path), a
//! [`SteadyProbe`] keeps identical TLS flows running toward a name the
//! day's batch is about to blocklist, and a [`PolicyUpdater`] fires the
//! batch's delta at its scheduled virtual instant. The gap between the
//! delta's application and the first probe to draw a RST is the TSPU's
//! *blocking-convergence latency* — one centrally distributed policy, so
//! it converges within about one round trip (§5). The decentralized
//! per-ISP baseline never needs its own packet simulation: each cell also
//! samples the [`UpdateLag`] distribution, whose days-long registry-sync
//! lags dwarf the TSPU's round-trip convergence by construction.
//!
//! Every cell is a pure function of `(schedule, batch index, campaign
//! config)` — a private lab forked from a warm image built once per
//! campaign, fresh policy handle swapped in at fork time, virtual clock —
//! so the campaign is byte-identical at any worker-thread count.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::{Policy, PolicyDelta, PolicyHandle, PolicyUpdater};
use tspu_ispdpi::UpdateLag;
use tspu_obs::{Histogram, MetricValue, Snapshot, TimeSeries};
use tspu_registry::{ChurnBatch, ChurnConfig, ChurnSchedule, Universe};
use tspu_stack::{ServerApp, SteadyProbe, SteadyProbeConfig};
use tspu_topology::VantageLab;
use tspu_wire::tls::ClientHelloBuilder;

use crate::sweep::{RunOpts, ScanPool};

/// Where the central updater lives: a dedicated controller host. It never
/// exchanges packets, so it needs no routes — only a timer.
const CONTROLLER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 200);

/// Source-port range of the steady prober (clear of the scenario ports
/// the domain campaigns use).
const PROBE_PORT_BASE: u16 = 40_000;

/// The consumer's one-liner the registry crate leaves to us: a churn
/// batch as an incremental policy delta. Registry additions land in
/// SNI-I (RST rewrite) — the paper's dominant mechanism — and the
/// timeline's toggle flips ride along.
pub fn churn_delta(batch: &ChurnBatch) -> PolicyDelta {
    PolicyDelta {
        add_rst: batch.add.clone(),
        remove_rst: batch.remove.clone(),
        quic_filter: batch.quic_filter,
        throttle_active: batch.throttle_active,
        ..PolicyDelta::default()
    }
}

/// Campaign configuration: the churn window plus the probe cadence and
/// the decentralized baseline's lag model.
#[derive(Debug, Clone)]
pub struct ChurnCampaign {
    /// How the schedule is derived from the universe.
    pub churn: ChurnConfig,
    /// Vantage the steady probes run from.
    pub vantage: &'static str,
    /// Virtual time between probe launches.
    pub probe_period: Duration,
    /// Probes launched before the delta fires (the open baseline — these
    /// must complete, proving the name was reachable until the delta).
    pub warmup_probes: u32,
    /// Hard per-cell probe cap, reset or not.
    pub max_probes: u32,
    /// Registry-sync lag distribution of the per-ISP DPI baseline.
    pub isp_lag: UpdateLag,
    /// ISPs modeled against that distribution.
    pub isps: Vec<&'static str>,
}

impl ChurnCampaign {
    /// The February–March 2022 escalation replay: the
    /// [`ChurnConfig::escalation_2022`] window, probes every 5 ms of
    /// virtual time from the ER-Telecom vantage, and the three paper ISPs
    /// syncing their registries 1–21 (virtual) days late.
    pub fn escalation_2022() -> ChurnCampaign {
        let churn = ChurnConfig::escalation_2022();
        let isp_lag = UpdateLag::registry_sync_2022(churn.day_duration);
        ChurnCampaign {
            churn,
            vantage: "ER-Telecom",
            probe_period: Duration::from_millis(5),
            warmup_probes: 3,
            max_probes: 40,
            isp_lag,
            isps: vec!["Rostelecom", "ER-Telecom", "OBIT"],
        }
    }

    /// Derives the schedule from `universe` and runs every cell on the
    /// pool.
    pub fn run(&self, universe: &Universe, pool: &ScanPool) -> ChurnReport {
        let schedule = ChurnSchedule::from_universe(universe, &self.churn);
        self.run_schedule(&schedule, pool)
    }

    /// Runs one cell per batch that adds at least one domain (toggle-only
    /// and pure-delisting batches carry no blocking-convergence signal).
    /// Cells come back in schedule order — byte-identical at every thread
    /// count, because each cell is a pure function of its batch index.
    pub fn run_schedule(&self, schedule: &ChurnSchedule, pool: &ScanPool) -> ChurnReport {
        let cells: Vec<usize> = schedule
            .batches()
            .iter()
            .enumerate()
            .filter(|(_, batch)| !batch.add.is_empty())
            .map(|(index, _)| index)
            .collect();
        // Warm image built once against a placeholder handle; each cell
        // forks it and swaps in its own day's policy handle. Forked state
        // (conntrack, clocks, RNG, instruments) is pristine, so this is
        // byte-identical to the fresh per-cell build it replaces.
        let image =
            VantageLab::builder().policy(PolicyHandle::new(Policy::permissive())).image();
        let run = pool.run(&cells, &RunOpts::quick(), || (), |(), index, &pos| {
            self.run_cell(&image, index, schedule, pos)
        });
        let mut convergence = Histogram::new();
        let mut snapshot = Snapshot::new();
        let mut out = Vec::with_capacity(run.results.len());
        for (cell, policy_obs) in run.results {
            convergence.record(cell.convergence_us);
            snapshot.merge(&policy_obs);
            out.push(cell);
        }
        if tspu_obs::ENABLED {
            snapshot.insert("churn.deltas", MetricValue::Counter(out.len() as u64));
            snapshot.insert("churn.convergence_us", MetricValue::Hist(convergence));
        }
        // The campaign resolved over virtual registry time: one window per
        // registry day, fed from the cells themselves (not the registry
        // instruments), so the convergence curve exists in every build and
        // is byte-identical at every thread count — the cells arrive in
        // schedule order regardless of which worker ran them.
        let day_us = (self.churn.day_duration.as_micros() as u64).max(1);
        let mut series = TimeSeries::with_window_us(day_us);
        for cell in &out {
            let at = cell.day as u64 * day_us;
            let mut day = Snapshot::new();
            day.insert("churn.day.deltas", MetricValue::Counter(1));
            day.insert("churn.day.ops", MetricValue::Counter(cell.ops as u64));
            day.insert(
                "churn.day.convergence_us",
                MetricValue::Gauge(cell.convergence_us as i64),
            );
            day.insert("churn.day.stale_pinned", MetricValue::Gauge(cell.stale_pinned as i64));
            day.insert("churn.day.epoch", MetricValue::GaugeLast(cell.epoch as i64));
            if let Some(&lag) = cell.isp_lag_us.iter().map(|(_, lag)| lag).max() {
                day.insert("churn.day.isp_lag_us", MetricValue::Gauge(lag as i64));
            }
            series.observe(at, &day);
        }
        ChurnReport {
            cells: out,
            batches: schedule.len(),
            total_adds: schedule.total_adds(),
            total_removes: schedule.total_removes(),
            snapshot,
            series,
        }
    }

    /// One cell: replay day `pos` of the schedule and time its delta's
    /// convergence.
    fn run_cell(
        &self,
        image: &tspu_topology::LabImage,
        index: usize,
        schedule: &ChurnSchedule,
        pos: usize,
    ) -> (DeltaConvergence, Snapshot) {
        let batches = schedule.batches();
        let batch = &batches[pos];

        // The country as of the previous registry day: every prior batch
        // applied through the incremental delta path.
        let mut policy = Policy::permissive();
        for prior in &batches[..pos] {
            policy.apply_delta(&churn_delta(prior));
        }
        let handle = PolicyHandle::new(policy);
        let mut lab = image.fork(index);
        lab.set_policy(handle.clone());
        lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));

        // Steady traffic toward the day's first (sorted) addition.
        let target = batch.add.first().expect("cells are add-bearing batches").clone();
        let vantage = lab.vantage(self.vantage);
        let (probe_host, probe_addr) = (vantage.host, vantage.addr);
        let (probe, probe_log) = SteadyProbe::new(SteadyProbeConfig {
            src: probe_addr,
            dst: lab.us_main_addr,
            dst_port: 443,
            port_base: PROBE_PORT_BASE,
            period: self.probe_period,
            request: ClientHelloBuilder::new(&target).build(),
            max_probes: self.max_probes,
        });
        lab.net.set_app(probe_host, Box::new(probe));
        lab.net.arm_timer(probe_host, Duration::ZERO);

        // The central updater fires the day's delta after the warmup.
        let delta_at = self.probe_period * self.warmup_probes;
        let updater = PolicyUpdater::new(handle.clone(), vec![(delta_at, churn_delta(batch))]);
        let update_log = updater.log();
        let first_offset = updater.first_offset().expect("one scheduled delta");
        let controller = lab.net.add_host(CONTROLLER);
        lab.net.set_app(controller, Box::new(updater));
        lab.net.arm_timer(controller, first_offset);

        lab.net.run_until_idle();

        let applied = update_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .first()
            .cloned()
            .expect("scheduled delta fired");
        let (_, enforced_at) = probe_log.first_reset().unwrap_or_else(|| {
            panic!("day {} delta never enforced (target {target})", batch.day)
        });
        let applied_at_us = applied.at.as_micros();
        let enforced_at_us = enforced_at.as_micros();
        let handshake_rtt_us =
            probe_log.handshake_rtt().map_or(0, |rtt| rtt.as_micros() as u64);

        // Simulate the *next* central push: one more epoch bump, after
        // which the reset flow's verdict — pinned to this delta's epoch
        // and still inside its Table-2 window — is auditable as stale.
        handle.apply_delta(&PolicyDelta::new());
        let now = lab.net.now();
        let mut stale_pinned = 0;
        for vantage in &lab.vantages {
            stale_pinned += lab.net.middlebox(vantage.sym_device).stale_verdict_audit(now);
            for &upstream in &vantage.upstream_devices {
                stale_pinned += lab.net.middlebox(upstream).stale_verdict_audit(now);
            }
        }

        let isp_lag_us = self
            .isps
            .iter()
            .map(|&isp| (isp, self.isp_lag.lag(isp, pos).as_micros() as u64))
            .collect();

        let cell = DeltaConvergence {
            day: batch.day,
            target,
            ops: applied.ops,
            epoch: applied.epoch,
            applied_at_us,
            enforced_at_us,
            // Saturating: a target shadowed by an earlier rule (e.g. a
            // parent domain already listed) can reset pre-delta; its
            // convergence is zero, not underflow.
            convergence_us: enforced_at_us.saturating_sub(applied_at_us),
            handshake_rtt_us,
            open_before: probe_log.open_before_reset(),
            stale_pinned,
            isp_lag_us,
        };
        (cell, handle.obs_snapshot())
    }
}

/// One measured registry-day cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaConvergence {
    /// Registry day (since 2022-01-01) the cell replays.
    pub day: u32,
    /// The freshly listed domain the steady probes carried in their SNI.
    pub target: String,
    /// List/toggle operations the delta carried.
    pub ops: usize,
    /// Policy epoch after the delta applied.
    pub epoch: u64,
    /// Virtual instant the updater applied the delta.
    pub applied_at_us: u64,
    /// Virtual instant the first probe drew a RST.
    pub enforced_at_us: u64,
    /// `enforced - applied`: the TSPU's blocking-convergence latency.
    pub convergence_us: u64,
    /// One handshake round trip at this vantage, for the ~1-RTT claim.
    pub handshake_rtt_us: u64,
    /// Probes that completed before the delta (the reachability baseline).
    pub open_before: usize,
    /// Live flows still enforcing the delta's verdict after the *next*
    /// epoch bump — the residual blocking the epoch audit exists to count.
    pub stale_pinned: usize,
    /// Modeled per-ISP registry-sync lag for this delta (decentralized
    /// baseline; virtual µs).
    pub isp_lag_us: Vec<(&'static str, u64)>,
}

/// The finished campaign.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// One cell per add-bearing batch, in schedule order.
    pub cells: Vec<DeltaConvergence>,
    /// Batches in the schedule (including toggle-only / delist-only ones).
    pub batches: usize,
    pub total_adds: usize,
    pub total_removes: usize,
    /// Deterministic campaign metrics: `churn.deltas`,
    /// `churn.convergence_us`, and the merged per-cell policy instruments
    /// (`policy.delta_applies`, `policy.epoch`).
    pub snapshot: Snapshot,
    /// The campaign over virtual registry time: one window per registry
    /// day (`churn.day.*` tracks — delta count, ops, convergence, stale
    /// pins, epoch, modeled ISP lag), so delta-to-enforcement convergence
    /// is visible as a curve rather than one pooled histogram.
    pub series: TimeSeries,
}

impl ChurnReport {
    /// The convergence curve: `(registry day, convergence µs)` per
    /// add-bearing day, in day order.
    pub fn convergence_curve(&self) -> Vec<(u64, u64)> {
        self.series
            .gauge_series("churn.day.convergence_us")
            .into_iter()
            .map(|(day, us)| (day, us as u64))
            .collect()
    }

    /// Median TSPU convergence latency across cells (virtual µs).
    pub fn median_convergence_us(&self) -> u64 {
        let mut samples: Vec<u64> = self.cells.iter().map(|c| c.convergence_us).collect();
        samples.sort_unstable();
        samples.get(samples.len() / 2).copied().unwrap_or(0)
    }

    /// Worst-case TSPU convergence latency (virtual µs).
    pub fn max_convergence_us(&self) -> u64 {
        self.cells.iter().map(|c| c.convergence_us).max().unwrap_or(0)
    }

    /// Median modeled ISP registry-sync lag, pooled over every (ISP,
    /// delta) sample (virtual µs).
    pub fn median_isp_lag_us(&self) -> u64 {
        let mut samples: Vec<u64> =
            self.cells.iter().flat_map(|c| c.isp_lag_us.iter().map(|&(_, lag)| lag)).collect();
        samples.sort_unstable();
        samples.get(samples.len() / 2).copied().unwrap_or(0)
    }

    /// The paper's update-lag contrast in one number: median ISP sync lag
    /// over median TSPU convergence.
    pub fn update_lag_ratio(&self) -> f64 {
        let tspu = self.median_convergence_us().max(1);
        self.median_isp_lag_us() as f64 / tspu as f64
    }

    /// Human-readable campaign summary.
    pub fn summary(&self) -> String {
        format!(
            "{} deltas replayed ({} adds, {} delists across {} batches); \
             TSPU convergence median {} µs / max {} µs (virtual); \
             ISP registry-sync lag median {} µs — {:.0}× slower",
            self.cells.len(),
            self.total_adds,
            self.total_removes,
            self.batches,
            self.median_convergence_us(),
            self.max_convergence_us(),
            self.median_isp_lag_us(),
            self.update_lag_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_campaign() -> ChurnCampaign {
        let mut campaign = ChurnCampaign::escalation_2022();
        // A week of the escalation is plenty for a unit test.
        campaign.churn.end_day = campaign.churn.start_day + 7;
        campaign
    }

    #[test]
    fn convergence_is_about_one_round_trip() {
        let universe = Universe::generate(5);
        let campaign = short_campaign();
        let report = campaign.run(&universe, &ScanPool::single_thread());
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            assert!(cell.open_before >= 1, "day {}: no probe completed pre-delta", cell.day);
            assert!(cell.convergence_us > 0, "day {}: instant convergence", cell.day);
            // Enforcement lands within one probe period plus a couple of
            // round trips of the delta — the centralized claim.
            let bound = campaign.probe_period.as_micros() as u64 + 4 * cell.handshake_rtt_us;
            assert!(
                cell.convergence_us <= bound,
                "day {}: converged in {} µs (> {} µs)",
                cell.day,
                cell.convergence_us,
                bound
            );
            assert!(cell.epoch > 0);
            assert_eq!(cell.isp_lag_us.len(), campaign.isps.len());
            for &(isp, lag) in &cell.isp_lag_us {
                assert!(
                    lag > 10 * cell.convergence_us,
                    "{isp} lag {lag} µs does not dwarf TSPU convergence"
                );
            }
        }
        assert!(report.update_lag_ratio() > 10.0);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn epoch_audit_counts_the_residually_blocked_flow() {
        let universe = Universe::generate(5);
        let campaign = short_campaign();
        let report = campaign.run(&universe, &ScanPool::single_thread());
        for cell in &report.cells {
            assert!(
                cell.stale_pinned >= 1,
                "day {}: the reset flow should stay pinned to epoch {}",
                cell.day,
                cell.epoch
            );
        }
    }

    #[test]
    fn day_series_tracks_each_cell_in_registry_time() {
        let universe = Universe::generate(5);
        let campaign = short_campaign();
        let report = campaign.run(&universe, &ScanPool::single_thread());
        // One window per add-bearing day, windowed at the day duration.
        assert_eq!(report.series.len(), report.cells.len());
        assert_eq!(
            report.series.window_us(),
            campaign.churn.day_duration.as_micros() as u64
        );
        let curve = report.convergence_curve();
        assert_eq!(curve.len(), report.cells.len());
        for (cell, &(day, us)) in report.cells.iter().zip(&curve) {
            assert_eq!(day, cell.day as u64);
            assert_eq!(us, cell.convergence_us);
        }
        // The ISP-lag track dwarfs the convergence track on every day —
        // the paper's contrast, now visible per point on the curve.
        for (day, lag) in report.series.gauge_series("churn.day.isp_lag_us") {
            let (_, us) = curve.iter().find(|&&(d, _)| d == day).copied().unwrap();
            assert!(lag as u64 > 10 * us, "day {day}: lag {lag} vs convergence {us}");
        }
        // The epoch track is a Last gauge: each day one batch applied.
        assert!(!report.series.gauge_series("churn.day.epoch").is_empty());
    }

    #[test]
    fn campaign_snapshot_carries_the_convergence_histogram() {
        let universe = Universe::generate(5);
        let campaign = short_campaign();
        let report = campaign.run(&universe, &ScanPool::single_thread());
        if tspu_obs::ENABLED {
            assert_eq!(report.snapshot.counter("churn.deltas"), report.cells.len() as u64);
            let hist = report.snapshot.histogram("churn.convergence_us").expect("histogram");
            assert_eq!(hist.count(), report.cells.len() as u64);
            // One updater apply + one audit bump per cell flow through the
            // merged policy instruments.
            assert_eq!(
                report.snapshot.counter("policy.delta_applies"),
                2 * report.cells.len() as u64
            );
        }
    }
}
