//! Per-country conformance: each [`CensorProfile`] behaves in the lab the
//! way its source study describes (DESIGN.md §12).
//!
//! * Turkmenistan — bidirectional RST injection on the SNI trigger, a
//!   residual full-drop on DNS flows that queried a blocked qname, both
//!   expiring on the profile's own `BLOCK_TKM` window.
//! * India — HTTP 200 block-page injection in place of the origin
//!   response, TLS left alone, and *censorship leakage*: an India-profile
//!   middlebox on another ISP's transit path blocks that ISP's clients.
//! * TSPU — the Fig. 2 behavior classes are unchanged when the profile is
//!   installed explicitly rather than defaulted.
//!
//! Every capture-backed scenario is replayed through the trace-invariant
//! oracle with per-profile audits, so the conformance claims here are the
//! same ones the differential campaign enforces at scale.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::CensorProfile;
use tspu_measure::behaviors::{classify_behavior, ObservedBehavior};
use tspu_measure::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use tspu_netsim::oracle::Oracle;
use tspu_netsim::{Direction, Route, RouteStep};
use tspu_registry::Universe;
use tspu_stack::craft::udp_packet;
use tspu_topology::VantageLab;
use tspu_wire::dns::{DnsQuery, DnsResponse, QTYPE_A};
use tspu_wire::http::{HttpRequest, HttpResponse};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

/// A domain on the universe's `sni_rst` list (see the domains module) and
/// one that is on no list at all.
const BLOCKED: &str = "meduza.io";
const INNOCUOUS: &str = "rust-lang.org";

fn lab_with(profile: CensorProfile) -> VantageLab {
    let universe = Universe::generate(3);
    VantageLab::builder().universe(&universe).censor_profile(profile).build()
}

fn ends(lab: &VantageLab, vantage: &str, port: u16, remote_port: u16) -> (ScriptEnd, ScriptEnd) {
    let v = lab.vantage(vantage);
    (
        ScriptEnd { host: v.host, addr: v.addr, port },
        ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: remote_port },
    )
}

/// Handshake + GET + scripted origin response + one local follow-up.
fn http_script(host: &str) -> Vec<ScriptStep> {
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(HttpRequest::get(host, "/").build()));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(HttpResponse::ok(b"origin-content-ok").build()));
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0xc1; 40]));
    steps
}

/// Handshake + ClientHello + data from both sides.
fn tls_script(host: &str) -> Vec<ScriptStep> {
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(ClientHelloBuilder::new(host).build()));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0xb1; 120]));
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0xc2; 60]));
    steps
}

fn assert_oracle_clean(lab: &mut VantageLab) {
    let spec = lab.oracle_spec();
    let captures = lab.net.take_captures();
    let report = Oracle::new(spec).check(&captures);
    assert!(report.is_clean(), "oracle violations: {:?}", report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>());
}

#[test]
fn turkmenistan_rsts_both_directions_on_sni_trigger() {
    let mut lab = lab_with(CensorProfile::turkmenistan());
    lab.net.set_capture(true);
    let (local, remote) = ends(&lab, "ER-Telecom", 47100, 443);
    let result = run_script(&mut lab.net, local, remote, &tls_script(BLOCKED));

    assert!(
        result.at_local.iter().any(|p| p.is_rst_ack && p.payload_len == 0),
        "client must see the injected RST"
    );
    assert!(
        result.at_remote.iter().any(|p| p.is_rst_ack && p.payload_len == 0),
        "the server must see an RST too — the chokepoint is bidirectional"
    );
    assert_oracle_clean(&mut lab);
}

#[test]
fn turkmenistan_drops_dns_flow_until_residual_window_expires() {
    let mut lab = lab_with(CensorProfile::turkmenistan());
    lab.net.set_capture(true);
    let (v_host, v_addr) = {
        let v = lab.vantage("ER-Telecom");
        (v.host, v.addr)
    };
    let (r_host, r_addr) = (lab.us_main, lab.us_main_addr);
    let port = 47150;
    let send_query = |lab: &mut VantageLab, qname: &str, id: u16| {
        let query = DnsQuery { id, qname: qname.into(), qtype: QTYPE_A };
        lab.net.send_from(v_host, udp_packet(v_addr, port, r_addr, 53, &query.build()));
        lab.net.run_for(Duration::from_millis(300));
        query
    };

    // The blocked query itself is eaten.
    send_query(&mut lab, BLOCKED, 1);
    assert!(lab.net.take_inbox(r_host).is_empty(), "blocked qname must not reach the resolver");

    // Residual: an innocuous query on the same flow is eaten too.
    send_query(&mut lab, INNOCUOUS, 2);
    assert!(lab.net.take_inbox(r_host).is_empty(), "residual drop must consume the follow-up");

    // Past BLOCK_TKM (60 s) the flow is forgiven: query and answer flow.
    lab.net.run_for(Duration::from_secs(90));
    let query = send_query(&mut lab, INNOCUOUS, 3);
    assert_eq!(lab.net.take_inbox(r_host).len(), 1, "window expired — query passes");
    let answer = DnsResponse::answer(&query, &[Ipv4Addr::new(93, 184, 216, 34)]).build();
    lab.net.send_from(r_host, udp_packet(r_addr, 53, v_addr, port, &answer));
    lab.net.run_for(Duration::from_millis(500));
    assert_eq!(lab.net.take_inbox(v_host).len(), 1, "answer comes back");
    assert_oracle_clean(&mut lab);
}

#[test]
fn india_injects_block_page_and_leaves_tls_alone() {
    let mut lab = lab_with(CensorProfile::india());
    lab.net.set_capture(true);
    let page_len = CensorProfile::india().block_page_bytes().unwrap().len();

    // TLS on the blocked domain: India has no SNI engine — all data flows.
    let (local, remote) = ends(&lab, "ER-Telecom", 47200, 443);
    let result = run_script(&mut lab.net, local, remote, &tls_script(BLOCKED));
    assert!(result.at_local.iter().any(|p| p.payload_len == 120), "TLS data untouched");
    assert!(!result.at_local.iter().any(|p| p.is_rst_ack), "no RST injection");

    // HTTP on the blocked domain: the origin's response is replaced by the
    // censor's HTTP 200 page, byte-length-exact.
    let (local, remote) = ends(&lab, "ER-Telecom", 47201, 80);
    let result = run_script(&mut lab.net, local, remote, &http_script(BLOCKED));
    assert!(
        result.at_local.iter().any(|p| p.payload_len == page_len),
        "client must receive the block page"
    );

    // HTTP on the innocuous domain: origin content intact.
    let origin_len = HttpResponse::ok(b"origin-content-ok").build().len();
    let (local, remote) = ends(&lab, "ER-Telecom", 47202, 80);
    let result = run_script(&mut lab.net, local, remote, &http_script(INNOCUOUS));
    assert!(result.at_local.iter().any(|p| p.payload_len == origin_len));
    assert_oracle_clean(&mut lab);
}

/// The India study's signature phenomenon: middleboxes filter *paths*, not
/// customers, so when ISP B's middlebox sits on ISP A's transit route, A's
/// clients get B's censorship. Modeled here by making OBIT's US transit
/// device symmetric on the return path and switching it (only it) to the
/// India profile — the rest of the lab stays TSPU.
#[test]
fn india_censorship_leaks_onto_another_isps_path() {
    let universe = Universe::generate(3);
    let mut lab = VantageLab::builder().universe(&universe).build();
    let (obit_host, sym_handle, transit_handle) = {
        let v = lab.vantage("OBIT");
        (v.host, v.sym_device, v.upstream_devices[0])
    };
    // Put the transit middlebox on the return path too (symmetric), then
    // hand it to a different censor. Hop addresses mirror the lab's
    // asymmetric OBIT reverse route.
    let reverse = Route {
        steps: vec![
            RouteStep::router(Ipv4Addr::new(185, 140, 30, 9)),
            RouteStep::with_device(Ipv4Addr::new(188, 128, 30, 1), transit_handle.id(), Direction::RemoteToLocal),
            RouteStep::router(Ipv4Addr::new(185, 140, 30, 8)),
            RouteStep::with_device(Ipv4Addr::new(10, 30, 255, 2), sym_handle.id(), Direction::RemoteToLocal),
            RouteStep::router(Ipv4Addr::new(10, 30, 255, 1)),
        ],
    };
    lab.net.set_route(lab.us_main, obit_host, reverse);
    lab.net.middlebox_mut(transit_handle).set_censor_profile(CensorProfile::india());
    lab.net.set_capture(true);
    let page_len = CensorProfile::india().block_page_bytes().unwrap().len();

    // OBIT's client sees India's block page — its own ISP (TSPU profile)
    // has no HTTP Host trigger at all.
    let (local, remote) = ends(&lab, "OBIT", 47300, 80);
    let result = run_script(&mut lab.net, local, remote, &http_script(BLOCKED));
    assert!(
        result.at_local.iter().any(|p| p.payload_len == page_len),
        "India's page leaks onto OBIT's path"
    );

    // An ER-Telecom client requesting the same host is untouched: the
    // leakage is a property of the path, not the domain.
    let origin_len = HttpResponse::ok(b"origin-content-ok").build().len();
    let (local, remote) = ends(&lab, "ER-Telecom", 47301, 80);
    let result = run_script(&mut lab.net, local, remote, &http_script(BLOCKED));
    assert!(result.at_local.iter().any(|p| p.payload_len == origin_len));

    // An innocuous host through the same leaky path is untouched too.
    let (local, remote) = ends(&lab, "OBIT", 47302, 80);
    let result = run_script(&mut lab.net, local, remote, &http_script(INNOCUOUS));
    assert!(result.at_local.iter().any(|p| p.payload_len == origin_len));

    // The mixed-profile oracle accepts all of it: each device is judged
    // against its own profile's audit.
    assert_oracle_clean(&mut lab);
}

/// The Fig. 2 behavior classes are byte-for-byte unchanged whether the
/// `tspu` profile is defaulted or installed explicitly — the lab-level
/// face of the core differential proptest.
#[test]
fn tspu_fig2_classes_unchanged_under_explicit_profile() {
    let universe = Universe::generate(3);
    let mut default_lab = VantageLab::builder().universe(&universe).build();
    let mut explicit_lab = lab_with(CensorProfile::tspu());

    let cases: &[(&str, u16)] = &[
        (BLOCKED, 47400),       // SNI-I: RST/ACK
        ("nordvpn.com", 47401), // SNI-II: delayed drop, 5–8 allowance
        (INNOCUOUS, 47402),     // Pass
    ];
    for &(domain, port) in cases {
        let verdicts: Vec<ObservedBehavior> = [&mut default_lab, &mut explicit_lab]
            .into_iter()
            .map(|lab| {
                let (local, remote) = ends(lab, "ER-Telecom", port, 443);
                classify_behavior(
                    &mut lab.net,
                    local,
                    remote,
                    &handshake_prefix(),
                    ClientHelloBuilder::new(domain).build(),
                )
            })
            .collect();
        assert_eq!(verdicts[0], verdicts[1], "{domain}: explicit tspu profile diverged");
    }

    // Spot-check the classes themselves (Fig. 2, Table 2 shapes).
    let (local, remote) = ends(&default_lab, "ER-Telecom", 47403, 443);
    let rst = classify_behavior(
        &mut default_lab.net,
        local,
        remote,
        &handshake_prefix(),
        ClientHelloBuilder::new(BLOCKED).build(),
    );
    assert_eq!(rst, ObservedBehavior::RstAck);
    let (local, remote) = ends(&explicit_lab, "ER-Telecom", 47403, 443);
    let rst = classify_behavior(
        &mut explicit_lab.net,
        local,
        remote,
        &handshake_prefix(),
        ClientHelloBuilder::new(BLOCKED).build(),
    );
    assert_eq!(rst, ObservedBehavior::RstAck);
}
