//! The parallel-sweep contract: the same `SweepSpec` produces
//! byte-identical aggregated results at every thread count, and the whole
//! simulation stack is `Send` so it can be sharded at all.

use tspu_measure::domains::DomainVerdict;
use tspu_measure::sweep::{registry_campaign, RunOpts, ScanPool, SweepSpec};
use tspu_measure::LocalizeSpec;
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, VantageLab};

fn assert_send<T: Send>() {}

#[test]
fn simulation_stack_is_send() {
    assert_send::<tspu_netsim::Network>();
    assert_send::<VantageLab>();
    assert_send::<tspu_topology::Vantage>();
    assert_send::<tspu_core::PolicyHandle>();
    assert_send::<ScanPool>();
    assert_send::<SweepSpec>();
}

/// Acceptance: 1, 2 and 8 threads over the same spec agree byte-for-byte.
#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(2022);
    let domains: Vec<String> = universe
        .registry_sample
        .iter()
        .take(40)
        .map(|d| d.name.clone())
        .chain(
            ["meduza.io", "play.google.com", "twitter.com", "wikipedia.org", "nordvpn.com"]
                .map(String::from),
        )
        .collect();
    let spec = SweepSpec::from_universe(&universe, domains);

    let baseline = spec.run(&ScanPool::new(1), &RunOpts::quick()).verdicts;
    let baseline_bytes = format!("{baseline:?}");
    assert!(baseline.iter().any(|v| *v != DomainVerdict::Open), "sweep found no blocking");
    for threads in [2, 8] {
        let parallel = spec.run(&ScanPool::new(threads), &RunOpts::quick()).verdicts;
        assert_eq!(
            format!("{parallel:?}"),
            baseline_bytes,
            "{threads}-thread sweep diverged from single-thread"
        );
    }
}

#[test]
fn campaign_aggregation_is_thread_count_independent() {
    let universe = Universe::generate(2022);
    let names: Vec<&str> = universe
        .registry_sample
        .iter()
        .take(30)
        .map(|d| d.name.as_str())
        .collect();
    // `isp_blocked` holds `HashSet`s whose debug order is seeded per
    // instance; canonicalize to sorted lists before the byte comparison.
    let canonical = |campaign: &tspu_measure::domains::DomainCampaign| {
        let isp: std::collections::BTreeMap<&String, Vec<&String>> = campaign
            .isp_blocked
            .iter()
            .map(|(isp, set)| {
                let mut sorted: Vec<&String> = set.iter().collect();
                sorted.sort();
                (isp, sorted)
            })
            .collect();
        format!("{:?}\n{isp:?}", campaign.tspu)
    };
    let baseline = canonical(&registry_campaign(&universe, names.iter().copied(), &ScanPool::new(1)));
    for threads in [2, 8] {
        let campaign = registry_campaign(&universe, names.iter().copied(), &ScanPool::new(threads));
        assert_eq!(canonical(&campaign), baseline, "{threads} threads");
    }
}

#[test]
fn pooled_localization_is_thread_count_independent() {
    let policy = policy_from_universe(&Universe::generate(2022), false, true);
    let localize = |pool: &ScanPool| -> Vec<_> {
        ["Rostelecom", "ER-Telecom", "OBIT"]
            .iter()
            .map(|v| {
                LocalizeSpec::symmetric(policy.clone(), v)
                    .port_base(55_000)
                    .run(pool, &RunOpts::quick())
                    .first()
            })
            .collect()
    };
    let baseline = localize(&ScanPool::new(1));
    for threads in [2, 8] {
        let parallel = localize(&ScanPool::new(threads));
        assert_eq!(parallel, baseline, "{threads} threads");
    }
}
