//! DifferentialCampaign determinism: the per-(domain, profile) verdict
//! matrix and its merged observability snapshot are byte-identical at
//! every worker count. Cells are pure functions of (profile, domain,
//! index) — forked per-profile lab images, index-derived ports, index-
//! ordered snapshot merge — so thread scheduling cannot leak in. The CI
//! `profiles` job runs this file at `--test-threads={1,8}` on top of the
//! pool counts exercised here.

use tspu_core::PolicyHandle;
use tspu_measure::{DifferentialCampaign, RunOpts, ScanPool, TlsVerdict};
use tspu_registry::Universe;
use tspu_topology::policy_from_universe;

fn campaign() -> DifferentialCampaign {
    let universe = Universe::generate(3);
    let policy: PolicyHandle = policy_from_universe(&universe, false, true);
    let mut domains: Vec<String> = ["meduza.io", "twitter.com", "nordvpn.com", "rust-lang.org"]
        .into_iter()
        .map(String::from)
        .collect();
    // Enough unlisted domains that 8 workers genuinely shard the matrix.
    for i in 0..16 {
        domains.push(format!("site-{i}.example"));
    }
    DifferentialCampaign::three_country(policy, domains)
}

#[test]
fn matrix_is_byte_identical_across_thread_counts() {
    let campaign = campaign();
    let (one, _) = campaign.run(&ScanPool::new(1), &RunOpts::observed());
    let (eight, _) = campaign.run(&ScanPool::new(8), &RunOpts::observed());

    assert!(one.oracle_clean(), "{:?}", one.oracle_violations());
    assert_eq!(one.cells, eight.cells, "verdict matrix diverges across thread counts");
    assert_eq!(one.to_string(), eight.to_string(), "rendered matrix diverges");
    let (one_snap, eight_snap) =
        (one.snapshot.expect("observed run"), eight.snapshot.expect("observed run"));
    assert_eq!(
        one_snap.to_json(),
        eight_snap.to_json(),
        "merged snapshot diverges across thread counts"
    );
}

#[test]
fn matrix_layout_is_profile_major_and_complete() {
    let campaign = campaign();
    let (matrix, report) = campaign.run(&ScanPool::new(4), &RunOpts::observed());

    assert_eq!(matrix.cells.len(), campaign.len());
    assert_eq!(matrix.profiles, vec!["tspu", "turkmenistan", "india"]);
    // Profile-major, domain-minor: the first |domains| cells are tspu's.
    let n = campaign.domains.len();
    assert!(matrix.cells[..n].iter().all(|c| c.profile == "tspu"));
    assert!(matrix.cells[n..2 * n].iter().all(|c| c.profile == "turkmenistan"));
    assert!(matrix.cells[2 * n..].iter().all(|c| c.profile == "india"));
    for (i, cell) in matrix.cells.iter().enumerate() {
        assert_eq!(cell.domain, campaign.domains[i % n], "cell {i} out of order");
    }
    assert_eq!(report.expect("report requested").total_items(), campaign.len());

    // The campaign axis actually differentiates: the same domain, three
    // different country verdicts.
    assert_eq!(matrix.cell("tspu", "meduza.io").tls, TlsVerdict::RstLocal);
    assert_eq!(matrix.cell("turkmenistan", "meduza.io").tls, TlsVerdict::RstBidirectional);
    assert_eq!(matrix.cell("india", "meduza.io").tls, TlsVerdict::Pass);
}

#[test]
fn quick_matrix_carries_no_snapshot() {
    let campaign = DifferentialCampaign {
        domains: vec!["meduza.io".into()],
        ..campaign()
    };
    let (matrix, report) = campaign.run(&ScanPool::new(2), &RunOpts::quick());
    assert!(matrix.snapshot.is_none());
    assert!(report.is_none());
}
