//! Oracle negatives per profile: seeded model violations that are *legal*
//! under one country's semantics but forbidden under another's must be
//! caught, and the report must name the offending packet and the profile
//! whose audit it failed.
//!
//! * Turkmenistan — a device that only RSTs toward the client
//!   (unidirectional, i.e. valid TSPU behavior) violates the bidirectional
//!   contract: the local→remote packet it let through surfaces as an
//!   `EarlyUnblock` on an enforcing flow.
//! * India — a block page injected on a flow no Host trigger armed, and
//!   one injected after the armed window lapsed, surface as
//!   `UnexplainedBlockPage` / `ResidualExceeded`.

use std::time::Duration;

use tspu_core::{CensorProfile, ModelViolation};
use tspu_measure::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use tspu_netsim::oracle::{Oracle, OracleReport, Violation};
use tspu_registry::Universe;
use tspu_topology::VantageLab;
use tspu_wire::http::{HttpRequest, HttpResponse};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

const BLOCKED: &str = "meduza.io";
const INNOCUOUS: &str = "rust-lang.org";

/// Lab running `profile` everywhere, with `violation` seeded on the
/// ER-Telecom symmetric device and capture armed.
fn seeded_lab(profile: CensorProfile, violation: ModelViolation) -> VantageLab {
    let universe = Universe::generate(3);
    let mut lab = VantageLab::builder().universe(&universe).censor_profile(profile).build();
    let device = lab.vantage("ER-Telecom").sym_device;
    lab.net.middlebox_mut(device).set_model_violation(Some(violation));
    lab.net.set_capture(true);
    lab
}

fn ends(lab: &VantageLab, port: u16, remote_port: u16) -> (ScriptEnd, ScriptEnd) {
    let v = lab.vantage("ER-Telecom");
    (
        ScriptEnd { host: v.host, addr: v.addr, port },
        ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: remote_port },
    )
}

fn check(lab: &mut VantageLab) -> OracleReport {
    let spec = lab.oracle_spec();
    let captures = lab.net.take_captures();
    Oracle::new(spec).check(&captures)
}

#[test]
fn unidirectional_rst_under_turkmenistan_is_flagged() {
    let mut lab = seeded_lab(
        CensorProfile::turkmenistan(),
        ModelViolation::UnidirectionalRstUnderBidirectional,
    );
    let (local, remote) = ends(&lab, 47500, 443);
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(ClientHelloBuilder::new(BLOCKED).build()));
    // Remote data first: its rewrite marks the flow enforcing. Then local
    // data — which the seeded (TSPU-style) device lets through untouched,
    // though Turkmenistan's contract says it must be torn down too.
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0xb1; 120]));
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(vec![0xc2; 60]));
    run_script(&mut lab.net, local, remote, &steps);

    let report = check(&mut lab);
    assert!(!report.is_clean(), "oracle missed the unidirectional RST");
    let v = report
        .violations
        .iter()
        .find(|v| matches!(v.violation, Violation::EarlyUnblock { .. }))
        .expect("no EarlyUnblock reported");
    assert_eq!(v.device_label, "ER-Telecom-sym");
    assert_eq!(v.profile, "turkmenistan", "the report must name the profile");
    assert!(!v.packet.is_empty(), "the report must carry the offending packet");
    assert!(v.to_string().contains("turkmenistan"), "rendered report names the profile: {v}");

    // Control: the same unidirectional behavior *is* the TSPU contract.
    let mut control = seeded_lab(CensorProfile::tspu(), ModelViolation::UnidirectionalRstUnderBidirectional);
    let (local, remote) = ends(&control, 47500, 443);
    run_script(&mut control.net, local, remote, &steps);
    let report = check(&mut control);
    assert!(report.is_clean(), "unidirectional RST is legal tspu behavior: {:?}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>());
}

#[test]
fn block_page_without_trigger_under_india_is_flagged() {
    let mut lab = seeded_lab(CensorProfile::india(), ModelViolation::BlockPageWithoutTrigger);
    let (local, remote) = ends(&lab, 47510, 80);
    let mut steps = handshake_prefix();
    // The Host is not on any list: no trigger, yet the seeded device
    // replaces the origin response with its page.
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(HttpRequest::get(INNOCUOUS, "/").build()));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(HttpResponse::ok(b"origin-content-ok").build()));
    run_script(&mut lab.net, local, remote, &steps);

    let report = check(&mut lab);
    assert!(!report.is_clean(), "oracle missed the unexplained block page");
    let v = report
        .violations
        .iter()
        .find(|v| matches!(v.violation, Violation::UnexplainedBlockPage))
        .expect("no UnexplainedBlockPage reported");
    assert_eq!(v.device_label, "ER-Telecom-sym");
    assert_eq!(v.profile, "india");
    assert!(!v.packet.is_empty());
    assert!(v.to_string().contains("india"), "rendered report names the profile: {v}");
}

#[test]
fn block_page_outside_armed_window_under_india_is_flagged() {
    let mut lab = seeded_lab(CensorProfile::india(), ModelViolation::BlockPageWithoutTrigger);
    let (local, remote) = ends(&lab, 47520, 80);
    let mut steps = handshake_prefix();
    // Legitimate arm + in-window injection first.
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(HttpRequest::get(BLOCKED, "/").build()));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(HttpResponse::ok(b"origin-content-ok").build()));
    // 90 s later the 60 s window has lapsed; the device's verdict has
    // expired, so the seeded violation branch injects the page again —
    // now outside the window the trigger armed.
    steps.push(
        ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
            .payload(HttpResponse::ok(b"origin-content-ok").build())
            .after(Duration::from_secs(90)),
    );
    run_script(&mut lab.net, local, remote, &steps);

    let report = check(&mut lab);
    assert!(!report.is_clean(), "oracle missed the out-of-window page");
    let v = report
        .violations
        .iter()
        .find(|v| matches!(v.violation, Violation::ResidualExceeded { .. }))
        .expect("no ResidualExceeded reported");
    assert_eq!(v.device_label, "ER-Telecom-sym");
    assert_eq!(v.profile, "india");
    assert!(!v.packet.is_empty());
}

#[test]
fn violation_report_carries_the_arming_ledger_event() {
    // Same seeding as the out-of-window case, but the report now attaches
    // the device's flight-recorder ledger: the rendered violation must
    // name the very trigger/arming events whose lapsed window the page
    // injection violated — the recorder closing the loop from "what went
    // wrong" to "what the device thought it was enforcing".
    let mut lab = seeded_lab(CensorProfile::india(), ModelViolation::BlockPageWithoutTrigger);
    let (local, remote) = ends(&lab, 47530, 80);
    let mut steps = handshake_prefix();
    steps.push(ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK).payload(HttpRequest::get(BLOCKED, "/").build()));
    steps.push(ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(HttpResponse::ok(b"origin-content-ok").build()));
    steps.push(
        ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK)
            .payload(HttpResponse::ok(b"origin-content-ok").build())
            .after(Duration::from_secs(90)),
    );
    run_script(&mut lab.net, local, remote, &steps);

    let spec = lab.oracle_spec();
    let captures = lab.net.take_captures();
    let mut report = Oracle::new(spec).check(&captures);
    report.attach_device_ledger(|id, packet| lab.device_ledger(id, packet, 8));

    let v = report
        .violations
        .iter()
        .find(|v| matches!(v.violation, Violation::ResidualExceeded { .. }))
        .expect("no ResidualExceeded reported");
    if tspu_obs::ENABLED {
        assert!(
            v.ledger.iter().any(|line| line.contains("trigger_fired source=http_host")),
            "ledger must name the arming trigger: {:?}",
            v.ledger
        );
        assert!(
            v.ledger.iter().any(|line| line.contains("block_armed kind=block_page")),
            "ledger must name the armed verdict: {:?}",
            v.ledger
        );
        let rendered = v.to_string();
        assert!(rendered.contains("enforcement ledger"), "rendered report carries the ledger: {rendered}");
        assert!(rendered.contains("block_armed kind=block_page"), "{rendered}");
        // Every ledger line names the profile the device was enforcing.
        assert!(v.ledger.iter().all(|line| line.contains("profile=india")), "{:?}", v.ledger);
    } else {
        assert!(v.ledger.is_empty(), "obs-disabled builds attach no ledger");
    }
}
