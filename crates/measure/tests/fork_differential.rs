//! The COW-fork contract, property-tested:
//!
//! 1. **Differential**: for arbitrary scenario sequences, a lab forked
//!    from a [`LabImage`] produces byte-identical verdicts, captures, and
//!    observability snapshots to a lab freshly built from the same
//!    builder — the fork IS a fresh build, just cheaper.
//! 2. **Isolation**: traffic, conntrack/frag state, and policy-epoch
//!    mutation inside one fork never leak into sibling forks, later
//!    forks, or the warm image itself.

use proptest::prelude::*;

use tspu_core::{Policy, PolicyDelta, PolicyHandle};
use tspu_measure::domains::{test_domain, DomainVerdict};
use tspu_measure::sweep::scenario_port;
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, VantageLab};

/// Mix of listed (SNI-I/II/IV, QUIC, IP) and unlisted names from the
/// generated universes, so sequences exercise block and open paths.
const DOMAINS: &[&str] = &[
    "meduza.io",
    "play.google.com",
    "twitter.com",
    "wikipedia.org",
    "nordvpn.com",
    "kernel.org",
    "instagram.com",
    "example.org",
];

/// Everything observable a scenario sequence produces on a lab.
fn drive(mut lab: VantageLab, sequence: &[usize]) -> (Vec<DomainVerdict>, String, String) {
    lab.net.set_capture(true);
    let verdicts: Vec<DomainVerdict> = sequence
        .iter()
        .enumerate()
        .map(|(i, &d)| test_domain(&mut lab, DOMAINS[d % DOMAINS.len()], scenario_port(i)))
        .collect();
    let captures = format!("{:?}", lab.net.take_captures());
    let obs = format!("{:?}", lab.obs_snapshot());
    (verdicts, captures, obs)
}

proptest! {
    /// A fork from the warm image is byte-identical to a fresh build —
    /// for any universe seed and any scenario sequence, including
    /// back-to-back scenarios reusing flows inside one lab.
    #[test]
    fn forked_lab_is_byte_identical_to_fresh_build(
        seed in 0u64..50,
        fork_index in 0usize..1000,
        sequence in proptest::collection::vec(0usize..DOMAINS.len(), 1..6),
    ) {
        let universe = Universe::generate(seed);
        let policy = policy_from_universe(&universe, false, true);

        let fresh = VantageLab::builder().policy(policy.clone()).build();
        let image = VantageLab::builder().policy(policy.clone()).image();
        let forked = image.fork(fork_index);

        prop_assert_eq!(drive(forked, &sequence), drive(fresh, &sequence));
    }

    /// Forking is repeatable: a fork dirtied by traffic changes nothing
    /// about its siblings, about forks taken afterwards, or about the
    /// image — every fork replays the same bytes.
    #[test]
    fn dirty_fork_never_leaks_into_siblings_or_image(
        seed in 0u64..50,
        sequence in proptest::collection::vec(0usize..DOMAINS.len(), 1..5),
        probe in proptest::collection::vec(0usize..DOMAINS.len(), 1..4),
    ) {
        let universe = Universe::generate(seed);
        let policy = policy_from_universe(&universe, false, true);
        let image = VantageLab::builder().policy(policy).image();

        // Sibling forked BEFORE the dirtying traffic.
        let sibling_before = image.fork(1);

        // Dirty fork 0: traffic (conntrack + frag cache + captures +
        // instruments) plus a private policy whose epoch we then bump.
        let mut dirty = image.fork(0);
        let private = PolicyHandle::new(Policy::permissive());
        dirty.set_policy(private.clone());
        let _ = drive(dirty, &sequence);
        private.apply_delta(&PolicyDelta::new());

        // Sibling forked AFTER: must match the one forked before, and
        // both must match what the image says a pristine fork does.
        let sibling_after = image.fork(2);
        let baseline = drive(image.fork(3), &probe);
        prop_assert_eq!(drive(sibling_before, &probe), baseline.clone());
        prop_assert_eq!(drive(sibling_after, &probe), baseline);

        // The shared policy is untouched by the dirty fork's epoch bump.
        prop_assert_eq!(image.policy().epoch(), 0);
    }
}

/// Pristine-fork sanity outside proptest: a fork starts with zeroed
/// instruments, virtual time zero, and no captures, regardless of how
/// many siblings ran before it.
#[test]
fn every_fork_starts_pristine() {
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);
    let image = VantageLab::builder().policy(policy).image();

    let _ = drive(image.fork(0), &[0, 1, 2]);
    let mut lab = image.fork(1);
    assert_eq!(lab.net.now(), tspu_netsim::Time::ZERO);
    assert!(lab.net.take_captures().is_empty());
    if tspu_obs::ENABLED {
        assert_eq!(lab.obs_snapshot().counter("netsim.events_processed"), 0);
    }
}
