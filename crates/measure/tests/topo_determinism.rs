//! Generated-topology acceptance suite: sweeps and tomography over
//! seeded AS graphs are byte-identical at every thread count, the TTL
//! walk works unchanged on generated labs, and the 5000-AS headline
//! graph builds, forks, and sweeps 1 000 registry domains oracle-clean.

use tspu_measure::domains::{test_domain, DomainVerdict};
use tspu_measure::sweep::{RunOpts, ScanPool, SweepSpec};
use tspu_measure::{LocalizeSpec, LocalizedDevice, TomographyConfig};
use tspu_netsim::oracle::Oracle;
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, GenParams, Placement, TopologySpec, VantageLab};

fn policy() -> tspu_core::PolicyHandle {
    policy_from_universe(&Universe::generate(2022), false, true)
}

/// A 45-domain sweep over a generated 300-AS graph agrees byte-for-byte
/// (verdicts *and* observability snapshot) at 1, 2 and 8 threads.
#[test]
fn generated_sweep_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(2022);
    let domains: Vec<String> = ["meduza.io", "play.google.com", "wikipedia.org"]
        .map(String::from)
        .into_iter()
        .chain(universe.registry_sample.iter().take(42).map(|d| d.name.clone()))
        .collect();
    let spec = SweepSpec::from_universe(&universe, domains)
        .with_topology(TopologySpec::Generated(GenParams::new(2022, 300)));

    let baseline = spec.run(&ScanPool::new(1), &RunOpts::observed());
    // Anchor verdicts: generated clients see the same central policy the
    // Fig. 1 vantages do.
    assert_eq!(baseline.verdicts[0], DomainVerdict::Sni1, "meduza.io");
    assert_eq!(baseline.verdicts[1], DomainVerdict::Sni2, "play.google.com");
    assert_eq!(baseline.verdicts[2], DomainVerdict::Open, "wikipedia.org");
    let baseline_bytes = format!("{:?}\n{:?}", baseline.verdicts, baseline.snapshot);
    for threads in [2, 8] {
        let parallel = spec.run(&ScanPool::new(threads), &RunOpts::observed());
        assert_eq!(
            format!("{:?}\n{:?}", parallel.verdicts, parallel.snapshot),
            baseline_bytes,
            "{threads}-thread generated sweep diverged from single-thread"
        );
    }
}

/// The §7.1 symmetric TTL walk runs unchanged on generated labs (vantage
/// = client index string) and finds the generator's ground-truth hops:
/// transit devices sit after hop 2, the border device after hop 3.
#[test]
fn ttl_walk_localizes_generated_devices() {
    let policy = policy();
    let pool = ScanPool::single_thread();
    let found = LocalizeSpec::symmetric(policy.clone(), "0")
        .with_topology(TopologySpec::Generated(GenParams::new(3, 120)))
        .max_ttl(4)
        .run(&pool, &RunOpts::quick())
        .first();
    assert_eq!(found, Some(LocalizedDevice { after_hop: 2 }), "all-transit placement");

    let border_only = GenParams::new(3, 120).placement(Placement::BorderOnly);
    let found = LocalizeSpec::symmetric(policy, "1")
        .with_topology(TopologySpec::Generated(border_only))
        .max_ttl(4)
        .run(&pool, &RunOpts::quick())
        .first();
    assert_eq!(found, Some(LocalizedDevice { after_hop: 3 }), "border-only placement");
}

/// Acceptance: tomography names the ground-truth device AS in ≥95% of
/// cells, and the TTL cross-check agrees with the generator's hop on
/// every cell that has a crossing path.
#[test]
fn tomography_names_the_active_device() {
    let config = TomographyConfig::new(GenParams::new(7, 160));
    let run = LocalizeSpec::tomography(policy(), config)
        .run(&ScanPool::from_env(), &RunOpts::quick())
        .tomography
        .expect("tomography technique returns a TomographyRun");

    assert_eq!(run.cells.len(), 8);
    assert!(
        run.named_fraction() >= 0.95,
        "named {}/{} cells",
        run.cells.iter().filter(|c| c.named).count(),
        run.cells.len()
    );
    for cell in &run.cells {
        let active = cell.active_as.expect("all-transit placement: every cell has a device");
        assert_eq!(cell.suspects, vec![active], "cell {}", cell.cell);
        assert_eq!(cell.ttl_hop, cell.ttl_truth, "cell {} TTL cross-check", cell.cell);
        assert!(cell.ttl_truth.is_some(), "cell {}: no final-epoch path crosses the device", cell.cell);
        // 9 epochs (8 flips) × 4 clients, in (epoch, client) order.
        assert_eq!(cell.probes.len(), 36, "cell {}", cell.cell);
    }
    // The epoch-windowed series saw every probe.
    let probes: u64 = run.series.counter_series("tomography.probes").iter().map(|(_, v)| v).sum();
    assert_eq!(probes, 8 * 36);
}

/// Tomography is a pure function of its config: runs at 1 and 8 threads
/// agree byte-for-byte, including the merged observability snapshot.
#[test]
fn tomography_is_byte_identical_across_thread_counts() {
    let config = TomographyConfig::new(GenParams::new(13, 140)).cells(4);
    let spec = LocalizeSpec::tomography(policy(), config);
    let baseline = spec.run(&ScanPool::new(1), &RunOpts::observed());
    let baseline_bytes = format!("{:?}\n{:?}", baseline.tomography, baseline.snapshot);
    let parallel = spec.run(&ScanPool::new(8), &RunOpts::observed());
    assert_eq!(
        format!("{:?}\n{:?}", parallel.tomography, parallel.snapshot),
        baseline_bytes,
        "8-thread tomography diverged from single-thread"
    );
}

/// The headline scale point: a 5000-AS generated graph builds, forks via
/// `LabImage`, sweeps 1 000 registry domains with clean anchor verdicts,
/// and a captured fork of the same image passes the enforcement oracle.
#[test]
fn five_thousand_as_graph_sweeps_a_thousand_domains_oracle_clean() {
    let universe = Universe::generate(2022);
    let params = GenParams::new(5000, 5000);
    let domains: Vec<String> = ["meduza.io", "wikipedia.org"]
        .map(String::from)
        .into_iter()
        .chain(universe.registry_sample.iter().take(998).map(|d| d.name.clone()))
        .collect();
    let spec = SweepSpec::from_universe(&universe, domains)
        .with_topology(TopologySpec::Generated(params.clone()));
    let run = spec.run(&ScanPool::from_env(), &RunOpts::quick());
    assert_eq!(run.verdicts.len(), 1_000);
    assert_eq!(run.verdicts[0], DomainVerdict::Sni1, "meduza.io");
    assert_eq!(run.verdicts[1], DomainVerdict::Open, "wikipedia.org");
    let blocked = run.verdicts.iter().filter(|v| **v != DomainVerdict::Open).count();
    assert!(blocked > 0, "sweep found no blocking on the 5000-AS graph");

    // Oracle check on a captured fork: every RST/ACK and drop the capture
    // holds must be justified by the policy.
    let mut lab = VantageLab::builder()
        .policy(spec.policy.clone())
        .topology(TopologySpec::Generated(params))
        .image()
        .fork(0);
    lab.net.set_capture(true);
    let _ = test_domain(&mut lab, "meduza.io", 4_000);
    let _ = test_domain(&mut lab, "wikipedia.org", 4_002);
    let report = Oracle::new(lab.oracle_spec()).check(&lab.net.take_captures());
    let violations: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(violations.is_empty(), "{violations:?}");
}
