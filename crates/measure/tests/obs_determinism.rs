//! The observability determinism guarantee, end to end: an observed
//! registry campaign produces a byte-identical [`Snapshot`] — metrics,
//! JSON rendering, and Chrome trace — no matter how many worker threads
//! execute it. Spans carry *virtual* timestamps and scenario indices, so
//! worker assignment and wall-clock interleaving cannot leak in.

use tspu_measure::{ScanPool, SweepSpec};
use tspu_registry::Universe;

fn campaign_spec() -> SweepSpec {
    let universe = Universe::generate(3);
    let mut domains: Vec<String> = ["twitter.com", "meduza.io", "play.google.com", "nordvpn.com", "wikipedia.org"]
        .into_iter()
        .map(String::from)
        .collect();
    // Enough unlisted scenarios that 8 workers genuinely shard the sweep.
    for i in 0..59 {
        domains.push(format!("site-{i}.example"));
    }
    SweepSpec::from_universe(&universe, domains)
}

#[test]
fn observed_snapshot_is_byte_identical_across_thread_counts() {
    let spec = campaign_spec();
    let one = spec.run_observed(&ScanPool::new(1));
    let eight = spec.run_observed(&ScanPool::new(8));

    assert_eq!(one.verdicts, eight.verdicts, "verdicts diverge across thread counts");
    assert_eq!(
        one.snapshot.to_json(),
        eight.snapshot.to_json(),
        "metric snapshot diverges across thread counts"
    );
    assert_eq!(
        one.snapshot.chrome_trace_string(),
        eight.snapshot.chrome_trace_string(),
        "chrome trace diverges across thread counts"
    );
}

#[test]
fn observed_run_matches_plain_run_and_actually_observes() {
    let spec = campaign_spec();
    let observed = spec.run_observed(&ScanPool::new(4));
    assert_eq!(observed.verdicts, spec.run(&ScanPool::new(4)));
    assert_eq!(observed.report.total_items(), spec.len());

    if tspu_obs::ENABLED {
        assert_eq!(observed.snapshot.counter("sweep.scenarios"), spec.len() as u64);
        let hist = observed.snapshot.histogram("sweep.scenario_us").expect("scenario_us recorded");
        assert_eq!(hist.count(), spec.len() as u64);
        assert!(!observed.snapshot.spans().is_empty(), "tracing was on; spans expected");
        // Every scenario contributed device metrics under its own scope.
        assert!(observed.snapshot.counter("device.ertelecom-sym.packets_seen") > 0);
    } else {
        assert!(observed.snapshot.metrics().is_empty());
        assert!(observed.snapshot.spans().is_empty());
    }
}
