//! The observability determinism guarantee, end to end: an observed
//! registry campaign produces a byte-identical [`Snapshot`] — metrics,
//! JSON rendering, Chrome trace, and OpenMetrics exposition — no matter
//! how many worker threads execute it. Spans carry *virtual* timestamps
//! and scenario indices, so worker assignment and wall-clock interleaving
//! cannot leak in. The same holds for the time-resolved exports: the
//! churn campaign's per-day series and the differential campaign's
//! per-profile series.

use tspu_measure::{ChurnCampaign, DifferentialCampaign, RunOpts, ScanPool, SweepSpec};
use tspu_registry::Universe;
use tspu_topology::policy_from_universe;

fn campaign_spec() -> SweepSpec {
    let universe = Universe::generate(3);
    let mut domains: Vec<String> = ["twitter.com", "meduza.io", "play.google.com", "nordvpn.com", "wikipedia.org"]
        .into_iter()
        .map(String::from)
        .collect();
    // Enough unlisted scenarios that 8 workers genuinely shard the sweep.
    for i in 0..59 {
        domains.push(format!("site-{i}.example"));
    }
    SweepSpec::from_universe(&universe, domains)
}

#[test]
fn observed_snapshot_is_byte_identical_across_thread_counts() {
    let spec = campaign_spec();
    let one = spec.run(&ScanPool::new(1), &RunOpts::observed());
    let eight = spec.run(&ScanPool::new(8), &RunOpts::observed());

    assert_eq!(one.verdicts, eight.verdicts, "verdicts diverge across thread counts");
    let (one_snap, eight_snap) =
        (one.snapshot.expect("observed run"), eight.snapshot.expect("observed run"));
    assert_eq!(
        one_snap.to_json(),
        eight_snap.to_json(),
        "metric snapshot diverges across thread counts"
    );
    assert_eq!(
        one_snap.chrome_trace_string(),
        eight_snap.chrome_trace_string(),
        "chrome trace diverges across thread counts"
    );
}

#[test]
fn observed_run_matches_plain_run_and_actually_observes() {
    let spec = campaign_spec();
    let observed = spec.run(&ScanPool::new(4), &RunOpts::observed());
    assert_eq!(observed.verdicts, spec.run(&ScanPool::new(4), &RunOpts::quick()).verdicts);
    assert_eq!(observed.report.expect("report requested").total_items(), spec.len());
    let snapshot = observed.snapshot.expect("observed run");

    if tspu_obs::ENABLED {
        assert_eq!(snapshot.counter("sweep.scenarios"), spec.len() as u64);
        let hist = snapshot.histogram("sweep.scenario_us").expect("scenario_us recorded");
        assert_eq!(hist.count(), spec.len() as u64);
        assert!(!snapshot.spans().is_empty(), "tracing was on; spans expected");
        // Every scenario contributed device metrics under its own scope.
        assert!(snapshot.counter("device.ertelecom-sym.packets_seen") > 0);
    } else {
        assert!(snapshot.metrics().is_empty());
        assert!(snapshot.spans().is_empty());
    }
}

#[test]
fn openmetrics_export_is_byte_identical_across_thread_counts() {
    let spec = campaign_spec();
    let one = spec.run(&ScanPool::new(1), &RunOpts::observed());
    let eight = spec.run(&ScanPool::new(8), &RunOpts::observed());
    let (one_snap, eight_snap) =
        (one.snapshot.expect("observed run"), eight.snapshot.expect("observed run"));
    let om = one_snap.to_openmetrics();
    assert_eq!(om, eight_snap.to_openmetrics(), "OpenMetrics diverges across thread counts");
    assert!(om.ends_with("# EOF\n"), "exposition must terminate: {om}");
    if tspu_obs::ENABLED {
        assert!(om.contains("# TYPE "), "{om}");
    }
}

#[test]
fn churn_day_series_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(5);
    let mut campaign = ChurnCampaign::escalation_2022();
    campaign.churn.end_day = campaign.churn.start_day + 7;
    let one = campaign.run(&universe, &ScanPool::new(1));
    let eight = campaign.run(&universe, &ScanPool::new(8));
    assert_eq!(one.cells, eight.cells, "cells diverge across thread counts");
    assert_eq!(one.series.to_json(), eight.series.to_json(), "day series diverges");
    assert_eq!(one.series.to_openmetrics(), eight.series.to_openmetrics());
    assert_eq!(one.snapshot.to_json(), eight.snapshot.to_json());
    assert!(!one.convergence_curve().is_empty());
}

#[test]
fn differential_profile_series_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);
    let campaign = DifferentialCampaign::three_country(
        policy,
        vec!["meduza.io".into(), "rust-lang.org".into()],
    );
    let (one, _) = campaign.run(&ScanPool::new(1), &RunOpts::observed());
    let (eight, _) = campaign.run(&ScanPool::new(8), &RunOpts::observed());
    assert_eq!(one.cells, eight.cells, "cells diverge across thread counts");
    assert_eq!(one.series.to_json(), eight.series.to_json(), "profile series diverges");
    let (one_snap, eight_snap) =
        (one.snapshot.expect("observed run"), eight.snapshot.expect("observed run"));
    assert_eq!(one_snap.to_openmetrics(), eight_snap.to_openmetrics());
}

#[test]
fn quick_run_carries_no_snapshot_or_report() {
    let spec = campaign_spec();
    let quick = spec.run(&ScanPool::new(2), &RunOpts::quick());
    assert!(quick.snapshot.is_none());
    assert!(quick.report.is_none());
}
