//! The churn campaign's determinism guarantee: per-delta convergence
//! latencies — and the whole campaign snapshot — are byte-identical no
//! matter how many worker threads shard the cells. Each cell is a pure
//! function of (schedule, batch index, config); the pool reassembles
//! results by index, so worker assignment cannot leak in.

use tspu_measure::{ChurnCampaign, ScanPool};
use tspu_registry::Universe;

#[test]
fn churn_campaign_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(7);
    let mut campaign = ChurnCampaign::escalation_2022();
    // Ten escalation days make enough cells for 8 workers to genuinely
    // shard the replay.
    campaign.churn.end_day = campaign.churn.start_day + 10;

    let one = campaign.run(&universe, &ScanPool::new(1));
    let eight = campaign.run(&universe, &ScanPool::new(8));

    let single: Vec<u64> = one.cells.iter().map(|c| c.convergence_us).collect();
    let sharded: Vec<u64> = eight.cells.iter().map(|c| c.convergence_us).collect();
    assert_eq!(single, sharded, "convergence latencies diverge across thread counts");

    assert_eq!(one.cells, eight.cells, "cells diverge across thread counts");
    assert_eq!(
        one.snapshot.to_json(),
        eight.snapshot.to_json(),
        "campaign snapshot diverges across thread counts"
    );
}
