//! Integration tests for the chaos sweep:
//!
//! * the full ≥100-cell Table-1 grid under loss + bounded reorder is
//!   byte-identical at 1 and 8 threads, with the oracle passing every
//!   capture;
//! * a deliberately seeded model violation (fresh TTL on injected RSTs)
//!   makes the oracle report the offending packet and trace;
//! * the Table-1 reliability *shape* survives chaos: the single-device
//!   ER-Telecom path fails at least an order of magnitude more often than
//!   the two-device Rostelecom and OBIT paths, across fault seeds.

use tspu_core::ModelViolation;
use tspu_measure::chaos::{ChaosScenario, ChaosSweep};
use tspu_measure::reliability::{run_cell, Mechanism};
use tspu_measure::sweep::ScanPool;
use tspu_netsim::fault::LinkFaults;
use tspu_netsim::oracle::{Oracle, Violation};
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, VantageLab};

#[test]
fn table1_grid_is_byte_identical_across_thread_counts() {
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);
    let sweep = ChaosSweep::table1_grid(policy, vec![11, 22, 33, 44, 55, 66, 77], 4);
    assert!(sweep.len() >= 100, "grid too small: {}", sweep.len());

    let one = sweep.run(&ScanPool::single_thread());
    let eight = sweep.run(&ScanPool::new(8));
    assert_eq!(one, eight, "sweep output differs across thread counts");
    assert_eq!(one.len(), sweep.len());

    for cell in &one {
        assert!(
            cell.oracle_violations.is_empty(),
            "{} {:?} seed {}: {:?}",
            cell.vantage,
            cell.mechanism,
            cell.seed,
            cell.oracle_violations
        );
    }
    // The plan is not a no-op: chaos actually interfered somewhere.
    assert!(one.iter().any(|c| c.chaos_dropped > 0), "no chaos link ever dropped a packet");
}

#[test]
fn oracle_reports_seeded_wrong_ttl_on_injected_rst() {
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);
    let mut lab = VantageLab::builder().policy(policy).build();

    // Seed the deliberate model violation on ER-Telecom's symmetric
    // device: injected RST/ACKs leave with a fresh TTL instead of the
    // original packet's.
    let device = lab.vantage("ER-Telecom").sym_device;
    lab.net
        .middlebox_mut(device)
        .set_model_violation(Some(ModelViolation::FreshTtlOnInjectedRst));

    lab.net.set_capture(true);
    run_cell(&mut lab, "ER-Telecom", Mechanism::Sni1, 3);

    let spec = lab.oracle_spec();
    let captures = lab.net.take_captures();
    let report = Oracle::new(spec).check(&captures);

    assert!(!report.is_clean(), "oracle missed the seeded TTL violation");
    let ttl = report
        .violations
        .iter()
        .find(|v| matches!(v.violation, Violation::InjectedRstMetadata { field: "ttl", .. }))
        .expect("no TTL metadata violation reported");
    assert_eq!(ttl.device_label, "ER-Telecom-sym");
    assert!(!ttl.packet.is_empty(), "violation carries no offending packet");
    assert!(!ttl.trace.is_empty(), "violation carries no trace");
    // The report renders the minimal offending call, not the whole run.
    assert!(ttl.trace.len() < captures.len());
}

#[test]
fn reliability_shape_survives_chaos() {
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);

    // SNI-II across all three vantages: ER-Telecom's single device fails
    // at its per-device rate, while Rostelecom and OBIT need *both* of
    // their devices to miss.
    let link = LinkFaults { loss: 0.002, reorder: 0.02, max_displacement: 2, ..LinkFaults::default() };
    let sweep = ChaosSweep {
        scenarios: ["Rostelecom", "ER-Telecom", "OBIT"]
            .iter()
            .map(|&vantage| ChaosScenario { vantage, mechanism: Mechanism::Sni2 })
            .collect(),
        seeds: vec![1, 2, 3],
        forward: link.clone(),
        reverse: link,
        device: Default::default(),
        trials: 1200,
        check_oracle: false,
        policy,
    };
    let cells = sweep.run(&ScanPool::from_env());

    for &seed in &sweep.seeds {
        let failures = |vantage: &str| {
            cells
                .iter()
                .find(|c| c.vantage == vantage && c.seed == seed)
                .expect("cell present")
                .stats
                .failures
        };
        let er = failures("ER-Telecom");
        let ro = failures("Rostelecom");
        let obit = failures("OBIT");
        assert!(er > 0, "seed {seed}: ER-Telecom never failed in {} trials", sweep.trials);
        assert!(
            er >= 10 * ro.max(1) || ro == 0,
            "seed {seed}: ER-Telecom ({er}) not ≥10× Rostelecom ({ro})"
        );
        assert!(
            er >= 10 * obit.max(1) || obit == 0,
            "seed {seed}: ER-Telecom ({er}) not ≥10× OBIT ({obit})"
        );
    }
}
