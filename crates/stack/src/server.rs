//! A host application serving TCP ports, UDP ports, and ICMP echo — the
//! remote endpoints of every experiment: measurement machines, echo
//! servers (port 7, §7.2), TR-069 endpoints (port 7547, §7.3), and the
//! sites being censored.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::{Application, Output, Time};
use tspu_wire::icmpv4::{Icmpv4Packet, Icmpv4Repr};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::TcpSegment;
use tspu_wire::tls;

use crate::conn::{ConnEvent, HandshakeMode, TcpConnection};

/// What a TCP port does with established connections.
#[derive(Debug, Clone)]
pub enum PortBehavior {
    /// Echo every received byte back (TCP port 7).
    Echo,
    /// Reply once with canned bytes upon the first data received.
    Respond(Vec<u8>),
    /// Behave like a TLS server: answer a ClientHello with a ServerHello
    /// (and a little application data), anything else with nothing.
    TlsServer,
    /// A TLS server that follows the ServerHello with `usize` bytes of
    /// application data — a "page" big enough that delayed-drop (SNI-II)
    /// and throttling (SNI-III) visibly truncate or slow the transfer.
    TlsServerPage(usize),
    /// Accept and ACK, never send data.
    Sink,
}

/// Configuration of one listening TCP port.
#[derive(Debug, Clone)]
pub struct ServerPort {
    pub port: u16,
    pub behavior: PortBehavior,
    pub handshake: HandshakeMode,
    /// Advertised receive window (small values are the §8 strategy).
    pub window: u16,
    /// Delay before the handshake reply — the "wait out the TSPU's
    /// SYN-SENT timeout" strategy (§8).
    pub response_delay: Duration,
}

impl ServerPort {
    /// A standard port with the given behavior.
    pub fn new(port: u16, behavior: PortBehavior) -> ServerPort {
        ServerPort {
            port,
            behavior,
            handshake: HandshakeMode::Normal,
            window: 64240,
            response_delay: Duration::ZERO,
        }
    }

    /// Uses the split-handshake strategy on this port.
    pub fn split_handshake(mut self) -> ServerPort {
        self.handshake = HandshakeMode::SplitHandshake;
        self
    }

    /// Advertises a small window on this port.
    pub fn small_window(mut self, window: u16) -> ServerPort {
        self.window = window;
        self
    }

    /// Delays handshake replies by `delay`.
    pub fn delayed(mut self, delay: Duration) -> ServerPort {
        self.response_delay = delay;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PeerKey {
    addr: Ipv4Addr,
    port: u16,
    local_port: u16,
}

struct ConnSlot {
    conn: TcpConnection,
    behavior: PortBehavior,
    responded: bool,
    /// Accumulated stream bytes: real servers reassemble TCP, unlike the
    /// TSPU — that asymmetry is what makes segmentation a viable evasion.
    rx_buffer: Vec<u8>,
}

/// The server application. Attach to a host with
/// [`tspu_netsim::Network::set_app`].
pub struct ServerApp {
    addr: Ipv4Addr,
    ports: HashMap<u16, ServerPort>,
    /// UDP ports that echo datagrams back (UDP echo / QUIC reachability).
    udp_echo_ports: Vec<u16>,
    conns: HashMap<PeerKey, ConnSlot>,
    /// Received UDP payloads per port, for inspection.
    udp_received: Vec<(u16, Vec<u8>)>,
}

impl ServerApp {
    /// Creates a server for the host with address `addr`.
    pub fn new(addr: Ipv4Addr) -> ServerApp {
        ServerApp {
            addr,
            ports: HashMap::new(),
            udp_echo_ports: Vec::new(),
            conns: HashMap::new(),
            udp_received: Vec::new(),
        }
    }

    /// Adds a listening TCP port.
    pub fn with_port(mut self, port: ServerPort) -> ServerApp {
        self.ports.insert(port.port, port);
        self
    }

    /// Adds a UDP echo port.
    pub fn with_udp_echo(mut self, port: u16) -> ServerApp {
        self.udp_echo_ports.push(port);
        self
    }

    /// A typical censored HTTPS site: TLS server on 443.
    pub fn https_site(addr: Ipv4Addr) -> ServerApp {
        ServerApp::new(addr).with_port(ServerPort::new(443, PortBehavior::TlsServer))
    }

    /// A Quack-style echo server on TCP port 7.
    pub fn echo_server(addr: Ipv4Addr) -> ServerApp {
        ServerApp::new(addr).with_port(ServerPort::new(7, PortBehavior::Echo))
    }

    fn handle_tcp(&mut self, packet: &Ipv4Packet<&[u8]>, delay: Duration) -> Vec<Output> {
        let Ok(segment) = TcpSegment::new_checked(packet.payload()) else {
            return Vec::new();
        };
        let local_port = segment.dst_port();
        let Some(config) = self.ports.get(&local_port).cloned() else {
            return Vec::new(); // closed port: silently ignore (no RST model)
        };
        let key = PeerKey { addr: packet.src_addr(), port: segment.src_port(), local_port };
        // A fresh SYN on a known 4-tuple is a new connection attempt (the
        // peer reused the port); recycle the slot like a real listener
        // whose old socket timed out.
        if segment.flags().is_pure_syn() {
            if let Some(slot) = self.conns.get(&key) {
                if slot.conn.state() != crate::conn::TcpState::Listen {
                    self.conns.remove(&key);
                }
            }
        }
        let slot = self.conns.entry(key).or_insert_with(|| {
            let mut conn = TcpConnection::new(self.addr, local_port, key.addr, key.port);
            conn.set_mode(config.handshake);
            conn.set_local_window(config.window);
            conn.listen();
            ConnSlot {
                conn,
                behavior: config.behavior.clone(),
                responded: false,
                rx_buffer: Vec::new(),
            }
        });

        slot.conn.on_segment(&segment);
        for event in slot.conn.take_events() {
            match (&slot.behavior, event) {
                (PortBehavior::Echo, ConnEvent::DataReceived(data)) => {
                    slot.conn.send(&data);
                }
                (PortBehavior::Respond(bytes), ConnEvent::DataReceived(_))
                    if !slot.responded => {
                        slot.responded = true;
                        let bytes = bytes.clone();
                        slot.conn.send(&bytes);
                    }
                (PortBehavior::TlsServer | PortBehavior::TlsServerPage(_), ConnEvent::DataReceived(data)) => {
                    // Real servers reassemble the byte stream before
                    // parsing — segmentation evasions rely on this.
                    slot.rx_buffer.extend_from_slice(&data);
                    // Skip any non-handshake records prepended by the
                    // record-injection strategy.
                    let mut offset = 0;
                    while slot.rx_buffer.len() >= offset + 5 && slot.rx_buffer[offset] != 0x16 {
                        let len = u16::from_be_bytes([
                            slot.rx_buffer[offset + 3],
                            slot.rx_buffer[offset + 4],
                        ]) as usize;
                        offset += 5 + len;
                    }
                    if !slot.responded
                        && tls::ClientHello::parse(&slot.rx_buffer[offset.min(slot.rx_buffer.len())..])
                            .is_ok()
                    {
                        slot.responded = true;
                        let page = match slot.behavior {
                            PortBehavior::TlsServerPage(n) => n,
                            _ => 0x40,
                        };
                        let mut response = tls::server_hello_record();
                        // Application data so throttling and delayed
                        // drops have something to act on.
                        response.extend_from_slice(&[0x17, 0x03, 0x03]);
                        response.extend_from_slice(&(page.min(0xffff) as u16).to_be_bytes());
                        response.resize(response.len() + page, 0xda);
                        slot.conn.send(&response);
                    }
                }
                _ => {}
            }
        }

        let src = self.addr;
        slot.conn
            .poll_output()
            .into_iter()
            .map(|repr| {
                let seg = repr.build(src, key.addr);
                let ip = Ipv4Repr::new(src, key.addr, Protocol::Tcp, seg.len()).build(&seg);
                Output::send_after(delay, ip)
            })
            .collect()
    }

    fn handle_udp(&mut self, packet: &Ipv4Packet<&[u8]>) -> Vec<Output> {
        let Ok(datagram) = tspu_wire::udp::UdpDatagram::new_checked(packet.payload()) else {
            return Vec::new();
        };
        let port = datagram.dst_port();
        self.udp_received.push((port, datagram.payload().to_vec()));
        if !self.udp_echo_ports.contains(&port) {
            return Vec::new();
        }
        let reply = crate::craft::udp_packet(
            self.addr,
            port,
            packet.src_addr(),
            datagram.src_port(),
            datagram.payload(),
        );
        vec![Output::send(reply)]
    }

    fn handle_icmp(&mut self, packet: &Ipv4Packet<&[u8]>) -> Vec<Output> {
        let Ok(icmp) = Icmpv4Packet::new_checked(packet.payload()) else {
            return Vec::new();
        };
        match Icmpv4Repr::parse(&icmp) {
            Ok(Icmpv4Repr::EchoRequest { ident, seq_no }) => {
                vec![Output::send(crate::craft::icmp_echo_reply(
                    self.addr,
                    packet.src_addr(),
                    ident,
                    seq_no,
                ))]
            }
            _ => Vec::new(),
        }
    }
}

impl Application for ServerApp {
    fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if view.is_fragment() {
            // Endpoint reassembly is the caller's concern in experiments;
            // the server only answers complete packets. Fragmented probes
            // are answered by the driver-level reassembling wrapper below.
            return Vec::new();
        }
        match view.protocol() {
            Protocol::Tcp => {
                let per_port_delay = TcpSegment::new_checked(view.payload())
                    .ok()
                    .and_then(|s| self.ports.get(&s.dst_port()))
                    .map(|p| p.response_delay)
                    .unwrap_or(Duration::ZERO);
                self.handle_tcp(&view, per_port_delay)
            }
            Protocol::Udp => self.handle_udp(&view),
            Protocol::Icmp => self.handle_icmp(&view),
            Protocol::Other(_) => Vec::new(),
        }
    }
}

/// A wrapper that reassembles incoming IP fragments before handing packets
/// to an inner application — a normal OS network stack's behavior, needed
/// by the fragmentation-scan targets (§7.2: endpoints must respond to
/// fragmented SYNs for the fingerprint to be observable).
pub struct ReassemblingApp<A> {
    inner: A,
    pending: HashMap<(Ipv4Addr, Ipv4Addr, u16), Vec<Vec<u8>>>,
    /// Maximum fragments per datagram this *endpoint* accepts (Linux
    /// default: 64). The fingerprint compares this against the TSPU's 45.
    pub frag_limit: usize,
}

impl<A> ReassemblingApp<A> {
    /// Wraps `inner` with Linux-like reassembly (limit 64).
    pub fn new(inner: A) -> ReassemblingApp<A> {
        ReassemblingApp { inner, pending: HashMap::new(), frag_limit: 64 }
    }
}

impl<A: Application> Application for ReassemblingApp<A> {
    fn on_packet(&mut self, now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if !view.is_fragment() {
            return self.inner.on_packet(now, packet);
        }
        let key = (view.src_addr(), view.dst_addr(), view.ident());
        let train = self.pending.entry(key).or_default();
        train.push(packet.to_vec());
        if train.len() > self.frag_limit {
            self.pending.remove(&key);
            return Vec::new();
        }
        // Attempt reassembly whenever the last fragment is present.
        let have_last = train
            .iter()
            .any(|p| !Ipv4Packet::new_unchecked(&p[..]).more_fragments());
        if !have_last {
            return Vec::new();
        }
        let train = self.pending.remove(&key).expect("train exists");
        match tspu_wire::frag::reassemble(&train) {
            Ok(whole) => self.inner.on_packet(now, &whole),
            Err(_) => Vec::new(), // holes/overlaps: strict receiver drops
        }
    }

    fn on_timer(&mut self, now: Time) -> Vec<Output> {
        self.inner.on_timer(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::craft::TcpPacketSpec;
    use tspu_wire::tcp::TcpFlags;

    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);

    fn unwrap_sends(outputs: Vec<Output>) -> Vec<Vec<u8>> {
        outputs
            .into_iter()
            .map(|o| match o {
                Output::Send { packet, .. } => packet,
                Output::Timer { .. } => panic!("unexpected timer"),
            })
            .collect()
    }

    #[test]
    fn echo_server_full_cycle() {
        let mut app = ServerApp::echo_server(SERVER);
        let syn = TcpPacketSpec::new(CLIENT, 4000, SERVER, 7, TcpFlags::SYN).seq_ack(100, 0).build();
        let replies = unwrap_sends(app.on_packet(Time::ZERO, &syn));
        assert_eq!(replies.len(), 1);
        let synack_view = Ipv4Packet::new_checked(&replies[0][..]).unwrap();
        let synack = TcpSegment::new_checked(synack_view.payload()).unwrap();
        assert_eq!(synack.flags(), TcpFlags::SYN_ACK);

        let ack = TcpPacketSpec::new(CLIENT, 4000, SERVER, 7, TcpFlags::ACK)
            .seq_ack(101, synack.seq_number().wrapping_add(1))
            .build();
        assert!(app.on_packet(Time::ZERO, &ack).is_empty());

        let data = TcpPacketSpec::new(CLIENT, 4000, SERVER, 7, TcpFlags::PSH_ACK)
            .seq_ack(101, synack.seq_number().wrapping_add(1))
            .payload(b"echo me".to_vec())
            .build();
        let replies = unwrap_sends(app.on_packet(Time::ZERO, &data));
        // An ACK plus the echoed payload.
        let echoed: Vec<&Vec<u8>> = replies
            .iter()
            .filter(|p| {
                let ip = Ipv4Packet::new_unchecked(&p[..]);
                !TcpSegment::new_unchecked(ip.payload()).payload().is_empty()
            })
            .collect();
        assert_eq!(echoed.len(), 1);
        let ip = Ipv4Packet::new_unchecked(&echoed[0][..]);
        assert_eq!(TcpSegment::new_unchecked(ip.payload()).payload(), b"echo me");
    }

    #[test]
    fn closed_port_is_silent() {
        let mut app = ServerApp::echo_server(SERVER);
        let syn = TcpPacketSpec::new(CLIENT, 4000, SERVER, 9999, TcpFlags::SYN).build();
        assert!(app.on_packet(Time::ZERO, &syn).is_empty());
    }

    #[test]
    fn split_handshake_port_answers_syn_with_syn() {
        let mut app = ServerApp::new(SERVER)
            .with_port(ServerPort::new(443, PortBehavior::TlsServer).split_handshake());
        let syn = TcpPacketSpec::new(CLIENT, 4001, SERVER, 443, TcpFlags::SYN).build();
        let replies = unwrap_sends(app.on_packet(Time::ZERO, &syn));
        let ip = Ipv4Packet::new_unchecked(&replies[0][..]);
        let seg = TcpSegment::new_unchecked(ip.payload());
        assert!(seg.flags().is_pure_syn());
    }

    #[test]
    fn delayed_port_postpones_replies() {
        let mut app = ServerApp::new(SERVER).with_port(
            ServerPort::new(443, PortBehavior::TlsServer).delayed(Duration::from_secs(61)),
        );
        let syn = TcpPacketSpec::new(CLIENT, 4002, SERVER, 443, TcpFlags::SYN).build();
        let outputs = app.on_packet(Time::ZERO, &syn);
        assert!(matches!(
            outputs[0],
            Output::Send { delay, .. } if delay == Duration::from_secs(61)
        ));
    }

    #[test]
    fn udp_echo_and_icmp() {
        let mut app = ServerApp::new(SERVER).with_udp_echo(7);
        let probe = crate::craft::udp_packet(CLIENT, 5000, SERVER, 7, b"udp-probe");
        let replies = unwrap_sends(app.on_packet(Time::ZERO, &probe));
        assert_eq!(replies.len(), 1);

        let ping = crate::craft::icmp_echo_request(CLIENT, SERVER, 9, 1);
        let replies = unwrap_sends(app.on_packet(Time::ZERO, &ping));
        assert_eq!(replies.len(), 1);
        let ip = Ipv4Packet::new_checked(&replies[0][..]).unwrap();
        let icmp = Icmpv4Packet::new_checked(ip.payload()).unwrap();
        assert!(matches!(Icmpv4Repr::parse(&icmp).unwrap(), Icmpv4Repr::EchoReply { .. }));
    }

    #[test]
    fn reassembling_app_answers_fragmented_syn() {
        let inner = ServerApp::echo_server(SERVER);
        let mut app = ReassemblingApp::new(inner);
        let syn = TcpPacketSpec::new(CLIENT, 4003, SERVER, 7, TcpFlags::SYN)
            .payload(vec![0xaa; 512]) // SYN with payload, as in §7.2 scans
            .ident(77)
            .build();
        let fragments = tspu_wire::frag::fragment(&syn, 64).unwrap();
        let mut replies = Vec::new();
        for fragment in &fragments {
            replies = app.on_packet(Time::ZERO, fragment);
        }
        assert_eq!(replies.len(), 1, "reassembled SYN gets a SYN/ACK");
    }

    #[test]
    fn reassembling_app_enforces_endpoint_limit() {
        let inner = ServerApp::echo_server(SERVER);
        let mut app = ReassemblingApp::new(inner);
        app.frag_limit = 10;
        let syn = TcpPacketSpec::new(CLIENT, 4004, SERVER, 7, TcpFlags::SYN)
            .payload(vec![0xaa; 512])
            .build();
        let fragments = tspu_wire::frag::fragment_into(&syn, 12).unwrap();
        let mut replies = Vec::new();
        for fragment in &fragments {
            replies = app.on_packet(Time::ZERO, fragment);
        }
        assert!(replies.is_empty());
    }
}
