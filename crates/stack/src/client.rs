//! Scripted clients: the Russian-vantage-point side of every experiment.
//!
//! Clients report through a shared [`ClientReport`] handle that the
//! experiment driver keeps, mirroring the paper's methodology of capturing
//! traffic at both ends (§3).

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use tspu_netsim::{Application, Output, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};

use crate::conn::{ConnEvent, TcpConnection, TcpState};

/// What ultimately happened to a client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Never established.
    NoHandshake,
    /// Established but no response data ever arrived (symmetric drops or
    /// server unreachable).
    Silent,
    /// Received a RST (the SNI-I / IP-based signature).
    Reset,
    /// Received response data.
    GotData,
}

/// Shared observation record for one client connection.
#[derive(Debug, Default)]
pub struct ClientReportInner {
    pub established_at: Option<Time>,
    pub reset_at: Option<Time>,
    pub data: Vec<u8>,
    /// Count of data-bearing segments received.
    pub data_segments: usize,
    pub bytes_received: usize,
    pub first_data_at: Option<Time>,
    pub last_data_at: Option<Time>,
}

/// Cloneable handle to a client's observations.
///
/// `Arc<Mutex<…>>`-backed so clients (and the networks carrying them) are
/// `Send`; within one simulation the lock is uncontended.
#[derive(Clone, Default)]
pub struct ClientReport {
    inner: Arc<Mutex<ClientReportInner>>,
}

impl ClientReport {
    /// A fresh report handle.
    pub fn new() -> ClientReport {
        ClientReport::default()
    }

    /// Reads the record.
    pub fn read(&self) -> MutexGuard<'_, ClientReportInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Classifies the outcome.
    pub fn outcome(&self) -> ClientOutcome {
        let inner = self.read();
        if inner.reset_at.is_some() {
            ClientOutcome::Reset
        } else if !inner.data.is_empty() {
            ClientOutcome::GotData
        } else if inner.established_at.is_some() {
            ClientOutcome::Silent
        } else {
            ClientOutcome::NoHandshake
        }
    }

    /// Observed goodput over the data reception interval, in bytes/second.
    /// `None` before any data arrived.
    pub fn goodput(&self) -> Option<f64> {
        let inner = self.read();
        let (first, last) = (inner.first_data_at?, inner.last_data_at?);
        let secs = (last - first).as_secs_f64().max(0.1);
        Some(inner.bytes_received as f64 / secs)
    }
}

/// How the client ships its request once established (client-side
/// circumvention strategies, §8).
#[derive(Debug, Clone, Default)]
pub struct SendShaping {
    /// Force TCP segmentation into chunks of this many bytes.
    pub segment_bytes: Option<usize>,
    /// Fragment the request packet at the IP layer into payloads of this
    /// many bytes.
    pub ip_fragment_bytes: Option<usize>,
    /// Send these raw TCP payloads (with this TTL) before the request —
    /// the TTL-limited insertion strategy the paper found mitigated.
    pub decoys: Vec<(u8, Vec<u8>)>,
}

/// Configuration of one scripted TCP client.
#[derive(Debug, Clone)]
pub struct TcpClientConfig {
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub dst: Ipv4Addr,
    pub dst_port: u16,
    /// Bytes to send once established (e.g. a ClientHello).
    pub request: Vec<u8>,
    pub shaping: SendShaping,
}

impl TcpClientConfig {
    /// A plain client that sends `request` to `dst:dst_port`.
    pub fn new(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16, request: Vec<u8>) -> Self {
        TcpClientConfig { src, src_port, dst, dst_port, request, shaping: SendShaping::default() }
    }
}

/// The client application. Create with [`TcpClient::start`], which returns
/// the application, the report handle, and the initial SYN to inject.
pub struct TcpClient {
    config: TcpClientConfig,
    conn: TcpConnection,
    report: ClientReport,
    request_sent: bool,
    ip_ident: u16,
}

impl TcpClient {
    /// Builds the client; the returned packet is the SYN the driver must
    /// send from the client's host to begin.
    pub fn start(config: TcpClientConfig) -> (TcpClient, ClientReport, Vec<u8>) {
        let mut conn = TcpConnection::new(config.src, config.src_port, config.dst, config.dst_port);
        conn.connect();
        let syn = conn.poll_output().remove(0);
        let syn_packet = {
            let seg = syn.build(config.src, config.dst);
            Ipv4Repr::new(config.src, config.dst, Protocol::Tcp, seg.len()).build(&seg)
        };
        let report = ClientReport::new();
        let client = TcpClient {
            ip_ident: config.src_port ^ 0x5aa5,
            config,
            conn,
            report: report.clone(),
            request_sent: false,
        };
        (client, report, syn_packet)
    }

    fn wrap_segment(&mut self, repr: tspu_wire::tcp::TcpRepr) -> Vec<Vec<u8>> {
        let seg = repr.build(self.config.src, self.config.dst);
        let mut ip = Ipv4Repr::new(self.config.src, self.config.dst, Protocol::Tcp, seg.len());
        self.ip_ident = self.ip_ident.wrapping_add(1);
        ip.ident = self.ip_ident;
        let packet = ip.build(&seg);
        // IP-fragmentation shaping applies to data-bearing segments only.
        if let Some(mtu) = self.config.shaping.ip_fragment_bytes {
            if !repr.payload.is_empty() {
                if let Ok(frags) = tspu_wire::frag::fragment(&packet, mtu) {
                    return frags;
                }
            }
        }
        vec![packet]
    }

    fn pump(&mut self, now: Time) -> Vec<Output> {
        let mut outputs = Vec::new();
        for event in self.conn.take_events() {
            match event {
                ConnEvent::Established => {
                    self.report.read().established_at.get_or_insert(now);
                }
                ConnEvent::ResetReceived => {
                    self.report.read().reset_at.get_or_insert(now);
                }
                ConnEvent::DataReceived(data) => {
                    let mut inner = self.report.read();
                    inner.first_data_at.get_or_insert(now);
                    inner.last_data_at = Some(now);
                    inner.bytes_received += data.len();
                    inner.data_segments += 1;
                    inner.data.extend_from_slice(&data);
                }
            }
        }
        if self.conn.state() == TcpState::Established && !self.request_sent {
            self.request_sent = true;
            // Decoys first (TTL-limited insertion).
            for (ttl, payload) in self.config.shaping.decoys.clone() {
                let decoy = crate::craft::TcpPacketSpec::new(
                    self.config.src,
                    self.config.src_port,
                    self.config.dst,
                    self.config.dst_port,
                    TcpFlags::PSH_ACK,
                )
                .ttl(ttl)
                .payload(payload)
                .build();
                outputs.push(Output::send(decoy));
            }
            if let Some(chunk) = self.config.shaping.segment_bytes {
                self.conn.set_mss(chunk);
            }
            let request = self.config.request.clone();
            self.conn.send(&request);
        }
        for repr in self.conn.poll_output() {
            for packet in self.wrap_segment(repr) {
                outputs.push(Output::send(packet));
            }
        }
        outputs
    }
}

impl Application for TcpClient {
    fn on_packet(&mut self, now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if view.protocol() != Protocol::Tcp || view.is_fragment() {
            return Vec::new();
        }
        let Ok(segment) = TcpSegment::new_checked(view.payload()) else {
            return Vec::new();
        };
        if segment.dst_port() != self.config.src_port || view.src_addr() != self.config.dst {
            return Vec::new();
        }
        self.conn.on_segment(&segment);
        self.pump(now)
    }
}

/// Cloneable, `Send` counter of datagrams a [`QuicClient`] received.
#[derive(Clone, Default)]
pub struct ReplyCounter(Arc<AtomicUsize>);

impl ReplyCounter {
    /// The count so far.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// What [`QuicClient::start`] hands the driver: the app, the shared
/// reply counter, and the initial timed packets to inject.
pub type QuicClientStart = (QuicClient, ReplyCounter, Vec<(Duration, Vec<u8>)>);

/// A QUIC client: fires one Initial-sized datagram, then `follow_ups`
/// smaller datagrams at 100 ms intervals, and records replies.
pub struct QuicClient {
    src: Ipv4Addr,
    src_port: u16,
    dst: Ipv4Addr,
    replies: ReplyCounter,
}

impl QuicClient {
    /// Builds the client and the initial packets to send (the driver
    /// injects them). Returns (app, replies-handle, packets).
    pub fn start(
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        version: tspu_wire::quic::QuicVersion,
        follow_ups: usize,
    ) -> QuicClientStart {
        let replies = ReplyCounter::default();
        let mut packets = Vec::new();
        packets.push((
            Duration::ZERO,
            crate::craft::udp_packet(src, src_port, dst, 443, &tspu_wire::quic::initial_payload(version, 1200)),
        ));
        for i in 0..follow_ups {
            packets.push((
                Duration::from_millis(100 * (i as u64 + 1)),
                crate::craft::udp_packet(src, src_port, dst, 443, &[0x5a; 120]),
            ));
        }
        let client = QuicClient { src, src_port, dst, replies: replies.clone() };
        (client, replies, packets)
    }
}

impl Application for QuicClient {
    fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if view.protocol() != Protocol::Udp || view.src_addr() != self.dst {
            return Vec::new();
        }
        let Ok(datagram) = tspu_wire::udp::UdpDatagram::new_checked(view.payload()) else {
            return Vec::new();
        };
        if datagram.dst_port() == self.src_port {
            self.replies.bump();
        }
        let _ = self.src;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PortBehavior, ServerApp, ServerPort};
    use tspu_netsim::{Network, Route};
    use tspu_wire::tls::ClientHelloBuilder;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 44);

    fn run_client(config: TcpClientConfig, server: ServerApp) -> ClientReport {
        let mut net = Network::with_default_latency();
        let c = net.add_host(CLIENT);
        let s = net.add_host_with_app(SERVER, Box::new(server));
        net.set_route_symmetric(c, s, Route::direct());
        let (app, report, syn) = TcpClient::start(config);
        net.set_app(c, Box::new(app));
        net.send_from(c, syn);
        net.run_until_idle();
        report
    }

    #[test]
    fn tls_client_gets_server_hello() {
        let ch = ClientHelloBuilder::new("example.org").build();
        let config = TcpClientConfig::new(CLIENT, 44000, SERVER, 443, ch);
        let report = run_client(config, ServerApp::https_site(SERVER));
        assert_eq!(report.outcome(), ClientOutcome::GotData);
        assert!(report.read().data.starts_with(&[0x16, 0x03, 0x03]));
    }

    #[test]
    fn echo_client_roundtrip() {
        let config = TcpClientConfig::new(CLIENT, 44001, SERVER, 7, b"bounce".to_vec());
        let report = run_client(config, ServerApp::echo_server(SERVER));
        assert_eq!(report.read().data, b"bounce");
    }

    #[test]
    fn client_against_split_handshake_server() {
        let server = ServerApp::new(SERVER)
            .with_port(ServerPort::new(443, PortBehavior::TlsServer).split_handshake());
        let ch = ClientHelloBuilder::new("example.org").build();
        let config = TcpClientConfig::new(CLIENT, 44002, SERVER, 443, ch);
        let report = run_client(config, server);
        assert_eq!(report.outcome(), ClientOutcome::GotData);
    }

    #[test]
    fn small_window_server_forces_many_segments() {
        let server = ServerApp::new(SERVER)
            .with_port(ServerPort::new(443, PortBehavior::TlsServer).small_window(64));
        let ch = ClientHelloBuilder::new("example.org").build();
        let config = TcpClientConfig::new(CLIENT, 44003, SERVER, 443, ch);
        let report = run_client(config, server);
        // The handshake + data still complete.
        assert_eq!(report.outcome(), ClientOutcome::GotData);
    }

    #[test]
    fn client_side_segmentation() {
        let ch = ClientHelloBuilder::new("example.org").build();
        let mut config = TcpClientConfig::new(CLIENT, 44004, SERVER, 443, ch);
        config.shaping.segment_bytes = Some(16);
        let report = run_client(config, ServerApp::https_site(SERVER));
        assert_eq!(report.outcome(), ClientOutcome::GotData);
    }

    #[test]
    fn silent_outcome_when_no_server() {
        // Host exists but has no app: handshake never completes.
        let mut net = Network::with_default_latency();
        let c = net.add_host(CLIENT);
        let s = net.add_host(SERVER);
        net.set_route_symmetric(c, s, Route::direct());
        let (app, report, syn) =
            TcpClient::start(TcpClientConfig::new(CLIENT, 44005, SERVER, 443, vec![1]));
        net.set_app(c, Box::new(app));
        net.send_from(c, syn);
        net.run_until_idle();
        assert_eq!(report.outcome(), ClientOutcome::NoHandshake);
    }

    #[test]
    fn quic_client_counts_replies() {
        let mut net = Network::with_default_latency();
        let c = net.add_host(CLIENT);
        let s = net.add_host_with_app(SERVER, Box::new(ServerApp::new(SERVER).with_udp_echo(443)));
        net.set_route_symmetric(c, s, Route::direct());
        let (app, replies, packets) =
            QuicClient::start(CLIENT, 45000, SERVER, tspu_wire::quic::QuicVersion::V1, 3);
        net.set_app(c, Box::new(app));
        for (delay, packet) in packets {
            let _ = delay;
            net.send_from(c, packet);
        }
        net.run_until_idle();
        assert_eq!(replies.get(), 4);
    }
}
