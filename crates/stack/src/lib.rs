//! # tspu-stack
//!
//! Minimal endpoint host stacks for the TSPU reproduction: enough TCP to
//! perform every handshake shape the paper exercises (normal three-way,
//! split handshake, simultaneous open, small advertised windows), plus the
//! application roles its experiments need — TLS clients and servers, echo
//! servers (Quack, §7.2), generic TCP responders, QUIC initiators, and
//! ICMP echo.
//!
//! The stack is deliberately small: in-order delivery is guaranteed by the
//! simulator unless fault injection is configured, so there is no
//! retransmission or reordering machinery — but sequence/ack numbers,
//! windows, and segmentation are real, because the TSPU reacts to packet
//! *shapes* (flags, sizes, order), and circumvention strategies manipulate
//! exactly those.
//!
//! Layers:
//! * [`craft`] — raw packet construction helpers shared by all probes.
//! * [`conn`] — a sans-IO TCP connection state machine.
//! * [`server`] — a host [`tspu_netsim::Application`] serving TCP ports
//!   (echo / canned response / TLS / sink), UDP ports, and ICMP echo, with
//!   configurable handshake behavior per port (the server-side
//!   circumvention strategies of §8).
//! * [`client`] — scripted TCP/TLS and QUIC clients that record outcomes
//!   through shared handles for the experiment driver to inspect.

pub mod client;
pub mod conn;
pub mod craft;
pub mod server;
pub mod steady;

pub use client::{ClientOutcome, ClientReport, QuicClient, TcpClient, TcpClientConfig};
pub use conn::{ConnEvent, HandshakeMode, TcpConnection, TcpState};
pub use server::{PortBehavior, ServerApp, ServerPort};
pub use steady::{ProbeLog, ProbeRecord, SteadyProbe, SteadyProbeConfig};
