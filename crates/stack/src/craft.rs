//! Raw packet construction helpers, shared by the host stacks and by every
//! measurement probe in `tspu-measure`.

use std::net::Ipv4Addr;

use tspu_wire::icmpv4::Icmpv4Repr;
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};
use tspu_wire::udp::UdpRepr;

/// Everything needed to emit one TCP segment inside an IPv4 packet.
#[derive(Debug, Clone)]
pub struct TcpPacketSpec {
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub dst: Ipv4Addr,
    pub dst_port: u16,
    pub flags: TcpFlags,
    pub seq: u32,
    pub ack: u32,
    pub window: u16,
    pub ttl: u8,
    pub ident: u16,
    pub payload: Vec<u8>,
}

impl TcpPacketSpec {
    /// A sensible default: TTL 64, window 64240, seq/ack 0, empty payload.
    pub fn new(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16, flags: TcpFlags) -> Self {
        TcpPacketSpec {
            src,
            src_port,
            dst,
            dst_port,
            flags,
            seq: 0,
            ack: 0,
            window: 64240,
            ttl: 64,
            ident: 0,
            payload: Vec::new(),
        }
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Sets seq and ack numbers.
    pub fn seq_ack(mut self, seq: u32, ack: u32) -> Self {
        self.seq = seq;
        self.ack = ack;
        self
    }

    /// Sets the IP TTL (TTL-limited probing, §7.1).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IP identification (fragmentation probes key on it).
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Sets the advertised window.
    pub fn window(mut self, window: u16) -> Self {
        self.window = window;
        self
    }

    /// Builds the full IPv4 packet bytes.
    pub fn build(&self) -> Vec<u8> {
        self.build_with(&self.payload)
    }

    /// [`TcpPacketSpec::build`] with `payload` in place of `self.payload`:
    /// one buffer allocation, headers and checksums written in place. The
    /// probe hot path crafts thousands of volley packets per scan, so the
    /// spec borrows the scripted payload instead of owning a copy.
    pub fn build_with(&self, payload: &[u8]) -> Vec<u8> {
        let mut buffer = Vec::new();
        self.build_into(payload, &mut buffer);
        buffer
    }

    /// [`TcpPacketSpec::build_with`] into a caller-provided buffer, so scan
    /// loops can recycle packet allocations. The buffer is cleared and
    /// resized; every byte of the result is written.
    pub fn build_into(&self, payload: &[u8], buffer: &mut Vec<u8>) {
        use tspu_wire::{ipv4, tcp};
        let tcp_len = tcp::HEADER_LEN + payload.len();
        buffer.clear();
        buffer.resize(ipv4::HEADER_LEN + tcp_len, 0);
        buffer[ipv4::HEADER_LEN + tcp::HEADER_LEN..].copy_from_slice(payload);
        {
            let mut segment = TcpSegment::new_unchecked(&mut buffer[ipv4::HEADER_LEN..]);
            segment.set_src_port(self.src_port);
            segment.set_dst_port(self.dst_port);
            segment.set_seq_number(self.seq);
            segment.set_ack_number(self.ack);
            segment.set_header_len(tcp::HEADER_LEN);
            segment.set_flags(self.flags);
            segment.set_window(self.window);
            segment.set_urgent(0);
            segment.fill_checksum(self.src, self.dst);
        }
        let mut ip = Ipv4Repr::new(self.src, self.dst, Protocol::Tcp, tcp_len);
        ip.ttl = self.ttl;
        ip.ident = self.ident;
        let mut packet = tspu_wire::ipv4::Ipv4Packet::new_unchecked(&mut buffer[..]);
        ip.emit(&mut packet);
    }
}

/// Builds a UDP datagram inside an IPv4 packet.
pub fn udp_packet(
    src: Ipv4Addr,
    src_port: u16,
    dst: Ipv4Addr,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let datagram = UdpRepr::new(src_port, dst_port, payload.to_vec()).build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Udp, datagram.len()).build(&datagram)
}

/// Builds an ICMP echo request inside an IPv4 packet.
pub fn icmp_echo_request(src: Ipv4Addr, dst: Ipv4Addr, ident: u16, seq_no: u16) -> Vec<u8> {
    let icmp = Icmpv4Repr::EchoRequest { ident, seq_no }.build();
    Ipv4Repr::new(src, dst, Protocol::Icmp, icmp.len()).build(&icmp)
}

/// Builds an ICMP echo reply inside an IPv4 packet.
pub fn icmp_echo_reply(src: Ipv4Addr, dst: Ipv4Addr, ident: u16, seq_no: u16) -> Vec<u8> {
    let icmp = Icmpv4Repr::EchoReply { ident, seq_no }.build();
    Ipv4Repr::new(src, dst, Protocol::Icmp, icmp.len()).build(&icmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::ipv4::Ipv4Packet;
    use tspu_wire::tcp::TcpSegment;
    use tspu_wire::udp::UdpDatagram;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn tcp_spec_builds_valid_packet() {
        let bytes = TcpPacketSpec::new(A, 1234, B, 443, TcpFlags::SYN)
            .seq_ack(100, 0)
            .ttl(3)
            .window(512)
            .payload(b"x".to_vec())
            .build();
        let ip = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.ttl(), 3);
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(A, B));
        assert_eq!(tcp.src_port(), 1234);
        assert_eq!(tcp.window(), 512);
        assert_eq!(tcp.payload(), b"x");
    }

    #[test]
    fn udp_builds_valid_packet() {
        let bytes = udp_packet(A, 5000, B, 443, &[0xaa; 1200]);
        let ip = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(A, B));
        assert_eq!(udp.payload().len(), 1200);
    }

    #[test]
    fn icmp_builders() {
        for bytes in [icmp_echo_request(A, B, 7, 1), icmp_echo_reply(B, A, 7, 1)] {
            let ip = Ipv4Packet::new_checked(&bytes[..]).unwrap();
            assert!(ip.verify_checksum());
            assert_eq!(u8::from(ip.protocol()), 1);
        }
    }
}
