//! A sans-IO TCP connection state machine.
//!
//! Handles every handshake shape from the paper: normal three-way, split
//! handshake (§8: server answers a SYN with a bare SYN; an *unmodified*
//! client then SYN/ACKs), and simultaneous open. Data transfer respects
//! the peer's advertised window and the MSS — which is how the server-side
//! "small window" strategy (§8) forces an unmodified client to segment its
//! ClientHello.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};

/// Connection states (endpoint view, not the TSPU's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    Listen,
    /// We sent a SYN, waiting for the peer.
    SynSent,
    /// We received a SYN and answered (with SYN/ACK, or with a bare SYN in
    /// split-handshake mode), waiting for the final confirmation.
    SynReceived,
    Established,
    /// The peer reset the connection.
    Reset,
}

/// How this endpoint behaves during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeMode {
    /// RFC 793 behavior.
    Normal,
    /// Server-side split handshake (§8): answer a SYN with a bare SYN.
    SplitHandshake,
}

/// Events surfaced to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    Established,
    DataReceived(Vec<u8>),
    ResetReceived,
}

/// The connection. Feed it segments with [`TcpConnection::on_segment`],
/// queue app data with [`TcpConnection::send`], and drain outgoing
/// segments with [`TcpConnection::poll_output`].
#[derive(Debug)]
pub struct TcpConnection {
    pub local_addr: Ipv4Addr,
    pub local_port: u16,
    pub peer_addr: Ipv4Addr,
    pub peer_port: u16,
    state: TcpState,
    mode: HandshakeMode,
    /// Next sequence number we will send.
    snd_nxt: u32,
    /// Next sequence number we expect from the peer.
    rcv_nxt: u32,
    /// The peer's last advertised window.
    peer_window: u16,
    /// Our advertised window.
    local_window: u16,
    mss: usize,
    send_queue: VecDeque<u8>,
    outgoing: Vec<TcpRepr>,
    events: Vec<ConnEvent>,
}

/// Default MSS used by endpoints.
pub const DEFAULT_MSS: usize = 1460;

impl TcpConnection {
    /// Creates a closed connection between the given endpoints.
    pub fn new(
        local_addr: Ipv4Addr,
        local_port: u16,
        peer_addr: Ipv4Addr,
        peer_port: u16,
    ) -> TcpConnection {
        TcpConnection {
            local_addr,
            local_port,
            peer_addr,
            peer_port,
            state: TcpState::Closed,
            mode: HandshakeMode::Normal,
            snd_nxt: 0x1000_0000u32.wrapping_add(u32::from(local_port) << 8),
            rcv_nxt: 0,
            peer_window: 64240,
            local_window: 64240,
            mss: DEFAULT_MSS,
            send_queue: VecDeque::new(),
            outgoing: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Sets the handshake mode (server-side strategies).
    pub fn set_mode(&mut self, mode: HandshakeMode) {
        self.mode = mode;
    }

    /// Sets the window this endpoint advertises (server-side small-window
    /// strategy).
    pub fn set_local_window(&mut self, window: u16) {
        self.local_window = window;
    }

    /// Overrides the MSS.
    pub fn set_mss(&mut self, mss: usize) {
        self.mss = mss.max(1);
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Starts listening (server role).
    pub fn listen(&mut self) {
        self.state = TcpState::Listen;
    }

    /// Actively opens the connection (client role), emitting a SYN.
    pub fn connect(&mut self) {
        self.state = TcpState::SynSent;
        let mut syn = self.segment(TcpFlags::SYN);
        syn.ack_number = 0;
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN occupies one seq
        self.outgoing.push(syn);
    }

    /// Queues application data for transmission once established.
    pub fn send(&mut self, data: &[u8]) {
        self.send_queue.extend(data);
    }

    /// Drains pending events for the application.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains outgoing segments (already sequenced) to be wrapped in IP.
    pub fn poll_output(&mut self) -> Vec<TcpRepr> {
        self.flush_data();
        std::mem::take(&mut self.outgoing)
    }

    fn segment(&self, flags: TcpFlags) -> TcpRepr {
        let mut repr = TcpRepr::new(self.local_port, self.peer_port, flags);
        repr.seq_number = self.snd_nxt;
        repr.ack_number = self.rcv_nxt;
        repr.window = self.local_window;
        repr
    }

    /// Moves queued data into outgoing segments, respecting MSS and the
    /// peer's advertised window (clamped per flight, not tracked in
    /// flight: the simulator acks every round trip).
    fn flush_data(&mut self) {
        if self.state != TcpState::Established {
            return;
        }
        let chunk_limit = self.mss.min(self.peer_window.max(1) as usize);
        while !self.send_queue.is_empty() {
            let take = chunk_limit.min(self.send_queue.len());
            let chunk: Vec<u8> = self.send_queue.drain(..take).collect();
            let mut seg = self.segment(TcpFlags::PSH_ACK);
            seg.payload = chunk;
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
            self.outgoing.push(seg);
        }
    }

    /// Processes one incoming segment; replies (if any) are queued on the
    /// outgoing list.
    pub fn on_segment<T: AsRef<[u8]>>(&mut self, segment: &TcpSegment<T>) {
        let flags = segment.flags();
        self.peer_window = segment.window();

        if flags.rst() {
            self.state = TcpState::Reset;
            self.events.push(ConnEvent::ResetReceived);
            return;
        }

        match self.state {
            TcpState::Listen => {
                if flags.is_pure_syn() {
                    self.rcv_nxt = segment.seq_number().wrapping_add(1);
                    match self.mode {
                        HandshakeMode::Normal => {
                            let synack = self.segment(TcpFlags::SYN_ACK);
                            self.snd_nxt = self.snd_nxt.wrapping_add(1);
                            self.outgoing.push(synack);
                            self.state = TcpState::SynReceived;
                        }
                        HandshakeMode::SplitHandshake => {
                            // §8: strip the ACK flag — send a bare SYN.
                            let mut syn = self.segment(TcpFlags::SYN);
                            syn.ack_number = 0;
                            self.snd_nxt = self.snd_nxt.wrapping_add(1);
                            self.outgoing.push(syn);
                            self.state = TcpState::SynReceived;
                        }
                    }
                }
            }
            TcpState::SynSent => {
                if flags.is_syn_ack() {
                    // Normal step 2: ACK and establish.
                    self.rcv_nxt = segment.seq_number().wrapping_add(1);
                    let ack = self.segment(TcpFlags::ACK);
                    self.outgoing.push(ack);
                    self.establish();
                } else if flags.is_pure_syn() {
                    // Split handshake or simultaneous open: an unmodified
                    // client answers the bare SYN with a SYN/ACK
                    // (re-using its initial sequence number).
                    self.rcv_nxt = segment.seq_number().wrapping_add(1);
                    let mut synack = self.segment(TcpFlags::SYN_ACK);
                    synack.seq_number = self.snd_nxt.wrapping_sub(1);
                    self.outgoing.push(synack);
                    self.state = TcpState::SynReceived;
                }
            }
            TcpState::SynReceived => {
                if flags.is_syn_ack() {
                    // Split handshake server receiving the client's
                    // SYN/ACK: confirm with an ACK and establish.
                    self.rcv_nxt = segment.seq_number().wrapping_add(1);
                    let ack = self.segment(TcpFlags::ACK);
                    self.outgoing.push(ack);
                    self.establish();
                } else if flags.ack() {
                    self.establish();
                    self.deliver_payload(segment);
                }
            }
            TcpState::Established => {
                self.deliver_payload(segment);
            }
            TcpState::Closed | TcpState::Reset => {}
        }
    }

    fn establish(&mut self) {
        if self.state != TcpState::Established {
            self.state = TcpState::Established;
            self.events.push(ConnEvent::Established);
        }
    }

    fn deliver_payload<T: AsRef<[u8]>>(&mut self, segment: &TcpSegment<T>) {
        let payload = segment.payload();
        if payload.is_empty() {
            return;
        }
        self.rcv_nxt = segment.seq_number().wrapping_add(payload.len() as u32);
        self.events.push(ConnEvent::DataReceived(payload.to_vec()));
        // Acknowledge data promptly (no delayed ACK).
        let ack = self.segment(TcpFlags::ACK);
        self.outgoing.push(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    /// Shuttles segments between two connections until both go quiet.
    fn pump(a: &mut TcpConnection, b: &mut TcpConnection) {
        for _ in 0..64 {
            let from_a = a.poll_output();
            let from_b = b.poll_output();
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for repr in from_a {
                let bytes = repr.build(a.local_addr, a.peer_addr);
                b.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
            }
            for repr in from_b {
                let bytes = repr.build(b.local_addr, b.peer_addr);
                a.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
            }
        }
        panic!("connections did not quiesce");
    }

    fn pair() -> (TcpConnection, TcpConnection) {
        let mut client = TcpConnection::new(C, 40000, S, 443);
        let mut server = TcpConnection::new(S, 443, C, 40000);
        server.listen();
        client.connect();
        (client, server)
    }

    #[test]
    fn normal_handshake_and_data() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);

        client.send(b"hello over tcp");
        pump(&mut client, &mut server);
        let events = server.take_events();
        assert!(events.contains(&ConnEvent::DataReceived(b"hello over tcp".to_vec())));
    }

    #[test]
    fn split_handshake_with_unmodified_client() {
        let mut client = TcpConnection::new(C, 40001, S, 443);
        let mut server = TcpConnection::new(S, 443, C, 40001);
        server.set_mode(HandshakeMode::SplitHandshake);
        server.listen();
        client.connect();
        pump(&mut client, &mut server);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);

        // Data flows both ways afterwards.
        client.send(b"request");
        server.send(b"response");
        pump(&mut client, &mut server);
        assert!(client
            .take_events()
            .contains(&ConnEvent::DataReceived(b"response".to_vec())));
        assert!(server
            .take_events()
            .contains(&ConnEvent::DataReceived(b"request".to_vec())));
    }

    #[test]
    fn simultaneous_open() {
        let mut a = TcpConnection::new(C, 40002, S, 443);
        let mut b = TcpConnection::new(S, 443, C, 40002);
        a.connect();
        b.connect();
        pump(&mut a, &mut b);
        assert_eq!(a.state(), TcpState::Established);
        assert_eq!(b.state(), TcpState::Established);
    }

    #[test]
    fn small_window_forces_segmentation() {
        let mut client = TcpConnection::new(C, 40003, S, 443);
        let mut server = TcpConnection::new(S, 443, C, 40003);
        server.set_local_window(64); // brdgrd-style (§8)
        server.listen();
        client.connect();
        pump(&mut client, &mut server);

        client.send(&[0xab; 300]);
        let segments = client.poll_output();
        let data_segments: Vec<_> = segments.iter().filter(|s| !s.payload.is_empty()).collect();
        assert!(data_segments.len() >= 5, "expected ≥5 segments, got {}", data_segments.len());
        assert!(data_segments.iter().all(|s| s.payload.len() <= 64));
    }

    #[test]
    fn rst_resets_connection() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server);
        let mut rst = TcpRepr::new(443, 40000, TcpFlags::RST_ACK);
        rst.seq_number = 1;
        let bytes = rst.build(S, C);
        client.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
        assert_eq!(client.state(), TcpState::Reset);
        assert!(client.take_events().contains(&ConnEvent::ResetReceived));
        let _ = server;
    }

    #[test]
    fn sequence_numbers_advance_with_data() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server);
        client.send(b"abcd");
        let seg1 = client.poll_output().pop().unwrap();
        {
            let repr = &seg1;
            let bytes = repr.build(C, S);
            server.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
        }
        client.send(b"efgh");
        let seg2 = client.poll_output().pop().unwrap();
        assert_eq!(seg2.seq_number, seg1.seq_number.wrapping_add(4));
    }

    #[test]
    fn data_before_establishment_is_not_sent() {
        let mut client = TcpConnection::new(C, 40004, S, 443);
        client.connect();
        client.send(b"early");
        let out = client.poll_output();
        // Only the SYN; the data waits for establishment.
        assert_eq!(out.len(), 1);
        assert!(out[0].flags.is_pure_syn());
    }
}
