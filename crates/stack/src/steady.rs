//! Steady-state traffic driver: a self-rescheduling client that opens a
//! fresh TLS connection to the same name every `period` of virtual time.
//!
//! This is the traffic half of the registry-churn experiments: while a
//! `PolicyUpdater` fires blocklist deltas at scheduled virtual instants,
//! a [`SteadyProbe`] keeps identical flows running through the path, so
//! the first probe to draw a RST timestamps exactly when the new rule
//! started being enforced. Every probe is its own flow on its own source
//! port (a pure function of the probe index), which keeps the driver —
//! and everything measured from it — deterministic.

use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use tspu_netsim::{Application, Output, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::TcpSegment;

use crate::conn::{ConnEvent, TcpConnection, TcpState};

/// What one probe connection observed, all in virtual time.
#[derive(Debug, Clone)]
pub struct ProbeRecord {
    pub index: u32,
    pub port: u16,
    /// When the SYN left the client.
    pub started_at: Time,
    pub established_at: Option<Time>,
    pub reset_at: Option<Time>,
    /// Response bytes received (the open-before-the-delta signal).
    pub bytes_received: usize,
}

/// Shared observation log of a [`SteadyProbe`] — clone before installing
/// the app, read after the run.
#[derive(Clone, Default)]
pub struct ProbeLog {
    inner: Arc<Mutex<ProbeLogInner>>,
}

#[derive(Default)]
struct ProbeLogInner {
    probes: Vec<ProbeRecord>,
    first_reset: Option<(u32, Time)>,
}

impl ProbeLog {
    fn read(&self) -> MutexGuard<'_, ProbeLogInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The probes launched so far, in launch order.
    pub fn probes(&self) -> Vec<ProbeRecord> {
        self.read().probes.clone()
    }

    /// `(probe index, virtual instant)` of the first RST any probe saw.
    pub fn first_reset(&self) -> Option<(u32, Time)> {
        self.read().first_reset
    }

    /// Probes that completed with response data before the first reset.
    pub fn open_before_reset(&self) -> usize {
        let inner = self.read();
        inner.probes.iter().filter(|p| p.bytes_received > 0 && p.reset_at.is_none()).count()
    }

    /// Handshake RTT estimate: `established - started` of the first probe
    /// that established (SYN out to SYN/ACK back is one round trip).
    pub fn handshake_rtt(&self) -> Option<Duration> {
        self.read()
            .probes
            .iter()
            .find_map(|p| Some(p.established_at?.since(p.started_at)))
    }
}

/// Configuration of a [`SteadyProbe`].
#[derive(Debug, Clone)]
pub struct SteadyProbeConfig {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub dst_port: u16,
    /// Source port of probe `i` is `port_base + i` (caller keeps the range
    /// clear of other traffic).
    pub port_base: u16,
    /// Virtual time between probe launches.
    pub period: Duration,
    /// Bytes sent once established (e.g. a ClientHello).
    pub request: Vec<u8>,
    /// Stop after this many probes even if no reset ever arrives.
    pub max_probes: u32,
}

struct ActiveProbe {
    index: u32,
    port: u16,
    conn: TcpConnection,
    request_sent: bool,
}

/// The driver application. Install on the client host and bootstrap with
/// one `Network::arm_timer(host, Duration::ZERO)`; it reschedules itself
/// every `period` until it observes a RST or exhausts `max_probes`.
pub struct SteadyProbe {
    config: SteadyProbeConfig,
    active: Vec<ActiveProbe>,
    launched: u32,
    ip_ident: u16,
    log: ProbeLog,
}

impl SteadyProbe {
    /// Builds the driver and its shared log.
    pub fn new(config: SteadyProbeConfig) -> (SteadyProbe, ProbeLog) {
        let log = ProbeLog::default();
        let probe = SteadyProbe {
            ip_ident: config.port_base ^ 0x3c3c,
            config,
            active: Vec::new(),
            launched: 0,
            log: log.clone(),
        };
        (probe, log)
    }

    fn wrap(&mut self, src_port: u16, repr: tspu_wire::tcp::TcpRepr) -> Vec<u8> {
        let _ = src_port;
        let seg = repr.build(self.config.src, self.config.dst);
        let mut ip = Ipv4Repr::new(self.config.src, self.config.dst, Protocol::Tcp, seg.len());
        self.ip_ident = self.ip_ident.wrapping_add(1);
        ip.ident = self.ip_ident;
        ip.build(&seg)
    }

    fn pump(&mut self, slot: usize, now: Time) -> Vec<Output> {
        let request = self.config.request.clone();
        let (index, port, established, reset, bytes, reprs) = {
            let probe = &mut self.active[slot];
            let mut established = None;
            let mut reset = None;
            let mut bytes = 0usize;
            for event in probe.conn.take_events() {
                match event {
                    ConnEvent::Established => established = Some(now),
                    ConnEvent::ResetReceived => reset = Some(now),
                    ConnEvent::DataReceived(data) => bytes += data.len(),
                }
            }
            if probe.conn.state() == TcpState::Established && !probe.request_sent {
                probe.request_sent = true;
                probe.conn.send(&request);
            }
            (probe.index, probe.port, established, reset, bytes, probe.conn.poll_output())
        };
        let mut outputs = Vec::with_capacity(reprs.len());
        for repr in reprs {
            let packet = self.wrap(port, repr);
            outputs.push(Output::send(packet));
        }
        let mut inner = self.log.read();
        if let Some(at) = reset {
            if inner.first_reset.is_none() {
                inner.first_reset = Some((index, at));
            }
        }
        let record = &mut inner.probes[index as usize];
        if let Some(at) = established {
            record.established_at.get_or_insert(at);
        }
        if let Some(at) = reset {
            record.reset_at.get_or_insert(at);
        }
        record.bytes_received += bytes;
        outputs
    }
}

impl Application for SteadyProbe {
    fn on_packet(&mut self, now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if view.protocol() != Protocol::Tcp || view.src_addr() != self.config.dst {
            return Vec::new();
        }
        let Ok(segment) = TcpSegment::new_checked(view.payload()) else {
            return Vec::new();
        };
        let Some(slot) = self.active.iter().position(|p| p.port == segment.dst_port()) else {
            return Vec::new();
        };
        self.active[slot].conn.on_segment(&segment);
        self.pump(slot, now)
    }

    fn on_timer(&mut self, now: Time) -> Vec<Output> {
        if self.log.first_reset().is_some() || self.launched >= self.config.max_probes {
            return Vec::new();
        }
        let index = self.launched;
        self.launched += 1;
        let port = self.config.port_base.wrapping_add(index as u16);
        let mut conn =
            TcpConnection::new(self.config.src, port, self.config.dst, self.config.dst_port);
        conn.connect();
        let reprs = conn.poll_output();
        self.active.push(ActiveProbe { index, port, conn, request_sent: false });
        self.log.read().probes.push(ProbeRecord {
            index,
            port,
            started_at: now,
            established_at: None,
            reset_at: None,
            bytes_received: 0,
        });
        let mut outputs: Vec<Output> = Vec::new();
        for repr in reprs {
            let packet = self.wrap(port, repr);
            outputs.push(Output::send(packet));
        }
        outputs.push(Output::Timer { delay: self.config.period });
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerApp;
    use tspu_netsim::{Network, Route};
    use tspu_wire::tls::ClientHelloBuilder;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 9);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 50);

    #[test]
    fn probes_run_at_cadence_until_cap() {
        let mut net = Network::with_default_latency();
        let c = net.add_host(CLIENT);
        let s = net.add_host_with_app(SERVER, Box::new(ServerApp::https_site(SERVER)));
        net.set_route_symmetric(c, s, Route::direct());
        let (probe, log) = SteadyProbe::new(SteadyProbeConfig {
            src: CLIENT,
            dst: SERVER,
            dst_port: 443,
            port_base: 40_000,
            period: Duration::from_millis(10),
            request: ClientHelloBuilder::new("example.org").build(),
            max_probes: 5,
        });
        net.set_app(c, Box::new(probe));
        net.arm_timer(c, Duration::ZERO);
        net.run_until_idle();
        let probes = log.probes();
        assert_eq!(probes.len(), 5);
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(p.started_at, Time::ZERO + Duration::from_millis(10 * i as u64));
            assert!(p.bytes_received > 0, "probe {i} got no data");
            assert!(p.reset_at.is_none());
        }
        assert_eq!(log.first_reset(), None);
        assert_eq!(log.open_before_reset(), 5);
        assert!(log.handshake_rtt().expect("established") > Duration::ZERO);
    }
}
