//! Property-based tests for the endpoint TCP state machine: two stacks
//! wired back-to-back must establish and exchange data under arbitrary
//! handshake modes, window sizes, MSS values, and payloads.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use tspu_stack::conn::{ConnEvent, HandshakeMode, TcpConnection, TcpState};
use tspu_wire::tcp::TcpSegment;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

/// Shuttles segments until both sides go quiet; returns false if they
/// never quiesce (which would itself be a bug).
fn pump(a: &mut TcpConnection, b: &mut TcpConnection) -> bool {
    for _ in 0..256 {
        let from_a = a.poll_output();
        let from_b = b.poll_output();
        if from_a.is_empty() && from_b.is_empty() {
            return true;
        }
        for repr in from_a {
            let bytes = repr.build(C, S);
            b.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
        }
        for repr in from_b {
            let bytes = repr.build(S, C);
            a.on_segment(&TcpSegment::new_checked(&bytes[..]).unwrap());
        }
    }
    false
}

fn collect_data(conn: &mut TcpConnection) -> Vec<u8> {
    let mut out = Vec::new();
    for event in conn.take_events() {
        if let ConnEvent::DataReceived(data) = event {
            out.extend_from_slice(&data);
        }
    }
    out
}

proptest! {
    /// Any (mode, window, mss, payload) combination establishes and
    /// delivers the exact bytes, in order, both directions.
    #[test]
    fn stream_delivery_exact(
        split in any::<bool>(),
        window in 32u16..4096,
        mss in 8usize..2000,
        request in proptest::collection::vec(any::<u8>(), 1..4000),
        response in proptest::collection::vec(any::<u8>(), 1..4000),
    ) {
        let mut client = TcpConnection::new(C, 40_000, S, 443);
        let mut server = TcpConnection::new(S, 443, C, 40_000);
        if split {
            server.set_mode(HandshakeMode::SplitHandshake);
        }
        server.set_local_window(window);
        client.set_mss(mss);
        server.listen();
        client.connect();
        prop_assert!(pump(&mut client, &mut server));
        prop_assert_eq!(client.state(), TcpState::Established);
        prop_assert_eq!(server.state(), TcpState::Established);
        let _ = (collect_data(&mut client), collect_data(&mut server));

        client.send(&request);
        server.send(&response);
        prop_assert!(pump(&mut client, &mut server));
        prop_assert_eq!(collect_data(&mut server), request.clone());
        prop_assert_eq!(collect_data(&mut client), response);

        // Segmentation honored the advertised window.
        client.send(&request);
        for seg in client.poll_output() {
            prop_assert!(seg.payload.len() <= mss.max(1));
            prop_assert!(seg.payload.len() <= usize::from(window.max(1)));
        }
    }

    /// The connection state machine never panics on arbitrary segment
    /// bytes.
    #[test]
    fn on_segment_never_panics(bytes in proptest::collection::vec(any::<u8>(), 20..80)) {
        let mut conn = TcpConnection::new(C, 1, S, 2);
        conn.connect();
        if let Ok(segment) = TcpSegment::new_checked(&bytes[..]) {
            conn.on_segment(&segment);
        }
        let _ = conn.poll_output();
    }

    /// Simultaneous open always converges.
    #[test]
    fn simultaneous_open_always_establishes(port in 1024u16..65000) {
        let mut a = TcpConnection::new(C, port, S, 443);
        let mut b = TcpConnection::new(S, 443, C, port);
        a.connect();
        b.connect();
        prop_assert!(pump(&mut a, &mut b));
        prop_assert_eq!(a.state(), TcpState::Established);
        prop_assert_eq!(b.state(), TcpState::Established);
    }
}
