//! Differential property test: [`ShardedConnTracker`] must be
//! observation-for-observation identical to the unsharded [`ConnTracker`]
//! at every shard count.
//!
//! The comparison deliberately excludes `len()` and `gc_probes()`: expiry
//! in both trackers is checked lazily at access time, so the CLOCK sweep
//! only decides *when memory is reclaimed*, never what an access observes.
//! Shard count changes sweep scheduling (each shard sweeps its own ring),
//! so physical table size during churn legitimately differs — what must
//! not differ is any entry field any caller can see.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::conntrack::{ConnTracker, FlowEntry};
use tspu_core::{FlowKey, ShardedConnTracker, Side};
use tspu_netsim::Time;
use tspu_wire::tcp::TcpFlags;

#[derive(Debug, Clone)]
enum Op {
    /// Observe a TCP packet on flow `port` from `side`.
    Tcp { port: u16, side: Side, flags: TcpFlags, payload: usize },
    /// Observe a UDP packet on flow `port`.
    Udp { port: u16, side: Side },
    /// Expiry-checked read.
    Get { port: u16 },
    /// Remove the flow outright.
    Remove { port: u16 },
    /// Device restart: drop everything.
    Clear,
    /// Let time pass (drives expiry).
    Advance { secs: u64 },
}

fn arb_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Local), Just(Side::Remote)]
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    prop_oneof![
        Just(TcpFlags::SYN),
        Just(TcpFlags::SYN_ACK),
        Just(TcpFlags::ACK),
        Just(TcpFlags::PSH_ACK),
        Just(TcpFlags::FIN),
        Just(TcpFlags::RST),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Ports drawn from a small pool so flows collide, expire, and get
    // recreated under the same key — the paths where sharding could skew.
    let port = 0u16..24;
    prop_oneof![
        (port.clone(), arb_side(), arb_flags(), 0usize..600)
            .prop_map(|(port, side, flags, payload)| Op::Tcp { port, side, flags, payload }),
        (port.clone(), arb_side()).prop_map(|(port, side)| Op::Udp { port, side }),
        port.clone().prop_map(|port| Op::Get { port }),
        port.prop_map(|port| Op::Remove { port }),
        Just(Op::Clear),
        // Steps past the Loose (180 s), SynSent (60 s), and Established
        // (480 s) timeouts all reachable within a few ops.
        (1u64..200).prop_map(|secs| Op::Advance { secs }),
    ]
}

fn key(port: u16) -> FlowKey {
    FlowKey {
        local_addr: Ipv4Addr::new(10, 0, 0, 5),
        local_port: 40_000 + port,
        remote_addr: Ipv4Addr::new(203, 0, 113, 5),
        remote_port: 443,
        protocol: 6,
    }
}

/// The caller-visible face of an entry — every public field.
fn observe(e: &FlowEntry) -> impl PartialEq + std::fmt::Debug {
    (
        e.state,
        e.client,
        e.first_sender,
        e.ambiguous,
        e.reversed,
        e.created,
        e.last_seen,
        e.block.is_some(),
        e.exempt,
        e.exemption_decided,
        e.rx_stream.clone(),
        e.remote_ip_blocked,
    )
}

proptest! {
    #[test]
    fn sharded_matches_unsharded_at_every_shard_count(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mut reference = ConnTracker::new();
        let mut sharded: Vec<ShardedConnTracker> =
            [1, 4, 16].iter().map(|&n| ShardedConnTracker::with_shards(n)).collect();
        prop_assert_eq!(sharded[0].shard_count(), 1);
        prop_assert_eq!(sharded[1].shard_count(), 4);
        prop_assert_eq!(sharded[2].shard_count(), 16);

        let mut now = Time::ZERO;
        for op in &ops {
            match *op {
                Op::Tcp { port, side, flags, payload } => {
                    let want = observe(reference.observe_tcp(now, key(port), side, flags, payload));
                    for s in &mut sharded {
                        let got = observe(s.observe_tcp(now, key(port), side, flags, payload));
                        prop_assert_eq!(&got, &want, "observe_tcp diverged at {} shards", s.shard_count());
                    }
                }
                Op::Udp { port, side } => {
                    let want = observe(reference.observe_udp(now, key(port), side));
                    for s in &mut sharded {
                        let got = observe(s.observe_udp(now, key(port), side));
                        prop_assert_eq!(&got, &want, "observe_udp diverged at {} shards", s.shard_count());
                    }
                }
                Op::Get { port } => {
                    let want = reference.get(now, &key(port)).map(observe);
                    for s in &sharded {
                        let got = s.get(now, &key(port)).map(observe);
                        prop_assert_eq!(&got, &want, "get diverged at {} shards", s.shard_count());
                    }
                }
                Op::Remove { port } => {
                    reference.remove(&key(port));
                    for s in &mut sharded {
                        s.remove(&key(port));
                    }
                }
                Op::Clear => {
                    reference.clear();
                    for s in &mut sharded {
                        s.clear();
                        prop_assert!(s.is_empty());
                    }
                }
                Op::Advance { secs } => {
                    now += Duration::from_secs(secs);
                }
            }
        }
    }
}
