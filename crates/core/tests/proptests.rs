//! Property-based tests over the TSPU device's data structures: the
//! conntrack state machine, the fragment cache, the policer, and the
//! device's packet interface under arbitrary (including malformed) input.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::conntrack::{ConnTracker, FlowKey, Side};
use tspu_core::frag_cache::{FragCache, FragConfig};
use tspu_core::{Policy, PolicyHandle, TokenBucket, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::frag;
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::TcpFlags;

const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);
const REMOTE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);

fn key() -> FlowKey {
    FlowKey { local_addr: LOCAL, local_port: 5555, remote_addr: REMOTE, remote_port: 443, protocol: 6 }
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    prop_oneof![
        Just(TcpFlags::SYN),
        Just(TcpFlags::SYN_ACK),
        Just(TcpFlags::ACK),
        Just(TcpFlags::PSH_ACK),
        Just(TcpFlags::RST),
        Just(TcpFlags::FIN),
        any::<u8>().prop_map(|b| TcpFlags(b & 0x3f)),
    ]
}

fn arb_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Local), Just(Side::Remote)]
}

proptest! {
    /// Any packet sequence leaves the tracker in a consistent state:
    /// first_sender never changes, timestamps never go backwards, and
    /// no sequence panics.
    #[test]
    fn conntrack_invariants(seq in proptest::collection::vec((arb_side(), arb_flags(), 0usize..600), 1..40)) {
        let mut tracker = ConnTracker::new();
        let mut now = Time::ZERO;
        let mut first_sender = None;
        for (side, flags, len) in seq {
            now += Duration::from_millis(250);
            let entry = tracker.observe_tcp(now, key(), side, flags, len);
            match first_sender {
                None => first_sender = Some(entry.first_sender),
                Some(first) => {
                    // first_sender is immutable for the entry's lifetime;
                    // it may change only if the entry expired and was
                    // recreated — impossible at 250 ms spacing.
                    prop_assert_eq!(entry.first_sender, first);
                }
            }
            prop_assert!(entry.last_seen <= now);
            prop_assert!(entry.created <= entry.last_seen);
        }
        prop_assert!(tracker.len() <= 1);
    }

    /// Expiry is monotone: once a flow is expired at t, it stays expired
    /// at any later t (absent new packets).
    #[test]
    fn conntrack_expiry_monotone(flags in arb_flags(), len in 0usize..600, probe in 0u64..2_000, probe2 in 0u64..2_000) {
        let mut tracker = ConnTracker::new();
        tracker.observe_tcp(Time::ZERO, key(), Side::Local, flags, len);
        let (a, b) = (probe.min(probe2), probe.max(probe2));
        let expired_a = tracker.get(Time::from_secs(a), &key()).is_none();
        let expired_b = tracker.get(Time::from_secs(b), &key()).is_none();
        prop_assert!(!expired_a || expired_b, "expired at {a}s but alive at {b}s");
    }

    /// The fragment cache never forwards before the last fragment
    /// arrives, never duplicates, and never exceeds what was offered.
    #[test]
    fn frag_cache_conservation(payload_len in 256usize..2000, mtu in 16usize..256,
                               order in proptest::collection::vec(any::<usize>(), 0..8)) {
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        let mut repr = Ipv4Repr::new(LOCAL, REMOTE, Protocol::Udp, payload.len());
        repr.ident = 0x2222;
        let datagram = repr.build(&payload);
        let mut fragments = frag::fragment(&datagram, mtu).unwrap();
        // Shuffle deterministically from the order seed, keeping the
        // MF=0 fragment last so the flush condition is reached at the end.
        let last = fragments.pop().unwrap();
        for (i, &swap) in order.iter().enumerate() {
            if !fragments.is_empty() {
                let len = fragments.len();
                fragments.swap(i % len, swap % len);
            }
        }
        fragments.push(last);

        let mut cache = FragCache::new(FragConfig::default());
        let mut forwarded = 0usize;
        for (i, piece) in fragments.iter().enumerate() {
            let out = cache.offer(Time::ZERO, piece);
            if i + 1 < fragments.len() {
                prop_assert!(out.is_empty(), "forwarded before the last fragment");
            }
            forwarded += out.len();
        }
        prop_assert!(forwarded <= fragments.len());
        if fragments.len() <= 45 {
            prop_assert_eq!(forwarded, fragments.len());
        }
    }

    /// Token bucket never exceeds rate × elapsed + burst.
    #[test]
    fn policer_rate_bound(rate in 100u64..20_000, burst in 500u64..20_000,
                          offers in proptest::collection::vec((1u64..500, 1usize..2000), 1..200)) {
        let mut bucket = TokenBucket::new(rate, burst, Time::ZERO);
        let mut now = Time::ZERO;
        let mut admitted_bytes = 0u64;
        for (gap_ms, len) in offers {
            now += Duration::from_millis(gap_ms);
            if bucket.admit(now, len) {
                admitted_bytes += len as u64;
            }
        }
        let elapsed_secs = now.as_secs_f64();
        let bound = rate as f64 * elapsed_secs + burst as f64;
        prop_assert!(admitted_bytes as f64 <= bound + 1.0,
            "admitted {admitted_bytes} > bound {bound}");
    }

    /// The device never panics on arbitrary byte blobs, and passes
    /// through non-IP traffic untouched.
    #[test]
    fn device_handles_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200),
                              dir_local in any::<bool>()) {
        let mut dev = TspuDevice::reliable("fuzz", PolicyHandle::new(Policy::example()));
        let dir = if dir_local { Direction::LocalToRemote } else { Direction::RemoteToLocal };
        let out = dev.process_owned(Time::ZERO, dir, bytes.clone());
        prop_assert!(out.len() <= 1);
    }

    /// Mutated-but-valid IPv4/TCP packets never panic the device, and
    /// output packets are well-formed IPv4 whenever input was.
    #[test]
    fn device_output_well_formed(sport in 1024u16..65000, payload in proptest::collection::vec(any::<u8>(), 0..600),
                                 flags in arb_flags(), dir_local in any::<bool>()) {
        let mut tcp = tspu_wire::tcp::TcpRepr::new(sport, 443, flags);
        tcp.payload = payload;
        let (src, dst) = if dir_local { (LOCAL, REMOTE) } else { (REMOTE, LOCAL) };
        let seg = tcp.build(src, dst);
        let packet = Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg);
        let mut dev = TspuDevice::reliable("fuzz2", PolicyHandle::new(Policy::example()));
        let dir = if dir_local { Direction::LocalToRemote } else { Direction::RemoteToLocal };
        let out = dev.process_owned(Time::ZERO, dir, packet.clone());
        for forwarded in out {
            let view = Ipv4Packet::new_checked(&forwarded[..]).unwrap();
            prop_assert!(view.verify_checksum());
        }
    }
}

proptest! {
    /// Interleaved fragment trains from many packets through the full
    /// device: no panics, and no train is forwarded twice.
    #[test]
    fn device_fragment_interleavings(trains in proptest::collection::vec((1u16..2000, 300usize..900), 1..6),
                                     interleave in proptest::collection::vec(any::<u8>(), 0..24)) {
        let mut dev = TspuDevice::reliable("frag-fuzz", PolicyHandle::new(Policy::example()));
        let mut pending: Vec<Vec<Vec<u8>>> = trains
            .iter()
            .enumerate()
            .map(|(i, &(ident, payload_len))| {
                let payload = vec![0x3c; payload_len];
                let mut repr = Ipv4Repr::new(LOCAL, REMOTE, Protocol::Udp, payload.len());
                // Idents distinct by construction: a collision would merge
                // two trains into one poisoned queue.
                repr.ident = (ident % 2000).wrapping_add(i as u16 * 2003);
                frag::fragment(&repr.build(&payload), 128).unwrap()
            })
            .collect();
        let mut forwarded_per_train = vec![0usize; pending.len()];
        let expected: Vec<usize> = pending.iter().map(Vec::len).collect();
        // Interleave deterministically from the seed, then drain leftovers.
        let mut seeds = interleave.into_iter().cycle();
        let mut remaining: usize = pending.iter().map(Vec::len).sum();
        while remaining > 0 {
            let pick = usize::from(seeds.next().unwrap_or(0)) % pending.len();
            let pick = (0..pending.len())
                .map(|i| (pick + i) % pending.len())
                .find(|&i| !pending[i].is_empty())
                .unwrap();
            let fragment = pending[pick].remove(0);
            let out = dev.process_owned(Time::ZERO, Direction::LocalToRemote, fragment.clone());
            forwarded_per_train[pick] += out.len();
            remaining -= 1;
        }
        for (i, (&got, &want)) in forwarded_per_train.iter().zip(expected.iter()).enumerate() {
            // Every complete, well-formed train is forwarded exactly once
            // (all fragments at the last arrival), never duplicated.
            prop_assert_eq!(got, want, "train {}", i);
        }
    }
}
