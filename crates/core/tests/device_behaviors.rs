//! Device-level tests: each of the paper's six blocking behaviors (§5.2,
//! Fig. 2) exercised against a [`TspuDevice`] at the packet boundary.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::device::rst_ack_rewrite;
use tspu_core::{FailureProfile, Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::quic::{initial_payload, QuicVersion};
use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};
use tspu_wire::tls::ClientHelloBuilder;
use tspu_wire::udp::UdpRepr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);
const TOR: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

fn tcp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let mut tcp = TcpRepr::new(sp, dp, flags);
    tcp.payload = payload.to_vec();
    let seg = tcp.build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
}

fn udp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, payload: &[u8]) -> Vec<u8> {
    let datagram = UdpRepr::new(sp, dp, payload.to_vec()).build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Udp, datagram.len()).build(&datagram)
}

fn device() -> TspuDevice {
    TspuDevice::reliable("tspu-test", PolicyHandle::new(Policy::example()))
}

fn clienthello(host: &str) -> Vec<u8> {
    ClientHelloBuilder::new(host).build()
}

/// Runs a full client handshake through the device from the local side.
fn handshake(dev: &mut TspuDevice, now: Time, sport: u16) {
    let syn = tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::SYN, b"");
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, syn.clone()).len(), 1);
    let synack = tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::SYN_ACK, b"");
    assert_eq!(dev.process_owned(now, Direction::RemoteToLocal, synack.clone()).len(), 1);
    let ack = tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::ACK, b"");
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, ack.clone()).len(), 1);
}

#[test]
fn sni1_rewrites_downstream_to_rst_ack() {
    let mut dev = device();
    let now = Time::ZERO;
    handshake(&mut dev, now, 40000);

    // The triggering ClientHello itself passes upstream (Fig. 2 SNI-I).
    let ch = tcp_packet(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, ch.clone()).len(), 1);
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_sni1, 1);
    }

    // The ServerHello coming back is rewritten: RST/ACK, payload gone,
    // TTL/seq/ack preserved.
    let server_hello = tcp_packet(SERVER, 443, CLIENT, 40000, TcpFlags::PSH_ACK, &tspu_wire::tls::server_hello_record());
    let out = dev.process_owned(now, Direction::RemoteToLocal, server_hello.clone());
    assert_eq!(out.len(), 1);
    let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
    assert!(ip.verify_checksum());
    let seg = TcpSegment::new_checked(ip.payload()).unwrap();
    assert_eq!(seg.flags(), TcpFlags::RST_ACK);
    assert!(seg.payload().is_empty());
    let orig_ip = Ipv4Packet::new_unchecked(&server_hello[..]);
    let orig_seg = TcpSegment::new_unchecked(orig_ip.payload());
    assert_eq!(seg.seq_number(), orig_seg.seq_number());
    assert_eq!(seg.ack_number(), orig_seg.ack_number());
    assert_eq!(ip.ttl(), orig_ip.ttl());
    assert!(seg.verify_checksum(SERVER, CLIENT));

    // Upstream packets keep passing unmodified (SNI-I acts downstream only).
    let data = tcp_packet(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK, b"more");
    let out = dev.process_owned(now, Direction::LocalToRemote, data.clone());
    assert_eq!(out, vec![data]);
}

#[test]
fn sni1_residual_expires_after_75s() {
    let mut dev = device();
    handshake(&mut dev, Time::ZERO, 40000);
    let ch = tcp_packet(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());

    let reply = tcp_packet(SERVER, 443, CLIENT, 40000, TcpFlags::PSH_ACK, b"data");
    // At 74 s: still rewritten.
    let out = dev.process_owned(Time::from_secs(74), Direction::RemoteToLocal, reply.clone());
    let seg = TcpSegment::new_unchecked(Ipv4Packet::new_unchecked(&out[0][..]).payload().to_vec());
    assert_eq!(seg.flags(), TcpFlags::RST_ACK);
    // At 76 s: residual lapsed; packet passes untouched.
    let out = dev.process_owned(Time::from_secs(76), Direction::RemoteToLocal, reply.clone());
    assert_eq!(out, vec![reply]);
}

#[test]
fn non_blocked_sni_passes_untouched() {
    let mut dev = device();
    handshake(&mut dev, Time::ZERO, 40001);
    let ch = tcp_packet(CLIENT, 40001, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("wikipedia.org"));
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone()).len(), 1);
    let reply = tcp_packet(SERVER, 443, CLIENT, 40001, TcpFlags::PSH_ACK, b"content");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply.clone());
    assert_eq!(out, vec![reply]);
    assert_eq!(dev.stats().triggers_sni1, 0);
}

#[test]
fn sni_trigger_requires_port_443() {
    let mut dev = device();
    let ch = tcp_packet(CLIENT, 40002, SERVER, 8443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());
    assert_eq!(dev.stats().triggers_sni1, 0);
}

#[test]
fn sni_trigger_ignores_remote_clienthellos() {
    // Censorship is asymmetric: a CH arriving from outside Russia never
    // triggers (§5.3.2).
    let mut dev = device();
    let ch = tcp_packet(SERVER, 50000, CLIENT, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, ch.clone());
    assert_eq!(out.len(), 1);
    assert_eq!(dev.stats().triggers_sni1, 0);
}

#[test]
fn sni2_allows_handful_then_drops_symmetrically() {
    let mut dev = device();
    handshake(&mut dev, Time::ZERO, 40100);
    let ch = tcp_packet(CLIENT, 40100, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("play.google.com"));
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone()).len(), 1);
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_sni2, 1);
    }

    // 5–8 more packets (from either side) pass, after which both
    // directions drop.
    let up = tcp_packet(CLIENT, 40100, SERVER, 443, TcpFlags::PSH_ACK, b"up");
    let down = tcp_packet(SERVER, 443, CLIENT, 40100, TcpFlags::PSH_ACK, b"down");
    let mut passed = 0;
    for i in 0..20 {
        let (dir, pkt) = if i % 2 == 0 {
            (Direction::RemoteToLocal, &down)
        } else {
            (Direction::LocalToRemote, &up)
        };
        passed += dev.process_owned(Time::ZERO, dir, pkt.clone()).len();
    }
    assert!((5..=8).contains(&passed), "allowance was {passed}");

    // Much later (but within the 420 s residual) still dropping.
    let out = dev.process_owned(Time::from_secs(400), Direction::LocalToRemote, up.clone());
    assert!(out.is_empty());
    // After 420 s the verdict lapses.
    let out = dev.process_owned(Time::from_secs(421), Direction::LocalToRemote, up.clone());
    assert_eq!(out.len(), 1);
}

#[test]
fn sni3_throttles_when_policy_active() {
    let policy = PolicyHandle::new(Policy { throttle_active: true, ..Policy::example() });
    let mut dev = TspuDevice::reliable("tspu", policy);
    handshake(&mut dev, Time::ZERO, 40200);
    let ch = tcp_packet(CLIENT, 40200, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("fbcdn.net"));
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone()).len(), 1);
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_sni3, 1);
    }

    // Stream 1460-byte segments downstream every 100 ms for 60 s; goodput
    // must approximate the 600–700 B/s policer.
    let data = tcp_packet(SERVER, 443, CLIENT, 40200, TcpFlags::PSH_ACK, &[0xab; 1460]);
    let mut delivered = 0u64;
    let mut now = Time::ZERO;
    for _ in 0..600 {
        delivered += 1460 * dev.process_owned(now, Direction::RemoteToLocal, data.clone()).len() as u64;
        now += Duration::from_millis(100);
    }
    let rate = delivered as f64 / 60.0;
    assert!((550.0..=800.0).contains(&rate), "goodput {rate} B/s");
}

#[test]
fn march4_switches_throttle_to_rst_centrally() {
    let policy = PolicyHandle::new(Policy { throttle_active: true, ..Policy::example() });
    let mut dev_a = TspuDevice::reliable("tspu-a", policy.clone());
    let mut dev_b = TspuDevice::reliable("tspu-b", policy.clone());

    policy.march_4_2022_transition();

    // Both devices now RST instead of throttling fbcdn.net.
    for dev in [&mut dev_a, &mut dev_b] {
        handshake(dev, Time::ZERO, 40300);
        let ch = tcp_packet(CLIENT, 40300, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("fbcdn.net"));
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());
        assert_eq!(dev.stats().triggers_sni3, 0);
        if tspu_obs::ENABLED {
            assert_eq!(dev.stats().triggers_sni1, 1);
        }
    }
}

#[test]
fn sni4_backup_fires_when_sni1_evaded() {
    let mut dev = device();
    let now = Time::ZERO;
    // Split handshake: local SYN, remote answers with bare SYN.
    let syn = tcp_packet(CLIENT, 40400, SERVER, 443, TcpFlags::SYN, b"");
    dev.process_owned(now, Direction::LocalToRemote, syn.clone());
    let syn_back = tcp_packet(SERVER, 443, CLIENT, 40400, TcpFlags::SYN, b"");
    dev.process_owned(now, Direction::RemoteToLocal, syn_back.clone());

    // twitter.com is both SNI-I and SNI-IV listed; SNI-I is evaded by the
    // ambiguous roles, so the backup filter eats everything, including
    // the ClientHello itself.
    let ch = tcp_packet(CLIENT, 40400, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    let out = dev.process_owned(now, Direction::LocalToRemote, ch.clone());
    assert!(out.is_empty());
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_sni4, 1);
    }
    assert_eq!(dev.stats().triggers_sni1, 0);

    // Both directions now drop.
    let up = tcp_packet(CLIENT, 40400, SERVER, 443, TcpFlags::PSH_ACK, b"u");
    let down = tcp_packet(SERVER, 443, CLIENT, 40400, TcpFlags::PSH_ACK, b"d");
    assert!(dev.process_owned(now, Direction::LocalToRemote, up.clone()).is_empty());
    assert!(dev.process_owned(now, Direction::RemoteToLocal, down.clone()).is_empty());
}

#[test]
fn sni1_only_domain_fully_evaded_by_split_handshake() {
    // dw.com is SNI-I listed but not SNI-IV listed: the split handshake
    // defeats blocking entirely (§8 server-side strategy).
    let mut dev = device();
    let now = Time::ZERO;
    let syn = tcp_packet(CLIENT, 40500, SERVER, 443, TcpFlags::SYN, b"");
    dev.process_owned(now, Direction::LocalToRemote, syn.clone());
    let syn_back = tcp_packet(SERVER, 443, CLIENT, 40500, TcpFlags::SYN, b"");
    dev.process_owned(now, Direction::RemoteToLocal, syn_back.clone());

    let ch = tcp_packet(CLIENT, 40500, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("dw.com"));
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, ch.clone()).len(), 1);
    let reply = tcp_packet(SERVER, 443, CLIENT, 40500, TcpFlags::PSH_ACK, b"page");
    let out = dev.process_owned(now, Direction::RemoteToLocal, reply.clone());
    assert_eq!(out, vec![reply]);
    assert_eq!(dev.stats().triggers_sni1, 0);
    assert_eq!(dev.stats().triggers_sni4, 0);
}

#[test]
fn quic_v1_blocked_other_versions_pass() {
    let mut dev = device();
    let now = Time::ZERO;

    // Version 1, 1200 bytes, port 443: blocked including the trigger.
    let v1 = udp_packet(CLIENT, 50000, SERVER, 443, &initial_payload(QuicVersion::V1, 1200));
    assert!(dev.process_owned(now, Direction::LocalToRemote, v1.clone()).is_empty());
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_quic, 1);
    }
    // All subsequent flow packets drop, both directions, any size.
    let small_up = udp_packet(CLIENT, 50000, SERVER, 443, &[1, 2, 3]);
    assert!(dev.process_owned(now, Direction::LocalToRemote, small_up.clone()).is_empty());
    let down = udp_packet(SERVER, 443, CLIENT, 50000, &[9; 64]);
    assert!(dev.process_owned(now, Direction::RemoteToLocal, down.clone()).is_empty());

    // draft-29 and quicping evade (fresh flows).
    for version in [QuicVersion::Draft29, QuicVersion::QuicPing] {
        let pkt = udp_packet(CLIENT, 50001, SERVER, 443, &initial_payload(version, 1200));
        assert_eq!(dev.process_owned(now, Direction::LocalToRemote, pkt.clone()).len(), 1, "{version:?}");
    }
}

#[test]
fn quic_needs_1001_bytes_and_port_443_and_local_origin() {
    let mut dev = device();
    let now = Time::ZERO;
    // 1000 bytes: passes (fingerprint needs ≥ 1001).
    let short = udp_packet(CLIENT, 50002, SERVER, 443, &initial_payload(QuicVersion::V1, 1000));
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, short.clone()).len(), 1);
    // Wrong port: passes.
    let wrong_port = udp_packet(CLIENT, 50003, SERVER, 8443, &initial_payload(QuicVersion::V1, 1200));
    assert_eq!(dev.process_owned(now, Direction::LocalToRemote, wrong_port.clone()).len(), 1);
    // Remote-origin: passes.
    let inbound = udp_packet(SERVER, 443, CLIENT, 50004, &initial_payload(QuicVersion::V1, 1200));
    assert_eq!(dev.process_owned(now, Direction::RemoteToLocal, inbound.clone()).len(), 1);
    assert_eq!(dev.stats().triggers_quic, 0);

    // Exactly 1001 bytes triggers.
    let exact = udp_packet(CLIENT, 50005, SERVER, 443, &initial_payload(QuicVersion::V1, 1001));
    assert!(dev.process_owned(now, Direction::LocalToRemote, exact.clone()).is_empty());
}

#[test]
fn quic_block_expires_after_420s() {
    let mut dev = device();
    let v1 = udp_packet(CLIENT, 50006, SERVER, 443, &initial_payload(QuicVersion::V1, 1200));
    assert!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, v1.clone()).is_empty());
    let probe = udp_packet(CLIENT, 50006, SERVER, 443, &[7; 100]);
    assert!(dev.process_owned(Time::from_secs(419), Direction::LocalToRemote, probe.clone()).is_empty());
    assert_eq!(dev.process_owned(Time::from_secs(421), Direction::LocalToRemote, probe.clone()).len(), 1);
}

#[test]
fn ip_blocking_drops_outbound_rewrites_response() {
    let mut dev = device();
    let now = Time::ZERO;

    // Locally initiated connection to the blocked IP: SYN dropped.
    let syn = tcp_packet(CLIENT, 40600, TOR, 9001, TcpFlags::SYN, b"");
    assert!(dev.process_owned(now, Direction::LocalToRemote, syn.clone()).is_empty());

    // Remotely initiated from the blocked IP: the inbound SYN passes…
    let syn_in = tcp_packet(TOR, 33000, CLIENT, 7, TcpFlags::SYN, b"");
    assert_eq!(dev.process_owned(now, Direction::RemoteToLocal, syn_in.clone()).len(), 1);
    // …but the local SYN/ACK response is rewritten to RST/ACK.
    let synack_out = tcp_packet(CLIENT, 7, TOR, 33000, TcpFlags::SYN_ACK, b"");
    let out = dev.process_owned(now, Direction::LocalToRemote, synack_out.clone());
    assert_eq!(out.len(), 1);
    let seg = TcpSegment::new_unchecked(Ipv4Packet::new_unchecked(&out[0][..]).payload().to_vec());
    assert_eq!(seg.flags(), TcpFlags::RST_ACK);

    // Censorship applies regardless of port or payload.
    let data = tcp_packet(CLIENT, 12345, TOR, 80, TcpFlags::PSH_ACK, b"GET /");
    assert!(dev.process_owned(now, Direction::LocalToRemote, data.clone()).is_empty());
}

#[test]
fn ip_blocking_drops_icmp_both_ways() {
    let mut dev = device();
    let icmp = tspu_wire::icmpv4::Icmpv4Repr::EchoRequest { ident: 1, seq_no: 1 }.build();
    let ping_out = Ipv4Repr::new(CLIENT, TOR, Protocol::Icmp, icmp.len()).build(&icmp);
    assert!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, ping_out.clone()).is_empty());
    let ping_in = Ipv4Repr::new(TOR, CLIENT, Protocol::Icmp, icmp.len()).build(&icmp);
    assert!(dev.process_owned(Time::ZERO, Direction::RemoteToLocal, ping_in.clone()).is_empty());
    // Pings between unblocked endpoints pass.
    let ok_ping = Ipv4Repr::new(CLIENT, SERVER, Protocol::Icmp, icmp.len()).build(&icmp);
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, ok_ping.clone()).len(), 1);
}

#[test]
fn fragmented_clienthello_evades_sni() {
    // §8: "IP fragmentation … still helps bypass the TSPU".
    let mut dev = device();
    let now = Time::ZERO;
    handshake(&mut dev, now, 40700);
    let ch = tcp_packet(CLIENT, 40700, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("facebook.com"));
    let fragments = tspu_wire::frag::fragment(&ch, 96).unwrap();
    assert!(fragments.len() > 1);
    let mut forwarded = Vec::new();
    for frag in &fragments {
        forwarded = dev.process_owned(now, Direction::LocalToRemote, frag.clone());
    }
    // All fragments forwarded once the last arrives; no trigger fired.
    assert_eq!(forwarded.len(), fragments.len());
    assert_eq!(dev.stats().triggers_sni1, 0);
    // And the server-side reply passes untouched.
    let reply = tcp_packet(SERVER, 443, CLIENT, 40700, TcpFlags::PSH_ACK, b"hello");
    assert_eq!(dev.process_owned(now, Direction::RemoteToLocal, reply.clone()), vec![reply]);
}

#[test]
fn segmented_clienthello_evades_sni() {
    // §8: TCP segmentation works because the TSPU does not reassemble
    // streams.
    let mut dev = device();
    let now = Time::ZERO;
    handshake(&mut dev, now, 40800);
    let ch = clienthello("facebook.com");
    let (a, b) = ch.split_at(ch.len() / 2);
    for part in [a, b] {
        let pkt = tcp_packet(CLIENT, 40800, SERVER, 443, TcpFlags::PSH_ACK, part);
        assert_eq!(dev.process_owned(now, Direction::LocalToRemote, pkt.clone()).len(), 1);
    }
    assert_eq!(dev.stats().triggers_sni1, 0);
}

#[test]
fn fragment_to_blocked_ip_still_dropped() {
    let mut dev = device();
    let big = tcp_packet(CLIENT, 40900, TOR, 80, TcpFlags::PSH_ACK, &[0; 600]);
    let fragments = tspu_wire::frag::fragment(&big, 256).unwrap();
    for frag in &fragments {
        assert!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, frag.clone()).is_empty());
    }
}

#[test]
fn failure_profile_lets_some_flows_through() {
    let policy = PolicyHandle::new(Policy::example());
    let mut dev = TspuDevice::new("flaky", policy, FailureProfile { sni1: 0.3, ..FailureProfile::none() }, 42);
    let mut evaded = 0;
    for i in 0..1000u16 {
        let sport = 41000 + i;
        let ch = tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());
        let reply = tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::PSH_ACK, b"x");
        let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply.clone());
        let rewritten = out.len() == 1
            && TcpSegment::new_unchecked(Ipv4Packet::new_unchecked(&out[0][..]).payload()).flags()
                == TcpFlags::RST_ACK;
        if !rewritten {
            evaded += 1;
        }
    }
    assert!((250..=350).contains(&evaded), "evaded {evaded}/1000");
}

#[test]
fn fresh_source_port_escapes_residual_censorship() {
    // §3: "each test used a fresh source port … to prevent residual
    // censorship affecting results".
    let mut dev = device();
    handshake(&mut dev, Time::ZERO, 42000);
    let ch = tcp_packet(CLIENT, 42000, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("twitter.com"));
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());
    // Same 5-tuple: reply rewritten.
    let reply = tcp_packet(SERVER, 443, CLIENT, 42000, TcpFlags::PSH_ACK, b"x");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply.clone());
    let seg = TcpSegment::new_unchecked(Ipv4Packet::new_unchecked(&out[0][..]).payload().to_vec());
    assert_eq!(seg.flags(), TcpFlags::RST_ACK);
    // Different source port, innocuous SNI: untouched.
    handshake(&mut dev, Time::ZERO, 42001);
    let ch2 = tcp_packet(CLIENT, 42001, SERVER, 443, TcpFlags::PSH_ACK, &clienthello("kernel.org"));
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch2.clone());
    let reply2 = tcp_packet(SERVER, 443, CLIENT, 42001, TcpFlags::PSH_ACK, b"y");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply2.clone());
    assert_eq!(out, vec![reply2]);
}

#[test]
fn rst_ack_rewrite_preserves_metadata() {
    let pkt = tcp_packet(SERVER, 443, CLIENT, 40000, TcpFlags::PSH_ACK, b"payload-bytes");
    let out = rst_ack_rewrite(&pkt);
    let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
    assert!(ip.verify_checksum());
    assert_eq!(ip.src_addr(), SERVER);
    assert_eq!(ip.dst_addr(), CLIENT);
    let seg = TcpSegment::new_checked(ip.payload()).unwrap();
    assert!(seg.verify_checksum(SERVER, CLIENT));
    assert_eq!(seg.flags(), TcpFlags::RST_ACK);
    assert!(seg.payload().is_empty());
}

#[test]
fn non_ip_and_other_protocols_pass() {
    let mut dev = device();
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, b"junk".to_vec()).len(), 1);
    let other = Ipv4Repr::new(CLIENT, SERVER, Protocol::Other(47), 4).build(&[1, 2, 3, 4]);
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, other.clone()), vec![other]);
}

#[test]
fn interleaved_flows_behave_like_sequential_ones() {
    // §5.2.1: "We also tried different levels of concurrency but found no
    // observable differences from sequential testing results." Flow state
    // is keyed by 5-tuple, so interleaving connections must not change
    // any verdict.
    let run = |interleaved: bool| -> Vec<bool> {
        let mut dev = device();
        let flows: Vec<(u16, &str)> =
            vec![(45_001, "twitter.com"), (45_002, "wikipedia.org"), (45_003, "meduza.io")];
        type Phase<'a> = &'a dyn Fn(&mut TspuDevice, u16, &str);
        let phases: [Phase; 3] = [
            &|dev, sport, _| {
                let syn = tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::SYN, b"");
                dev.process_owned(Time::ZERO, Direction::LocalToRemote, syn.clone());
            },
            &|dev, sport, _| {
                let synack = tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::SYN_ACK, b"");
                dev.process_owned(Time::ZERO, Direction::RemoteToLocal, synack.clone());
            },
            &|dev, sport, domain| {
                let ch = tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::PSH_ACK, &clienthello(domain));
                dev.process_owned(Time::ZERO, Direction::LocalToRemote, ch.clone());
            },
        ];
        if interleaved {
            for phase in &phases {
                for (sport, domain) in &flows {
                    phase(&mut dev, *sport, domain);
                }
            }
        } else {
            for (sport, domain) in &flows {
                for phase in &phases {
                    phase(&mut dev, *sport, domain);
                }
            }
        }
        flows
            .iter()
            .map(|(sport, _)| {
                let reply = tcp_packet(SERVER, 443, CLIENT, *sport, TcpFlags::PSH_ACK, b"r");
                let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply.clone());
                out.len() == 1 && {
                    let ip = Ipv4Packet::new_unchecked(&out[0][..]);
                    TcpSegment::new_unchecked(ip.payload()).flags() == TcpFlags::RST_ACK
                }
            })
            .collect()
    };
    let sequential = run(false);
    let interleaved = run(true);
    assert_eq!(sequential, interleaved);
    assert_eq!(sequential, vec![true, false, true]);
}
