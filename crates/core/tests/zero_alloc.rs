//! Proof that the packet-path matcher is allocation-free: a counting
//! global allocator wraps the system allocator, and `DomainSet::matches`
//! / `NormalizedHost::new` must not allocate for hostnames that fit the
//! 256-byte stack buffer — i.e. every hostname a real SNI carries.
//!
//! The counter is per-thread (the libtest harness main thread allocates
//! at unpredictable times while a test runs, and would otherwise bleed
//! into the measured windows), and everything runs in ONE test function
//! so no sibling test shares this thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

use tspu_core::policy::{DomainSet, NormalizedHost};
use tspu_core::{Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time, Verdict};
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr};

struct CountingAllocator;

thread_local! {
    // const-initialized: reading it never allocates, so it is safe to
    // touch from inside the allocator itself.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn count_one() {
    // try_with: TLS is unavailable during thread teardown; allocations
    // there belong to no measured window anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations this thread performed.
fn allocations_during<F: FnOnce() -> R, R>(f: F) -> usize {
    let before = ALLOCATIONS.with(|c| c.get());
    let result = f();
    let after = ALLOCATIONS.with(|c| c.get());
    drop(result);
    after - before
}

#[test]
fn matcher_is_allocation_free_on_the_packet_path() {
    let set = DomainSet::from_names([
        "facebook.com",
        "instagram.com",
        "twitter.com",
        "rutracker.org",
        "xn--p1ai",
    ]);
    // 256 bytes exactly (the stack capacity), as a deep subdomain.
    let long_label = "a".repeat(NormalizedHost::STACK_CAPACITY - ".web.facebook.com".len());
    let max_host = format!("{long_label}.web.facebook.com");
    assert_eq!(max_host.len(), NormalizedHost::STACK_CAPACITY);
    let hosts: [&str; 6] = [
        "facebook.com",
        "WWW.Facebook.COM.",
        "login.instagram.com",
        "definitely-not-blocked.example",
        "com",
        &max_host,
    ];

    // Warm up so lazily initialized pieces (if any) do not count.
    for host in hosts {
        let _ = set.matches(host);
    }

    for host in hosts {
        let n = allocations_during(|| {
            let mut hits = 0u32;
            for _ in 0..100 {
                hits += u32::from(set.matches(host));
            }
            hits
        });
        assert_eq!(n, 0, "matches({host:?}) allocated {n} times in 100 calls");
    }

    // Normalization alone is also allocation-free at the capacity limit.
    let n = allocations_during(|| NormalizedHost::new(&max_host).as_bytes().len());
    assert_eq!(n, 0, "NormalizedHost::new allocated for a 256-byte host");

    // Sanity-check the counter itself: an over-limit hostname takes the
    // heap spill path and must be observed doing so.
    let oversized = format!("b{max_host}");
    let n = allocations_during(|| NormalizedHost::new(&oversized).as_bytes().len());
    assert!(n > 0, "counter failed to observe the spill-path allocation");

    // The whole device hop path: a non-triggering TCP data packet through
    // conntrack, IP blocking, trigger evaluation, and verdict application
    // must not allocate in steady state — with the `obs` feature enabled
    // (registry increments are indexed adds on preallocated storage) and
    // with it disabled (recording compiles to no-ops) alike. This test
    // runs in CI under both feature configurations.
    let client = Ipv4Addr::new(10, 1, 1, 1);
    let server = Ipv4Addr::new(203, 0, 113, 1);
    let mut tcp = TcpRepr::new(40_000, 443, TcpFlags::PSH_ACK);
    tcp.payload = vec![0xab; 1000];
    let segment = tcp.build(client, server);
    let packet = Ipv4Repr::new(client, server, Protocol::Tcp, segment.len()).build(&segment);

    let mut dev = TspuDevice::reliable("zero-alloc", PolicyHandle::new(Policy::example()));
    let mut buf = packet;
    let mut t = 0u64;
    // Warm up: first packet creates the flow entry and GC ring slot.
    for _ in 0..16 {
        t += 1;
        let _ = dev.process(Time::from_micros(t), Direction::LocalToRemote, &mut buf);
    }
    let n = allocations_during(|| {
        let mut passed = 0u32;
        for _ in 0..1000 {
            t += 1;
            let verdict = dev.process(Time::from_micros(t), Direction::LocalToRemote, &mut buf);
            passed += u32::from(verdict == Verdict::Pass);
        }
        passed
    });
    assert_eq!(n, 0, "device hop path allocated {n} times in 1000 packets");
}
