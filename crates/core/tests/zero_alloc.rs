//! Proof that the packet-path matcher is allocation-free: a counting
//! global allocator wraps the system allocator, and `DomainSet::matches`
//! / `NormalizedHost::new` must not allocate for hostnames that fit the
//! 256-byte stack buffer — i.e. every hostname a real SNI carries.
//!
//! The counter is process-global, so everything runs in ONE test function
//! (the libtest harness would otherwise interleave allocations from
//! concurrent tests into the measured windows).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tspu_core::policy::{DomainSet, NormalizedHost};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during<F: FnOnce() -> R, R>(f: F) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    drop(result);
    after - before
}

#[test]
fn matcher_is_allocation_free_on_the_packet_path() {
    let set = DomainSet::from_names([
        "facebook.com",
        "instagram.com",
        "twitter.com",
        "rutracker.org",
        "xn--p1ai",
    ]);
    // 256 bytes exactly (the stack capacity), as a deep subdomain.
    let long_label = "a".repeat(NormalizedHost::STACK_CAPACITY - ".web.facebook.com".len());
    let max_host = format!("{long_label}.web.facebook.com");
    assert_eq!(max_host.len(), NormalizedHost::STACK_CAPACITY);
    let hosts: [&str; 6] = [
        "facebook.com",
        "WWW.Facebook.COM.",
        "login.instagram.com",
        "definitely-not-blocked.example",
        "com",
        &max_host,
    ];

    // Warm up so lazily initialized pieces (if any) do not count.
    for host in hosts {
        let _ = set.matches(host);
    }

    for host in hosts {
        let n = allocations_during(|| {
            let mut hits = 0u32;
            for _ in 0..100 {
                hits += u32::from(set.matches(host));
            }
            hits
        });
        assert_eq!(n, 0, "matches({host:?}) allocated {n} times in 100 calls");
    }

    // Normalization alone is also allocation-free at the capacity limit.
    let n = allocations_during(|| NormalizedHost::new(&max_host).as_bytes().len());
    assert_eq!(n, 0, "NormalizedHost::new allocated for a 256-byte host");

    // Sanity-check the counter itself: an over-limit hostname takes the
    // heap spill path and must be observed doing so.
    let oversized = format!("b{max_host}");
    let n = allocations_during(|| NormalizedHost::new(&oversized).as_bytes().len());
    assert!(n > 0, "counter failed to observe the spill-path allocation");
}
