//! The §8 arms race at the device boundary: each predicted patch defeats
//! exactly the evasion it targets, and the unhardened device stays
//! evadable — the ablation pair for every hardening knob.

use std::net::Ipv4Addr;

use tspu_core::{Hardening, Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};
use tspu_wire::tls::{change_cipher_spec_record, ClientHelloBuilder};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);

fn tcp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let mut tcp = TcpRepr::new(sp, dp, flags);
    tcp.payload = payload.to_vec();
    let seg = tcp.build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
}

fn device(hardening: Hardening) -> TspuDevice {
    TspuDevice::reliable("hardened", PolicyHandle::new(Policy::example())).with_hardening(hardening)
}

fn handshake(dev: &mut TspuDevice, sport: u16) {
    for (dir, pkt) in [
        (Direction::LocalToRemote, tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::SYN, b"")),
        (Direction::RemoteToLocal, tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::SYN_ACK, b"")),
        (Direction::LocalToRemote, tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::ACK, b"")),
    ] {
        dev.process_owned(Time::ZERO, dir, pkt.clone());
    }
}

/// Whether a downstream data packet is RST-rewritten (SNI-I engaged).
fn response_rewritten(dev: &mut TspuDevice, sport: u16) -> bool {
    let reply = tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::PSH_ACK, b"resp");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, reply.clone());
    out.len() == 1 && {
        let ip = Ipv4Packet::new_unchecked(&out[0][..]);
        TcpSegment::new_unchecked(ip.payload()).flags() == TcpFlags::RST_ACK
    }
}

#[test]
fn tcp_reassembly_defeats_segmentation() {
    let ch = ClientHelloBuilder::new("meduza.io").build();
    for (hardening, expect_blocked) in [
        (Hardening::none(), false),
        (Hardening { tcp_reassembly: true, ..Hardening::none() }, true),
    ] {
        let mut dev = device(hardening);
        handshake(&mut dev, 41000);
        for chunk in ch.chunks(24) {
            let pkt = tcp_packet(CLIENT, 41000, SERVER, 443, TcpFlags::PSH_ACK, chunk);
            dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
        }
        assert_eq!(
            response_rewritten(&mut dev, 41000),
            expect_blocked,
            "hardening {hardening:?}"
        );
        if expect_blocked && tspu_obs::ENABLED {
            assert!(dev.stats().reassembly_bytes_buffered as usize >= ch.len());
        }
    }
}

#[test]
fn ip_reassembly_defeats_fragmentation() {
    let ch = tcp_packet(
        CLIENT,
        41001,
        SERVER,
        443,
        TcpFlags::PSH_ACK,
        &ClientHelloBuilder::new("meduza.io").build(),
    );
    for (hardening, expect_blocked) in [
        (Hardening::none(), false),
        (Hardening { ip_reassembly: true, ..Hardening::none() }, true),
    ] {
        let mut dev = device(hardening);
        handshake(&mut dev, 41001);
        for fragment in tspu_wire::frag::fragment(&ch, 64).unwrap() {
            dev.process_owned(Time::ZERO, Direction::LocalToRemote, fragment.clone());
        }
        assert_eq!(response_rewritten(&mut dev, 41001), expect_blocked, "{hardening:?}");
    }
}

#[test]
fn window_filter_defeats_small_window_servers() {
    let mut dev = device(Hardening { min_synack_window: Some(256), ..Hardening::none() });
    let syn = tcp_packet(CLIENT, 41002, SERVER, 443, TcpFlags::SYN, b"");
    assert_eq!(dev.process_owned(Time::ZERO, Direction::LocalToRemote, syn.clone()).len(), 1);
    // The evasive SYN/ACK (window 64) is filtered…
    let mut tiny = TcpRepr::new(443, 41002, TcpFlags::SYN_ACK);
    tiny.window = 64;
    let seg = tiny.build(SERVER, CLIENT);
    let synack = Ipv4Repr::new(SERVER, CLIENT, Protocol::Tcp, seg.len()).build(&seg);
    assert!(dev.process_owned(Time::ZERO, Direction::RemoteToLocal, synack.clone()).is_empty());
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().synacks_filtered, 1);
    }
    // …while an honest one passes.
    let honest = tcp_packet(SERVER, 443, CLIENT, 41002, TcpFlags::SYN_ACK, b"");
    assert_eq!(dev.process_owned(Time::ZERO, Direction::RemoteToLocal, honest.clone()).len(), 1);
}

#[test]
fn strict_roles_defeat_split_handshake() {
    let ch = ClientHelloBuilder::new("meduza.io").build();
    for (hardening, expect_blocked) in [
        (Hardening::none(), false),
        (Hardening { strict_roles: true, ..Hardening::none() }, true),
    ] {
        let mut dev = device(hardening);
        // Split handshake: local SYN, remote bare SYN.
        let syn = tcp_packet(CLIENT, 41003, SERVER, 443, TcpFlags::SYN, b"");
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, syn.clone());
        let syn_back = tcp_packet(SERVER, 443, CLIENT, 41003, TcpFlags::SYN, b"");
        dev.process_owned(Time::ZERO, Direction::RemoteToLocal, syn_back.clone());
        let pkt = tcp_packet(CLIENT, 41003, SERVER, 443, TcpFlags::PSH_ACK, &ch);
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
        assert_eq!(response_rewritten(&mut dev, 41003), expect_blocked, "{hardening:?}");
    }
}

#[test]
fn record_scanning_defeats_prepend() {
    let mut evasive = change_cipher_spec_record();
    evasive.extend_from_slice(&ClientHelloBuilder::new("meduza.io").build());
    for (hardening, expect_blocked) in [
        (Hardening::none(), false),
        (Hardening { scan_multiple_records: true, ..Hardening::none() }, true),
    ] {
        let mut dev = device(hardening);
        handshake(&mut dev, 41004);
        let pkt = tcp_packet(CLIENT, 41004, SERVER, 443, TcpFlags::PSH_ACK, &evasive);
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
        assert_eq!(response_rewritten(&mut dev, 41004), expect_blocked, "{hardening:?}");
    }
}

#[test]
fn full_hardening_closes_every_tcp_evasion_at_once() {
    let ch = ClientHelloBuilder::new("meduza.io").build();
    let mut dev = device(Hardening::full());
    // Split handshake + segmentation + record prepend, stacked.
    let syn = tcp_packet(CLIENT, 41005, SERVER, 443, TcpFlags::SYN, b"");
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, syn.clone());
    let syn_back = tcp_packet(SERVER, 443, CLIENT, 41005, TcpFlags::SYN, b"");
    dev.process_owned(Time::ZERO, Direction::RemoteToLocal, syn_back.clone());
    let mut evasive = change_cipher_spec_record();
    evasive.extend_from_slice(&ch);
    for chunk in evasive.chunks(32) {
        let pkt = tcp_packet(CLIENT, 41005, SERVER, 443, TcpFlags::PSH_ACK, chunk);
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
    }
    assert!(response_rewritten(&mut dev, 41005));
}

#[test]
fn strict_roles_overblock_remote_initiated_flows() {
    // The cost side of the trade-off: a genuinely remote-initiated flow
    // carrying an outbound ClientHello (the echo-server pattern) gets
    // blocked under strict roles — overblocking, as §7.1.1 warns.
    let ch = ClientHelloBuilder::new("meduza.io").build();
    let mut dev = device(Hardening { strict_roles: true, ..Hardening::none() });
    let syn = tcp_packet(SERVER, 50_000, CLIENT, 443, TcpFlags::SYN, b"");
    dev.process_owned(Time::ZERO, Direction::RemoteToLocal, syn.clone());
    let synack = tcp_packet(CLIENT, 443, SERVER, 50_000, TcpFlags::SYN_ACK, b"");
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, synack.clone());
    // The local side sends the CH toward remote port 50_000 — not 443, so
    // no trigger there; instead model the reversed-role case where the
    // remote's port IS 443.
    let mut dev = device(Hardening { strict_roles: true, ..Hardening::none() });
    let syn = tcp_packet(SERVER, 443, CLIENT, 7, TcpFlags::SYN, b"");
    dev.process_owned(Time::ZERO, Direction::RemoteToLocal, syn.clone());
    let pkt = tcp_packet(CLIENT, 7, SERVER, 443, TcpFlags::PSH_ACK, &ch);
    dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().triggers_sni1, 1, "strict roles trigger on a remote-initiated flow");
    }
}

#[test]
fn reassembly_buffer_is_bounded() {
    let mut dev = device(Hardening { tcp_reassembly: true, ..Hardening::none() });
    handshake(&mut dev, 41006);
    for _ in 0..64 {
        let pkt = tcp_packet(CLIENT, 41006, SERVER, 443, TcpFlags::PSH_ACK, &[0x41; 1024]);
        dev.process_owned(Time::ZERO, Direction::LocalToRemote, pkt.clone());
    }
    assert!(
        dev.stats().reassembly_bytes_buffered <= tspu_core::hardening::REASSEMBLY_CAP as u64,
        "{}",
        dev.stats().reassembly_bytes_buffered
    );
}
