//! Differential tests pinning the zero-allocation fast paths to the
//! behavior of the seed implementations they replaced.
//!
//! * [`RefDomainSet`] is a line-for-line port of the seed's
//!   `HashSet<String>`-walking `DomainSet` (lowercase, strip one trailing
//!   dot, walk `split_once('.')` suffixes, never descend to a bare TLD).
//!   The bucketed rolling-hash `DomainSet` must agree on every input,
//!   including trailing dots, mixed case, consecutive dots, and bare-TLD
//!   queries.
//! * The conntrack differential replays random packet sequences against an
//!   explicit (state, last_seen) expiry model. The incremental GC ring is
//!   pure memory reclamation: it must never change which flows `get`
//!   reports alive, nor their state.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::conntrack::{ConnState, ConnTracker, FlowKey, Side};
use tspu_core::policy::DomainSet;
use tspu_netsim::Time;
use tspu_wire::tcp::TcpFlags;

/// The seed's suffix matcher, preserved verbatim as the reference.
#[derive(Default)]
struct RefDomainSet {
    entries: HashSet<String>,
}

impl RefDomainSet {
    fn insert(&mut self, domain: &str) {
        let mut d = domain.to_ascii_lowercase();
        if d.ends_with('.') {
            d.pop();
        }
        self.entries.insert(d);
    }

    fn remove(&mut self, domain: &str) {
        self.entries.remove(&domain.to_ascii_lowercase());
    }

    fn matches(&self, hostname: &str) -> bool {
        let host = hostname.to_ascii_lowercase();
        let host = host.strip_suffix('.').unwrap_or(&host);
        let mut rest = host;
        loop {
            if self.entries.contains(rest) {
                return true;
            }
            match rest.split_once('.') {
                Some((_, parent)) if parent.contains('.') => rest = parent,
                _ => return false,
            }
        }
    }
}

fn arb_label() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9-]{1,8}"
}

/// Domains of 1–3 labels — includes bare TLDs ("ru") and deep names.
fn arb_domain() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_label(), 1..4).prop_map(|labels| labels.join("."))
}

/// A query derived from the inserted list: exact entries, subdomains of
/// entries, unrelated hosts, and bare labels — each optionally
/// upper-cased and/or given a trailing dot.
fn build_query(
    domains: &[String],
    pick: u8,
    prefix: &str,
    upper: bool,
    trailing_dot: bool,
    unrelated: String,
) -> String {
    let base = match pick % 4 {
        0 => domains[usize::from(pick) % domains.len()].clone(),
        1 => format!("{prefix}.{}", domains[usize::from(pick) % domains.len()]),
        2 => unrelated,
        _ => prefix.to_string(),
    };
    let mut host = if upper { base.to_ascii_uppercase() } else { base };
    if trailing_dot {
        host.push('.');
    }
    host
}

proptest! {
    /// Old and new matchers agree on every query over a random blocklist.
    #[test]
    fn domainset_agrees_with_seed_matcher(
        domains in proptest::collection::vec(arb_domain(), 1..25),
        queries in proptest::collection::vec(
            (any::<u8>(), arb_label(), any::<bool>(), any::<bool>(), arb_domain()),
            1..60,
        ),
    ) {
        let fast = DomainSet::from_names(domains.iter().cloned());
        let mut reference = RefDomainSet::default();
        for d in &domains {
            reference.insert(d);
        }
        prop_assert_eq!(fast.len(), reference.entries.len());
        for (pick, prefix, upper, dot, unrelated) in queries {
            let host = build_query(&domains, pick, &prefix, upper, dot, unrelated);
            prop_assert_eq!(
                fast.matches(&host),
                reference.matches(&host),
                "matchers disagree on {:?}", host
            );
        }
    }

    /// Agreement survives interleaved inserts and removes (removal takes
    /// the un-normalized name, exactly as the seed did).
    #[test]
    fn domainset_agrees_after_removals(
        domains in proptest::collection::vec(arb_domain(), 2..20),
        removals in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..10),
        queries in proptest::collection::vec(
            (any::<u8>(), arb_label(), any::<bool>(), any::<bool>(), arb_domain()),
            1..40,
        ),
    ) {
        let mut fast = DomainSet::from_names(domains.iter().cloned());
        let mut reference = RefDomainSet::default();
        for d in &domains {
            reference.insert(d);
        }
        for (pick, upper) in removals {
            let victim = &domains[usize::from(pick) % domains.len()];
            let victim = if upper { victim.to_ascii_uppercase() } else { victim.clone() };
            fast.remove(&victim);
            reference.remove(&victim);
        }
        prop_assert_eq!(fast.len(), reference.entries.len());
        for (pick, prefix, upper, dot, unrelated) in queries {
            let host = build_query(&domains, pick, &prefix, upper, dot, unrelated);
            prop_assert_eq!(
                fast.matches(&host),
                reference.matches(&host),
                "matchers disagree on {:?} after removals", host
            );
        }
    }
}

/// Hand-picked corner cases the strategies may hit only rarely.
#[test]
fn domainset_seed_agreement_corner_cases() {
    let entries = ["Facebook.COM.", "ru", "xn--p1ai", "a..b", "v.k.com", "."];
    let hosts = [
        "facebook.com",
        "www.FACEBOOK.com.",
        "login.web.facebook.com",
        "notfacebook.com",
        "ru",
        "RU.",
        "mail.ru",
        "x.xn--p1ai",
        "a..b",
        "z.a..b",
        "k.com",
        "q.v.k.com",
        "",
        ".",
        "..",
        "com",
    ];
    let fast = DomainSet::from_names(entries);
    let mut reference = RefDomainSet::default();
    for e in entries {
        reference.insert(e);
    }
    for host in hosts {
        assert_eq!(
            fast.matches(host),
            reference.matches(host),
            "matchers disagree on {host:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Conntrack expiry differential
// ---------------------------------------------------------------------------

const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 7);
const REMOTE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);

fn pool_key(slot: u8) -> FlowKey {
    FlowKey {
        local_addr: LOCAL,
        local_port: 40_000 + u16::from(slot % 6),
        remote_addr: REMOTE,
        remote_port: 443,
        protocol: 6,
    }
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    prop_oneof![
        Just(TcpFlags::SYN),
        Just(TcpFlags::SYN_ACK),
        Just(TcpFlags::ACK),
        Just(TcpFlags::PSH_ACK),
        Just(TcpFlags::RST),
        Just(TcpFlags::FIN),
        any::<u8>().prop_map(|b| TcpFlags(b & 0x3f)),
    ]
}

fn arb_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Local), Just(Side::Remote)]
}

/// What the seed's lazy-expiry tracker exposes per flow: the state and
/// last-seen time recorded at the most recent observation. A flow is
/// alive at `now` iff `now - last_seen <= state.timeout()` — GC must not
/// make this prediction wrong in either direction.
type ExpiryModel = HashMap<FlowKey, (ConnState, Time)>;

fn model_alive(model: &ExpiryModel, now: Time, key: &FlowKey) -> Option<ConnState> {
    let (state, last_seen) = model.get(key)?;
    (now.since(*last_seen) <= state.timeout()).then_some(*state)
}

proptest! {
    /// The GC ring never changes observable liveness: at every step, for
    /// every key, the tracker's `get` agrees with the lazy-expiry model.
    #[test]
    fn conntrack_gc_preserves_expiry_semantics(
        ops in proptest::collection::vec(
            // (key slot, side, flags, payload len, gap ms, tcp?)
            (any::<u8>(), arb_side(), arb_flags(), 0usize..600, 0u64..700_000, any::<bool>()),
            1..80,
        ),
    ) {
        let mut tracker = ConnTracker::new();
        let mut model: ExpiryModel = HashMap::new();
        let mut now = Time::ZERO;
        for (slot, side, flags, len, gap_ms, tcp) in ops {
            now += Duration::from_millis(gap_ms);
            // Probe every key in the pool before the observation: the
            // tracker and the model must agree on who is still alive.
            for probe_slot in 0..6u8 {
                let key = pool_key(probe_slot);
                let expected = model_alive(&model, now, &key);
                let got = tracker.get(now, &key).map(|e| e.state);
                prop_assert_eq!(got, expected, "liveness diverged for slot {} at {:?}", probe_slot, now);
            }
            let key = pool_key(slot);
            let entry = if tcp {
                tracker.observe_tcp(now, key, side, flags, len)
            } else {
                tracker.observe_udp(now, key, side)
            };
            prop_assert_eq!(entry.last_seen, now);
            model.insert(key, (entry.state, entry.last_seen));
        }
        // Long after the last packet every state's timeout has lapsed;
        // the tracker must report nothing alive and GC must be able to
        // reclaim the table with a handful of further observations.
        let distant = now + Duration::from_secs(10_000);
        for probe_slot in 0..6u8 {
            prop_assert!(tracker.get(distant, &pool_key(probe_slot)).is_none());
        }
        let churn_key = FlowKey { local_port: 50_000, ..pool_key(0) };
        for i in 0..16u64 {
            tracker.observe_tcp(distant + Duration::from_millis(i), churn_key, Side::Local, TcpFlags::SYN, 0);
        }
        prop_assert_eq!(tracker.len(), 1, "GC left expired entries behind");
    }
}

/// Insert-side normalization, applied to both sides of the delta
/// differential's membership model.
fn normalize(name: &str) -> String {
    let mut d = name.to_ascii_lowercase();
    if d.ends_with('.') {
        d.pop();
    }
    d
}

proptest! {
    /// Incremental [`Policy::apply_delta`] (plus `DomainSet::remove`) and
    /// a from-scratch rebuild of the final membership agree exactly —
    /// same entry set, same matcher verdicts on mixed-case and
    /// trailing-dot spellings — and the epoch advances once per delta.
    #[test]
    fn policy_delta_differential(
        ops in proptest::collection::vec(
            (any::<bool>(), arb_domain(), any::<bool>(), any::<bool>()),
            1..50,
        ),
        chunk in 1usize..6,
    ) {
        use tspu_core::{Policy, PolicyDelta};

        let mut incremental = Policy::permissive();
        let mut membership: HashSet<String> = HashSet::new();
        let mut deltas = 0u64;
        for batch in ops.chunks(chunk) {
            // A delta applies all its additions, then all its removals —
            // mirror that order in the membership model.
            let mut delta = PolicyDelta::default();
            for (add, name, upper, dot) in batch {
                let mut spelled = if *upper { name.to_ascii_uppercase() } else { name.clone() };
                if *dot {
                    spelled.push('.');
                }
                if *add {
                    delta.add_rst.push(spelled);
                } else {
                    delta.remove_rst.push(spelled);
                }
            }
            for name in &delta.add_rst {
                membership.insert(normalize(name));
            }
            for name in &delta.remove_rst {
                membership.remove(&normalize(name));
            }
            incremental.apply_delta(&delta);
            deltas += 1;
        }
        prop_assert_eq!(incremental.epoch, deltas);

        let rebuilt = DomainSet::from_names(membership.iter().cloned());
        prop_assert_eq!(incremental.sni_rst.len(), rebuilt.len());
        let mut churned: Vec<&str> = incremental.sni_rst.iter().collect();
        let mut scratch: Vec<&str> = rebuilt.iter().collect();
        churned.sort_unstable();
        scratch.sort_unstable();
        prop_assert_eq!(churned, scratch);

        for (_, name, _, _) in &ops {
            for host in [
                name.clone(),
                name.to_ascii_uppercase(),
                format!("{name}."),
                format!("sub.{name}"),
            ] {
                prop_assert_eq!(
                    incremental.sni_rst.matches(&host),
                    rebuilt.matches(&host),
                    "matchers diverge on {}",
                    host
                );
            }
        }
    }
}
