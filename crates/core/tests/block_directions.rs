//! Direction semantics of blocking verdicts (PR 8's latent-asymmetry fix).
//!
//! The conntrack used to hard-code forward-direction (remote→local)
//! enforcement; [`BlockState`] now carries [`EnforceDirections`] and a
//! per-verdict residual window so bidirectional profiles (Turkmenistan)
//! share the tracker unchanged. Two things are pinned here:
//!
//! 1. Device-level direction contracts: the `tspu` profile rewrites only
//!    remote→local packets (§5.2 SNI-I), while the `turkmenistan` profile
//!    RSTs both directions and expires on its own `BLOCK_TKM` window.
//! 2. Sharded/unsharded observational identity with the *full* block
//!    state visible — kind, since, allowance, epoch, window, directions.
//!    The older sharded differential only compared `block.is_some()`,
//!    which is exactly the blind spot where a direction/window asymmetry
//!    between the trackers could have hidden.

use std::net::Ipv4Addr;
use std::time::Duration;

use proptest::prelude::*;
use tspu_core::conntrack::{ConnTracker, FlowEntry};
use tspu_core::{
    BlockKind, BlockState, CensorProfile, EnforceDirections, FlowKey, Policy, PolicyHandle,
    ShardedConnTracker, Side, ThrottleConfig, TspuDevice,
};
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpRepr, TcpSegment};
use tspu_wire::tls::ClientHelloBuilder;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);

fn tcp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let mut tcp = TcpRepr::new(sp, dp, flags);
    tcp.payload = payload.to_vec();
    let seg = tcp.build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
}

fn flags_of(packet: &[u8]) -> TcpFlags {
    let ip = Ipv4Packet::new_unchecked(packet);
    TcpSegment::new_unchecked(ip.payload()).flags()
}

/// Handshake + triggering ClientHello for `host` on `sport`.
fn trigger(dev: &mut TspuDevice, now: Time, sport: u16, host: &str) {
    for (dir, pkt) in [
        (Direction::LocalToRemote, tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::SYN, b"")),
        (Direction::RemoteToLocal, tcp_packet(SERVER, 443, CLIENT, sport, TcpFlags::SYN_ACK, b"")),
        (Direction::LocalToRemote, tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::ACK, b"")),
        (
            Direction::LocalToRemote,
            tcp_packet(CLIENT, sport, SERVER, 443, TcpFlags::PSH_ACK, &ClientHelloBuilder::new(host).build()),
        ),
    ] {
        assert_eq!(dev.process_owned(now, dir, pkt).len(), 1, "trigger sequence must pass");
    }
}

#[test]
fn tspu_rst_rewrite_touches_only_remote_to_local() {
    let mut dev = TspuDevice::reliable("ru", PolicyHandle::new(Policy::example()));
    trigger(&mut dev, Time::ZERO, 40000, "twitter.com");

    // Local→remote data keeps flowing untouched: the TSPU's asymmetry.
    let up = tcp_packet(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK, b"upstream");
    let out = dev.process_owned(Time::ZERO, Direction::LocalToRemote, up.clone());
    assert_eq!(out, vec![up]);

    // Remote→local data is rewritten to RST/ACK.
    let down = tcp_packet(SERVER, 443, CLIENT, 40000, TcpFlags::PSH_ACK, b"downstream");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, down);
    assert_eq!(flags_of(&out[0]), TcpFlags::RST_ACK);
}

#[test]
fn turkmenistan_rst_rewrite_touches_both_directions() {
    let mut dev = TspuDevice::reliable("tm", PolicyHandle::new(Policy::example()))
        .with_censor_profile(CensorProfile::turkmenistan());
    trigger(&mut dev, Time::ZERO, 40001, "twitter.com");

    // Both directions now come back as RST/ACK: the chokepoint tears the
    // connection down toward client *and* server.
    let up = tcp_packet(CLIENT, 40001, SERVER, 443, TcpFlags::PSH_ACK, b"upstream");
    let out = dev.process_owned(Time::ZERO, Direction::LocalToRemote, up);
    assert_eq!(flags_of(&out[0]), TcpFlags::RST_ACK);

    let down = tcp_packet(SERVER, 443, CLIENT, 40001, TcpFlags::PSH_ACK, b"downstream");
    let out = dev.process_owned(Time::ZERO, Direction::RemoteToLocal, down);
    assert_eq!(flags_of(&out[0]), TcpFlags::RST_ACK);

    // Counter views read zero in an obs-disabled build.
    if tspu_obs::ENABLED {
        assert_eq!(dev.stats().packets_rewritten, 2);
    }
}

#[test]
fn turkmenistan_residual_uses_profile_window_not_table_2() {
    let mut dev = TspuDevice::reliable("tm", PolicyHandle::new(Policy::example()))
        .with_censor_profile(CensorProfile::turkmenistan());
    trigger(&mut dev, Time::ZERO, 40002, "meduza.io");

    let reply = tcp_packet(SERVER, 443, CLIENT, 40002, TcpFlags::PSH_ACK, b"data");
    // Inside the 60 s residual window: still rewritten.
    let out = dev.process_owned(Time::from_secs(59), Direction::RemoteToLocal, reply.clone());
    assert_eq!(flags_of(&out[0]), TcpFlags::RST_ACK);
    // Past it (but still inside the TSPU's 75 s SNI-I window — the
    // profile's override, not Table 2, must decide): passes untouched.
    let out = dev.process_owned(Time::from_secs(61), Direction::RemoteToLocal, reply.clone());
    assert_eq!(out, vec![reply]);
}

// ---------------------------------------------------------------------------
// Sharded/unsharded identity with direction-carrying blocks.
// ---------------------------------------------------------------------------

const KINDS: &[BlockKind] = &[
    BlockKind::RstRewrite,
    BlockKind::DelayedDrop,
    BlockKind::FullDrop,
    BlockKind::QuicDrop,
    BlockKind::BlockPage,
];

#[derive(Debug, Clone)]
enum Op {
    /// Observe a TCP packet on flow `port` from `side`.
    Tcp { port: u16, side: Side, flags: TcpFlags, payload: usize },
    /// Install a verdict with explicit window/directions on flow `port`.
    Block { port: u16, kind: usize, both: bool, window_secs: u64, epoch: u64 },
    /// Expiry-checked read.
    Get { port: u16 },
    /// Device restart: drop everything.
    Clear,
    /// Let time pass (drives entry expiry and residual windows).
    Advance { secs: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let port = 0u16..16;
    let flags = prop_oneof![
        Just(TcpFlags::SYN),
        Just(TcpFlags::SYN_ACK),
        Just(TcpFlags::ACK),
        Just(TcpFlags::PSH_ACK),
        Just(TcpFlags::RST),
    ];
    let side = prop_oneof![Just(Side::Local), Just(Side::Remote)];
    prop_oneof![
        (port.clone(), side, flags, 0usize..400)
            .prop_map(|(port, side, flags, payload)| Op::Tcp { port, side, flags, payload }),
        (port.clone(), 0..KINDS.len(), any::<bool>(), 1u64..200, 0u64..5)
            .prop_map(|(port, kind, both, window_secs, epoch)| Op::Block {
                port, kind, both, window_secs, epoch
            }),
        port.clone().prop_map(|port| Op::Get { port }),
        Just(Op::Clear),
        (1u64..200).prop_map(|secs| Op::Advance { secs }),
    ]
}

fn key(port: u16) -> FlowKey {
    FlowKey {
        local_addr: Ipv4Addr::new(10, 0, 0, 5),
        local_port: 40_000 + port,
        remote_addr: Ipv4Addr::new(203, 0, 113, 5),
        remote_port: 443,
        protocol: 6,
    }
}

/// The full caller-visible verdict — every field a profile can set.
/// (`bucket` is excluded: none of the kinds armed here attach one.)
fn observe_block(b: &BlockState) -> impl PartialEq + std::fmt::Debug {
    (b.kind, b.since, b.allowance, b.epoch, b.window, b.directions)
}

fn observe(e: &FlowEntry) -> impl PartialEq + std::fmt::Debug {
    (
        e.state,
        e.client,
        e.last_seen,
        e.block.as_ref().map(observe_block),
        e.exempt,
        e.remote_ip_blocked,
    )
}

fn install(e: &mut FlowEntry, now: Time, op: &Op) {
    let Op::Block { kind, both, window_secs, epoch, .. } = *op else { unreachable!() };
    let directions = if both { EnforceDirections::Both } else { EnforceDirections::ToLocal };
    e.block = Some(
        BlockState::new(KINDS[kind], now, 6, ThrottleConfig::hard_2022())
            .with_window(Duration::from_secs(window_secs))
            .with_directions(directions)
            .pinned_to(epoch),
    );
}

proptest! {
    #[test]
    fn sharded_blocks_carry_identical_windows_and_directions(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mut reference = ConnTracker::new();
        let mut sharded: Vec<ShardedConnTracker> =
            [1, 4, 16].iter().map(|&n| ShardedConnTracker::with_shards(n)).collect();

        let mut now = Time::ZERO;
        for op in &ops {
            match *op {
                Op::Tcp { port, side, flags, payload } => {
                    let want = observe(reference.observe_tcp(now, key(port), side, flags, payload));
                    for s in &mut sharded {
                        let got = observe(s.observe_tcp(now, key(port), side, flags, payload));
                        prop_assert_eq!(&got, &want, "observe_tcp diverged at {} shards", s.shard_count());
                    }
                }
                Op::Block { port, .. } => {
                    install(reference.observe_tcp(now, key(port), Side::Local, TcpFlags::PSH_ACK, 10), now, op);
                    for s in &mut sharded {
                        install(s.observe_tcp(now, key(port), Side::Local, TcpFlags::PSH_ACK, 10), now, op);
                    }
                }
                Op::Get { port } => {
                    let want = reference.get(now, &key(port)).map(observe);
                    for s in &sharded {
                        let got = s.get(now, &key(port)).map(observe);
                        prop_assert_eq!(&got, &want, "get diverged at {} shards", s.shard_count());
                    }
                }
                Op::Clear => {
                    reference.clear();
                    for s in &mut sharded {
                        s.clear();
                    }
                }
                Op::Advance { secs } => {
                    now += Duration::from_secs(secs);
                }
            }
        }
    }
}
