//! Differential proptest pinning the `tspu` [`CensorProfile`] byte-for-byte.
//!
//! PR 8 factored every TSPU-specific decision out of [`TspuDevice`] into a
//! declarative [`CensorProfile`] interpreted by a general enforcement
//! engine. The contract is that this refactor is *invisible* for Russia:
//! a device running the explicit `tspu` profile — or one rebuilt through
//! the [`DeviceConfig`] round-trip, which now carries the profile — must
//! emit exactly the same packet bytes, the same [`DeviceStats`], the same
//! conntrack population, and the same obs snapshot as a default-constructed
//! device, for *any* traffic mix. Arbitrary volleys here deliberately
//! include HTTP Host requests on port 80 and DNS queries on port 53 —
//! triggers that exist only for the Turkmenistan/India profiles — so the
//! test also pins that the new trigger plumbing is completely inert (no
//! counter movement, no RNG draws, no verdict changes) under `tspu`.
//!
//! Fault plans (mid-flight restarts, Table-1 bypass-rate overrides) and
//! registry deltas are part of the op stream: the failure dice must stay
//! draw-for-draw aligned across all three builds.

use std::net::Ipv4Addr;
use std::time::Duration;

use proptest::prelude::*;
use tspu_core::{CensorProfile, FailureProfile, Policy, PolicyDelta, PolicyHandle, TspuDevice};
use tspu_netsim::fault::DeviceFaults;
use tspu_netsim::{Direction, Middlebox, Time};
use tspu_wire::dns::{DnsQuery, QTYPE_A};
use tspu_wire::http::HttpRequest;
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::quic::{initial_payload, QuicVersion};
use tspu_wire::tcp::{TcpFlags, TcpRepr};
use tspu_wire::tls::ClientHelloBuilder;
use tspu_wire::udp::UdpRepr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);
const TOR: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

/// Hostname pool spanning every list in [`Policy::example`] plus clean
/// names and a delta target that starts unlisted.
const HOSTS: &[&str] = &[
    "twitter.com",     // sni_rst + sni_backup + sni_throttle
    "meduza.io",       // sni_rst only
    "play.google.com", // sni_slow
    "nordvpn.com",     // sni_slow
    "wikipedia.org",   // clean
    "example.org",     // clean
    "rutracker.org",   // unlisted until a Delta op adds it to sni_rst
    "tor.eff.org",     // sni_rst
];

const TLS_SLOTS: u16 = 4;
const HTTP_SLOTS: u16 = 3;

fn tcp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let mut tcp = TcpRepr::new(sp, dp, flags);
    tcp.payload = payload.to_vec();
    let seg = tcp.build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
}

fn udp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16, payload: &[u8]) -> Vec<u8> {
    let datagram = UdpRepr::new(sp, dp, payload.to_vec()).build(src, dst);
    Ipv4Repr::new(src, dst, Protocol::Udp, datagram.len()).build(&datagram)
}

/// One step of the shared op stream, replayed against every build.
#[derive(Debug, Clone)]
enum Op {
    /// SYN / SYN-ACK / ACK on a TLS flow slot (port 443).
    Handshake { slot: u16 },
    /// ClientHello for `HOSTS[host]` on a TLS flow slot.
    ClientHello { slot: u16, host: usize },
    /// `GET / HTTP/1.1` with a Host header on port 80 — a Turkmenistan/
    /// India trigger that must be inert under `tspu`.
    HttpGet { slot: u16, host: usize },
    /// A-record query on port 53 — likewise profile-gated, inert here.
    Dns { host: usize },
    /// QUIC v1 Initial to port 443 (live trigger under `tspu`).
    Quic { slot: u16 },
    /// Local→remote data on a TLS flow slot.
    LocalData { slot: u16, len: usize },
    /// Remote→local data on a TLS flow slot (the enforcement point).
    RemoteData { slot: u16, len: usize },
    /// Local data toward the registry-blocked Tor entry IP.
    TorData { slot: u16 },
    /// Advance virtual time (crosses residual windows and restart marks).
    Advance { secs: u64 },
    /// Add `HOSTS[host]` to `sni_rst` through the shared policy handle.
    Delta { host: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..TLS_SLOTS).prop_map(|slot| Op::Handshake { slot }),
        ((0..TLS_SLOTS), 0..HOSTS.len()).prop_map(|(slot, host)| Op::ClientHello { slot, host }),
        ((0..HTTP_SLOTS), 0..HOSTS.len()).prop_map(|(slot, host)| Op::HttpGet { slot, host }),
        (0..HOSTS.len()).prop_map(|host| Op::Dns { host }),
        (0..TLS_SLOTS).prop_map(|slot| Op::Quic { slot }),
        ((0..TLS_SLOTS), 1usize..300).prop_map(|(slot, len)| Op::LocalData { slot, len }),
        ((0..TLS_SLOTS), 1usize..300).prop_map(|(slot, len)| Op::RemoteData { slot, len }),
        (0..TLS_SLOTS).prop_map(|slot| Op::TorData { slot }),
        (1u64..90).prop_map(|secs| Op::Advance { secs }),
        (0..HOSTS.len()).prop_map(|host| Op::Delta { host }),
    ]
}

fn tls_port(slot: u16) -> u16 {
    41000 + slot
}

fn http_port(slot: u16) -> u16 {
    42000 + slot
}

/// The packets one op injects: `(direction, bytes)` pairs.
fn packets_for(op: &Op) -> Vec<(Direction, Vec<u8>)> {
    match *op {
        Op::Handshake { slot } => {
            let sp = tls_port(slot);
            vec![
                (Direction::LocalToRemote, tcp_packet(CLIENT, sp, SERVER, 443, TcpFlags::SYN, b"")),
                (Direction::RemoteToLocal, tcp_packet(SERVER, 443, CLIENT, sp, TcpFlags::SYN_ACK, b"")),
                (Direction::LocalToRemote, tcp_packet(CLIENT, sp, SERVER, 443, TcpFlags::ACK, b"")),
            ]
        }
        Op::ClientHello { slot, host } => {
            let ch = ClientHelloBuilder::new(HOSTS[host]).build();
            vec![(
                Direction::LocalToRemote,
                tcp_packet(CLIENT, tls_port(slot), SERVER, 443, TcpFlags::PSH_ACK, &ch),
            )]
        }
        Op::HttpGet { slot, host } => {
            let req = HttpRequest::get(HOSTS[host], "/").build();
            vec![(
                Direction::LocalToRemote,
                tcp_packet(CLIENT, http_port(slot), SERVER, 80, TcpFlags::PSH_ACK, &req),
            )]
        }
        Op::Dns { host } => {
            let query = DnsQuery { id: 0x8a00 + host as u16, qname: HOSTS[host].into(), qtype: QTYPE_A };
            vec![(
                Direction::LocalToRemote,
                udp_packet(CLIENT, 43000, SERVER, 53, &query.build()),
            )]
        }
        Op::Quic { slot } => vec![(
            Direction::LocalToRemote,
            udp_packet(CLIENT, 44000 + slot, SERVER, 443, &initial_payload(QuicVersion::V1, 1200)),
        )],
        Op::LocalData { slot, len } => vec![(
            Direction::LocalToRemote,
            tcp_packet(CLIENT, tls_port(slot), SERVER, 443, TcpFlags::PSH_ACK, &vec![0xa5; len]),
        )],
        Op::RemoteData { slot, len } => vec![(
            Direction::RemoteToLocal,
            tcp_packet(SERVER, 443, CLIENT, tls_port(slot), TcpFlags::PSH_ACK, &vec![0x5a; len]),
        )],
        Op::TorData { slot } => vec![(
            Direction::LocalToRemote,
            tcp_packet(CLIENT, tls_port(slot), TOR, 443, TcpFlags::PSH_ACK, b"relay"),
        )],
        Op::Advance { .. } | Op::Delta { .. } => Vec::new(),
    }
}

/// Builds the three devices under comparison against one shared policy
/// handle and one shared fault plan.
fn builds(
    handle: &PolicyHandle,
    seed: u64,
    bypass: f64,
    restarts: &[u64],
) -> Vec<(&'static str, TspuDevice)> {
    let faults = DeviceFaults {
        restarts: restarts.iter().map(|&s| Duration::from_secs(s)).collect(),
        reload_at: None,
        bypass_rate: Some(bypass),
    };
    let base = || {
        TspuDevice::new("pin", handle.clone(), FailureProfile::uniform(bypass), seed)
            .with_device_faults(faults.clone())
    };
    let explicit = base().with_censor_profile(CensorProfile::tspu());
    let roundtrip = explicit.config().instantiate();
    vec![("default", base()), ("explicit-tspu", explicit), ("config-roundtrip", roundtrip)]
}

proptest! {
    #[test]
    fn tspu_profile_is_byte_identical_to_default_engine(
        ops in proptest::collection::vec(arb_op(), 1..100),
        seed in 0u64..1_000_000,
        bypass in prop_oneof![Just(0.0), Just(0.18), Just(0.55)],
        restarts in proptest::collection::vec(1u64..600, 0..3),
    ) {
        let handle = PolicyHandle::new(Policy::example());
        let mut devices = builds(&handle, seed, bypass, &restarts);

        let mut now_secs = 0u64;
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Advance { secs } => now_secs += secs,
                Op::Delta { host } => handle.apply_delta(&PolicyDelta::add_rst_batch([HOSTS[*host]])),
                _ => {}
            }
            let now = Time::from_secs(now_secs);
            for (dir, packet) in packets_for(op) {
                let outs: Vec<Vec<Vec<u8>>> = devices
                    .iter_mut()
                    .map(|(_, dev)| dev.process_owned(now, dir, packet.clone()))
                    .collect();
                for ((name, _), out) in devices[1..].iter().zip(&outs[1..]) {
                    prop_assert_eq!(
                        &outs[0], out,
                        "step {} ({:?}): '{}' diverged from default build", step, op, name
                    );
                }
            }
        }

        let (_, reference) = &devices[0];
        for (name, dev) in &devices[1..] {
            prop_assert_eq!(reference.stats(), dev.stats(), "stats diverged for '{}'", name);
            prop_assert_eq!(
                reference.conntrack().len(), dev.conntrack().len(),
                "conntrack population diverged for '{}'", name
            );
            prop_assert_eq!(
                reference.obs_snapshot(), dev.obs_snapshot(),
                "obs snapshot diverged for '{}'", name
            );
        }
        // The profile-only trigger paths never fire under tspu, no matter
        // how much port-80/port-53 traffic the volley contained.
        prop_assert_eq!(reference.stats().triggers_http, 0);
        prop_assert_eq!(reference.stats().triggers_dns, 0);
    }
}
