//! TSPU connection tracking: flow table, client/server role inference, and
//! the idle-timeout state machine of paper §5.3.2–§5.3.3.
//!
//! ## The state machine
//!
//! The paper probes the TSPU with every TCP flag sequence up to length 3
//! (Fig. 4) and estimates per-state timeouts (Tables 2 and 8). This module
//! encodes the *minimal automaton consistent with those observations*:
//!
//! * The sender of a flow's **first packet** becomes the inferred client —
//!   whatever the packet is. A bare SYN/ACK is "unusual but a valid
//!   prefix" (§7.1.1); a bare data packet or ACK also creates a flow.
//! * A **pure SYN from the side opposite the client** (simultaneous open
//!   or split handshake) makes roles *ambiguous*: SNI-I no longer applies,
//!   but the SNI-IV backup filter still does — Fig. 4's green nodes.
//! * A **bare ACK from the client while roles are ambiguous** completes a
//!   role reversal: the tracker decides the other side was the client all
//!   along (the client is ACKing the remote's SYN the way a server would).
//!   This reconciles Table 2's SYN-RECEIVED measurement with Table 8's
//!   `Ls;Rs;Lt → DROP` row.
//! * A **bare ACK answering a SYN** (no SYN/ACK ever seen) is a protocol
//!   violation; the tracker marks the flow [`ConnState::Invalid`] and
//!   exempts it from SNI blocking (Table 8's `Ls;Ra;Lt → PASS` row).
//! * A **SYN answered by a SYN/ACK** is already `ESTABLISHED` — the TSPU
//!   does not wait for the final ACK (Table 2's 480 s row sleeps *before*
//!   the final ACK).
//!
//! Timeouts are idle timeouts, refreshed by any packet of the flow, with
//! the per-state values from [`crate::constants`].

use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_wire::tcp::TcpFlags;

use tspu_netsim::Time;

use crate::behaviors::BlockState;
use crate::constants;
use crate::fasthash::FxHashMap;

/// Which side of the device a packet came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The Russian / client-network side.
    Local,
    /// The rest of the internet.
    Remote,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::Local => Side::Remote,
            Side::Remote => Side::Local,
        }
    }
}

/// A direction-normalized flow key: the local endpoint always comes first,
/// so both directions of a connection hit the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    pub local_addr: Ipv4Addr,
    pub local_port: u16,
    pub remote_addr: Ipv4Addr,
    pub remote_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
}

impl FlowKey {
    /// Builds a key from packet fields plus the side the packet came from.
    pub fn from_packet(
        from: Side,
        src_addr: Ipv4Addr,
        src_port: u16,
        dst_addr: Ipv4Addr,
        dst_port: u16,
        protocol: u8,
    ) -> FlowKey {
        match from {
            Side::Local => FlowKey {
                local_addr: src_addr,
                local_port: src_port,
                remote_addr: dst_addr,
                remote_port: dst_port,
                protocol,
            },
            Side::Remote => FlowKey {
                local_addr: dst_addr,
                local_port: dst_port,
                remote_addr: src_addr,
                remote_port: src_port,
                protocol,
            },
        }
    }
}

/// Connection-tracking states. Each carries the idle timeout measured for
/// it in the paper (see [`crate::constants`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnState {
    /// A pure SYN seen, nothing back yet.
    SynSent,
    /// A SYN from the side opposite the inferred client: simultaneous
    /// open / split handshake — roles ambiguous.
    SynRecv,
    /// SYN answered by SYN/ACK (or an ambiguous handshake completed).
    Established,
    /// Flow created by a data-bearing packet with no handshake.
    Loose,
    /// Flow created by a bare ACK (a connection whose start the tracker
    /// missed).
    AckFirst,
    /// Flow created by a bare SYN/ACK — §7.1.1's "unusual but valid
    /// prefix", the state upstream-only devices typically hold.
    SynAckFirst,
    /// The tracker saw a protocol-violating packet and gave up; SNI
    /// blocking is exempted while this entry lives.
    Invalid,
    /// A UDP flow (tracked for QUIC verdicts).
    Udp,
}

impl ConnState {
    /// The idle timeout of this state.
    pub fn timeout(self) -> Duration {
        match self {
            ConnState::SynSent => constants::TIMEOUT_SYN_SENT,
            ConnState::SynRecv => constants::TIMEOUT_SYN_RECV,
            ConnState::Established => constants::TIMEOUT_ESTABLISHED,
            ConnState::Loose => constants::TIMEOUT_LOOSE,
            ConnState::AckFirst => constants::TIMEOUT_ACK_FIRST,
            ConnState::SynAckFirst => constants::TIMEOUT_SYNACK_FIRST,
            ConnState::Invalid => constants::TIMEOUT_INVALID,
            ConnState::Udp => constants::TIMEOUT_UDP,
        }
    }
}

/// One tracked flow.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub state: ConnState,
    /// The currently inferred client.
    pub client: Side,
    /// Who sent the first packet of the flow.
    pub first_sender: Side,
    /// A SYN arrived from the side opposite the client (green sequences).
    pub ambiguous: bool,
    /// Roles were reversed after an ambiguous handshake resolved toward
    /// the other side; the SNI-IV backup remains armed if the original
    /// first sender was local.
    pub reversed: bool,
    pub created: Time,
    pub last_seen: Time,
    /// Active blocking verdict, if this flow tripped a trigger.
    pub block: Option<BlockState>,
    /// This device failed to act on this flow (Table 1's failure rates);
    /// triggers are ignored for the entry's lifetime.
    pub exempt: bool,
    /// Whether the exemption dice have been rolled for this flow yet.
    pub exemption_decided: bool,
    /// Accumulated local→remote stream bytes, kept only when the device
    /// runs with TCP-reassembly hardening (see `crate::hardening`).
    pub rx_stream: Vec<u8>,
    /// Cached IP-blocklist verdict for the flow's remote endpoint, tagged
    /// with the policy epoch it was looked up under. A registry delta
    /// bumps the epoch and thereby invalidates every flow's cache, so a
    /// hit is exactly equivalent to re-probing the blocklist.
    pub remote_ip_blocked: Option<(u64, bool)>,
    /// Incarnation tag assigned by the tracker at insertion; see
    /// [`ConnTracker`]'s GC ring.
    gen: u64,
}

impl FlowEntry {
    fn new(now: Time, first_sender: Side, state: ConnState) -> FlowEntry {
        FlowEntry {
            state,
            client: first_sender,
            first_sender,
            ambiguous: false,
            reversed: false,
            created: now,
            last_seen: now,
            block: None,
            exempt: false,
            exemption_decided: false,
            rx_stream: Vec::new(),
            remote_ip_blocked: None,
            gen: 0,
        }
    }

    /// True once the entry has outlived its idle timeout. While a verdict
    /// is in force, packets do NOT refresh `last_seen` (the state is
    /// frozen at trigger time), so residual censorship ends at
    /// min(block-kind duration, state idle timeout) — the reconciliation
    /// of Table 2's residuals with Table 8's `Lt → 180 s` row.
    pub fn expired(&self, now: Time) -> bool {
        now.since(self.last_seen) > self.state.timeout()
    }

    /// SNI-I applies to flows whose client is unambiguously local.
    pub fn sni1_applies(&self) -> bool {
        self.client == Side::Local && !self.ambiguous && self.state != ConnState::Invalid
    }

    /// SNI-II applies whenever the inferred client is local, ambiguous or
    /// not (Table 8's `Ls;Rs;Lt → DROP` with an SNI-II trigger).
    pub fn sni2_applies(&self) -> bool {
        self.client == Side::Local && self.state != ConnState::Invalid
    }

    /// SNI-IV is the backup filter: it arms exactly when SNI-I has been
    /// evaded by role games but the flow's origin was local (§5.3.2).
    pub fn sni4_applies(&self) -> bool {
        if self.state == ConnState::Invalid || self.sni1_applies() {
            return false;
        }
        self.client == Side::Local || (self.reversed && self.first_sender == Side::Local)
    }
}

/// One queued GC probe: a flow key plus the generation of the entry it was
/// queued for. A slot whose generation no longer matches the live entry is
/// stale (the flow was removed or replaced) and is simply dropped.
#[derive(Debug, Clone, Copy)]
struct RingSlot {
    key: FlowKey,
    gen: u64,
}

/// How many ring slots each observation probes. Reclamation keeps pace
/// with creation as long as this is > 1 (each packet creates at most one
/// entry and pushes at most one slot). Public so load drivers can assert
/// the per-packet GC bound they were promised.
pub const GC_PROBE_BUDGET: usize = 4;

/// The flow table.
///
/// ## Garbage collection
///
/// Expiry is *semantically* lazy — [`ConnTracker::get`]/[`get_mut`] and the
/// observe paths check [`FlowEntry::expired`] at access time — so GC exists
/// purely to reclaim memory for flows that are never touched again. It runs
/// as a CLOCK-style sweep over a ring of slots, one per live entry: every
/// observation pops at most [`GC_PROBE_BUDGET`] slots, drops the entries
/// that have expired, and re-queues the live ones. Worst-case work per
/// packet is O([`GC_PROBE_BUDGET`]) regardless of table size — there is no
/// full-table scan anywhere on the packet path — and every expired entry is
/// reclaimed within one ring revolution of its expiry.
#[derive(Default)]
pub struct ConnTracker {
    flows: FxHashMap<FlowKey, FlowEntry>,
    /// GC ring: exactly one non-stale slot per live entry.
    ring: VecDeque<RingSlot>,
    /// Generation counter; tags each inserted entry and its ring slot.
    next_gen: u64,
    /// Ring slots probed by GC so far — the direct measure of reclamation
    /// work on the packet path, surfaced as `conntrack.gc_probes`.
    gc_probes: u64,
    /// Expired entries reclaimed by GC so far, surfaced as
    /// `conntrack.gc_evictions` and mirrored into the enforcement flight
    /// recorder's ledger.
    gc_evictions: u64,
}

impl ConnTracker {
    /// Creates an empty tracker.
    pub fn new() -> ConnTracker {
        ConnTracker::default()
    }

    /// Creates a tracker with table and ring space pre-reserved — the
    /// `nf_conntrack` hashsize analogue. A provisioned table never grows
    /// on the packet path, so flow insertion latency stays flat (growth
    /// rehashes are the one remaining O(table) event; see the
    /// `conntrack/gc_churn_*` tail-latency benches).
    ///
    /// The map reserves exactly `capacity` live entries (the std guarantee
    /// already includes load-factor headroom). The ring reserves 2×: under
    /// expiry churn it briefly holds a stale slot alongside the fresh slot
    /// for a replaced key, and without the headroom a full table doubles
    /// the ring on the packet path — the reallocation cliff this
    /// constructor exists to prevent.
    pub fn with_capacity(capacity: usize) -> ConnTracker {
        ConnTracker {
            flows: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            ring: VecDeque::with_capacity(capacity.saturating_mul(2)),
            next_gen: 0,
            gc_probes: 0,
            gc_evictions: 0,
        }
    }

    /// Allocated table capacity in entries (provisioning telemetry; the
    /// capacity-stability regression test watches this across churn).
    pub fn table_capacity(&self) -> usize {
        self.flows.capacity()
    }

    /// Allocated GC-ring capacity in slots.
    pub fn ring_capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Estimated bytes held by the tracker's table and ring allocations.
    /// An estimate: hashbrown's control bytes and allocation rounding are
    /// not modeled, only `capacity × entry size`. Load soaks divide this by
    /// the tracked-flow count for a bytes-per-flow figure.
    pub fn memory_bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        self.flows.capacity() * (size_of::<FlowKey>() + size_of::<FlowEntry>())
            + self.ring.capacity() * size_of::<RingSlot>()
    }

    /// Number of live entries (including expired-but-unswept).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Read-only view of a flow, expiry-checked.
    pub fn get(&self, now: Time, key: &FlowKey) -> Option<&FlowEntry> {
        self.flows.get(key).filter(|e| !e.expired(now))
    }

    /// Mutable view of a flow, expiry-checked.
    pub fn get_mut(&mut self, now: Time, key: &FlowKey) -> Option<&mut FlowEntry> {
        self.flows.get_mut(key).filter(|e| !e.expired(now))
    }

    /// Removes a flow.
    pub fn remove(&mut self, key: &FlowKey) {
        self.flows.remove(key);
    }

    /// Audits epoch pinning: how many live flows still enforce a verdict
    /// installed under a policy epoch older than `epoch`. These are the
    /// residually blocked connections a registry delta does *not* touch —
    /// Table 2's windows outliving the rule that opened them.
    pub fn blocks_pinned_before(&self, now: Time, epoch: u64) -> usize {
        self.flows
            .values()
            .filter(|e| !e.expired(now))
            .filter_map(|e| e.block.as_ref())
            .filter(|b| b.active(now) && b.epoch < epoch)
            .count()
    }

    /// Drops every tracked flow — what a device restart does to its state
    /// table. Allocated table and ring capacity is kept, so a restarted
    /// provisioned device still never grows on the packet path.
    pub fn clear(&mut self) {
        self.flows.clear();
        self.ring.clear();
    }

    /// Observes a TCP packet of flow `key` from `side`, creating or
    /// transitioning the entry, and returns it.
    pub fn observe_tcp(
        &mut self,
        now: Time,
        key: FlowKey,
        side: Side,
        flags: TcpFlags,
        payload_len: usize,
    ) -> &mut FlowEntry {
        self.gc_step(now);
        let (entry, is_new) = Self::lookup_or_insert(
            &mut self.flows,
            &mut self.ring,
            &mut self.next_gen,
            now,
            key,
            || FlowEntry::new(now, side, initial_state(flags, payload_len)),
        );
        // Clear a lapsed block so residual censorship genuinely ends.
        if entry.block.as_ref().is_some_and(|b| !b.active(now)) {
            entry.block = None;
        }
        if entry.block.is_some() {
            // Verdict in force: the flow's state is frozen at trigger
            // time; blocked traffic neither transitions nor refreshes it.
            return entry;
        }
        if !is_new {
            transition(entry, side, flags, payload_len);
        }
        entry.last_seen = now;
        entry
    }

    /// Observes a UDP packet; UDP flows exist mainly to carry QUIC block
    /// state and use the loose timeout.
    pub fn observe_udp(&mut self, now: Time, key: FlowKey, side: Side) -> &mut FlowEntry {
        self.gc_step(now);
        let (entry, _is_new) = Self::lookup_or_insert(
            &mut self.flows,
            &mut self.ring,
            &mut self.next_gen,
            now,
            key,
            || FlowEntry::new(now, side, ConnState::Udp),
        );
        if entry.block.as_ref().is_some_and(|b| !b.active(now)) {
            entry.block = None;
        }
        if entry.block.is_none() {
            entry.last_seen = now;
        }
        entry
    }

    /// Finds the live entry for `key`, replacing an expired incarnation or
    /// inserting `make()` when none exists; returns the entry and whether
    /// it is brand new. One hash lookup covers the expiry check, the
    /// existence check, and the access — this runs on every packet.
    fn lookup_or_insert<'a>(
        flows: &'a mut FxHashMap<FlowKey, FlowEntry>,
        ring: &mut VecDeque<RingSlot>,
        next_gen: &mut u64,
        now: Time,
        key: FlowKey,
        make: impl FnOnce() -> FlowEntry,
    ) -> (&'a mut FlowEntry, bool) {
        use std::collections::hash_map::Entry;
        let mut tag_fresh = |entry: &mut FlowEntry| {
            // The new generation invalidates any ring slot still queued
            // for a replaced incarnation under the same key.
            entry.gen = *next_gen;
            *next_gen += 1;
            ring.push_back(RingSlot { key, gen: entry.gen });
        };
        match flows.entry(key) {
            Entry::Occupied(occ) if occ.get().expired(now) => {
                let entry = occ.into_mut();
                *entry = make();
                tag_fresh(entry);
                (entry, true)
            }
            Entry::Occupied(occ) => (occ.into_mut(), false),
            Entry::Vacant(vacant) => {
                let entry = vacant.insert(make());
                tag_fresh(entry);
                (entry, true)
            }
        }
    }

    /// One bounded GC step: probe up to [`GC_PROBE_BUDGET`] ring slots.
    /// Stale slots (entry gone or replaced under the same key) are dropped;
    /// expired entries are reclaimed; live entries are re-queued. Probing
    /// more slots than the ring holds would only re-inspect entries this
    /// same call just re-queued, so the budget is capped at the ring
    /// length — a one-flow tracker pays for one probe, not four.
    fn gc_step(&mut self, now: Time) {
        for _ in 0..GC_PROBE_BUDGET.min(self.ring.len()) {
            let Some(slot) = self.ring.pop_front() else { return };
            self.gc_probes += 1;
            match self.flows.get(&slot.key) {
                Some(e) if e.gen == slot.gen => {
                    if e.expired(now) {
                        self.flows.remove(&slot.key);
                        self.gc_evictions += 1;
                    } else {
                        self.ring.push_back(slot);
                    }
                }
                _ => {} // stale slot; its entry was removed or replaced
            }
        }
    }

    /// Ring slots probed by GC since construction (telemetry).
    pub fn gc_probes(&self) -> u64 {
        self.gc_probes
    }

    /// Expired entries reclaimed by GC since construction (telemetry).
    pub fn gc_evictions(&self) -> u64 {
        self.gc_evictions
    }

    /// Number of queued GC probes (tests only).
    #[cfg(test)]
    fn ring_len(&self) -> usize {
        self.ring.len()
    }
}

/// The state a brand-new flow starts in, from its first packet.
fn initial_state(flags: TcpFlags, payload_len: usize) -> ConnState {
    if flags.is_pure_syn() {
        ConnState::SynSent
    } else if flags.is_syn_ack() {
        ConnState::SynAckFirst
    } else if payload_len > 0 {
        ConnState::Loose
    } else if flags.ack() && !flags.rst() && !flags.fin() {
        ConnState::AckFirst
    } else {
        ConnState::Loose
    }
}

/// Applies one packet's worth of state transition to an existing entry.
fn transition(entry: &mut FlowEntry, side: Side, flags: TcpFlags, payload_len: usize) {
    if flags.is_pure_syn() {
        if side != entry.client {
            // Simultaneous open / split handshake: roles become ambiguous.
            if entry.state != ConnState::Invalid {
                entry.state = ConnState::SynRecv;
                entry.ambiguous = true;
            }
        }
        // A SYN retransmission from the client refreshes only.
        return;
    }
    if flags.is_syn_ack() {
        match entry.state {
            ConnState::SynSent if side != entry.client => {
                // Normal handshake step 2: established right away.
                entry.state = ConnState::Established;
            }
            ConnState::SynRecv => {
                // Either side completing an ambiguous handshake.
                entry.state = ConnState::Established;
            }
            _ => {}
        }
        return;
    }
    let bare_ack = flags.ack() && payload_len == 0 && !flags.rst() && !flags.fin();
    if bare_ack {
        match entry.state {
            ConnState::SynSent if side != entry.client => {
                // An ACK answering a SYN with no SYN/ACK in between:
                // protocol violation, tracker gives up (Ls;Ra → PASS).
                entry.state = ConnState::Invalid;
                entry.ambiguous = false;
            }
            ConnState::SynRecv if entry.ambiguous && side == entry.client => {
                // The nominal client ACKs the opposite SYN like a server
                // would: the tracker reverses roles (Table 2, SYN-RECEIVED
                // row measured through exactly this sequence).
                entry.client = entry.client.flip();
                entry.ambiguous = false;
                entry.reversed = true;
            }
            ConnState::SynRecv => {
                entry.state = ConnState::Established;
            }
            _ => {}
        }
    }
    // A data-bearing packet on a half-open handshake degrades the entry to
    // the loose-data state (Table 8: `Ls;Rs;Lt` measures 180 s, the Loose
    // timeout, not SYN-RECEIVED's 105 s). Role flags are preserved.
    if payload_len > 0 && matches!(entry.state, ConnState::SynSent | ConnState::SynRecv) {
        entry.state = ConnState::Loose;
    }
    // RST / FIN packets refresh the entry without changing state: the TSPU
    // keeps residual state even across RSTs (fresh source ports are needed
    // to escape residual censorship, §3).
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 5);
    const REMOTE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 5);

    fn key() -> FlowKey {
        FlowKey {
            local_addr: LOCAL,
            local_port: 40000,
            remote_addr: REMOTE,
            remote_port: 443,
            protocol: 6,
        }
    }

    /// Plays a sequence of (side, flags, payload) and returns the entry.
    fn play(tracker: &mut ConnTracker, seq: &[(Side, TcpFlags, usize)]) -> FlowEntry {
        let mut now = Time::ZERO;
        for &(side, flags, len) in seq {
            tracker.observe_tcp(now, key(), side, flags, len);
            now += Duration::from_millis(10);
        }
        tracker.flows.get(&key()).unwrap().clone()
    }

    use Side::{Local as L, Remote as R};
    const S: TcpFlags = TcpFlags::SYN;
    const SA: TcpFlags = TcpFlags::SYN_ACK;
    const A: TcpFlags = TcpFlags::ACK;

    #[test]
    fn key_normalization() {
        let from_local = FlowKey::from_packet(L, LOCAL, 40000, REMOTE, 443, 6);
        let from_remote = FlowKey::from_packet(R, REMOTE, 443, LOCAL, 40000, 6);
        assert_eq!(from_local, from_remote);
    }

    #[test]
    fn normal_handshake_client_local() {
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, SA, 0), (L, A, 0)]);
        assert_eq!(e.state, ConnState::Established);
        assert_eq!(e.client, L);
        assert!(!e.ambiguous);
        assert!(e.sni1_applies());
        assert!(e.sni2_applies());
        assert!(!e.sni4_applies()); // SNI-I takes precedence
    }

    #[test]
    fn syn_plus_synack_is_already_established() {
        // Table 2: the 480 s state is reached before the final ACK.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, SA, 0)]);
        assert_eq!(e.state, ConnState::Established);
    }

    #[test]
    fn remote_initiated_flow_never_sni_blockable() {
        // Fig. 4: "any sequence starting with a packet sent by the remote
        // peer is NOT a valid prefix".
        let mut t = ConnTracker::new();
        for seq in [
            vec![(R, S, 0)],
            vec![(R, S, 0), (L, SA, 0)],
            vec![(R, S, 0), (L, SA, 0), (R, A, 0)],
            vec![(R, A, 0)],
            vec![(R, SA, 0)],
            vec![(R, TcpFlags::PSH_ACK, 0), (L, TcpFlags::PSH_ACK, 100)],
        ] {
            let e = play(&mut t, &seq);
            assert!(!e.sni1_applies(), "{seq:?}");
            assert!(!e.sni2_applies(), "{seq:?}");
            assert!(!e.sni4_applies(), "{seq:?}");
            t.remove(&key());
        }
    }

    #[test]
    fn simultaneous_open_is_green() {
        // Ls;Rs: evades SNI-I, still trips SNI-II and SNI-IV.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, S, 0)]);
        assert_eq!(e.state, ConnState::SynRecv);
        assert!(e.ambiguous);
        assert!(!e.sni1_applies());
        assert!(e.sni2_applies());
        assert!(e.sni4_applies());
    }

    #[test]
    fn split_handshake_is_green() {
        // §8 server-side strategy: client SYN, server answers with bare
        // SYN, client SYN/ACKs, server ACKs.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, S, 0), (L, SA, 0), (R, A, 0)]);
        assert_eq!(e.state, ConnState::Established);
        assert!(e.ambiguous);
        assert!(!e.sni1_applies());
        assert!(e.sni4_applies());
    }

    #[test]
    fn ambiguous_handshake_ack_reverses_roles() {
        // Ls;Rs;La — Table 2's SYN-RECEIVED sequence: after the local bare
        // ACK the tracker decides the remote is the client.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, S, 0), (L, A, 0)]);
        assert_eq!(e.state, ConnState::SynRecv);
        assert_eq!(e.client, R);
        assert!(!e.ambiguous);
        assert!(e.reversed);
        assert!(!e.sni1_applies());
        assert!(!e.sni2_applies()); // PASS while alive — the Table 2 flip
        assert!(e.sni4_applies()); // backup still armed
    }

    #[test]
    fn ack_answering_syn_invalidates_flow() {
        // Ls;Ra → Invalid → exempt (Table 8 row `Ls;Ra;Lt` = PASS, 180 s).
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, A, 0)]);
        assert_eq!(e.state, ConnState::Invalid);
        assert!(!e.sni1_applies());
        assert!(!e.sni2_applies());
        assert!(!e.sni4_applies());
        assert_eq!(e.state.timeout(), Duration::from_secs(180));
    }

    #[test]
    fn synack_first_is_valid_blockable_prefix() {
        // §7.1.1: upstream-only devices see the RU SYN/ACK first and treat
        // its sender as the client.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, SA, 0)]);
        assert_eq!(e.state, ConnState::SynAckFirst);
        assert_eq!(e.client, L);
        assert!(e.sni1_applies());
        assert!(e.sni2_applies());
        assert_eq!(e.state.timeout(), Duration::from_secs(480));
    }

    #[test]
    fn loose_data_first_flow_is_blockable() {
        // Table 8 `Lt` row: a bare triggering data packet DROPs (180 s).
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, TcpFlags::PSH_ACK, 500)]);
        assert_eq!(e.state, ConnState::Loose);
        assert!(e.sni1_applies());
        assert_eq!(e.state.timeout(), Duration::from_secs(180));
    }

    #[test]
    fn ack_first_flow_is_blockable_with_long_timeout() {
        // Table 8 `La;Lt` row: DROP, 480 s.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, A, 0)]);
        assert_eq!(e.state, ConnState::AckFirst);
        assert!(e.sni1_applies());
        assert_eq!(e.state.timeout(), Duration::from_secs(480));
    }

    #[test]
    fn idle_expiry_replaces_entry() {
        let mut t = ConnTracker::new();
        t.observe_tcp(Time::ZERO, key(), R, S, 0);
        // Still alive within 60 s.
        let now = Time::from_secs(59);
        assert!(t.get(now, &key()).is_some());
        // Expired beyond 60 s: a local trigger now creates a *fresh* flow
        // with client = local.
        let now = Time::from_secs(61);
        assert!(t.get(now, &key()).is_none());
        let e = t.observe_tcp(now, key(), L, TcpFlags::PSH_ACK, 300);
        assert_eq!(e.client, L);
        assert_eq!(e.state, ConnState::Loose);
    }

    #[test]
    fn activity_refreshes_idle_timeout() {
        let mut t = ConnTracker::new();
        t.observe_tcp(Time::ZERO, key(), L, S, 0);
        t.observe_tcp(Time::from_secs(50), key(), L, S, 0); // retransmit
        assert!(t.get(Time::from_secs(100), &key()).is_some());
        assert!(t.get(Time::from_secs(111), &key()).is_none());
    }

    #[test]
    fn established_timeout_is_480() {
        let mut t = ConnTracker::new();
        t.observe_tcp(Time::ZERO, key(), L, S, 0);
        t.observe_tcp(Time::from_secs(1), key(), R, SA, 0);
        assert!(t.get(Time::from_secs(480), &key()).is_some());
        assert!(t.get(Time::from_secs(482), &key()).is_none());
    }

    #[test]
    fn late_remote_syn_on_established_goes_ambiguous() {
        // A remote SYN arriving mid-connection still creates ambiguity.
        let mut t = ConnTracker::new();
        let e = play(&mut t, &[(L, S, 0), (R, SA, 0), (L, A, 0), (R, S, 0)]);
        assert!(e.ambiguous);
        assert!(!e.sni1_applies());
        assert!(e.sni4_applies());
    }

    #[test]
    fn gc_sweeps_expired_flows() {
        let mut t = ConnTracker::new();
        for port in 0..32u16 {
            let k = FlowKey { local_port: 1000 + port, ..key() };
            t.observe_tcp(Time::ZERO, k, L, TcpFlags::PSH_ACK, 10);
        }
        assert_eq!(t.len(), 32);
        // All 32 Loose flows expire by t = 300 s (timeout 180 s). Each
        // observation probes a bounded number of ring slots, so a handful
        // of packets on an unrelated flow reclaims the whole table without
        // any single packet paying for a full-table scan.
        for i in 0..16u64 {
            t.observe_tcp(Time::from_secs(300 + i), key(), L, S, 0);
        }
        assert_eq!(t.len(), 1); // only the probing flow survives
    }

    #[test]
    fn gc_ring_holds_one_slot_per_live_entry() {
        let mut t = ConnTracker::new();
        // Churn the same key through repeated expiry + re-creation: stale
        // slots must not accumulate past the probe horizon.
        for i in 0..1000u64 {
            let now = Time::from_secs(i * 200); // Loose timeout is 180 s
            t.observe_tcp(now, key(), L, TcpFlags::PSH_ACK, 10);
        }
        assert_eq!(t.len(), 1);
        assert!(t.ring_len() <= 8, "ring grew unboundedly: {}", t.ring_len());
    }

    #[test]
    fn provisioned_capacity_stable_across_churn() {
        // A table provisioned for N flows must never rehash (and its ring
        // must never reallocate) before N live inserts — including under
        // expiry churn, which replaces entries in place and briefly queues
        // a stale ring slot next to each fresh one.
        const N: usize = 4096;
        let mut t = ConnTracker::with_capacity(N);
        let table_cap = t.table_capacity();
        let ring_cap = t.ring_capacity();
        assert!(table_cap >= N);
        assert!(ring_cap >= N * 2);
        // Three generations of the full population: each round expires the
        // last (Loose timeout 180 s), so live count tops out at N while
        // total inserts run to 3N.
        for round in 0..3u64 {
            let now = Time::from_secs(round * 300);
            for i in 0..N {
                let k = FlowKey {
                    local_port: (i % 60000) as u16,
                    local_addr: Ipv4Addr::new(10, 0, (i / 60000) as u8, 1),
                    ..key()
                };
                t.observe_tcp(now, k, L, TcpFlags::PSH_ACK, 10);
            }
            assert!(t.len() <= N);
        }
        assert_eq!(t.table_capacity(), table_cap, "flow table rehashed during churn");
        assert_eq!(t.ring_capacity(), ring_cap, "GC ring reallocated during churn");
    }

    #[test]
    fn gc_never_drops_live_entries() {
        let mut t = ConnTracker::new();
        for port in 0..64u16 {
            let k = FlowKey { local_port: 1000 + port, ..key() };
            t.observe_tcp(Time::ZERO, k, L, S, 0);
        }
        // Many observations well within the SynSent timeout: the sweep
        // cycles every slot several times but must reclaim nothing.
        for i in 0..256u64 {
            t.observe_tcp(Time::from_micros(i * 1000), key(), L, S, 0);
        }
        assert_eq!(t.len(), 65);
    }
}
