//! Fast deterministic hashing for the packet path.
//!
//! The implementation lives in `tspu_wire::fasthash` (the dependency-free
//! base crate) so that `tspu_netsim` can use the same maps without a
//! dependency cycle; this module re-exports it under the crate the
//! hot-path consumers (conntrack, frag cache, policy) actually import.

pub use tspu_wire::fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
