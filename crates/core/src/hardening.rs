//! The counter-circumvention upgrades §8 predicts: "The TSPU could easily
//! 'patch' these evasion strategies (server-side or client-side), assuming
//! it is provisioned with enough computation and memory resources."
//!
//! Each knob corresponds to one sentence of that paragraph:
//!
//! * [`Hardening::tcp_reassembly`] — "TCP flow reassembly is a standard
//!   feature for today's DPIs, though it comes with a significantly higher
//!   requirement for resources" — defeats TCP segmentation, the padding
//!   extension, and the server-side small-window strategy.
//! * [`Hardening::ip_reassembly`] — the same at the IP layer, defeating
//!   fragmentation of the ClientHello.
//! * [`Hardening::min_synack_window`] — "the server-side reduced window
//!   size strategy could be countered with a simple restriction that
//!   filters servers' advertised flow control windows".
//! * [`Hardening::strict_roles`] — "handling Simultaneous Open or Split
//!   Handshake simply requires reasoning about the roles of 'Client' and
//!   'Server' in a more ad-hoc way": a ClientHello traveling outward *is*
//!   the client speaking, whatever the handshake looked like.
//! * [`Hardening::scan_multiple_records`] — walk past non-handshake TLS
//!   records instead of inspecting only the first.
//!
//! The resource cost the paper predicts is observable:
//! [`crate::DeviceStats::reassembly_bytes_buffered`] counts the memory the
//! upgrades demand, and the `perf` bench measures the throughput hit.

/// Counter-circumvention configuration. `Default` is the 2022 TSPU:
/// everything off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hardening {
    /// Reassemble TCP byte streams (per flow, capped) before SNI
    /// inspection.
    pub tcp_reassembly: bool,
    /// Reassemble buffered IP fragments for inspection (forwarding still
    /// happens fragment-by-fragment, like the real device).
    pub ip_reassembly: bool,
    /// Drop remote→local SYN/ACKs advertising a window below this value.
    pub min_synack_window: Option<u16>,
    /// Infer the client from who sends the ClientHello, not from
    /// handshake shape — split handshake, simultaneous open, and the
    /// delayed-response trick stop helping.
    pub strict_roles: bool,
    /// Scan past leading non-handshake records when locating the
    /// ClientHello.
    pub scan_multiple_records: bool,
}

impl Hardening {
    /// The 2022 deployment: no hardening.
    pub fn none() -> Hardening {
        Hardening::default()
    }

    /// Every predicted patch at once.
    pub fn full() -> Hardening {
        Hardening {
            tcp_reassembly: true,
            ip_reassembly: true,
            min_synack_window: Some(256),
            strict_roles: true,
            scan_multiple_records: true,
        }
    }
}

/// Maximum bytes of stream buffered per flow for TCP reassembly. A real
/// DPI bounds this; 16 KiB comfortably covers any ClientHello.
pub const REASSEMBLY_CAP: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_2022_behavior() {
        let h = Hardening::none();
        assert!(!h.tcp_reassembly);
        assert!(!h.ip_reassembly);
        assert!(h.min_synack_window.is_none());
        assert!(!h.strict_roles);
        assert!(!h.scan_multiple_records);
    }

    #[test]
    fn full_enables_everything() {
        let h = Hardening::full();
        assert!(h.tcp_reassembly && h.ip_reassembly && h.strict_roles && h.scan_multiple_records);
        assert!(h.min_synack_window.unwrap() >= 64);
    }
}
