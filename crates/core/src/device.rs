//! The TSPU device: an in-path middlebox composing conntrack, the SNI
//! engine, the QUIC filter, IP-based blocking, the fragment cache, and the
//! policer, behind the [`tspu_netsim::Middlebox`] trait.
//!
//! Processing pipeline per packet (§5.2's six behaviors):
//!
//! 1. IP fragments go only through the fragment cache (the TSPU does not
//!    reassemble — which is precisely why IP fragmentation of a
//!    ClientHello evades SNI inspection, §8) and the IP address blocklist.
//! 2. ICMP to/from blocked IPs is dropped.
//! 3. TCP packets update the connection tracker; IP-based blocking,
//!    then any active flow verdict, then trigger evaluation apply.
//! 4. UDP packets to port 443 are checked against the QUIC fingerprint.


use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tspu_netsim::fault::DeviceFaults;
use tspu_netsim::{Direction, Middlebox, MiddleboxImage, Time, Verdict};
use tspu_obs::{CounterId, MetricValue, Registry, Snapshot, Tracer};
use tspu_wire::dns::DnsQuery;
use tspu_wire::http::HttpRequest;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};
use tspu_wire::tls::{extract_sni, SniOutcome};
use tspu_wire::udp::UdpDatagram;

use crate::behaviors::{BlockKind, BlockState};
use crate::chaos::ModelViolation;
use crate::conntrack::{FlowKey, Side};
use crate::profile::{CensorProfile, SniMode};
use crate::recorder::{FlightRecorder, LedgerKind};
use crate::sharded::ShardedConnTracker;
use crate::constants;
use crate::frag_cache::{FragCache, FragConfig};
use crate::hardening::{Hardening, REASSEMBLY_CAP};
use crate::policy::{NormalizedHost, PolicyHandle};

/// Per-mechanism probabilities that this device fails to act on a flow —
/// the quantity Table 1 measures. Real deployments showed 0 %–2.2 %
/// depending on ISP and mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureProfile {
    /// SNI-I (RST/ACK rewrite).
    pub sni1: f64,
    /// SNI-II (delayed symmetric drop).
    pub sni2: f64,
    /// SNI-III (throttling).
    pub sni3: f64,
    /// SNI-IV (backup full drop).
    pub sni4: f64,
    /// The QUIC filter.
    pub quic: f64,
    /// IP-based blocking.
    pub ip: f64,
}

impl FailureProfile {
    /// A perfectly reliable device.
    pub fn none() -> FailureProfile {
        FailureProfile::uniform(0.0)
    }

    /// A uniform failure probability across mechanisms.
    pub fn uniform(p: f64) -> FailureProfile {
        FailureProfile { sni1: p, sni2: p, sni3: p, sni4: p, quic: p, ip: p }
    }

    /// The probability for a given SNI verdict kind.
    pub fn for_kind(&self, kind: BlockKind) -> f64 {
        match kind {
            BlockKind::RstRewrite => self.sni1,
            BlockKind::DelayedDrop => self.sni2,
            BlockKind::Throttle => self.sni3,
            BlockKind::FullDrop => self.sni4,
            BlockKind::QuicDrop => self.quic,
            // Table 1 is TSPU-specific; block-page injection (India
            // profile) shares the primary-mechanism dice slot.
            BlockKind::BlockPage => self.sni1,
        }
    }
}

/// Counters exposed for experiments and benches. Since the observability
/// refactor this is a *view* reconstructed from the device's `tspu_obs`
/// registry by [`TspuDevice::stats`] (all zero in an obs-disabled build);
/// the storage lives under `device.<label>.*` metric names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    pub packets_seen: u64,
    pub packets_dropped: u64,
    pub packets_rewritten: u64,
    pub triggers_sni1: u64,
    pub triggers_sni2: u64,
    pub triggers_sni3: u64,
    pub triggers_sni4: u64,
    pub triggers_quic: u64,
    /// HTTP Host-header triggers fired (profiles with an `http_host`
    /// filter — Turkmenistan, India; always 0 for the TSPU profile).
    pub triggers_http: u64,
    /// DNS qname triggers fired (profiles with a `dns` filter).
    pub triggers_dns: u64,
    pub ip_blocked_packets: u64,
    pub fragments_processed: u64,
    /// Bytes held in per-flow stream buffers (TCP-reassembly hardening):
    /// the memory bill §8 predicts for patching segmentation evasions.
    pub reassembly_bytes_buffered: u64,
    /// SYN/ACKs dropped by the small-window filter (hardening).
    pub synacks_filtered: u64,
    /// Scheduled restarts applied so far (chaos).
    pub restarts: u64,
    /// Enforcement events on flows whose verdict is pinned to a policy
    /// epoch older than the live one (residual blocking across registry
    /// deltas — the epoch audit).
    pub stale_epoch_verdicts: u64,
}

/// The device's metric registry scope (`device.<label>`) plus one interned
/// counter id per [`DeviceStats`] field — every increment on the packet
/// path is an indexed add, no hashing, no allocation. Zero-sized when the
/// `obs` feature is off.
struct DeviceMetrics {
    registry: Registry,
    tracer: Tracer,
    packets_seen: CounterId,
    packets_dropped: CounterId,
    packets_rewritten: CounterId,
    triggers_sni1: CounterId,
    triggers_sni2: CounterId,
    triggers_sni3: CounterId,
    triggers_sni4: CounterId,
    triggers_quic: CounterId,
    triggers_http: CounterId,
    triggers_dns: CounterId,
    ip_blocked_packets: CounterId,
    fragments_processed: CounterId,
    reassembly_bytes: CounterId,
    synacks_filtered: CounterId,
    restarts: CounterId,
    policer_rejects: CounterId,
    stale_epoch_verdicts: CounterId,
}

impl DeviceMetrics {
    fn new(label: &str) -> DeviceMetrics {
        let mut registry = Registry::scoped(format!("device.{label}"));
        DeviceMetrics {
            packets_seen: registry.counter("packets_seen"),
            packets_dropped: registry.counter("verdicts.drop"),
            packets_rewritten: registry.counter("verdicts.rst_rewrite"),
            triggers_sni1: registry.counter("triggers.sni1"),
            triggers_sni2: registry.counter("triggers.sni2"),
            triggers_sni3: registry.counter("triggers.sni3"),
            triggers_sni4: registry.counter("triggers.sni4"),
            triggers_quic: registry.counter("triggers.quic"),
            triggers_http: registry.counter("triggers.http_host"),
            triggers_dns: registry.counter("triggers.dns"),
            ip_blocked_packets: registry.counter("ip_blocked"),
            fragments_processed: registry.counter("fragments_processed"),
            reassembly_bytes: registry.counter("reassembly_bytes"),
            synacks_filtered: registry.counter("synacks_filtered"),
            restarts: registry.counter("restarts"),
            policer_rejects: registry.counter("policer.rejects"),
            stale_epoch_verdicts: registry.counter("verdicts.stale_epoch"),
            registry,
            tracer: Tracer::new(),
        }
    }

    #[inline]
    fn inc(&mut self, id: CounterId) {
        self.registry.inc(id);
    }

    /// A zeroed copy for a forked device: same scope and counter slots,
    /// shared interned names, all values zero, fresh tracer with the
    /// sampling switch preserved.
    fn fork(&self) -> DeviceMetrics {
        DeviceMetrics {
            registry: self.registry.fork_reset(),
            tracer: self.tracer.fork_reset(),
            packets_seen: self.packets_seen,
            packets_dropped: self.packets_dropped,
            packets_rewritten: self.packets_rewritten,
            triggers_sni1: self.triggers_sni1,
            triggers_sni2: self.triggers_sni2,
            triggers_sni3: self.triggers_sni3,
            triggers_sni4: self.triggers_sni4,
            triggers_quic: self.triggers_quic,
            triggers_http: self.triggers_http,
            triggers_dns: self.triggers_dns,
            ip_blocked_packets: self.ip_blocked_packets,
            fragments_processed: self.fragments_processed,
            reassembly_bytes: self.reassembly_bytes,
            synacks_filtered: self.synacks_filtered,
            restarts: self.restarts,
            policer_rejects: self.policer_rejects,
            stale_epoch_verdicts: self.stale_epoch_verdicts,
        }
    }

    fn stats(&self) -> DeviceStats {
        let v = |id| self.registry.counter_value(id);
        DeviceStats {
            packets_seen: v(self.packets_seen),
            packets_dropped: v(self.packets_dropped),
            packets_rewritten: v(self.packets_rewritten),
            triggers_sni1: v(self.triggers_sni1),
            triggers_sni2: v(self.triggers_sni2),
            triggers_sni3: v(self.triggers_sni3),
            triggers_sni4: v(self.triggers_sni4),
            triggers_quic: v(self.triggers_quic),
            triggers_http: v(self.triggers_http),
            triggers_dns: v(self.triggers_dns),
            ip_blocked_packets: v(self.ip_blocked_packets),
            fragments_processed: v(self.fragments_processed),
            reassembly_bytes_buffered: v(self.reassembly_bytes),
            synacks_filtered: v(self.synacks_filtered),
            restarts: v(self.restarts),
            stale_epoch_verdicts: v(self.stale_epoch_verdicts),
        }
    }
}

/// One TSPU box. Construct with a shared [`PolicyHandle`] (central
/// control) and attach to routes via `tspu_netsim`.
pub struct TspuDevice {
    /// Shared with [`DeviceConfig`] clones: forking a lab cell
    /// re-instantiates every device, so the label is refcounted rather
    /// than re-allocated.
    label: Arc<str>,
    policy: PolicyHandle,
    /// The declarative censor spec this engine interprets: trigger set,
    /// action set, enforcement directions, residual windows, block page.
    profile: CensorProfile,
    conntrack: ShardedConnTracker,
    frag_cache: FragCache,
    rng: SmallRng,
    /// The construction seed, kept so [`TspuDevice::config`] can rebuild
    /// a device whose failure dice replay from the start.
    seed: u64,
    failure: FailureProfile,
    metrics: DeviceMetrics,
    hardening: Hardening,
    /// Pre-provisioned flow-table capacity ([`TspuDevice::with_flow_capacity`]).
    flow_capacity: Option<usize>,
    /// Explicit shard count ([`TspuDevice::with_flow_shards`]); `None`
    /// auto-derives from capacity.
    flow_shards: Option<usize>,
    faults: DeviceFaults,
    /// Restarts from `faults` already applied (they are sorted).
    restarts_applied: usize,
    reload_applied: bool,
    violation: Option<ModelViolation>,
    /// The enforcement flight recorder: a bounded ring of structured
    /// enforcement events ([`crate::recorder`]). Zero-sized with `obs`
    /// off; steady-state pass packets record nothing either way.
    recorder: FlightRecorder,
}

/// What the trigger evaluator decided about the current packet.
enum TriggerAction {
    /// No trigger applies; fall through to the active-verdict check.
    None,
    /// A trigger fired whose behavior lets this packet through.
    PassNow,
    /// A trigger fired that eats this packet too (SNI-IV, QUIC).
    DropNow,
}

impl TspuDevice {
    /// Creates a device enforcing `policy` with the given failure profile.
    /// `seed` drives the (deterministic) failure dice.
    pub fn new(label: &str, policy: PolicyHandle, failure: FailureProfile, seed: u64) -> TspuDevice {
        let recorder = FlightRecorder::new(policy.epoch());
        TspuDevice {
            label: Arc::from(label),
            policy,
            profile: CensorProfile::tspu(),
            conntrack: ShardedConnTracker::new(),
            frag_cache: FragCache::new(FragConfig::default()),
            rng: SmallRng::seed_from_u64(seed),
            seed,
            failure,
            metrics: DeviceMetrics::new(label),
            hardening: Hardening::none(),
            flow_capacity: None,
            flow_shards: None,
            faults: DeviceFaults::default(),
            restarts_applied: 0,
            reload_applied: false,
            violation: None,
            recorder,
        }
    }

    /// Snapshots this device's immutable configuration as a
    /// [`DeviceConfig`]. [`DeviceConfig::instantiate`] then rebuilds a
    /// pristine device — empty conntrack and fragment cache, RNG reseeded
    /// from the construction seed, zeroed metrics with the same interned
    /// layout — byte-identical in behavior to constructing this device
    /// from scratch with the same parameters.
    pub fn config(&self) -> DeviceConfig {
        DeviceConfig {
            label: self.label.clone(),
            policy: self.policy.clone(),
            profile: self.profile.clone(),
            failure: self.failure,
            seed: self.seed,
            hardening: self.hardening,
            flow_capacity: self.flow_capacity,
            flow_shards: self.flow_shards,
            faults: self.faults.clone(),
            violation: self.violation,
            metrics: self.metrics.fork(),
            recorder: self.recorder.fork_reset(),
        }
    }

    /// Swaps the shared policy handle — used when forking a lab cell that
    /// enforces its own per-cell policy (churn campaigns). The conntrack,
    /// RNG, and metrics are untouched, so a fork followed by `set_policy`
    /// equals a fresh build against that handle.
    pub fn set_policy(&mut self, policy: PolicyHandle) {
        // The new handle's current epoch is this device's baseline, not a
        // delta the ledger should report.
        self.recorder.rebase_epoch(policy.epoch());
        self.policy = policy;
    }

    /// Schedules deterministic device-level faults from a chaos plan:
    /// mid-flight restarts (wiping conntrack and the fragment cache), a
    /// policy hot-reload (the March 4, 2022 transition, fired through the
    /// shared handle), and a Table-1 bypass-rate override.
    pub fn with_device_faults(mut self, faults: DeviceFaults) -> TspuDevice {
        self.set_device_faults(faults);
        self
    }

    /// In-place variant of [`TspuDevice::with_device_faults`], for devices
    /// already installed in a network.
    pub fn set_device_faults(&mut self, mut faults: DeviceFaults) {
        faults.restarts.sort();
        if let Some(p) = faults.bypass_rate {
            self.failure = FailureProfile::uniform(p);
        }
        self.faults = faults;
        self.restarts_applied = 0;
        self.reload_applied = false;
    }

    /// Reconfigures the device to enforce a different [`CensorProfile`]
    /// against the same policy lists. The default is [`CensorProfile::tspu`].
    pub fn with_censor_profile(mut self, profile: CensorProfile) -> TspuDevice {
        self.profile = profile;
        self
    }

    /// In-place variant of [`TspuDevice::with_censor_profile`].
    pub fn set_censor_profile(&mut self, profile: CensorProfile) {
        self.profile = profile;
    }

    /// The censor profile this engine interprets.
    pub fn censor_profile(&self) -> &CensorProfile {
        &self.profile
    }

    /// Installs a deliberate model violation — the oracle's acceptance
    /// demo. Never set outside tests.
    pub fn with_model_violation(mut self, violation: ModelViolation) -> TspuDevice {
        self.violation = Some(violation);
        self
    }

    /// In-place variant of [`TspuDevice::with_model_violation`].
    pub fn set_model_violation(&mut self, violation: Option<ModelViolation>) {
        self.violation = violation;
    }

    /// The device's scheduled faults.
    pub fn device_faults(&self) -> &DeviceFaults {
        &self.faults
    }

    /// Applies any scheduled faults that have come due. Faults fire
    /// lazily at the next processed packet — like the real event: nobody
    /// notices a reboot until traffic crosses the box again.
    fn poll_faults(&mut self, now: Time) {
        if self.faults.is_noop() {
            return;
        }
        let since_start = now.since(Time::ZERO);
        while self
            .faults
            .restarts
            .get(self.restarts_applied)
            .is_some_and(|&at| at <= since_start)
        {
            self.restarts_applied += 1;
            self.metrics.inc(self.metrics.restarts);
            self.conntrack.clear();
            self.frag_cache.clear();
            let epoch = self.policy.epoch();
            self.ledger(now, None, LedgerKind::Restart, epoch);
        }
        if !self.reload_applied && self.faults.reload_at.is_some_and(|at| at <= since_start) {
            self.reload_applied = true;
            self.policy.march_4_2022_transition();
        }
    }

    /// Builds the RST/ACK injection for `packet`, applying any installed
    /// model violation.
    fn inject_rst(&mut self, packet: &[u8]) -> Vec<u8> {
        let mut out = rst_ack_rewrite(packet);
        if self.violation == Some(ModelViolation::FreshTtlOnInjectedRst) {
            // The deliberate bug: a fresh TTL instead of the victim's. The
            // TCP checksum does not cover the TTL, so only the IP header
            // checksum needs refreshing.
            let mut view = Ipv4Packet::new_unchecked(&mut out[..]);
            view.set_ttl(64);
            view.fill_checksum();
        }
        out
    }

    /// Builds the HTTP-200 block-page injection replacing `packet` (India
    /// profile): the profile's page bytes become the TCP payload.
    fn inject_block_page(&self, packet: &[u8]) -> Vec<u8> {
        match self.profile.block_page.as_deref() {
            Some(page) => block_page_rewrite(packet, page),
            None => packet.to_vec(),
        }
    }

    /// Applies the §8 counter-circumvention upgrades to this device.
    pub fn with_hardening(mut self, hardening: Hardening) -> TspuDevice {
        self.hardening = hardening;
        self
    }

    /// Pre-provisions the flow table for `flows` concurrent connections
    /// (the `nf_conntrack` hashsize analogue). A provisioned device never
    /// grows its table on the packet path, removing the one remaining
    /// O(table) latency event (hash-table growth rehashes).
    pub fn with_flow_capacity(mut self, flows: usize) -> TspuDevice {
        self.conntrack = ShardedConnTracker::with_capacity(flows);
        self.flow_capacity = Some(flows);
        self
    }

    /// [`TspuDevice::with_flow_capacity`] with the shard count explicit
    /// instead of auto-derived — benches pin it to isolate shard-count
    /// effects from capacity effects.
    pub fn with_flow_shards(mut self, flows: usize, shards: usize) -> TspuDevice {
        self.conntrack = ShardedConnTracker::with_capacity_and_shards(flows, shards);
        self.flow_capacity = Some(flows);
        self.flow_shards = Some(shards);
        self
    }

    /// The active hardening configuration.
    pub fn hardening(&self) -> Hardening {
        self.hardening
    }

    /// Reconfigures hardening in place (a firmware upgrade on a deployed
    /// box — the shared-policy analog for capabilities).
    pub fn set_hardening(&mut self, hardening: Hardening) {
        self.hardening = hardening;
    }

    /// A perfectly reliable device (the common case in tests).
    pub fn reliable(label: &str, policy: PolicyHandle) -> TspuDevice {
        TspuDevice::new(label, policy, FailureProfile::none(), 0)
    }

    /// The device's counters — a view over its obs registry (all zero in
    /// an obs-disabled build).
    pub fn stats(&self) -> DeviceStats {
        self.metrics.stats()
    }

    /// Enables or disables virtual-time span tracing on this device
    /// (`verdict` / `reassembly` spans). Off by default.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.metrics.tracer.set_enabled(enabled);
    }

    /// The device's metrics (plus its sub-components' intrinsic counters:
    /// `conntrack.gc_probes`, `frag_cache.evictions`) as a [`Snapshot`]
    /// under its `device.<label>.*` scope, with any recorded spans drained.
    pub fn take_obs(&mut self) -> Snapshot {
        let mut snap = self.obs_snapshot();
        self.metrics.tracer.drain_into(&mut snap);
        snap
    }

    /// Like [`TspuDevice::take_obs`] but without draining spans.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut snap = self.metrics.registry.snapshot();
        if self.metrics.registry.enabled() {
            let scope = format!("device.{}", self.label);
            snap.insert(
                format!("{scope}.conntrack.gc_probes"),
                MetricValue::Counter(self.conntrack.gc_probes()),
            );
            snap.insert(
                format!("{scope}.conntrack.gc_evictions"),
                MetricValue::Counter(self.conntrack.gc_evictions()),
            );
            snap.insert(
                format!("{scope}.frag_cache.evictions"),
                MetricValue::Counter(self.frag_cache.evictions()),
            );
            snap.insert(
                format!("{scope}.frag_cache.discarded"),
                MetricValue::Counter(self.frag_cache.discarded()),
            );
            snap.insert(
                format!("{scope}.frag_cache.flushed"),
                MetricValue::Counter(self.frag_cache.flushed()),
            );
        }
        snap
    }

    /// The shared policy handle.
    pub fn policy(&self) -> &PolicyHandle {
        &self.policy
    }

    /// Read access to the connection tracker (tests, experiments).
    pub fn conntrack(&self) -> &ShardedConnTracker {
        &self.conntrack
    }

    /// Epoch audit at `now`: live flows on this device still enforcing a
    /// verdict pinned to a policy epoch older than the current one.
    pub fn stale_verdict_audit(&self, now: Time) -> usize {
        self.conntrack.blocks_pinned_before(now, self.policy.read().epoch)
    }

    /// Read access to the fragment cache.
    pub fn frag_cache(&self) -> &FragCache {
        &self.frag_cache
    }

    fn side_of(direction: Direction) -> Side {
        match direction {
            Direction::LocalToRemote => Side::Local,
            Direction::RemoteToLocal => Side::Remote,
        }
    }

    /// Rolls (once per flow) whether this device fails to act on it.
    fn flow_exempt(&mut self, now: Time, key: &FlowKey, probability: f64) -> bool {
        let Some(entry) = self.conntrack.get_mut(now, key) else {
            return false;
        };
        if !entry.exemption_decided {
            entry.exemption_decided = true;
            entry.exempt = probability > 0.0 && self.rng.gen_bool(probability);
        }
        entry.exempt
    }

    fn drop_packet(&mut self) -> Verdict {
        self.metrics.inc(self.metrics.packets_dropped);
        Verdict::Drop
    }

    /// Records an enforcement ledger event, folding in any conntrack GC
    /// activity since the previous one. Called only from cold enforcement
    /// paths (arming, expiry, restart) — never on steady-state packets.
    fn ledger(&mut self, now: Time, flow: Option<FlowKey>, kind: LedgerKind, epoch: u64) {
        self.recorder.sync_gc(now.as_micros(), self.conntrack.gc_evictions(), self.profile.name, epoch);
        self.recorder.record(now.as_micros(), flow, kind, self.profile.name, epoch);
    }

    /// The device's enforcement ledger, rendered oldest-first (empty in
    /// an obs-disabled build).
    pub fn ledger_events(&self) -> Vec<String> {
        self.recorder.events().iter().map(|e| e.render()).collect()
    }

    /// Total ledger events recorded so far (wrapped-out ones included).
    pub fn ledger_recorded(&self) -> u64 {
        self.recorder.recorded()
    }

    /// The last `n` ledger events concerning the flow `packet` belongs to
    /// (device-wide events included), rendered oldest-first — what an
    /// oracle violation report attaches for the offending flow. The
    /// caller does not know which side of the packet is local, so both
    /// orientations of the flow key are tried.
    pub fn ledger_for_packet(&self, packet: &[u8], n: usize) -> Vec<String> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        let (src, dst) = (view.src_addr(), view.dst_addr());
        let ports = match view.protocol() {
            Protocol::Tcp => TcpSegment::new_checked(view.payload())
                .ok()
                .map(|s| (s.src_port(), s.dst_port(), 6)),
            Protocol::Udp => UdpDatagram::new_checked(view.payload())
                .ok()
                .map(|d| (d.src_port(), d.dst_port(), 17)),
            _ => None,
        };
        let Some((src_port, dst_port, proto)) = ports else {
            return Vec::new();
        };
        let as_local = FlowKey::from_packet(Side::Local, src, src_port, dst, dst_port, proto);
        let as_remote = FlowKey::from_packet(Side::Remote, src, src_port, dst, dst_port, proto);
        let events = self.recorder.events();
        let hits = |k: &FlowKey| events.iter().any(|e| e.flow.as_ref() == Some(k));
        let key = if hits(&as_remote) && !hits(&as_local) { as_remote } else { as_local };
        self.recorder.for_flow(&key, n)
    }

    fn process_tcp(&mut self, now: Time, direction: Direction, packet: &[u8]) -> Verdict {
        let view = Ipv4Packet::new_unchecked(packet);
        let (src_addr, dst_addr) = (view.src_addr(), view.dst_addr());
        let Ok(segment) = TcpSegment::new_checked(view.payload()) else {
            return Verdict::Pass;
        };
        let side = Self::side_of(direction);
        let key = FlowKey::from_packet(side, src_addr, segment.src_port(), dst_addr, segment.dst_port(), 6);
        let flags = segment.flags();
        let payload_len = segment.payload().len();

        // Hardening: filter servers advertising suspiciously small flow
        // control windows (the brdgrd counter §8 predicts).
        if let Some(min_window) = self.hardening.min_synack_window {
            if direction == Direction::RemoteToLocal
                && flags.is_syn_ack()
                && segment.window() < min_window
            {
                self.metrics.inc(self.metrics.synacks_filtered);
                return self.drop_packet();
            }
        }

        // One flow lookup covers the state transition plus everything the
        // common path needs afterwards: the cached blocklist verdict and
        // whether a block verdict is in force (observe has already cleared
        // lapsed ones). The data-packet steady state touches the flow
        // table exactly once.
        let (cached_ip, has_block) = {
            let entry = self.conntrack.observe_tcp(now, key, side, flags, payload_len);
            (entry.remote_ip_blocked, entry.block.is_some())
        };

        // Hardening: accumulate the local→remote stream for reassembled
        // inspection (bounded per flow).
        if self.hardening.tcp_reassembly
            && direction == Direction::LocalToRemote
            && segment.dst_port() == constants::SNI_PORT
            && payload_len > 0
        {
            if let Some(entry) = self.conntrack.get_mut(now, &key) {
                let room = REASSEMBLY_CAP.saturating_sub(entry.rx_stream.len());
                let take = payload_len.min(room);
                entry.rx_stream.extend_from_slice(&segment.payload()[..take]);
                self.metrics.registry.add(self.metrics.reassembly_bytes, take as u64);
            }
        }

        // --- IP-based blocking (§5.2) ---
        // Both checks below test the flow's *remote* endpoint (outbound
        // destination, inbound source), and the flow key is
        // direction-normalized, so the verdict is a per-flow constant
        // until a policy delta changes the blocklist. Cache it on the
        // entry, validated by the lock-free epoch: steady-state packets
        // skip the policy read-lock and the blocklist probe entirely.
        let epoch = self.policy.epoch();
        // Ledger: a policy delta becomes visible to this box the first
        // time a packet reads the bumped epoch. One integer compare on the
        // steady state; an event only on the transition.
        self.recorder.note_epoch(now.as_micros(), epoch, self.profile.name);
        let remote_blocked = match cached_ip {
            Some((cached_epoch, blocked)) if cached_epoch == epoch => blocked,
            _ => {
                let blocked = self.policy.read().blocked_ips.contains(&key.remote_addr);
                if let Some(entry) = self.conntrack.get_mut(now, &key) {
                    entry.remote_ip_blocked = Some((epoch, blocked));
                }
                blocked
            }
        };
        let ip_enforced = remote_blocked && self.profile.ip_blocking;
        if ip_enforced && direction == Direction::LocalToRemote {
            let ip_failure = self.failure.ip;
            if !self.flow_exempt(now, &key, ip_failure) {
                self.metrics.inc(self.metrics.ip_blocked_packets);
                // A *response* to a remotely initiated connection is
                // rewritten to RST/ACK; a locally initiated attempt is
                // silently dropped (§5.2). The device cannot always see
                // the inbound request (upstream-only visibility, §7.1.1),
                // so the response heuristic is the packet shape: SYN/ACKs
                // are responses by construction; for other packets the
                // flow history decides. This is what makes the Tor-node
                // probe of Table 5 observe RST/ACKs even through
                // upstream-only devices.
                let is_response = flags.is_syn_ack()
                    || (!flags.is_pure_syn()
                        && self
                            .conntrack
                            .get(now, &key)
                            .map(|e| e.first_sender == Side::Remote)
                            .unwrap_or(false));
                if is_response {
                    self.metrics.inc(self.metrics.packets_rewritten);
                    return Verdict::Replace(self.inject_rst(packet));
                }
                return self.drop_packet();
            }
        }
        if ip_enforced && direction == Direction::RemoteToLocal {
            // Requests from the blocked IP pass through (§5.2).
            return Verdict::Pass;
        }

        // --- Trigger evaluation, then active-verdict application ---
        match self.evaluate_sni_trigger(now, direction, &key, segment.dst_port(), segment.payload()) {
            TriggerAction::PassNow => return Verdict::Pass,
            TriggerAction::DropNow => return self.drop_packet(),
            TriggerAction::None => {}
        }
        match self.evaluate_http_trigger(now, direction, &key, segment.dst_port(), segment.payload()) {
            TriggerAction::PassNow => return Verdict::Pass,
            TriggerAction::DropNow => return self.drop_packet(),
            TriggerAction::None => {}
        }
        // A trigger that installs a verdict returns PassNow/DropNow above,
        // so on the None path the flow carries a block only if it already
        // had one at observe time — no need to look it up again.
        if !has_block {
            // Seeded violation (oracle acceptance demo): inject the block
            // page on a flow no trigger ever armed.
            if self.violation == Some(ModelViolation::BlockPageWithoutTrigger)
                && self.profile.block_page.is_some()
                && direction == Direction::RemoteToLocal
                && segment.src_port() == constants::HTTP_PORT
                && payload_len > 0
            {
                self.metrics.inc(self.metrics.packets_rewritten);
                return Verdict::Replace(self.inject_block_page(packet));
            }
            return Verdict::Pass;
        }
        self.apply_block(now, direction, &key, packet, payload_len)
    }

    /// Locates a server name in this packet (and, under hardening, in the
    /// reassembled stream / past leading non-handshake records).
    fn locate_sni(&mut self, now: Time, key: &FlowKey, payload: &[u8]) -> Option<String> {
        let scan = self.hardening.scan_multiple_records;
        if let Some(name) = extract_sni_scanning(payload, scan) {
            return Some(name);
        }
        if self.hardening.tcp_reassembly {
            let stream = self.conntrack.get(now, key).map(|e| e.rx_stream.clone())?;
            if !stream.is_empty() {
                return extract_sni_scanning(&stream, scan);
            }
        }
        None
    }

    /// Evaluates SNI triggers on a local→remote TCP payload to port 443.
    fn evaluate_sni_trigger(
        &mut self,
        now: Time,
        direction: Direction,
        key: &FlowKey,
        dst_port: u16,
        payload: &[u8],
    ) -> TriggerAction {
        if matches!(self.profile.sni, SniMode::Disabled)
            || direction != Direction::LocalToRemote
            || dst_port != constants::SNI_PORT
            || payload.is_empty()
        {
            return TriggerAction::None;
        }
        let hostname = match self.locate_sni(now, key, payload) {
            Some(hostname) => hostname,
            None => return TriggerAction::None,
        };
        if let SniMode::SingleList { kind, window } = self.profile.sni {
            let host = NormalizedHost::new(&hostname);
            let counter = self.metrics.triggers_sni1;
            return self.arm_single_list(now, key, &host, kind, window, (counter, "sni1"));
        }

        // Policy lookups, copied out so the conntrack borrow below is free.
        // The hostname is normalized once and the stack-resident result is
        // shared by all four list checks.
        let host = NormalizedHost::new(&hostname);
        let (in_rst, in_slow, in_throttle, in_backup, throttle_active, throttle_cfg, epoch) = {
            let policy = self.policy.read();
            (
                policy.sni_rst.matches_normalized(&host),
                policy.sni_slow.matches_normalized(&host),
                policy.sni_throttle.matches_normalized(&host),
                policy.sni_backup.matches_normalized(&host),
                policy.throttle_active,
                policy.throttle,
                policy.epoch,
            )
        };
        if !(in_rst || in_slow || (in_throttle && throttle_active) || in_backup) {
            return TriggerAction::None;
        }

        let Some(entry) = self.conntrack.get(now, key) else {
            return TriggerAction::None;
        };
        let (sni1, sni2, sni4) = if self.hardening.strict_roles {
            // Ad-hoc role reasoning (§8's predicted patch): an outbound
            // ClientHello *is* the local client speaking, whatever the
            // handshake looked like. Overblocks remote-initiated flows —
            // the trade-off §7.1.1 already observes in the wild.
            (true, true, false)
        } else {
            (entry.sni1_applies(), entry.sni2_applies(), entry.sni4_applies())
        };

        // Throttling replaces SNI-I for throttled domains while active.
        let verdict = if in_throttle && throttle_active && sni1 {
            Some((BlockKind::Throttle, TriggerAction::PassNow))
        } else if in_rst && sni1 {
            Some((BlockKind::RstRewrite, TriggerAction::PassNow))
        } else if in_backup && sni4 {
            Some((BlockKind::FullDrop, TriggerAction::DropNow))
        } else if in_slow && sni2 {
            Some((BlockKind::DelayedDrop, TriggerAction::PassNow))
        } else {
            None
        };
        let Some((kind, action)) = verdict else {
            return TriggerAction::None;
        };

        let sni_failure = self.failure.for_kind(kind);
        if self.flow_exempt(now, key, sni_failure) {
            return TriggerAction::None;
        }

        match kind {
            BlockKind::RstRewrite => self.metrics.inc(self.metrics.triggers_sni1),
            BlockKind::DelayedDrop => self.metrics.inc(self.metrics.triggers_sni2),
            BlockKind::Throttle => self.metrics.inc(self.metrics.triggers_sni3),
            BlockKind::FullDrop => self.metrics.inc(self.metrics.triggers_sni4),
            BlockKind::QuicDrop | BlockKind::BlockPage => unreachable!("not an SNI verdict"),
        }
        let allowance = self
            .rng
            .gen_range(constants::SLOW_DROP_ALLOWANCE_MIN..=constants::SLOW_DROP_ALLOWANCE_MAX);
        let directions = self.profile.rst_directions;
        if let Some(entry) = self.conntrack.get_mut(now, key) {
            // A re-trigger refreshes the residual window; an existing
            // verdict of a different kind is replaced (SNI-IV backs up
            // SNI-I exactly this way). The verdict pins the policy epoch
            // it was decided under for the stale-verdict audit.
            entry.block = Some(
                BlockState::new(kind, now, allowance, throttle_cfg)
                    .with_directions(directions)
                    .pinned_to(epoch),
            );
        }
        self.ledger(now, Some(*key), LedgerKind::TriggerFired { trigger: sni_trigger_name(kind) }, epoch);
        self.ledger(now, Some(*key), LedgerKind::BlockArmed { kind: block_kind_name(kind) }, epoch);
        action
    }

    /// Arms `kind` on the flow when the normalized host is on the
    /// profile's single blocklist (the policy's `sni_rst` list) — the
    /// centralized-chokepoint shape shared by the Turkmenistan SNI/HTTP
    /// triggers and India's Host-header filter. `accounting` pairs the
    /// trigger counter to bump on a successful arm with the mechanism
    /// name recorded in the enforcement ledger.
    fn arm_single_list(
        &mut self,
        now: Time,
        key: &FlowKey,
        host: &NormalizedHost,
        kind: BlockKind,
        window: std::time::Duration,
        accounting: (CounterId, &'static str),
    ) -> TriggerAction {
        let (matched, throttle_cfg, epoch) = {
            let policy = self.policy.read();
            (policy.sni_rst.matches_normalized(host), policy.throttle, policy.epoch)
        };
        if !matched || self.conntrack.get(now, key).is_none() {
            return TriggerAction::None;
        }
        let failure = self.failure.for_kind(kind);
        if self.flow_exempt(now, key, failure) {
            return TriggerAction::None;
        }
        let (counter, trigger) = accounting;
        self.metrics.inc(counter);
        let allowance = self
            .rng
            .gen_range(constants::SLOW_DROP_ALLOWANCE_MIN..=constants::SLOW_DROP_ALLOWANCE_MAX);
        let directions = self.profile.rst_directions;
        if let Some(entry) = self.conntrack.get_mut(now, key) {
            entry.block = Some(
                BlockState::new(kind, now, allowance, throttle_cfg)
                    .with_window(window)
                    .with_directions(directions)
                    .pinned_to(epoch),
            );
        }
        self.ledger(now, Some(*key), LedgerKind::TriggerFired { trigger }, epoch);
        self.ledger(now, Some(*key), LedgerKind::BlockArmed { kind: block_kind_name(kind) }, epoch);
        match kind {
            BlockKind::FullDrop | BlockKind::QuicDrop => TriggerAction::DropNow,
            _ => TriggerAction::PassNow,
        }
    }

    /// Evaluates the profile's HTTP Host-header trigger on a local→remote
    /// TCP payload to port 80 (Turkmenistan RST injection, India
    /// block-page arming).
    fn evaluate_http_trigger(
        &mut self,
        now: Time,
        direction: Direction,
        key: &FlowKey,
        dst_port: u16,
        payload: &[u8],
    ) -> TriggerAction {
        let Some(filter) = self.profile.http_host else {
            return TriggerAction::None;
        };
        if direction != Direction::LocalToRemote
            || dst_port != constants::HTTP_PORT
            || payload.is_empty()
        {
            return TriggerAction::None;
        }
        let Ok(request) = HttpRequest::parse(payload) else {
            return TriggerAction::None;
        };
        let Some(hostname) = request.host else {
            return TriggerAction::None;
        };
        let host = NormalizedHost::new(&hostname);
        let counter = self.metrics.triggers_http;
        self.arm_single_list(now, key, &host, filter.kind, filter.window, (counter, "http_host"))
    }

    /// Applies an active verdict on the flow to a non-trigger packet.
    ///
    /// The decision is computed inside the flow-entry borrow, then the
    /// counters, ledger events, and packet surgery happen after it ends —
    /// behaviorally identical to deciding in place, but the flight
    /// recorder (a sibling field) stays reachable.
    fn apply_block(
        &mut self,
        now: Time,
        direction: Direction,
        key: &FlowKey,
        packet: &[u8],
        payload_len: usize,
    ) -> Verdict {
        enum Act {
            Lapsed(BlockKind),
            Pass,
            Rst,
            Page,
            Drop,
            ThrottleReject,
        }
        let live_epoch = self.policy.epoch();
        let violation = self.violation;
        let (act, kind, stale) = {
            let Some(entry) = self.conntrack.get_mut(now, key) else {
                return Verdict::Pass;
            };
            let Some(block) = entry.block.as_mut() else {
                return Verdict::Pass;
            };
            if !block.active(now) {
                let kind = block.kind;
                entry.block = None;
                (Act::Lapsed(kind), kind, false)
            } else {
                // Epoch audit: the flow keeps its pinned verdict even if a
                // registry delta has since changed the rule that installed
                // it (residual blocking); count each enforcement under an
                // outdated epoch.
                let stale = block.epoch < live_epoch;
                let kind = block.kind;
                let act = match kind {
                    BlockKind::RstRewrite => {
                        // Enforcement direction lives on the verdict (the
                        // latent asymmetry fix): the TSPU's ToLocal default
                        // rewrites only remote→local, bidirectional
                        // profiles rewrite both ways.
                        let toward_remote = block.rewrites_toward_remote()
                            && violation
                                != Some(ModelViolation::UnidirectionalRstUnderBidirectional);
                        if direction == Direction::RemoteToLocal || toward_remote {
                            Act::Rst
                        } else {
                            Act::Pass
                        }
                    }
                    BlockKind::BlockPage => {
                        // The censor answers in the server's place: the
                        // response's payload becomes the block page.
                        // Handshake and pure-ACK packets pass so the
                        // connection can carry the page.
                        if direction == Direction::RemoteToLocal && payload_len > 0 {
                            Act::Page
                        } else {
                            Act::Pass
                        }
                    }
                    BlockKind::DelayedDrop => {
                        if block.allowance > 0 {
                            block.allowance -= 1;
                            Act::Pass
                        } else {
                            Act::Drop
                        }
                    }
                    BlockKind::Throttle => {
                        let admitted = block
                            .bucket
                            .as_mut()
                            .map(|b| b.admit(now, payload_len))
                            .unwrap_or(true);
                        if admitted {
                            Act::Pass
                        } else {
                            Act::ThrottleReject
                        }
                    }
                    BlockKind::FullDrop | BlockKind::QuicDrop => Act::Drop,
                };
                (act, kind, stale)
            }
        };
        if stale {
            self.metrics.inc(self.metrics.stale_epoch_verdicts);
            self.ledger(
                now,
                Some(*key),
                LedgerKind::StaleEnforcement { kind: block_kind_name(kind) },
                live_epoch,
            );
        }
        match act {
            Act::Lapsed(kind) => {
                self.ledger(
                    now,
                    Some(*key),
                    LedgerKind::BlockExpired { kind: block_kind_name(kind) },
                    live_epoch,
                );
                Verdict::Pass
            }
            Act::Pass => Verdict::Pass,
            Act::Rst => {
                self.metrics.inc(self.metrics.packets_rewritten);
                Verdict::Replace(self.inject_rst(packet))
            }
            Act::Page => {
                self.metrics.inc(self.metrics.packets_rewritten);
                Verdict::Replace(self.inject_block_page(packet))
            }
            Act::Drop => self.drop_packet(),
            Act::ThrottleReject => {
                self.metrics.inc(self.metrics.policer_rejects);
                self.drop_packet()
            }
        }
    }

    fn process_udp(&mut self, now: Time, direction: Direction, packet: &[u8]) -> Verdict {
        let view = Ipv4Packet::new_unchecked(packet);
        let (src_addr, dst_addr) = (view.src_addr(), view.dst_addr());
        let Ok(datagram) = UdpDatagram::new_checked(view.payload()) else {
            return Verdict::Pass;
        };
        let side = Self::side_of(direction);
        let key = FlowKey::from_packet(side, src_addr, datagram.src_port(), dst_addr, datagram.dst_port(), 17);

        // IP-based blocking applies to UDP exactly like TCP, minus the
        // RST/ACK rewrite (which is meaningless for UDP): outbound to a
        // blocked IP is dropped, inbound from it passes.
        let dst_blocked =
            self.profile.ip_blocking && self.policy.read().blocked_ips.contains(&dst_addr);
        if dst_blocked && direction == Direction::LocalToRemote {
            self.conntrack.observe_udp(now, key, side);
            let ip_failure = self.failure.ip;
            if !self.flow_exempt(now, &key, ip_failure) {
                self.metrics.inc(self.metrics.ip_blocked_packets);
                return self.drop_packet();
            }
        }

        // DNS qname trigger (Turkmenistan profile): a UDP/53 query for a
        // blocked name is eaten, and the flow is residually dropped for
        // the profile's window — retries inside the window refresh it.
        if let Some(filter) = self.profile.dns {
            if direction == Direction::LocalToRemote
                && datagram.dst_port() == constants::DNS_PORT
                && !datagram.payload().is_empty()
            {
                if let Ok(query) = DnsQuery::parse(datagram.payload()) {
                    let host = NormalizedHost::new(&query.qname);
                    let (matched, throttle_cfg, epoch) = {
                        let policy = self.policy.read();
                        (policy.sni_rst.matches_normalized(&host), policy.throttle, policy.epoch)
                    };
                    if matched {
                        self.conntrack.observe_udp(now, key, side);
                        let dns_failure = self.failure.ip;
                        if !self.flow_exempt(now, &key, dns_failure) {
                            self.metrics.inc(self.metrics.triggers_dns);
                            if let Some(entry) = self.conntrack.get_mut(now, &key) {
                                entry.block = Some(
                                    BlockState::new(BlockKind::FullDrop, now, 0, throttle_cfg)
                                        .with_window(filter.window)
                                        .pinned_to(epoch),
                                );
                            }
                            self.ledger(
                                now,
                                Some(key),
                                LedgerKind::TriggerFired { trigger: "dns" },
                                epoch,
                            );
                            self.ledger(
                                now,
                                Some(key),
                                LedgerKind::BlockArmed { kind: "full_drop" },
                                epoch,
                            );
                            return self.drop_packet();
                        }
                    }
                }
            }
        }

        // Active QUIC verdict: drop everything, both directions,
        // regardless of length or fingerprint (§5.2). As in
        // [`TspuDevice::apply_block`], the decision is copied out of the
        // flow-entry borrow so the ledger (a sibling field) is reachable.
        let live_epoch = self.policy.epoch();
        let verdict_state = self.conntrack.get_mut(now, &key).and_then(|entry| {
            let block = entry.block.as_ref()?;
            if block.active(now) {
                Some((true, block.kind, block.epoch < live_epoch))
            } else {
                let kind = block.kind;
                entry.block = None;
                Some((false, kind, false))
            }
        });
        match verdict_state {
            Some((true, kind, stale)) => {
                if stale {
                    self.metrics.inc(self.metrics.stale_epoch_verdicts);
                    self.ledger(
                        now,
                        Some(key),
                        LedgerKind::StaleEnforcement { kind: block_kind_name(kind) },
                        live_epoch,
                    );
                }
                return self.drop_packet();
            }
            Some((false, kind, _)) => {
                self.ledger(
                    now,
                    Some(key),
                    LedgerKind::BlockExpired { kind: block_kind_name(kind) },
                    live_epoch,
                );
            }
            None => {}
        }

        // The QUIC fingerprint (Fig. 14): local→remote, UDP dst 443,
        // ≥ 1001 payload bytes, version-1 bytes at offset 1.
        let quic_on = self.profile.quic_filter && self.policy.read().quic_filter;
        if quic_on
            && direction == Direction::LocalToRemote
            && datagram.dst_port() == constants::QUIC_PORT
            && datagram.payload().len() >= constants::QUIC_MIN_PAYLOAD
            && datagram.payload()[1..5] == [0x00, 0x00, 0x00, 0x01]
        {
            self.conntrack.observe_udp(now, key, side);
            let quic_failure = self.failure.quic;
            if !self.flow_exempt(now, &key, quic_failure) {
                self.metrics.inc(self.metrics.triggers_quic);
                let (throttle, epoch) = {
                    let policy = self.policy.read();
                    (policy.throttle, policy.epoch)
                };
                if let Some(entry) = self.conntrack.get_mut(now, &key) {
                    entry.block =
                        Some(BlockState::new(BlockKind::QuicDrop, now, 0, throttle).pinned_to(epoch));
                }
                self.ledger(now, Some(key), LedgerKind::TriggerFired { trigger: "quic" }, epoch);
                self.ledger(now, Some(key), LedgerKind::BlockArmed { kind: "quic_drop" }, epoch);
                return self.drop_packet();
            }
        }
        Verdict::Pass
    }

    fn process_icmp(&mut self, _now: Time, _direction: Direction, packet: &[u8]) -> Verdict {
        let view = Ipv4Packet::new_unchecked(packet);
        let blocked = self.profile.ip_blocking && {
            let policy = self.policy.read();
            policy.blocked_ips.contains(&view.src_addr()) || policy.blocked_ips.contains(&view.dst_addr())
        };
        if blocked {
            // "ICMP Pings to/from blocked IPs are also dropped" (§5.2).
            if self.failure.ip > 0.0 && self.rng.gen_bool(self.failure.ip) {
                return Verdict::Pass;
            }
            self.metrics.inc(self.metrics.ip_blocked_packets);
            return self.drop_packet();
        }
        Verdict::Pass
    }
}

/// Ledger name for a block-verdict kind.
fn block_kind_name(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::RstRewrite => "rst_rewrite",
        BlockKind::DelayedDrop => "delayed_drop",
        BlockKind::Throttle => "throttle",
        BlockKind::FullDrop => "full_drop",
        BlockKind::QuicDrop => "quic_drop",
        BlockKind::BlockPage => "block_page",
    }
}

/// Ledger name for the SNI mechanism that arms a given verdict kind
/// (Table 1's SNI-I…IV numbering).
fn sni_trigger_name(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::RstRewrite => "sni1",
        BlockKind::DelayedDrop => "sni2",
        BlockKind::Throttle => "sni3",
        BlockKind::FullDrop => "sni4",
        BlockKind::QuicDrop => "quic",
        // Block-page arming shares SNI-I's slot (see FailureProfile).
        BlockKind::BlockPage => "sni1",
    }
}

/// Rewrites a TCP/IPv4 packet the way SNI-I and IP-based blocking do:
/// payload truncated, flags set to RST/ACK, TTL and sequence numbers
/// preserved, checksums fixed up (§5.2: "other packet metadata, such as
/// TTL, sequence and acknowledgement numbers, are not altered").
pub fn rst_ack_rewrite(packet: &[u8]) -> Vec<u8> {
    let view = Ipv4Packet::new_unchecked(packet);
    let ip_header_len = view.header_len();
    let payload = view.payload();
    if payload.len() < tspu_wire::tcp::HEADER_LEN {
        return packet.to_vec();
    }
    let tcp_header_len = TcpSegment::new_unchecked(payload).header_len().min(payload.len());
    let mut out = packet[..ip_header_len + tcp_header_len].to_vec();

    let (src, dst) = (view.src_addr(), view.dst_addr());
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut out[..]);
        ip.set_total_len((ip_header_len + tcp_header_len) as u16);
        ip.fill_checksum();
    }
    {
        let mut tcp = TcpSegment::new_unchecked(&mut out[ip_header_len..]);
        tcp.set_flags(TcpFlags::RST_ACK);
        tcp.fill_checksum(src, dst);
    }
    out
}

/// Rewrites a TCP/IPv4 packet into an HTTP-200 block-page injection the
/// way the India-profile middleboxes answer in the server's place: the
/// payload is replaced wholesale with the censor's response bytes;
/// addresses, ports, sequence and acknowledgement numbers, and TTL are
/// preserved; flags become PSH/ACK; checksums are fixed up.
pub fn block_page_rewrite(packet: &[u8], page: &[u8]) -> Vec<u8> {
    let view = Ipv4Packet::new_unchecked(packet);
    let ip_header_len = view.header_len();
    let payload = view.payload();
    if payload.len() < tspu_wire::tcp::HEADER_LEN {
        return packet.to_vec();
    }
    let tcp_header_len = TcpSegment::new_unchecked(payload).header_len().min(payload.len());
    let mut out = Vec::with_capacity(ip_header_len + tcp_header_len + page.len());
    out.extend_from_slice(&packet[..ip_header_len + tcp_header_len]);
    out.extend_from_slice(page);

    let (src, dst) = (view.src_addr(), view.dst_addr());
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut out[..]);
        ip.set_total_len((ip_header_len + tcp_header_len + page.len()) as u16);
        ip.fill_checksum();
    }
    {
        let mut tcp = TcpSegment::new_unchecked(&mut out[ip_header_len..]);
        tcp.set_flags(TcpFlags::PSH_ACK);
        tcp.fill_checksum(src, dst);
    }
    out
}

/// Extracts an SNI, optionally walking past leading non-handshake TLS
/// records (the hardening counter to the record-prepend evasion).
fn extract_sni_scanning(payload: &[u8], scan: bool) -> Option<String> {
    if let SniOutcome::Sni(name) = extract_sni(payload) {
        return Some(name);
    }
    if !scan {
        return None;
    }
    let mut offset = 0usize;
    // Walk complete records; stop at the first handshake record or when
    // the framing runs out.
    while payload.len() >= offset + 5 {
        if payload[offset] == 0x16 {
            if let SniOutcome::Sni(name) = extract_sni(&payload[offset..]) {
                return Some(name);
            }
            return None;
        }
        let len = u16::from_be_bytes([payload[offset + 3], payload[offset + 4]]) as usize;
        offset += 5 + len;
    }
    None
}

impl Middlebox for TspuDevice {
    fn process(&mut self, now: Time, direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        self.poll_faults(now);
        self.metrics.inc(self.metrics.packets_seen);
        let Ok(view) = Ipv4Packet::new_checked(&packet[..]) else {
            return Verdict::Pass; // not IPv4: pass
        };

        // Fragments interact only with the fragment cache and the IP
        // blocklist — the TSPU neither reassembles nor inspects them.
        if view.is_fragment() {
            self.metrics.inc(self.metrics.fragments_processed);
            let (src_blocked, dst_blocked) = {
                let policy = self.policy.read();
                (
                    policy.blocked_ips.contains(&view.src_addr()),
                    policy.blocked_ips.contains(&view.dst_addr()),
                )
            };
            if self.profile.ip_blocking && dst_blocked && direction == Direction::LocalToRemote {
                self.metrics.inc(self.metrics.ip_blocked_packets);
                return self.drop_packet();
            }
            let _ = src_blocked; // inbound from blocked IPs passes (§5.2)
            let flushed = self.frag_cache.offer(now, packet);
            // Hardening: reassemble the flushed train for inspection (the
            // forwarding itself stays fragment-by-fragment, like the real
            // device). A verdict installed here acts on later packets;
            // a FullDrop/QUIC verdict eats this train too.
            if self.hardening.ip_reassembly && flushed.len() > 1 {
                self.metrics.tracer.span("reassembly", "device", now.as_micros(), now.as_micros());
                if let Ok(mut whole) = tspu_wire::frag::reassemble(&flushed) {
                    let inspected = self.process(now, direction, &mut whole);
                    if inspected == Verdict::Drop {
                        self.metrics.inc(self.metrics.packets_dropped);
                        return Verdict::Drop;
                    }
                    // If inspection rewrote/verdicted the packet, the
                    // fragments still go out unmodified — SNI-I acts on
                    // the *response* direction anyway.
                }
            }
            // An empty flush means the fragment was absorbed into the
            // cache; otherwise the (possibly multi-packet) train goes out.
            return if flushed.is_empty() { Verdict::Drop } else { Verdict::Fanout(flushed) };
        }

        // Verdict-evaluation span: virtual time does not advance inside
        // the device, so this is an instant marking *when* the decision
        // happened — identical across thread counts.
        self.metrics.tracer.span("verdict", "device", now.as_micros(), now.as_micros());
        match view.protocol() {
            Protocol::Tcp => self.process_tcp(now, direction, packet),
            Protocol::Udp => self.process_udp(now, direction, packet),
            Protocol::Icmp => self.process_icmp(now, direction, packet),
            Protocol::Other(_) => Verdict::Pass,
        }
    }

    fn label(&self) -> String {
        self.label.to_string()
    }

    fn image(&self) -> Option<Box<dyn MiddleboxImage>> {
        Some(Box::new(self.config()))
    }
}

/// The immutable half of a [`TspuDevice`], split out so lab images can
/// share it across forked scenario cells: label, shared policy handle,
/// failure profile and its RNG seed, hardening, fault schedule, and the
/// pristine metric layout. Everything mutable — conntrack, fragment
/// cache, RNG position, policer buckets, counter values — is rebuilt per
/// [`DeviceConfig::instantiate`].
pub struct DeviceConfig {
    label: Arc<str>,
    policy: PolicyHandle,
    profile: CensorProfile,
    failure: FailureProfile,
    seed: u64,
    hardening: Hardening,
    flow_capacity: Option<usize>,
    flow_shards: Option<usize>,
    faults: DeviceFaults,
    violation: Option<ModelViolation>,
    metrics: DeviceMetrics,
    recorder: FlightRecorder,
}

impl DeviceConfig {
    /// Builds a pristine device from this configuration. The result is
    /// byte-identical in behavior to `TspuDevice::new` with the same
    /// parameters followed by the same builder calls.
    pub fn instantiate(&self) -> TspuDevice {
        TspuDevice {
            label: self.label.clone(),
            policy: self.policy.clone(),
            profile: self.profile.clone(),
            conntrack: match (self.flow_capacity, self.flow_shards) {
                (Some(flows), Some(shards)) => {
                    ShardedConnTracker::with_capacity_and_shards(flows, shards)
                }
                (Some(flows), None) => ShardedConnTracker::with_capacity(flows),
                (None, _) => ShardedConnTracker::new(),
            },
            frag_cache: FragCache::new(FragConfig::default()),
            rng: SmallRng::seed_from_u64(self.seed),
            seed: self.seed,
            failure: self.failure,
            metrics: self.metrics.fork(),
            hardening: self.hardening,
            flow_capacity: self.flow_capacity,
            flow_shards: self.flow_shards,
            faults: self.faults.clone(),
            restarts_applied: 0,
            reload_applied: false,
            violation: self.violation,
            recorder: self.recorder.fork_reset(),
        }
    }
}

impl MiddleboxImage for DeviceConfig {
    fn instantiate(&self) -> Box<dyn Middlebox> {
        Box::new(DeviceConfig::instantiate(self))
    }
}
