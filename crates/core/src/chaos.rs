//! Chaos hooks for the TSPU device: deliberate model violations (to prove
//! the oracle catches them) and the bridge that turns a device's policy
//! into the classification closures a [`DeviceAudit`] needs.
//!
//! The oracle (`tspu_netsim::oracle`) is policy-agnostic by design — the
//! simulator crate cannot depend on this one. This module closes the loop
//! from the core side: given the same [`PolicyHandle`] a device enforces,
//! [`audit_for`] builds the audit entry whose `classify` closure mirrors
//! the device's own trigger evaluation, list for list.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::oracle::{ArmCandidate, ArmKind, DeviceAudit};
use tspu_netsim::{MiddleboxId, Time};
use tspu_wire::dns::DnsQuery;
use tspu_wire::http::HttpRequest;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::TcpSegment;
use tspu_wire::tls::{extract_sni, SniOutcome};
use tspu_wire::udp::UdpDatagram;

use crate::behaviors::{BlockKind, EnforceDirections};
use crate::constants;
use crate::policy::{NormalizedHost, PolicyHandle};
use crate::profile::{CensorProfile, SniMode};

/// A deliberate, seeded departure from the paper's model. Installing one on
/// a device plants exactly the class of bug the oracle exists to catch —
/// the acceptance demo for the whole invariant machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelViolation {
    /// Injected RST/ACKs get a fresh TTL of 64 instead of preserving the
    /// victim packet's TTL — the Fig. 2 metadata-preservation break, and
    /// what a naive scratch-built injector would do.
    FreshTtlOnInjectedRst,
    /// A bidirectional-RST profile (Turkmenistan) that rewrites only the
    /// remote→local direction, as if ported from the TSPU without updating
    /// the direction check. Surfaces as an `EarlyUnblock` on the untouched
    /// local→remote packet of an enforcing flow.
    UnidirectionalRstUnderBidirectional,
    /// A block-page profile (India) that pages *every* HTTP response, not
    /// just those of flows an armed Host trigger covers. Surfaces as an
    /// `UnexplainedBlockPage`.
    BlockPageWithoutTrigger,
}

/// Builds the oracle audit for one device enforcing the baseline TSPU
/// profile: same policy handle, same restart schedule, classification
/// mirroring the device's trigger logic.
///
/// The closures read the policy at *check* time, not build time. Under a
/// mid-run hot reload that only adds rules (the March 4 transition), that
/// can classify early packets against the later, larger lists — which is
/// sound: a phantom candidate only opens an audit window that never sees
/// enforcement, and multi-candidate flows get the relaxed checks.
///
/// Assumes an unhardened device: the classifier reads the SNI the way the
/// baseline TSPU does (single in-order ClientHello, no reassembly).
pub fn audit_for(
    device: MiddleboxId,
    label: &str,
    policy: PolicyHandle,
    restarts: Vec<Time>,
) -> DeviceAudit {
    audit_for_profile(device, label, policy, restarts, CensorProfile::tspu())
}

/// [`audit_for`], generalized over the device's [`CensorProfile`]: the
/// classify closure mirrors exactly the triggers the profile enables (SNI
/// mode, QUIC fingerprint, DNS qname, HTTP Host), candidate windows come
/// from the profile's residual semantics, injection candidates carry the
/// profile's direction setting, and the audit knows the profile's block
/// page so it can tell an injected page from a forwarded one.
pub fn audit_for_profile(
    device: MiddleboxId,
    label: &str,
    policy: PolicyHandle,
    restarts: Vec<Time>,
    profile: CensorProfile,
) -> DeviceAudit {
    let classify_policy = policy.clone();
    let ip_policy = policy;
    let block_page = profile.block_page_bytes().map(|page| page.to_vec());
    let name = profile.name.to_string();
    let ip_blocking = profile.ip_blocking;
    DeviceAudit {
        device,
        label: label.to_string(),
        profile: name,
        classify: Box::new(move |packet| classify(&classify_policy, &profile, packet)),
        ip_blocked: Box::new(move |addr: Ipv4Addr| {
            ip_blocking && ip_policy.read().blocked_ips.contains(&addr)
        }),
        block_page,
        restarts,
    }
}

/// Converts a fault plan's restart offsets (durations since simulation
/// start) into the absolute times a [`DeviceAudit`] wants.
pub fn restart_times(restarts: &[Duration]) -> Vec<Time> {
    restarts.iter().map(|&offset| Time::ZERO + offset).collect()
}

/// Every blocking mechanism this local→remote packet could arm under the
/// current policy. The device picks one by conntrack role and precedence;
/// the oracle cannot see roles, so it gets the full candidate set and
/// applies the strict single-candidate checks only when the set is a
/// singleton.
fn classify(policy: &PolicyHandle, profile: &CensorProfile, packet: &[u8]) -> Vec<ArmCandidate> {
    let Ok(ip) = Ipv4Packet::new_checked(packet) else {
        return Vec::new();
    };
    if ip.is_fragment() {
        return Vec::new();
    }
    match ip.protocol() {
        Protocol::Tcp => classify_tcp(policy, profile, &ip),
        Protocol::Udp => classify_udp(policy, profile, &ip),
        _ => Vec::new(),
    }
}

/// The [`ArmKind`] a device verdict shows up as in the audit.
fn arm_kind(kind: BlockKind) -> ArmKind {
    match kind {
        BlockKind::RstRewrite => ArmKind::RstRewrite,
        BlockKind::DelayedDrop => ArmKind::DelayedDrop,
        BlockKind::Throttle => ArmKind::Throttle,
        BlockKind::FullDrop => ArmKind::FullDrop,
        BlockKind::QuicDrop => ArmKind::QuicDrop,
        BlockKind::BlockPage => ArmKind::BlockPage,
    }
}

fn classify_tcp(
    policy: &PolicyHandle,
    profile: &CensorProfile,
    ip: &Ipv4Packet<&[u8]>,
) -> Vec<ArmCandidate> {
    let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
        return Vec::new();
    };
    if tcp.payload().is_empty() {
        return Vec::new();
    }
    let bidirectional = profile.rst_directions == EnforceDirections::Both;

    // HTTP Host-header trigger (Turkmenistan, India).
    if let Some(filter) = profile.http_host {
        if tcp.dst_port() == constants::HTTP_PORT {
            if let Ok(request) = HttpRequest::parse(tcp.payload()) {
                if let Some(host) = request.host {
                    let host = NormalizedHost::new(&host);
                    if policy.read().sni_rst.matches_normalized(&host) {
                        let kind = arm_kind(filter.kind);
                        return vec![ArmCandidate {
                            kind,
                            window: filter.window,
                            bidirectional: kind == ArmKind::RstRewrite && bidirectional,
                        }];
                    }
                }
            }
            return Vec::new();
        }
    }

    if tcp.dst_port() != constants::SNI_PORT {
        return Vec::new();
    }
    let SniOutcome::Sni(hostname) = extract_sni(tcp.payload()) else {
        return Vec::new();
    };
    let host = NormalizedHost::new(&hostname);
    match profile.sni {
        SniMode::Disabled => Vec::new(),
        SniMode::SingleList { kind, window } => {
            if policy.read().sni_rst.matches_normalized(&host) {
                let kind = arm_kind(kind);
                vec![ArmCandidate {
                    kind,
                    window,
                    bidirectional: kind == ArmKind::RstRewrite && bidirectional,
                }]
            } else {
                Vec::new()
            }
        }
        SniMode::TspuLists => {
            let policy = policy.read();
            let mut candidates = Vec::new();
            if policy.throttle_active && policy.sni_throttle.matches_normalized(&host) {
                candidates.push(ArmCandidate {
                    kind: ArmKind::Throttle,
                    window: BlockKind::Throttle.duration(),
                    bidirectional: false,
                });
            }
            if policy.sni_rst.matches_normalized(&host) {
                candidates.push(ArmCandidate {
                    kind: ArmKind::RstRewrite,
                    window: constants::BLOCK_SNI1,
                    bidirectional,
                });
            }
            if policy.sni_backup.matches_normalized(&host) {
                candidates.push(ArmCandidate {
                    kind: ArmKind::FullDrop,
                    window: constants::BLOCK_SNI4,
                    bidirectional: false,
                });
            }
            if policy.sni_slow.matches_normalized(&host) {
                candidates.push(ArmCandidate {
                    kind: ArmKind::DelayedDrop,
                    window: constants::BLOCK_SNI2,
                    bidirectional: false,
                });
            }
            candidates
        }
    }
}

fn classify_udp(
    policy: &PolicyHandle,
    profile: &CensorProfile,
    ip: &Ipv4Packet<&[u8]>,
) -> Vec<ArmCandidate> {
    let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
        return Vec::new();
    };
    let payload = udp.payload();

    // DNS qname trigger (Turkmenistan): a blocked query arms a residual
    // full drop on the flow and eats the query itself.
    if let Some(filter) = profile.dns {
        if udp.dst_port() == constants::DNS_PORT && !payload.is_empty() {
            if let Ok(query) = DnsQuery::parse(payload) {
                let host = NormalizedHost::new(&query.qname);
                if policy.read().sni_rst.matches_normalized(&host) {
                    return vec![ArmCandidate {
                        kind: ArmKind::FullDrop,
                        window: filter.window,
                        bidirectional: false,
                    }];
                }
            }
            return Vec::new();
        }
    }

    if profile.quic_filter
        && policy.read().quic_filter
        && udp.dst_port() == constants::QUIC_PORT
        && payload.len() >= constants::QUIC_MIN_PAYLOAD
        && payload[1..5] == [0x00, 0x00, 0x00, 0x01]
    {
        return vec![ArmCandidate {
            kind: ArmKind::QuicDrop,
            window: constants::BLOCK_QUIC,
            bidirectional: false,
        }];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use tspu_wire::tcp::{TcpFlags, TcpRepr};
    use tspu_wire::tls::ClientHelloBuilder;

    fn hello_packet(host: &str) -> Vec<u8> {
        let hello = ClientHelloBuilder::new(host).build();
        let mut tcp = TcpRepr::new(40000, 443, TcpFlags::PSH_ACK);
        tcp.payload = hello;
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let segment = tcp.build(src, dst);
        Ipv4Repr::new(src, dst, Protocol::Tcp, segment.len()).build(&segment)
    }

    use tspu_wire::ipv4::Ipv4Repr;

    #[test]
    fn classify_mirrors_policy_lists() {
        let policy = PolicyHandle::new(Policy::example());
        let tspu = CensorProfile::tspu();
        // twitter.com is on sni_rst AND sni_backup: two candidates.
        let kinds: Vec<ArmKind> =
            classify(&policy, &tspu, &hello_packet("twitter.com")).iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ArmKind::RstRewrite, ArmKind::FullDrop]);
        // nordvpn.com is slow-path only.
        let kinds: Vec<ArmKind> =
            classify(&policy, &tspu, &hello_packet("nordvpn.com")).iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ArmKind::DelayedDrop]);
        // Unlisted hosts arm nothing.
        assert!(classify(&policy, &tspu, &hello_packet("example.org")).is_empty());
    }

    #[test]
    fn turkmenistan_classifies_sni_as_bidirectional_single_list() {
        let policy = PolicyHandle::new(Policy::example());
        let tkm = CensorProfile::turkmenistan();
        let candidates = classify(&policy, &tkm, &hello_packet("twitter.com"));
        assert_eq!(candidates.len(), 1, "single list, single candidate");
        assert_eq!(candidates[0].kind, ArmKind::RstRewrite);
        assert!(candidates[0].bidirectional);
        assert_eq!(candidates[0].window, constants::BLOCK_TKM);
        // sni_backup-only hosts are invisible to the single-list engine.
        assert!(classify(&policy, &tkm, &hello_packet("nordvpn.com")).is_empty());
    }

    #[test]
    fn india_classifies_http_host_not_sni() {
        let policy = PolicyHandle::new(Policy::example());
        let india = CensorProfile::india();
        assert!(classify(&policy, &india, &hello_packet("twitter.com")).is_empty(), "SNI disabled");
        let request = b"GET / HTTP/1.1\r\nHost: twitter.com\r\n\r\n";
        let mut tcp = TcpRepr::new(40000, 80, TcpFlags::PSH_ACK);
        tcp.payload = request.to_vec();
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let segment = tcp.build(src, dst);
        let packet = Ipv4Repr::new(src, dst, Protocol::Tcp, segment.len()).build(&segment);
        let candidates = classify(&policy, &india, &packet);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].kind, ArmKind::BlockPage);
        assert!(!candidates[0].bidirectional);
    }

    #[test]
    fn classify_tracks_hot_reload() {
        let policy = PolicyHandle::new(Policy::example());
        let audit = audit_for(MiddleboxId(0), "dev", policy.clone(), Vec::new());
        policy.update(|p| p.sni_rst.insert("example.org"));
        let candidates = (audit.classify)(&hello_packet("example.org"));
        assert_eq!(candidates.len(), 1, "audit sees the reloaded list");
    }

    #[test]
    fn restart_times_are_absolute() {
        let times = restart_times(&[Duration::from_secs(3), Duration::from_secs(9)]);
        assert_eq!(times, vec![Time::from_secs(3), Time::from_secs(9)]);
    }
}
