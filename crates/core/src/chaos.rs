//! Chaos hooks for the TSPU device: deliberate model violations (to prove
//! the oracle catches them) and the bridge that turns a device's policy
//! into the classification closures a [`DeviceAudit`] needs.
//!
//! The oracle (`tspu_netsim::oracle`) is policy-agnostic by design — the
//! simulator crate cannot depend on this one. This module closes the loop
//! from the core side: given the same [`PolicyHandle`] a device enforces,
//! [`audit_for`] builds the audit entry whose `classify` closure mirrors
//! the device's own trigger evaluation, list for list.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_netsim::oracle::{ArmCandidate, ArmKind, DeviceAudit};
use tspu_netsim::{MiddleboxId, Time};
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::TcpSegment;
use tspu_wire::tls::{extract_sni, SniOutcome};
use tspu_wire::udp::UdpDatagram;

use crate::behaviors::BlockKind;
use crate::constants;
use crate::policy::{NormalizedHost, PolicyHandle};

/// A deliberate, seeded departure from the paper's model. Installing one on
/// a device plants exactly the class of bug the oracle exists to catch —
/// the acceptance demo for the whole invariant machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelViolation {
    /// Injected RST/ACKs get a fresh TTL of 64 instead of preserving the
    /// victim packet's TTL — the Fig. 2 metadata-preservation break, and
    /// what a naive scratch-built injector would do.
    FreshTtlOnInjectedRst,
}

/// Builds the oracle audit for one device: same policy handle, same
/// restart schedule, classification mirroring the device's trigger logic.
///
/// The closures read the policy at *check* time, not build time. Under a
/// mid-run hot reload that only adds rules (the March 4 transition), that
/// can classify early packets against the later, larger lists — which is
/// sound: a phantom candidate only opens an audit window that never sees
/// enforcement, and multi-candidate flows get the relaxed checks.
///
/// Assumes an unhardened device: the classifier reads the SNI the way the
/// baseline TSPU does (single in-order ClientHello, no reassembly).
pub fn audit_for(
    device: MiddleboxId,
    label: &str,
    policy: PolicyHandle,
    restarts: Vec<Time>,
) -> DeviceAudit {
    let classify_policy = policy.clone();
    let ip_policy = policy;
    DeviceAudit {
        device,
        label: label.to_string(),
        classify: Box::new(move |packet| classify(&classify_policy, packet)),
        ip_blocked: Box::new(move |addr: Ipv4Addr| ip_policy.read().blocked_ips.contains(&addr)),
        restarts,
    }
}

/// Converts a fault plan's restart offsets (durations since simulation
/// start) into the absolute times a [`DeviceAudit`] wants.
pub fn restart_times(restarts: &[Duration]) -> Vec<Time> {
    restarts.iter().map(|&offset| Time::ZERO + offset).collect()
}

/// Every blocking mechanism this local→remote packet could arm under the
/// current policy. The device picks one by conntrack role and precedence;
/// the oracle cannot see roles, so it gets the full candidate set and
/// applies the strict single-candidate checks only when the set is a
/// singleton.
fn classify(policy: &PolicyHandle, packet: &[u8]) -> Vec<ArmCandidate> {
    let Ok(ip) = Ipv4Packet::new_checked(packet) else {
        return Vec::new();
    };
    if ip.is_fragment() {
        return Vec::new();
    }
    match ip.protocol() {
        Protocol::Tcp => classify_tcp(policy, &ip),
        Protocol::Udp => classify_udp(policy, &ip),
        _ => Vec::new(),
    }
}

fn classify_tcp(policy: &PolicyHandle, ip: &Ipv4Packet<&[u8]>) -> Vec<ArmCandidate> {
    let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
        return Vec::new();
    };
    if tcp.dst_port() != constants::SNI_PORT || tcp.payload().is_empty() {
        return Vec::new();
    }
    let SniOutcome::Sni(hostname) = extract_sni(tcp.payload()) else {
        return Vec::new();
    };
    let host = NormalizedHost::new(&hostname);
    let policy = policy.read();
    let mut candidates = Vec::new();
    if policy.throttle_active && policy.sni_throttle.matches_normalized(&host) {
        candidates.push(ArmCandidate {
            kind: ArmKind::Throttle,
            window: BlockKind::Throttle.duration(),
        });
    }
    if policy.sni_rst.matches_normalized(&host) {
        candidates.push(ArmCandidate { kind: ArmKind::RstRewrite, window: constants::BLOCK_SNI1 });
    }
    if policy.sni_backup.matches_normalized(&host) {
        candidates.push(ArmCandidate { kind: ArmKind::FullDrop, window: constants::BLOCK_SNI4 });
    }
    if policy.sni_slow.matches_normalized(&host) {
        candidates.push(ArmCandidate { kind: ArmKind::DelayedDrop, window: constants::BLOCK_SNI2 });
    }
    candidates
}

fn classify_udp(policy: &PolicyHandle, ip: &Ipv4Packet<&[u8]>) -> Vec<ArmCandidate> {
    let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
        return Vec::new();
    };
    let payload = udp.payload();
    if policy.read().quic_filter
        && udp.dst_port() == constants::QUIC_PORT
        && payload.len() >= constants::QUIC_MIN_PAYLOAD
        && payload[1..5] == [0x00, 0x00, 0x00, 0x01]
    {
        return vec![ArmCandidate { kind: ArmKind::QuicDrop, window: constants::BLOCK_QUIC }];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use tspu_wire::tcp::{TcpFlags, TcpRepr};
    use tspu_wire::tls::ClientHelloBuilder;

    fn hello_packet(host: &str) -> Vec<u8> {
        let hello = ClientHelloBuilder::new(host).build();
        let mut tcp = TcpRepr::new(40000, 443, TcpFlags::PSH_ACK);
        tcp.payload = hello;
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let segment = tcp.build(src, dst);
        Ipv4Repr::new(src, dst, Protocol::Tcp, segment.len()).build(&segment)
    }

    use tspu_wire::ipv4::Ipv4Repr;

    #[test]
    fn classify_mirrors_policy_lists() {
        let policy = PolicyHandle::new(Policy::example());
        // twitter.com is on sni_rst AND sni_backup: two candidates.
        let kinds: Vec<ArmKind> =
            classify(&policy, &hello_packet("twitter.com")).iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ArmKind::RstRewrite, ArmKind::FullDrop]);
        // nordvpn.com is slow-path only.
        let kinds: Vec<ArmKind> =
            classify(&policy, &hello_packet("nordvpn.com")).iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![ArmKind::DelayedDrop]);
        // Unlisted hosts arm nothing.
        assert!(classify(&policy, &hello_packet("example.org")).is_empty());
    }

    #[test]
    fn classify_tracks_hot_reload() {
        let policy = PolicyHandle::new(Policy::example());
        let audit = audit_for(MiddleboxId(0), "dev", policy.clone(), Vec::new());
        policy.update(|p| p.sni_rst.insert("example.org"));
        let candidates = (audit.classify)(&hello_packet("example.org"));
        assert_eq!(candidates.len(), 1, "audit sees the reloaded list");
    }

    #[test]
    fn restart_times_are_absolute() {
        let times = restart_times(&[Duration::from_secs(3), Duration::from_secs(9)]);
        assert_eq!(times, vec![Time::from_secs(3), Time::from_secs(9)]);
    }
}
