//! The TSPU fragment cache (paper §5.3.1, Fig. 3).
//!
//! Observed behavior, encoded here as ground truth:
//!
//! 1. Incomplete fragment trains are **buffered, not forwarded**.
//! 2. When the last fragment (MF = 0) arrives, **all fragments are
//!    forwarded individually, without reassembly**, in offset order.
//! 3. Forwarded fragments 2..n have their **TTL rewritten to the TTL of
//!    the first fragment** (offset 0) — the behavior the remote
//!    localization technique exploits (§7.2).
//! 4. A **duplicate or overlapping** fragment poisons the train: nothing
//!    from that packet is forwarded.
//! 5. At most **45 fragments** are accepted per packet; the 46th discards
//!    the entire queue — the TSPU fingerprint (Linux: 64, Cisco: 24,
//!    Juniper: 250).
//! 6. Trains missing fragments are discarded after **5 seconds**.

use crate::fasthash::FxHashMap;
use std::net::Ipv4Addr;

use tspu_netsim::Time;
use tspu_wire::ipv4::Ipv4Packet;

use crate::constants;

/// Key identifying one fragmented datagram in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub ident: u16,
}

#[derive(Debug)]
struct Train {
    started: Time,
    /// (offset, payload_len, packet bytes), insertion order preserved.
    fragments: Vec<(usize, usize, Vec<u8>)>,
    /// Train was poisoned by a malformed fragment; drop everything until
    /// the state times out.
    poisoned: bool,
}

impl Train {
    fn expired(&self, now: Time, timeout: std::time::Duration) -> bool {
        now.since(self.started) > timeout
    }
}

/// Configuration for [`FragCache`], defaulting to the TSPU's observed
/// constants. Benches ablate these against conventional-DPI settings.
#[derive(Debug, Clone, Copy)]
pub struct FragConfig {
    pub queue_limit: usize,
    pub timeout: std::time::Duration,
    /// Hard cap on concurrently buffered trains. The sweep on `offer` is
    /// lazy and only touches the offered key, so without a cap a scan
    /// spraying fresh (src, dst, ident) tuples grows the table without
    /// bound; real line cards have a fixed fragment table. When full, the
    /// oldest train (ties broken by key, deterministically) is evicted.
    pub max_trains: usize,
}

impl Default for FragConfig {
    fn default() -> FragConfig {
        FragConfig {
            queue_limit: constants::FRAG_QUEUE_LIMIT,
            timeout: constants::FRAG_TIMEOUT,
            max_trains: constants::FRAG_MAX_TRAINS,
        }
    }
}

/// The fragment cache. Feed it every IP fragment; non-fragments do not
/// belong here (the device routes them past it).
pub struct FragCache {
    config: FragConfig,
    trains: FxHashMap<FragKey, Train>,
    /// Trains discarded so far (stats).
    discarded: u64,
    /// Full trains flushed so far (stats).
    flushed: u64,
    /// Trains evicted for capacity (a subset of `discarded`), surfaced as
    /// `frag_cache.evictions` — the signal a fragment-spray attack moves.
    evictions: u64,
}

impl Default for FragCache {
    fn default() -> FragCache {
        FragCache::new(FragConfig::default())
    }
}

impl FragCache {
    /// Creates a cache with the given limits.
    pub fn new(config: FragConfig) -> FragCache {
        FragCache { config, trains: FxHashMap::default(), discarded: 0, flushed: 0, evictions: 0 }
    }

    /// Trains discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Trains evicted for capacity so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Trains flushed so far.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Buffered trains right now.
    pub fn pending(&self) -> usize {
        self.trains.len()
    }

    /// Drops all buffered trains — a device restart losing its fragment
    /// table. Stats counters survive (they live in the management plane).
    pub fn clear(&mut self) {
        self.trains.clear();
    }

    /// Makes room for one more train when the table is at `max_trains`:
    /// first sweeps every expired train (the lazy per-key sweep in `offer`
    /// never does this), then — if still full — evicts the oldest train,
    /// ties broken by key so eviction is deterministic across runs.
    fn make_room(&mut self, now: Time) {
        if self.trains.len() < self.config.max_trains {
            return;
        }
        let timeout = self.config.timeout;
        let before = self.trains.len();
        self.trains.retain(|_, t| !t.expired(now, timeout));
        self.discarded += (before - self.trains.len()) as u64;
        while self.trains.len() >= self.config.max_trains {
            let victim = self
                .trains
                .iter()
                .map(|(k, t)| (t.started, k.src, k.dst, k.ident))
                .min()
                .map(|(_, src, dst, ident)| FragKey { src, dst, ident })
                .expect("table is non-empty");
            self.trains.remove(&victim);
            self.discarded += 1;
            self.evictions += 1;
        }
    }

    /// Offers one fragment. Returns the packets to forward now: empty
    /// while buffering (or when poisoned), or the whole train once its
    /// last fragment arrives.
    pub fn offer(&mut self, now: Time, packet: &[u8]) -> Vec<Vec<u8>> {
        let Ok(view) = Ipv4Packet::new_checked(packet) else {
            return vec![packet.to_vec()]; // unparseable: not ours to manage
        };
        debug_assert!(view.is_fragment(), "FragCache::offer expects fragments");
        let key = FragKey { src: view.src_addr(), dst: view.dst_addr(), ident: view.ident() };
        let offset = view.frag_offset();
        let len = view.payload().len();
        let more = view.more_fragments();

        // Expired state is swept lazily.
        let timeout = self.config.timeout;
        if self.trains.get(&key).is_some_and(|t| t.expired(now, timeout)) {
            self.trains.remove(&key);
            self.discarded += 1;
        }

        if !self.trains.contains_key(&key) {
            self.make_room(now);
        }
        let train = self.trains.entry(key).or_insert(Train {
            started: now,
            fragments: Vec::new(),
            poisoned: false,
        });

        if train.poisoned {
            return Vec::new();
        }

        // Rule 4: duplicates or overlaps poison the train.
        let new_range = offset..offset + len.max(1);
        let overlaps = train.fragments.iter().any(|(off, flen, _)| {
            let existing = *off..*off + (*flen).max(1);
            new_range.start < existing.end && existing.start < new_range.end
        });
        if overlaps {
            train.fragments.clear();
            train.poisoned = true;
            self.discarded += 1;
            return Vec::new();
        }

        // Rule 5: the 46th fragment discards the queue.
        if train.fragments.len() >= self.config.queue_limit {
            train.fragments.clear();
            train.poisoned = true;
            self.discarded += 1;
            return Vec::new();
        }

        train.fragments.push((offset, len, packet.to_vec()));

        if more {
            return Vec::new(); // Rule 1: keep buffering.
        }

        // Rule 2 + 3: last fragment arrived — flush all in offset order,
        // rewriting TTLs to the first fragment's.
        let mut train = self.trains.remove(&key).expect("train exists");
        train.fragments.sort_by_key(|(off, _, _)| *off);
        let first_ttl = train
            .fragments
            .iter()
            .find(|(off, _, _)| *off == 0)
            .map(|(_, _, bytes)| Ipv4Packet::new_unchecked(&bytes[..]).ttl());
        self.flushed += 1;
        train
            .fragments
            .into_iter()
            .map(|(offset, _, mut bytes)| {
                if offset != 0 {
                    if let Some(ttl) = first_ttl {
                        let mut view = Ipv4Packet::new_unchecked(&mut bytes[..]);
                        view.set_ttl(ttl);
                        view.fill_checksum();
                    }
                }
                bytes
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_wire::frag;
    use tspu_wire::ipv4::{Ipv4Repr, Protocol};

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    fn datagram(payload_len: usize, ttl: u8) -> Vec<u8> {
        let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
        let mut repr = Ipv4Repr::new(SRC, DST, Protocol::Udp, payload.len());
        repr.ttl = ttl;
        repr.ident = 7;
        repr.build(&payload)
    }

    #[test]
    fn buffers_until_last_then_flushes_in_order() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(600, 60), 128).unwrap();
        assert_eq!(pieces.len(), 5);
        let mut now = Time::ZERO;
        for piece in &pieces[..4] {
            assert!(cache.offer(now, piece).is_empty());
            now += std::time::Duration::from_millis(1);
        }
        let out = cache.offer(now, &pieces[4]);
        assert_eq!(out.len(), 5);
        // Offset order.
        let offsets: Vec<usize> = out
            .iter()
            .map(|p| Ipv4Packet::new_unchecked(&p[..]).frag_offset())
            .collect();
        assert_eq!(offsets, vec![0, 128, 256, 384, 512]);
        assert_eq!(cache.flushed(), 1);
        assert_eq!(cache.pending(), 0);
    }

    #[test]
    fn flush_works_with_out_of_order_arrival() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(400, 60), 128).unwrap();
        // Deliver the last fragment in the middle: flush happens only when
        // the MF=0 fragment arrives, which here is out of order.
        assert!(cache.offer(Time::ZERO, &pieces[1]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        let out = cache.offer(Time::ZERO, &pieces[3]); // last (MF=0)
        // Fragment 2 never arrived; the TSPU flushes what it has anyway —
        // it does not reassemble, so it cannot know the train is short.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn ttl_rewritten_to_first_fragments_ttl() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(300, 57), 128).unwrap();
        // Lower the trailing fragments' TTLs as if they took a longer path.
        let mut doctored: Vec<Vec<u8>> = pieces.clone();
        for piece in doctored.iter_mut().skip(1) {
            let mut view = Ipv4Packet::new_unchecked(&mut piece[..]);
            view.set_ttl(3);
            view.fill_checksum();
        }
        let mut out = Vec::new();
        for piece in &doctored {
            out = cache.offer(Time::ZERO, piece);
        }
        assert_eq!(out.len(), 3);
        for packet in &out {
            let view = Ipv4Packet::new_checked(&packet[..]).unwrap();
            assert_eq!(view.ttl(), 57, "all fragments carry the first's TTL");
            assert!(view.verify_checksum());
        }
    }

    #[test]
    fn duplicate_poisons_train() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(400, 60), 128).unwrap();
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[1]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[1]).is_empty()); // duplicate
        // Even the final fragment now yields nothing.
        assert!(cache.offer(Time::ZERO, &pieces[3]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[2]).is_empty());
        assert_eq!(cache.flushed(), 0);
        assert!(cache.discarded() >= 1);
    }

    #[test]
    fn overlap_poisons_train() {
        let mut cache = FragCache::default();
        let original = datagram(400, 60);
        let pieces = frag::fragment(&original, 128).unwrap();
        // Craft an overlapping fragment: offset 64 over the 0..128 piece.
        let overlap = {
            let view = Ipv4Packet::new_checked(&original[..]).unwrap();
            let mut repr = Ipv4Repr::parse(&view).unwrap();
            repr.frag_offset = 64;
            repr.more_fragments = true;
            repr.payload_len = 128;
            repr.build(&view.payload()[64..192])
        };
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &overlap).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[3]).is_empty());
        assert_eq!(cache.flushed(), 0);
    }

    #[test]
    fn queue_limit_45_accepts_46th_discards() {
        // The fingerprint: a packet in 45 fragments is delivered, the same
        // packet in 46 is not.
        let payload = 1480;
        for (n, expect_delivery) in [(45usize, true), (46, false)] {
            let mut cache = FragCache::default();
            let pieces = frag::fragment_into(&datagram(payload, 60), n).unwrap();
            let mut out = Vec::new();
            for piece in &pieces {
                out = cache.offer(Time::ZERO, piece);
            }
            assert_eq!(!out.is_empty(), expect_delivery, "n={n}");
            if expect_delivery {
                assert_eq!(out.len(), 45);
            }
        }
    }

    #[test]
    fn timeout_discards_incomplete_train() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(400, 60), 128).unwrap();
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[1]).is_empty());
        // 6 s later the train is gone; the arriving last fragment starts a
        // fresh (single-fragment) train and flushes alone.
        let out = cache.offer(Time::from_secs(6), &pieces[3]);
        assert_eq!(out.len(), 1);
        assert!(cache.discarded() >= 1);
    }

    #[test]
    fn within_timeout_train_survives() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(300, 60), 128).unwrap();
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert!(cache.offer(Time::from_secs(4), &pieces[1]).is_empty());
        // Note: the 5 s window runs from the train's first fragment.
        let out = cache.offer(Time::from_micros(4_900_000), &pieces[2]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn independent_idents_do_not_interfere() {
        let mut cache = FragCache::default();
        let a = frag::fragment(&datagram(300, 60), 128).unwrap();
        let mut b_src = datagram(300, 60);
        {
            let mut view = Ipv4Packet::new_unchecked(&mut b_src[..]);
            view.set_ident(99);
            view.fill_checksum();
        }
        let b = frag::fragment(&b_src, 128).unwrap();
        assert!(cache.offer(Time::ZERO, &a[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &b[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &a[1]).is_empty());
        let out_b = cache.offer(Time::ZERO, &b[1]);
        assert!(out_b.is_empty());
        let out_b = cache.offer(Time::ZERO, &b[2]);
        assert_eq!(out_b.len(), 3);
        assert_eq!(cache.pending(), 1); // a still buffering
    }

    /// A datagram from `src` with the given ident, pre-fragmented.
    fn train_from(src: Ipv4Addr, ident: u16, ttl: u8) -> Vec<Vec<u8>> {
        let payload: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let mut repr = Ipv4Repr::new(src, DST, Protocol::Udp, payload.len());
        repr.ttl = ttl;
        repr.ident = ident;
        frag::fragment(&repr.build(&payload), 128).unwrap()
    }

    #[test]
    fn full_cache_evicts_oldest_train_deterministically() {
        let mut cache = FragCache::new(FragConfig { max_trains: 3, ..FragConfig::default() });
        // Three incomplete trains, started in order; the table is full.
        let trains: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|i| train_from(Ipv4Addr::new(10, 0, 0, 10 + i), 40 + u16::from(i), 60))
            .collect();
        for (i, train) in trains.iter().take(3).enumerate() {
            assert!(cache.offer(Time::from_micros(i as u64 * 1_000), &train[0]).is_empty());
        }
        assert_eq!(cache.pending(), 3);
        // A fourth key arrives while nothing has expired: the oldest train
        // (the first) is evicted to make room.
        assert!(cache.offer(Time::from_micros(10_000), &trains[3][0]).is_empty());
        assert_eq!(cache.pending(), 3);
        assert_eq!(cache.discarded(), 1);
        // A survivor still flushes in full (and frees its slot)…
        assert!(cache.offer(Time::from_micros(11_000), &trains[1][1]).is_empty());
        let out = cache.offer(Time::from_micros(12_000), &trains[1][2]);
        assert_eq!(out.len(), 3, "surviving train flushes whole");
        // …while the evicted train lost its first fragment: its arriving
        // last fragment starts a fresh train and flushes alone.
        let out = cache.offer(Time::from_micros(13_000), &trains[0][2]);
        assert_eq!(out.len(), 1, "evicted train lost its first fragment");
    }

    #[test]
    fn full_cache_prefers_sweeping_expired_trains() {
        let mut cache = FragCache::new(FragConfig { max_trains: 3, ..FragConfig::default() });
        let trains: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|i| train_from(Ipv4Addr::new(10, 0, 0, 10 + i), 40 + u16::from(i), 60))
            .collect();
        // Two stale trains and one fresh one fill the table.
        assert!(cache.offer(Time::ZERO, &trains[0][0]).is_empty());
        assert!(cache.offer(Time::ZERO, &trains[1][0]).is_empty());
        assert!(cache.offer(Time::from_secs(10), &trains[2][0]).is_empty());
        // The new key reclaims both expired slots, so the fresh train is
        // NOT evicted even though the table was full.
        assert!(cache.offer(Time::from_secs(11), &trains[3][0]).is_empty());
        assert_eq!(cache.pending(), 2);
        assert!(cache.offer(Time::from_secs(11), &trains[2][1]).is_empty());
        let out = cache.offer(Time::from_secs(11), &trains[2][2]);
        assert_eq!(out.len(), 3, "fresh train survived the sweep");
    }

    #[test]
    fn spraying_fresh_idents_cannot_grow_table_past_cap() {
        // The regression the cap fixes: before it, a scanner spraying
        // fresh (src, dst, ident) tuples grew the table without bound
        // because the lazy sweep only ever touched the offered key.
        let mut cache = FragCache::default();
        let base = datagram(300, 60);
        for ident in 0..(constants::FRAG_MAX_TRAINS as u16 + 500) {
            let mut head = base.clone();
            {
                let mut view = Ipv4Packet::new_unchecked(&mut head[..]);
                view.set_ident(ident);
                view.fill_checksum();
            }
            let pieces = frag::fragment(&head, 128).unwrap();
            assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
            assert!(cache.pending() <= constants::FRAG_MAX_TRAINS);
        }
        assert_eq!(cache.pending(), constants::FRAG_MAX_TRAINS);
        assert_eq!(cache.discarded(), 500);
    }

    #[test]
    fn clear_wipes_trains_but_keeps_stats() {
        let mut cache = FragCache::default();
        let pieces = frag::fragment(&datagram(400, 60), 128).unwrap();
        let mut all = Vec::new();
        for piece in &pieces {
            all = cache.offer(Time::ZERO, piece);
        }
        assert_eq!(all.len(), 4);
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert_eq!(cache.pending(), 1);
        cache.clear();
        assert_eq!(cache.pending(), 0);
        assert_eq!(cache.flushed(), 1, "stats survive the restart");
        // The wiped train is forgotten: its duplicate no longer poisons.
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert_eq!(cache.pending(), 1);
    }

    #[test]
    fn duplicate_offset_with_different_length_poisons() {
        let mut cache = FragCache::default();
        let original = datagram(400, 60);
        let pieces = frag::fragment(&original, 128).unwrap();
        // Same offset as piece 1, shorter payload: still a duplicate.
        let dup = {
            let view = Ipv4Packet::new_checked(&original[..]).unwrap();
            let mut repr = Ipv4Repr::parse(&view).unwrap();
            repr.frag_offset = 128;
            repr.more_fragments = true;
            repr.payload_len = 64;
            repr.build(&view.payload()[128..192])
        };
        assert!(cache.offer(Time::ZERO, &pieces[0]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[1]).is_empty());
        assert!(cache.offer(Time::ZERO, &dup).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[2]).is_empty());
        assert!(cache.offer(Time::ZERO, &pieces[3]).is_empty());
        assert_eq!(cache.flushed(), 0);
    }

    #[test]
    fn ablation_conventional_dpi_limits() {
        // With Linux-like limits (64), a 46-fragment packet passes.
        let mut cache = FragCache::new(FragConfig {
            queue_limit: 64,
            timeout: std::time::Duration::from_secs(30),
            ..FragConfig::default()
        });
        let pieces = frag::fragment_into(&datagram(1480, 60), 46).unwrap();
        let mut out = Vec::new();
        for piece in &pieces {
            out = cache.offer(Time::ZERO, piece);
        }
        assert_eq!(out.len(), 46);
    }
}
