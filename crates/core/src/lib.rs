//! # tspu-core
//!
//! The TSPU middlebox model — the paper's subject, implemented to its
//! black-box behavioral specification and used as ground truth for every
//! experiment in the reproduction.
//!
//! A [`TspuDevice`] is an in-path DPI composed of:
//!
//! * a **connection tracker** ([`conntrack`]) that infers client/server
//!   roles from packet sequences and holds per-flow state with the
//!   idle timeouts of paper §5.3.3 (Tables 2 and 8);
//! * an **SNI engine** that parses ClientHellos (via `tspu_wire::tls`) and
//!   matches the extracted hostname against centrally distributed
//!   blocklists, triggering behaviors SNI-I…IV (§5.2);
//! * a **QUIC filter** keyed on the version-1 fingerprint (§5.2, Fig. 14);
//! * **IP-based blocking** of out-registry addresses (§5.2);
//! * a **fragment cache** ([`frag_cache`]) that buffers fragments, forwards
//!   them unreassembled with rewritten TTLs, enforces the 45-fragment
//!   queue limit, and discards on duplicates/overlaps (§5.3.1, Fig. 3);
//! * a **token-bucket policer** ([`policer`]) for the throttling behavior
//!   SNI-III (§5.2) at the historical 2021/2022 rates.
//!
//! Devices share a [`PolicyHandle`] — the model of Roskomnadzor's central
//! control: one policy object, referenced by every device in the country,
//! so blocklist updates are uniform and instantaneous across ISPs (§5.1).
//! Per-device failure probabilities (Table 1) and visibility (symmetric vs
//! upstream-only, §7.1.1 — a property of route placement, not the device)
//! are the only per-device variation.

pub mod behaviors;
pub mod chaos;
pub mod conntrack;
pub mod constants;
pub mod device;
pub mod fasthash;
pub mod frag_cache;
pub mod hardening;
pub mod policer;
pub mod policy;
pub mod profile;
pub mod recorder;
pub mod sharded;
pub mod updater;

pub use behaviors::{BlockKind, BlockState, EnforceDirections};
pub use chaos::ModelViolation;
pub use conntrack::{ConnState, ConnTracker, FlowKey, Side};
pub use device::{DeviceConfig, DeviceStats, FailureProfile, TspuDevice};
pub use profile::{CensorProfile, DnsFilter, HttpHostFilter, SniMode};
pub use frag_cache::FragCache;
pub use hardening::Hardening;
pub use policer::TokenBucket;
pub use policy::{DomainSet, NormalizedHost, Policy, PolicyDelta, PolicyHandle, ThrottleConfig};
pub use recorder::{FlightRecorder, LedgerEvent, LedgerKind, DEFAULT_LEDGER_CAP};
pub use sharded::ShardedConnTracker;
pub use updater::{DeltaApplication, PolicyUpdater, UpdateLog};
