//! Blocking verdicts and how they act on packets (paper §5.2, Fig. 2).

use std::time::Duration;

use tspu_netsim::Time;

use crate::constants;
use crate::policer::TokenBucket;
use crate::policy::ThrottleConfig;

/// The six ways the TSPU severs a connection, minus IP-based blocking
/// (which is evaluated per packet against the address list rather than
/// stored on a flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// SNI-I: remote→local packets have their payload truncated and flags
    /// rewritten to RST/ACK; local→remote packets pass.
    RstRewrite,
    /// SNI-II: a handful more packets pass in either direction, then
    /// everything is dropped symmetrically.
    DelayedDrop,
    /// SNI-III: both directions policed by a token bucket.
    Throttle,
    /// SNI-IV: every packet of the flow dropped immediately, both sides,
    /// including the trigger itself.
    FullDrop,
    /// QUIC: every subsequent packet of the UDP flow dropped, both sides,
    /// including the trigger.
    QuicDrop,
}

impl BlockKind {
    /// Residual duration of this verdict once applied (Table 2).
    pub fn duration(self) -> Duration {
        match self {
            BlockKind::RstRewrite => constants::BLOCK_SNI1,
            BlockKind::DelayedDrop => constants::BLOCK_SNI2,
            BlockKind::Throttle => Duration::from_secs(u64::MAX / 2_000_000), // while policy active
            BlockKind::FullDrop => constants::BLOCK_SNI4,
            BlockKind::QuicDrop => constants::BLOCK_QUIC,
        }
    }

    /// The paper's name for the behavior.
    pub fn paper_name(self) -> &'static str {
        match self {
            BlockKind::RstRewrite => "SNI-I",
            BlockKind::DelayedDrop => "SNI-II",
            BlockKind::Throttle => "SNI-III",
            BlockKind::FullDrop => "SNI-IV",
            BlockKind::QuicDrop => "QUIC",
        }
    }
}

/// An active blocking verdict on a flow.
#[derive(Debug, Clone)]
pub struct BlockState {
    pub kind: BlockKind,
    /// When the verdict was (last) applied.
    pub since: Time,
    /// SNI-II: packets still allowed through before symmetric drops.
    pub allowance: u8,
    /// SNI-III: the policing bucket.
    pub bucket: Option<TokenBucket>,
    /// The policy epoch this verdict was installed under. A flow keeps
    /// enforcing its pinned verdict across registry deltas (residual
    /// blocking, Table 2); the gap between this and the live
    /// `Policy::epoch` is what the stale-verdict audit counts.
    pub epoch: u64,
}

impl BlockState {
    /// Creates a fresh verdict at `now`. For SNI-II, `allowance` packets
    /// (5–8 in the paper) still pass; for SNI-III a policer is attached.
    /// The verdict starts pinned to epoch 0; installers that know the
    /// live policy epoch chain [`BlockState::pinned_to`].
    pub fn new(kind: BlockKind, now: Time, allowance: u8, throttle: ThrottleConfig) -> BlockState {
        let bucket = match kind {
            BlockKind::Throttle => Some(TokenBucket::new(
                throttle.rate_bytes_per_sec,
                throttle.burst_bytes,
                now,
            )),
            _ => None,
        };
        BlockState { kind, since: now, allowance, bucket, epoch: 0 }
    }

    /// Pins the verdict to the policy epoch it was decided under.
    pub fn pinned_to(mut self, epoch: u64) -> BlockState {
        self.epoch = epoch;
        self
    }

    /// Whether the verdict is still in force at `now`.
    pub fn active(&self, now: Time) -> bool {
        now.since(self.since) <= self.kind.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_match_table_2() {
        assert_eq!(BlockKind::RstRewrite.duration(), Duration::from_secs(75));
        assert_eq!(BlockKind::DelayedDrop.duration(), Duration::from_secs(420));
        assert_eq!(BlockKind::FullDrop.duration(), Duration::from_secs(40));
        assert_eq!(BlockKind::QuicDrop.duration(), Duration::from_secs(420));
    }

    #[test]
    fn residual_expiry() {
        let block = BlockState::new(BlockKind::RstRewrite, Time::from_secs(100), 0, ThrottleConfig::hard_2022());
        assert!(block.active(Time::from_secs(100)));
        assert!(block.active(Time::from_secs(175)));
        assert!(!block.active(Time::from_secs(176)));
    }

    #[test]
    fn throttle_carries_bucket() {
        let block = BlockState::new(BlockKind::Throttle, Time::ZERO, 0, ThrottleConfig::hard_2022());
        assert!(block.bucket.is_some());
        let block = BlockState::new(BlockKind::FullDrop, Time::ZERO, 0, ThrottleConfig::hard_2022());
        assert!(block.bucket.is_none());
    }

    #[test]
    fn paper_names() {
        assert_eq!(BlockKind::DelayedDrop.paper_name(), "SNI-II");
        assert_eq!(BlockKind::QuicDrop.paper_name(), "QUIC");
    }
}
