//! Blocking verdicts and how they act on packets (paper §5.2, Fig. 2).

use std::time::Duration;

use tspu_netsim::Time;

use crate::constants;
use crate::policer::TokenBucket;
use crate::policy::ThrottleConfig;

/// The six ways the TSPU severs a connection, minus IP-based blocking
/// (which is evaluated per packet against the address list rather than
/// stored on a flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// SNI-I: remote→local packets have their payload truncated and flags
    /// rewritten to RST/ACK; local→remote packets pass.
    RstRewrite,
    /// SNI-II: a handful more packets pass in either direction, then
    /// everything is dropped symmetrically.
    DelayedDrop,
    /// SNI-III: both directions policed by a token bucket.
    Throttle,
    /// SNI-IV: every packet of the flow dropped immediately, both sides,
    /// including the trigger itself.
    FullDrop,
    /// QUIC: every subsequent packet of the UDP flow dropped, both sides,
    /// including the trigger.
    QuicDrop,
    /// HTTP-200 block-page injection (India profile, PAPERS.md): the
    /// server's response payload is replaced with the censor's page.
    BlockPage,
}

impl BlockKind {
    /// Residual duration of this verdict once applied (Table 2 for the
    /// TSPU kinds). Profiles with different residual semantics override
    /// the per-flow window via [`BlockState::with_window`].
    pub fn duration(self) -> Duration {
        match self {
            BlockKind::RstRewrite => constants::BLOCK_SNI1,
            BlockKind::DelayedDrop => constants::BLOCK_SNI2,
            BlockKind::Throttle => Duration::from_secs(u64::MAX / 2_000_000), // while policy active
            BlockKind::FullDrop => constants::BLOCK_SNI4,
            BlockKind::QuicDrop => constants::BLOCK_QUIC,
            BlockKind::BlockPage => constants::BLOCK_PAGE,
        }
    }

    /// The paper's name for the behavior.
    pub fn paper_name(self) -> &'static str {
        match self {
            BlockKind::RstRewrite => "SNI-I",
            BlockKind::DelayedDrop => "SNI-II",
            BlockKind::Throttle => "SNI-III",
            BlockKind::FullDrop => "SNI-IV",
            BlockKind::QuicDrop => "QUIC",
            BlockKind::BlockPage => "HTTP-200",
        }
    }
}

/// Which packet directions an injection verdict rewrites. Drop-style
/// verdicts (SNI-II/IV, QUIC) are inherently symmetric and ignore this;
/// it matters for RST rewriting and block pages, where the TSPU touches
/// only the remote→local direction while Turkmenistan's chokepoints
/// inject toward both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnforceDirections {
    /// Rewrite only remote→local packets (TSPU SNI-I, §5.2).
    #[default]
    ToLocal,
    /// Rewrite packets in both directions (Turkmenistan profile).
    Both,
}

impl EnforceDirections {
    /// Whether a local→remote packet is also rewritten under this setting.
    pub fn includes_local_to_remote(self) -> bool {
        matches!(self, EnforceDirections::Both)
    }
}

/// An active blocking verdict on a flow.
#[derive(Debug, Clone)]
pub struct BlockState {
    pub kind: BlockKind,
    /// When the verdict was (last) applied.
    pub since: Time,
    /// SNI-II: packets still allowed through before symmetric drops.
    pub allowance: u8,
    /// SNI-III: the policing bucket.
    pub bucket: Option<TokenBucket>,
    /// The policy epoch this verdict was installed under. A flow keeps
    /// enforcing its pinned verdict across registry deltas (residual
    /// blocking, Table 2); the gap between this and the live
    /// `Policy::epoch` is what the stale-verdict audit counts.
    pub epoch: u64,
    /// Residual window of this verdict. Defaults to the TSPU Table-2
    /// duration for `kind`; censor profiles with different residual
    /// semantics override it at install time.
    pub window: Duration,
    /// Which directions an injection verdict rewrites. The conntrack used
    /// to hard-code forward-direction (remote→local) enforcement; storing
    /// it per verdict is what lets bidirectional profiles share the
    /// tracker unchanged.
    pub directions: EnforceDirections,
}

impl BlockState {
    /// Creates a fresh verdict at `now`. For SNI-II, `allowance` packets
    /// (5–8 in the paper) still pass; for SNI-III a policer is attached.
    /// The verdict starts pinned to epoch 0; installers that know the
    /// live policy epoch chain [`BlockState::pinned_to`].
    pub fn new(kind: BlockKind, now: Time, allowance: u8, throttle: ThrottleConfig) -> BlockState {
        let bucket = match kind {
            BlockKind::Throttle => Some(TokenBucket::new(
                throttle.rate_bytes_per_sec,
                throttle.burst_bytes,
                now,
            )),
            _ => None,
        };
        BlockState {
            kind,
            since: now,
            allowance,
            bucket,
            epoch: 0,
            window: kind.duration(),
            directions: EnforceDirections::ToLocal,
        }
    }

    /// Pins the verdict to the policy epoch it was decided under.
    pub fn pinned_to(mut self, epoch: u64) -> BlockState {
        self.epoch = epoch;
        self
    }

    /// Overrides the residual window (profile-specific residual semantics).
    pub fn with_window(mut self, window: Duration) -> BlockState {
        self.window = window;
        self
    }

    /// Sets which directions an injection verdict rewrites.
    pub fn with_directions(mut self, directions: EnforceDirections) -> BlockState {
        self.directions = directions;
        self
    }

    /// Whether the verdict is still in force at `now`.
    pub fn active(&self, now: Time) -> bool {
        now.since(self.since) <= self.window
    }

    /// Whether an injection verdict rewrites a packet heading toward the
    /// local side (`true`) / remote side (depends on [`EnforceDirections`]).
    pub fn rewrites_toward_remote(&self) -> bool {
        self.directions.includes_local_to_remote()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_match_table_2() {
        assert_eq!(BlockKind::RstRewrite.duration(), Duration::from_secs(75));
        assert_eq!(BlockKind::DelayedDrop.duration(), Duration::from_secs(420));
        assert_eq!(BlockKind::FullDrop.duration(), Duration::from_secs(40));
        assert_eq!(BlockKind::QuicDrop.duration(), Duration::from_secs(420));
    }

    #[test]
    fn residual_expiry() {
        let block = BlockState::new(BlockKind::RstRewrite, Time::from_secs(100), 0, ThrottleConfig::hard_2022());
        assert!(block.active(Time::from_secs(100)));
        assert!(block.active(Time::from_secs(175)));
        assert!(!block.active(Time::from_secs(176)));
    }

    #[test]
    fn throttle_carries_bucket() {
        let block = BlockState::new(BlockKind::Throttle, Time::ZERO, 0, ThrottleConfig::hard_2022());
        assert!(block.bucket.is_some());
        let block = BlockState::new(BlockKind::FullDrop, Time::ZERO, 0, ThrottleConfig::hard_2022());
        assert!(block.bucket.is_none());
    }

    #[test]
    fn paper_names() {
        assert_eq!(BlockKind::DelayedDrop.paper_name(), "SNI-II");
        assert_eq!(BlockKind::QuicDrop.paper_name(), "QUIC");
        assert_eq!(BlockKind::BlockPage.paper_name(), "HTTP-200");
    }

    #[test]
    fn default_window_and_directions_match_tspu() {
        // The TSPU byte-identity contract: a plain `new` verdict behaves
        // exactly as before the profile refactor — Table-2 window,
        // remote→local enforcement only.
        let block = BlockState::new(BlockKind::RstRewrite, Time::ZERO, 0, ThrottleConfig::hard_2022());
        assert_eq!(block.window, Duration::from_secs(75));
        assert_eq!(block.directions, EnforceDirections::ToLocal);
        assert!(!block.rewrites_toward_remote());
    }

    #[test]
    fn window_override_changes_expiry() {
        let block = BlockState::new(BlockKind::FullDrop, Time::from_secs(100), 0, ThrottleConfig::hard_2022())
            .with_window(Duration::from_secs(60));
        assert!(block.active(Time::from_secs(160)));
        assert!(!block.active(Time::from_secs(161)));
    }

    #[test]
    fn bidirectional_directions_rewrite_both_ways() {
        let block = BlockState::new(BlockKind::RstRewrite, Time::ZERO, 0, ThrottleConfig::hard_2022())
            .with_directions(EnforceDirections::Both);
        assert!(block.rewrites_toward_remote());
    }
}
