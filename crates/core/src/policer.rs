//! Token-bucket traffic policing — the throttling mechanism behind both
//! the March 2021 Twitter event (~130 kbit/s) and the Feb–Mar 2022 hard
//! throttle (~650 B/s). The paper (§5.2, citing Xue et al. 2021) observes
//! a *policer* — packets exceeding the rate are dropped, not queued.

use tspu_netsim::Time;

/// A classic token bucket: `rate` bytes/second refill, `burst` bytes depth.
/// A packet passes only if the bucket holds at least its size in tokens.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    /// Current fill in micro-byte units (bytes × 1e6) for exact integer
    /// refill arithmetic on the microsecond clock.
    tokens_micro: u64,
    last_refill: Time,
    /// Packets refused for lack of tokens, surfaced as `policer.rejects`.
    rejects: u64,
}

impl TokenBucket {
    /// Creates a bucket, initially full.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64, now: Time) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            tokens_micro: burst_bytes * 1_000_000,
            last_refill: now,
            rejects: 0,
        }
    }

    /// Packets this bucket has refused so far.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// The configured sustained rate.
    pub fn rate(&self) -> u64 {
        self.rate_bytes_per_sec
    }

    fn refill(&mut self, now: Time) {
        let elapsed_micros = now.since(self.last_refill).as_micros() as u64;
        self.last_refill = now;
        let added = elapsed_micros.saturating_mul(self.rate_bytes_per_sec);
        self.tokens_micro = (self.tokens_micro + added).min(self.burst_bytes * 1_000_000);
    }

    /// Offers a packet of `len` bytes at `now`; returns true if it passes
    /// (and consumes tokens), false if it is dropped.
    pub fn admit(&mut self, now: Time, len: usize) -> bool {
        self.refill(now);
        let need = (len as u64) * 1_000_000;
        if self.tokens_micro >= need {
            self.tokens_micro -= need;
            true
        } else {
            self.rejects += 1;
            false
        }
    }

    /// Current token count in whole bytes (for inspection).
    pub fn tokens(&self) -> u64 {
        self.tokens_micro / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn initial_burst_admits() {
        let mut bucket = TokenBucket::new(650, 1600, Time::ZERO);
        assert!(bucket.admit(Time::ZERO, 1500));
        // Bucket nearly empty; a second full packet is dropped.
        assert!(!bucket.admit(Time::ZERO, 1500));
    }

    #[test]
    fn refills_at_configured_rate() {
        let mut bucket = TokenBucket::new(650, 1600, Time::ZERO);
        assert!(bucket.admit(Time::ZERO, 1500));
        // After 1 s: +650 bytes → 750 total; still not enough for 1500.
        assert!(!bucket.admit(Time::from_secs(1), 1500));
        // After ~2.2 s more: > 1500 available.
        assert!(bucket.admit(Time::from_secs(4), 1500));
    }

    #[test]
    fn sustained_goodput_approximates_rate() {
        // Send 1460-byte packets every 100 ms for 60 s through the 2022
        // hard throttle; goodput must land in the paper's 600–700 B/s.
        let mut bucket = TokenBucket::new(650, 1600, Time::ZERO);
        let mut delivered = 0u64;
        let mut now = Time::ZERO;
        for _ in 0..600 {
            if bucket.admit(now, 1460) {
                delivered += 1460;
            }
            now += Duration::from_millis(100);
        }
        let rate = delivered as f64 / 60.0;
        assert!((600.0..=760.0).contains(&rate), "goodput {rate} B/s");
    }

    #[test]
    fn rate_2021_much_faster_than_2022() {
        let run = |rate, burst| {
            let mut bucket = TokenBucket::new(rate, burst, Time::ZERO);
            let mut delivered = 0u64;
            let mut now = Time::ZERO;
            for _ in 0..1000 {
                if bucket.admit(now, 1460) {
                    delivered += 1460;
                }
                now += Duration::from_millis(10);
            }
            delivered
        };
        let slow = run(650, 1600);
        let fast = run(16_250, 16_000);
        assert!(fast > slow * 20, "fast {fast} slow {slow}");
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut bucket = TokenBucket::new(1000, 2000, Time::ZERO);
        bucket.refill(Time::from_secs(1000));
        assert_eq!(bucket.tokens(), 2000);
    }

    #[test]
    fn zero_length_always_admits() {
        let mut bucket = TokenBucket::new(1, 1, Time::ZERO);
        for _ in 0..10 {
            assert!(bucket.admit(Time::ZERO, 0));
        }
    }

    #[test]
    fn exhaustion_boundary_is_exact() {
        // A packet exactly the burst size drains the bucket to zero; even
        // one further byte is then over the line.
        let mut bucket = TokenBucket::new(650, 1600, Time::ZERO);
        assert!(bucket.admit(Time::ZERO, 1600));
        assert_eq!(bucket.tokens(), 0);
        assert!(!bucket.admit(Time::ZERO, 1));
        assert!(bucket.admit(Time::ZERO, 0), "zero-length still passes an empty bucket");
    }

    #[test]
    fn refill_boundary_is_exact_to_the_microsecond() {
        // rate 1000 B/s = 1 byte/ms. Drain the bucket, then a 100-byte
        // packet needs exactly 100 ms of refill: 1 µs early it is dropped
        // (and the failed attempt must not eat the accrued tokens), on the
        // boundary it passes.
        let mut bucket = TokenBucket::new(1000, 1000, Time::ZERO);
        assert!(bucket.admit(Time::ZERO, 1000));
        let boundary = Time::from_micros(100_000);
        assert!(!bucket.admit(Time::from_micros(99_999), 100));
        assert!(bucket.admit(boundary, 100));
        // Tokens are now exactly zero again: the next byte needs 1 ms.
        assert!(!bucket.admit(boundary, 1));
        assert!(bucket.admit(Time::from_micros(101_000), 1));
    }

    #[test]
    fn failed_admit_does_not_consume_tokens() {
        let mut bucket = TokenBucket::new(650, 1600, Time::ZERO);
        assert!(bucket.admit(Time::ZERO, 1500)); // 100 left
        for _ in 0..10 {
            assert!(!bucket.admit(Time::ZERO, 200), "rejects must not drain");
        }
        assert!(bucket.admit(Time::ZERO, 100), "the 100 surviving bytes still spend");
    }
}
