//! Every behavioral constant the paper reports for the TSPU, in one place.
//!
//! These are the ground truth the measurement experiments must recover.
//! Where the paper's own estimates disagree between Table 2 and Table 8
//! (both are black-box estimates; the authors note "some states could
//! share the same timeout value"), the reconciliation chosen here is
//! documented next to the constant and in EXPERIMENTS.md.

use std::time::Duration;

// --- Connection-tracking idle timeouts (paper §5.3.3, Tables 2 & 8) ---

/// SYN-SENT: a flow whose only packet is a pure SYN. Table 2 measures 60 s
/// via the `Remote.SYN; SLEEP; …` sequence. (Table 8's `Rs;Lt` row
/// estimates 30 s for the same state; we encode Table 2's value.)
pub const TIMEOUT_SYN_SENT: Duration = Duration::from_secs(60);

/// SYN-RECEIVED: simultaneous open / split handshake — a SYN arrived from
/// the side opposite the current client (Table 2: 105 s).
pub const TIMEOUT_SYN_RECV: Duration = Duration::from_secs(105);

/// ESTABLISHED: SYN answered by a SYN/ACK from the other side (Table 2:
/// 480 s). The TSPU does not wait for the final ACK of the handshake.
pub const TIMEOUT_ESTABLISHED: Duration = Duration::from_secs(480);

/// A flow created by a data-bearing first packet with no handshake
/// (Table 8's bare `Lt` row: 180 s).
pub const TIMEOUT_LOOSE: Duration = Duration::from_secs(180);

/// A flow created by a bare ACK first packet (Table 8's `La;Lt` and
/// `Ra;…` rows: 480 s — the tracker treats it like a connection it missed
/// the start of).
pub const TIMEOUT_ACK_FIRST: Duration = Duration::from_secs(480);

/// A flow created by a bare SYN/ACK first packet — the "unusual but valid
/// prefix" of §7.1.1. Table 8's `Rsa;…` rows estimate 480 s; its
/// `Lsa;Lt → 420 s` row is explained by the SNI-II *block* residual
/// (420 s) clipping the observation, not by the state timeout.
pub const TIMEOUT_SYNACK_FIRST: Duration = Duration::from_secs(480);

/// A flow the tracker gave up on after a protocol-violating packet
/// (e.g. a bare ACK answering a SYN, Table 8's `Ls;Ra;Lt` row: 180 s).
/// Invalid flows are exempt from SNI blocking while tracked.
pub const TIMEOUT_INVALID: Duration = Duration::from_secs(180);

/// UDP flows (tracked for QUIC blocking). Long enough that the QUIC
/// residual (420 s, Table 2) is not clipped by flow expiry.
pub const TIMEOUT_UDP: Duration = Duration::from_secs(480);

// --- Residual blocking durations once triggered (Table 2) ---

/// SNI-I (RST/ACK rewrite) residual: 75 s.
pub const BLOCK_SNI1: Duration = Duration::from_secs(75);
/// SNI-II (delayed symmetric drop) residual: 420 s.
pub const BLOCK_SNI2: Duration = Duration::from_secs(420);
/// SNI-IV (backup full drop) residual: 40 s.
pub const BLOCK_SNI4: Duration = Duration::from_secs(40);
/// QUIC block residual: 420 s.
pub const BLOCK_QUIC: Duration = Duration::from_secs(420);

// --- SNI-II delayed drop (paper §5.2) ---

/// After an SNI-II trigger, "an additional five to eight packets can be
/// delivered from either side" before symmetric drops begin.
pub const SLOW_DROP_ALLOWANCE_MIN: u8 = 5;
pub const SLOW_DROP_ALLOWANCE_MAX: u8 = 8;

// --- QUIC filter (paper §5.2, Fig. 14) ---

/// The filter applies to UDP packets to port 443 only.
pub const QUIC_PORT: u16 = 443;
/// …with at least this many bytes of UDP payload.
pub const QUIC_MIN_PAYLOAD: usize = 1001;

// --- SNI triggers ---

/// SNI inspection applies to TCP packets destined to port 443.
pub const SNI_PORT: u16 = 443;

// --- Non-TSPU censor profiles (PAPERS.md: Turkmenistan, India) ---

/// HTTP Host-header inspection applies to TCP packets destined to port 80
/// (the Turkmenistan HTTP trigger and India's block-page injection point).
pub const HTTP_PORT: u16 = 80;

/// DNS inspection applies to UDP packets destined to port 53
/// (Turkmenistan's DNS trigger).
pub const DNS_PORT: u16 = 53;

/// Residual window of an HTTP-200 block-page verdict (India profile): the
/// studies report per-connection injection rather than a measured residual,
/// so the model keeps the flow poisoned for one conservative state window.
pub const BLOCK_PAGE: Duration = Duration::from_secs(60);

/// Residual drop/RST window for the Turkmenistan profile's triggers. The
/// Turkmenistan study measures bidirectional interference on the flow and
/// follow-up connections for on the order of a minute; the exact figure is
/// a modeling choice documented in EXPERIMENTS.md.
pub const BLOCK_TKM: Duration = Duration::from_secs(60);

// --- Fragment cache (paper §5.3.1) ---

/// Maximum fragments of one packet buffered before the queue is discarded:
/// "TSPU accepts up to 45 fragments of a single packet". Linux defaults to
/// 64, Cisco 24, Juniper 250 — 45 is the fingerprint (§7.2).
pub const FRAG_QUEUE_LIMIT: usize = 45;

/// Fragment cache timeout: "a short timeout of around 5 seconds".
pub const FRAG_TIMEOUT: Duration = Duration::from_secs(5);

/// Concurrently buffered fragment trains before the oldest is evicted.
/// The paper does not measure this bound, but a real line card's fragment
/// table is fixed-size; 4096 trains × 45 fragments bounds the cache at a
/// few hundred MB worst case instead of growing without limit.
pub const FRAG_MAX_TRAINS: usize = 4096;

// --- Throttling rates (paper §5.2, SNI-III) ---

/// The February–March 2022 hard throttle: "around 600–700 bytes per
/// second". We encode the midpoint.
pub const THROTTLE_RATE_2022: u64 = 650;

/// The March 2021 Twitter throttle: about 130 kbit/s ≈ 16 250 B/s.
pub const THROTTLE_RATE_2021: u64 = 16_250;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_ordering_matches_paper() {
        // §5.3.3: "much shorter timeouts for SYN-SENT and ESTABLISHED when
        // compared to Linux and FreeBSD" — and internally, the handshake
        // states must be shorter-lived than established flows.
        assert!(TIMEOUT_SYN_SENT < TIMEOUT_SYN_RECV);
        assert!(TIMEOUT_SYN_RECV < TIMEOUT_ESTABLISHED);
        // Linux: syn_sent 120 s, established 432 000 s (Table 7).
        assert!(TIMEOUT_SYN_SENT < Duration::from_secs(120));
        assert!(TIMEOUT_ESTABLISHED < Duration::from_secs(432_000));
    }

    #[test]
    fn table8_timeout_values_are_few() {
        // Appendix B: "a total of four unique timeout values" in Table 8.
        // Our ground truth exposes {60, 105, 180, 420, 480} through that
        // table's methodology (420 being the SNI-II residual); the paper
        // groups them into four. Assert the grouping stays small.
        let mut values = vec![
            TIMEOUT_LOOSE,
            TIMEOUT_ACK_FIRST,
            TIMEOUT_SYNACK_FIRST,
            TIMEOUT_INVALID,
            TIMEOUT_ESTABLISHED,
            BLOCK_SNI2,
        ];
        values.sort();
        values.dedup();
        assert!(values.len() <= 4, "{values:?}");
    }
}
